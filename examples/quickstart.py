#!/usr/bin/env python
"""Quickstart: WordCount on the HAMR flowlet engine, in ~30 lines.

Builds a 4-worker simulated cluster, wires the three-flowlet WordCount
DAG (TextLoader -> Tokenize -> PartialReduce), runs it, and prints the
counts with the engine's virtual-clock makespan. Then runs the identical
computation on the Hadoop-style baseline for comparison.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    CollectionSource,
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
)
from repro.mapreduce import HadoopEngine, Mapper, MRJob, Reducer
from repro.storage import DFS

LINES = [
    (0, "the quick brown fox jumps over the lazy dog"),
    (1, "the dog barks and the fox runs"),
    (2, "quick quick slow"),
]


def tokenize(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)


def main() -> None:
    # --- HAMR: a flowlet DAG ------------------------------------------------
    cluster = Cluster(small_cluster_spec(num_workers=4))
    engine = HamrEngine(cluster)

    graph = FlowletGraph("wordcount")
    loader = graph.add(Loader("lines", CollectionSource(LINES)))
    tok = graph.add(Map("tokenize", fn=tokenize))
    count = graph.add(
        PartialReduce("count", initial=lambda _w: 0, combine=lambda acc, v: acc + v)
    )
    graph.connect(loader, tok)
    graph.connect(tok, count)

    result = engine.run(graph)
    print("HAMR word counts:")
    for word, n in result.sorted_output("count"):
        print(f"  {word:>6s}  {n}")
    print(f"HAMR makespan: {result.makespan:.4f} virtual seconds")

    # --- the Hadoop-style baseline, same data -------------------------------
    baseline_cluster = Cluster(small_cluster_spec(num_workers=4))
    dfs = DFS(baseline_cluster)
    dfs.ingest("input.txt", LINES)
    hadoop = HadoopEngine(baseline_cluster, dfs)
    job = MRJob(
        "wordcount",
        "input.txt",
        "out",
        mapper=Mapper(fn=tokenize),
        reducer=Reducer(fn=lambda ctx, w, counts: ctx.emit(w, sum(counts))),
    )
    mr_result = hadoop.run(job)
    assert dict(mr_result.outputs) == dict(result.output("count"))
    print(f"Hadoop makespan: {mr_result.makespan:.4f} virtual seconds")
    print(
        f"(the baseline pays {baseline_cluster.cost.hadoop_job_startup:.0f}s of job "
        "startup plus per-task JVM launches — HAMR's resident runtime does not)"
    )


if __name__ == "__main__":
    main()
