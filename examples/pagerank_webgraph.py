#!/usr/bin/env python
"""Iterative PageRank over a Zipf-linked web graph, with convergence.

Demonstrates §3.1/§3.2: the first iteration builds adjacency lists into
the distributed KV store (HashJoinRed); every later iteration loads them
*from memory* (EdgeLoader over KVStoreSource) — one multi-phase HAMR job
per iteration, no disk round-trips, no per-iteration job armies. The
driver loops until the total rank movement falls under a tolerance,
exactly Alg. 2's "while not converge and less than max number of
iterations".

Run:  python examples/pagerank_webgraph.py
"""

from repro.apps import pagerank
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.data.webgraph import webgraph_edges


def main() -> None:
    n_pages, n_edges = 400, 3_000
    edges = webgraph_edges(n_pages, n_edges, seed=7)
    env = AppEnv(small_cluster_spec(num_workers=4))
    params = pagerank.PageRankParams(n_pages=n_pages, n_edges=n_edges, iterations=1, seed=7)

    result, iterations = pagerank.run_hamr_until_converged(
        env, params, edges, tolerance=1e-4, max_iterations=25
    )
    print(f"converged after {iterations} iterations "
          f"({result.makespan:.2f} virtual seconds total)")

    top = sorted(result.output.items(), key=lambda kv: -kv[1])[:10]
    print("\ntop pages by rank:")
    for page, rank in top:
        print(f"  page {page:4d}  rank {rank:.6f}")

    adjacency_entries = sum(
        1 for key, _v in env.kvstore.all_items() if key[0] == "adj"
    )
    print(
        f"\nadjacency lists resident in the KV store: {adjacency_entries} "
        "(loaded from disk exactly once, in iteration 1)"
    )


if __name__ == "__main__":
    main()
