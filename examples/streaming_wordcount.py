#!/usr/bin/env python
"""Streaming WordCount: the same flowlet DAG over an unbounded-style feed.

§1's pitch: HAMR "naturally supports streaming and real-time computing"
with the same programming model. Here a StreamSource delivers micro-
batches at t = 2, 4, 6, ... virtual seconds (a message broker with four
partitions); the identical Tokenize -> PartialReduce pipeline counts
words as batches land, and the job finishes shortly after the last batch
— not after a batch-wide barrier.

Run:  python examples/streaming_wordcount.py
"""

from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
    StreamSource,
    TimedBatch,
)

FEED = [
    (2.0, ["tick alpha beta", "alpha gamma"]),
    (4.0, ["beta beta tick", "delta"]),
    (6.0, ["tick gamma gamma alpha"]),
    (8.0, ["omega tick"]),
]


def tokenize(ctx, _key, line):
    for word in line.split():
        ctx.emit(word, 1)


def main() -> None:
    batches = [
        TimedBatch.make(t, [(i, line) for i, line in enumerate(lines)])
        for t, lines in FEED
    ]
    source = StreamSource(batches, partitions=4)

    cluster = Cluster(small_cluster_spec(num_workers=4))
    engine = HamrEngine(cluster)

    graph = FlowletGraph("streaming-wordcount")
    loader = graph.add(Loader("feed", source))
    tok = graph.add(Map("tokenize", fn=tokenize))
    count = graph.add(
        PartialReduce("count", initial=lambda _w: 0, combine=lambda acc, v: acc + v)
    )
    graph.connect(loader, tok)
    graph.connect(tok, count)

    result = engine.run(graph)
    print("stream schedule: batches at t = " + ", ".join(f"{t:.0f}s" for t, _ in FEED))
    print(f"job finished at t = {result.end_time:.3f}s "
          f"(latency after last batch: {result.end_time - FEED[-1][0]:.3f}s)")
    print("\nfinal word counts:")
    for word, n in result.sorted_output("count"):
        print(f"  {word:>6s}  {n}")


if __name__ == "__main__":
    main()
