#!/usr/bin/env python
"""A Lambda architecture on one engine (§1: "HAMR fully supports Lambda
big data architecture by using the same programming and processing model
in only one computing engine").

Batch layer: a historical event log resident on node-local disks is
aggregated by a batch flowlet job. Speed layer: the same flowlet shapes
consume a live stream of today's events. Serving layer: the driver merges
both views. One engine, one API, two latencies.

Run:  python examples/lambda_architecture.py
"""

from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    FlowletGraph,
    HamrEngine,
    Loader,
    LocalFSSource,
    Map,
    PartialReduce,
    StreamSource,
    TimedBatch,
)
from repro.storage import LocalFS

#: historical clickstream: (user, page) events
HISTORY = [(f"user{i % 7}", f"/page/{i % 5}") for i in range(200)]
#: today's live events arriving over virtual time
LIVE = [
    (1.0, [("user1", "/page/0"), ("user2", "/page/9")]),
    (2.5, [("user1", "/page/9"), ("user3", "/page/0")]),
    (4.0, [("user6", "/page/9")]),
]


def count_graph(name: str, source) -> FlowletGraph:
    """page -> hit-count, the shared shape for both layers."""
    graph = FlowletGraph(name)
    loader = graph.add(Loader("events", source))
    project = graph.add(Map("project", fn=lambda ctx, _user, page: ctx.emit(page, 1)))
    count = graph.add(
        PartialReduce("hits", initial=lambda _p: 0, combine=lambda acc, v: acc + v)
    )
    graph.connect(loader, project)
    graph.connect(project, count)
    return graph


def main() -> None:
    cluster = Cluster(small_cluster_spec(num_workers=4))
    localfs = LocalFS(cluster)
    engine = HamrEngine(cluster, localfs=localfs)

    # batch layer: pre-resident history
    shards = [HISTORY[i :: 4] for i in range(4)]
    for worker, shard in zip(cluster.workers, shards):
        localfs.ingest(worker, "history", shard)
    batch_view = engine.run(
        count_graph("batch-layer", LocalFSSource(localfs, "history"))
    )

    # speed layer: the live stream, same flowlet shapes
    batches = [TimedBatch.make(t, events) for t, events in LIVE]
    speed_view = engine.run(
        count_graph("speed-layer", StreamSource(batches, partitions=4))
    )

    # serving layer: merge
    merged: dict[str, int] = dict(batch_view.output("hits"))
    for page, hits in speed_view.output("hits"):
        merged[page] = merged.get(page, 0) + hits

    print(f"batch layer: {batch_view.makespan:6.2f}s over {len(HISTORY)} historical events")
    print(f"speed layer: {speed_view.makespan:6.2f}s over {sum(len(e) for _t, e in LIVE)} live events")
    print("\nserved view (batch + speed):")
    for page in sorted(merged):
        batch_hits = dict(batch_view.output("hits")).get(page, 0)
        live_hits = dict(speed_view.output("hits")).get(page, 0)
        print(f"  {page:9s}  {merged[page]:4d}  (batch {batch_hits}, live {live_hits})")


if __name__ == "__main__":
    main()
