#!/usr/bin/env python
"""Interactive-style SQL analytics on the flowlet engine (§7 future work).

Loads the PUMA-style movie corpus into a SQL catalog and answers
questions with plain SELECT statements — each query parses, compiles to a
flowlet graph (TableScan loader → filter/project map → partial-reduce
aggregation) and runs on the HAMR engine with virtual-time accounting.

Run:  python examples/sql_analytics.py
"""

from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.data.movies import movie_corpus, parse_movie_line
from repro.sql import Catalog, SQLSession


def build_table(n_movies: int = 500, seed: int = 3) -> list[dict]:
    rows = []
    for _offset, line in movie_corpus(n_movies, seed=seed):
        record = parse_movie_line(line)
        rows.append(
            {
                "movie_id": record.movie_id,
                "num_ratings": len(record.ratings),
                "avg_rating": round(record.average_rating, 3),
                "top_rating": max(record.ratings),
            }
        )
    return rows


QUERIES = [
    "SELECT COUNT(*) AS movies, AVG(avg_rating) AS overall FROM movies",
    (
        "SELECT top_rating, COUNT(*) AS n, AVG(num_ratings) AS avg_votes "
        "FROM movies GROUP BY top_rating ORDER BY top_rating"
    ),
    (
        "SELECT movie_id, avg_rating FROM movies "
        "WHERE avg_rating >= 4.2 AND num_ratings >= 20 "
        "ORDER BY avg_rating DESC LIMIT 5"
    ),
    (
        "SELECT top_rating, COUNT(*) AS n FROM movies "
        "GROUP BY top_rating HAVING n > 50 ORDER BY n DESC"
    ),
]


def main() -> None:
    env = AppEnv(small_cluster_spec(num_workers=4))
    catalog = Catalog()
    catalog.register("movies", build_table())
    session = SQLSession(env.hamr, catalog)

    for sql in QUERIES:
        print("=" * 72)
        print(session.explain(sql))
        result = session.run(sql)
        print(f"-- {len(result)} row(s) in {result.makespan:.3f} virtual seconds")
        header = "  ".join(f"{name:>12s}" for name in result.names)
        print(header)
        for row in result.rows[:8]:
            print("  ".join(f"{str(row[name]):>12s}" for name in result.names))


if __name__ == "__main__":
    main()
