#!/usr/bin/env python
"""K-Means over PUMA-style movie data — the locality-awareness showcase.

Runs one flowlet-style K-Means iteration (Algorithm 1) and the PUMA
Hadoop equivalent on identical data, then compares what crossed the
network: HAMR writes each movie to a node-local cluster file and ships a
24-byte LocationRef; Hadoop ships every movie line through the shuffle.

Run:  python examples/kmeans_movies.py
"""

from repro.apps import kmeans
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.common.units import format_bytes


def main() -> None:
    params = kmeans.KMeansParams(n_movies=600, k=6, seed=11, n_users=400)
    records = kmeans.generate_input(params)

    hamr_env = AppEnv(small_cluster_spec(num_workers=4))
    hamr = kmeans.run_hamr(hamr_env, params, records)

    hadoop_env = AppEnv(small_cluster_spec(num_workers=4))
    hadoop = kmeans.run_hadoop(hadoop_env, params, records)

    assert hamr.output == hadoop.output, "both engines must pick the same centroids"

    print("new centroid movie per cluster (identical on both engines):")
    for cluster_id, movie_id in sorted(hamr.output.items()):
        size = int(hamr.counters.get(f"cluster_size_{cluster_id}", 0))
        print(f"  cluster {cluster_id}: movie {movie_id:5d}  ({size} members)")

    print("\ncluster files written to node-local disks (HAMR only):")
    for worker in hamr_env.cluster.workers:
        files = [
            name
            for name in hamr_env.localfs.files_on(worker)
            if name.startswith("kmeans-cluster-")
        ]
        members = sum(
            hamr_env.localfs.get_file(worker.node_id, f).nrecords for f in files
        )
        print(f"  node {worker.node_id}: {len(files)} cluster files, {members} movies")

    print("\ndata movement comparison:")
    print(
        f"  HAMR   network: {format_bytes(hamr_env.cluster.total_network_bytes())}"
        f"  (cross-node fraction {hamr_env.cluster.network.cross_traffic_fraction():.2f})"
    )
    print(
        f"  Hadoop network: {format_bytes(hadoop_env.cluster.total_network_bytes())}"
        f"  (cross-node fraction {hadoop_env.cluster.network.cross_traffic_fraction():.2f})"
    )
    print(f"\n  HAMR   makespan: {hamr.makespan:9.2f} virtual seconds")
    print(f"  Hadoop makespan: {hadoop.makespan:9.2f} virtual seconds")
    print(f"  speedup: {hadoop.makespan / hamr.makespan:.2f}x")


if __name__ == "__main__":
    main()
