"""Tests for the cluster substrate: specs, nodes, memory, network, YARN."""

import pytest

from repro.common.errors import ConfigError, MemoryBudgetExceeded
from repro.common.units import GB, MB
from repro.cluster import (
    Cluster,
    ClusterSpec,
    CostModel,
    MemoryAccount,
    NodeSpec,
    PAPER_CLUSTER,
    paper_cluster_spec,
    small_cluster_spec,
)


class TestSpecs:
    def test_paper_cluster_matches_table1(self):
        spec = PAPER_CLUSTER
        assert spec.num_nodes == 16
        assert spec.num_workers == 15
        assert spec.node.memory == 32 * GB
        assert spec.node.num_disks == 5
        assert spec.node.cpu_ghz == 2.0

    def test_aggregate_disk_bandwidth(self):
        node = NodeSpec()
        assert node.aggregate_disk_bandwidth == 5 * 150.0 * MB

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            NodeSpec(worker_threads=0)
        with pytest.raises(ConfigError):
            ClusterSpec(num_nodes=1)
        with pytest.raises(ConfigError):
            CostModel(scale=0)

    def test_with_scale_is_pure(self):
        scaled = paper_cluster_spec(scale=1000.0)
        assert scaled.cost.scale == 1000.0
        assert PAPER_CLUSTER.cost.scale == 1.0

    def test_cost_helpers_scale(self):
        cost = CostModel(scale=10.0, cpu_per_record=1e-6, cpu_per_byte=0.0)
        assert cost.cpu_cost(100, 0) == pytest.approx(10.0 * 100 * 1e-6)
        assert cost.scaled_bytes(5) == 50.0


class TestMemoryAccount:
    def test_allocate_and_free(self):
        mem = MemoryAccount(100)
        assert mem.allocate(60)
        assert mem.used == 60
        assert not mem.allocate(50)
        assert mem.failed_allocations == 1
        mem.free(60)
        assert mem.used == 0
        assert mem.high_water == 60

    def test_force_allocate_raises(self):
        mem = MemoryAccount(10)
        with pytest.raises(MemoryBudgetExceeded):
            mem.force_allocate(11)

    def test_over_free_rejected(self):
        mem = MemoryAccount(10)
        with pytest.raises(ValueError):
            mem.free(1)

    def test_pressure(self):
        mem = MemoryAccount(100)
        mem.allocate(25)
        assert mem.pressure == 0.25
        assert mem.available == 75


class TestCluster:
    def test_layout(self):
        cluster = Cluster(small_cluster_spec(num_workers=4))
        assert cluster.master.node_id == 0
        assert cluster.num_workers == 4
        assert [n.node_id for n in cluster.workers] == [1, 2, 3, 4]
        assert cluster.worker(2).node_id == 3

    def test_partition_ownership_round_robin(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        owners = [cluster.owner_of_partition(p, 6).node_id for p in range(6)]
        assert owners == [1, 2, 3, 1, 2, 3]

    def test_partition_out_of_range(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        with pytest.raises(ValueError):
            cluster.owner_of_partition(6, 6)

    def test_default_partitioner_covers_workers(self):
        cluster = Cluster(small_cluster_spec(num_workers=4))
        p = cluster.default_partitioner()
        assert p.num_partitions == 4

    def test_scaled_node_costs(self):
        spec = small_cluster_spec(num_workers=2, scale=100.0)
        cluster = Cluster(spec)
        node = cluster.worker(0)
        done = []

        def proc(sim):
            yield node.disk_read(1024)
            done.append(cluster.sim.now)

        cluster.sim.spawn(proc(cluster.sim))
        cluster.run()
        # 1024 bytes at scale 100 = 102400 bytes at 150MB/s + 4ms latency
        expected = 0.004 + 102400 / (150.0 * MB)
        assert done == [pytest.approx(expected)]

    def test_memory_accounting_scaled(self):
        cluster = Cluster(small_cluster_spec(num_workers=2, memory=1000, scale=10.0))
        node = cluster.worker(0)
        assert node.alloc(99)  # 990 scaled
        assert not node.alloc(2)  # would exceed 1000
        node.free(99)
        assert node.memory.used == 0


class TestNetwork:
    def test_remote_send_charges_both_nics(self):
        cluster = Cluster(small_cluster_spec(num_workers=2))
        a, b = cluster.worker(0), cluster.worker(1)
        done = []

        def proc(sim):
            yield cluster.network.send(a, b, 1500 * MB)
            done.append(sim.now)

        cluster.sim.spawn(proc(cluster.sim))
        cluster.run()
        # 1500MB at 1.5GB/s = ~0.9766s through each NIC serially + latency
        assert done[0] == pytest.approx(2 * (1500 * MB) / (1.5 * GB) + 50e-6)
        assert cluster.network.total_bytes == 1500 * MB
        assert cluster.network.cross_traffic_fraction() == 1.0

    def test_local_send_is_cheap(self):
        cluster = Cluster(small_cluster_spec(num_workers=2))
        a = cluster.worker(0)
        done = []

        def proc(sim):
            yield cluster.network.send(a, a, 1000)
            done.append(sim.now)

        cluster.sim.spawn(proc(cluster.sim))
        cluster.run()
        assert done[0] < 1e-5
        assert cluster.network.cross_traffic_fraction() == 0.0

    def test_concurrent_sends_share_egress(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        a = cluster.worker(0)
        finish = []

        def proc(sim, dst):
            yield cluster.network.send(a, dst, 1500 * MB)
            finish.append(sim.now)

        cluster.sim.spawn(proc(cluster.sim, cluster.worker(1)))
        cluster.sim.spawn(proc(cluster.sim, cluster.worker(2)))
        cluster.run()
        # Both serialize on a's egress: second cannot finish at the same time.
        assert finish[1] > finish[0]


class TestResourceManager:
    def test_grant_and_release(self):
        cluster = Cluster(small_cluster_spec(num_workers=2, memory=1 * GB))
        rm = cluster.resource_manager
        node = cluster.worker(0)
        grants = []

        def proc(sim):
            container = yield rm.request(node, 600 * MB)
            grants.append((sim.now, container.container_id))
            yield 5.0
            rm.release(container)

        def proc2(sim):
            container = yield rm.request(node, 600 * MB)
            grants.append((sim.now, container.container_id))
            rm.release(container)

        cluster.sim.spawn(proc(cluster.sim))
        cluster.sim.spawn(proc2(cluster.sim))
        cluster.run()
        # Second container cannot fit until the first releases at t=5.
        assert grants[0][0] == 0.0
        assert grants[1][0] == 5.0
        assert rm.available(node.node_id) == 1 * GB

    def test_oversized_request_rejected(self):
        cluster = Cluster(small_cluster_spec(num_workers=2, memory=1 * GB))
        with pytest.raises(ConfigError):
            cluster.resource_manager.request(cluster.worker(0), 2 * GB)

    def test_double_release_rejected(self):
        cluster = Cluster(small_cluster_spec(num_workers=2, memory=1 * GB))
        rm = cluster.resource_manager
        node = cluster.worker(0)
        state = {}

        def proc(sim):
            container = yield rm.request(node, MB)
            state["c"] = container
            rm.release(container)

        cluster.sim.spawn(proc(cluster.sim))
        cluster.run()
        with pytest.raises(ConfigError):
            rm.release(state["c"])
