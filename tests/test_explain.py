"""Tests for differential explain: root-cause attribution between runs."""

import json

import pytest

from repro.evaluation.workloads import make_wordcount
from repro.evaluation.runner import run_workload
from repro.obs.critpath import ROLLUP_KEYS, from_tracer
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    TAIL,
    ExplainSide,
    explain,
    render_explain,
    side_from_critpath,
    side_from_tracer,
)


def _side(name, makespan, buckets=None, operators=None, nodes=None):
    return ExplainSide(
        name=name,
        makespan=makespan,
        buckets=dict(buckets or {}),
        operators=dict(operators or {}),
        nodes=dict(nodes or {}),
    )


class TestRanking:
    def test_ranks_by_absolute_delta(self):
        a = _side("a", 10.0, buckets={"disk": 2.0, "compute": 5.0})
        b = _side("b", 16.0, buckets={"disk": 8.0, "compute": 4.0})
        result = explain(a, b)
        keys = [row[0] for row in result.rows["buckets"]]
        assert keys[0] == "disk"  # +6 beats -1
        assert result.top["buckets"] == "disk"
        disk_row = result.rows["buckets"][0]
        assert disk_row[1:4] == [2.0, 8.0, 6.0]
        assert disk_row[4] == pytest.approx(1.0)  # +6s of a +6s delta

    def test_ties_break_by_key(self):
        a = _side("a", 4.0, operators={"map*": 1.0, "reduce*": 1.0})
        b = _side("b", 6.0, operators={"map*": 2.0, "reduce*": 2.0})
        keys = [row[0] for row in explain(a, b).rows["operators"]]
        assert keys == ["map*", "reduce*"]

    def test_identical_sides_have_no_top(self):
        side = _side("x", 5.0, buckets={"disk": 1.0}, nodes={"n1": 5.0})
        result = explain(side, side)
        assert result.makespan_delta == 0.0
        assert result.top == {"buckets": None, "operators": None, "nodes": None}
        # zero makespan delta: shares degrade to 0, not a ZeroDivisionError
        assert all(row[4] == 0.0 for row in result.rows["buckets"])

    def test_keys_missing_on_one_side_count_from_zero(self):
        a = _side("a", 3.0, nodes={"n1": 3.0})
        b = _side("b", 5.0, nodes={"n2": 5.0})
        rows = {row[0]: row for row in explain(a, b).rows["nodes"]}
        assert rows["n1"][3] == -3.0
        assert rows["n2"][3] == 5.0


class TestSideExtraction:
    @pytest.fixture(scope="class")
    def traced_pair(self):
        row = run_workload(make_wordcount("tiny", seed=0), engines="both", obs=True)
        return row

    def test_side_from_tracer_profiles(self, traced_pair):
        side = side_from_tracer(traced_pair.hamr_obs, "wc:hamr")
        cp = from_tracer(traced_pair.hamr_obs)
        assert side.makespan == cp.makespan
        # buckets = full rollup + the off-path tail; never negative
        assert set(side.buckets) == set(ROLLUP_KEYS) | {TAIL}
        assert all(v >= 0.0 for v in side.buckets.values())
        assert sum(side.buckets.values()) == pytest.approx(cp.makespan)
        # operator and node seconds both sum to the on-path time
        assert sum(side.operators.values()) == pytest.approx(cp.path_seconds)
        assert sum(side.nodes.values()) == pytest.approx(cp.path_seconds)
        # digit runs are collapsed: no per-task cardinality explosion
        assert all("0" not in op and "1" not in op or "*" in op
                   for op in side.operators)

    def test_cross_engine_explain(self, traced_pair):
        a = side_from_tracer(traced_pair.hamr_obs, "wc:hamr")
        b = side_from_tracer(traced_pair.hadoop_obs, "wc:hadoop")
        result = explain(a, b)
        # hadoop is slower at tiny wordcount; something must explain it
        assert result.makespan_delta != 0.0
        assert result.top["buckets"] is not None
        assert result.top["operators"] is not None

    def test_deterministic(self, traced_pair):
        a = side_from_tracer(traced_pair.hamr_obs, "wc:hamr")
        b = side_from_tracer(traced_pair.hadoop_obs, "wc:hadoop")
        assert explain(a, b).to_json() == explain(a, b).to_json()

    def test_side_from_critpath_empty_trace(self):
        from repro.obs.critpath import critical_path

        cp = critical_path({}, [])
        side = side_from_critpath(cp, "empty")
        assert side.makespan == 0.0
        assert side.operators == {}


class TestSerialization:
    def test_to_dict_schema(self):
        a = _side("a", 10.0, buckets={"disk": 2.0})
        b = _side("b", 13.0, buckets={"disk": 5.0})
        payload = explain(a, b).to_dict()
        assert payload["schema"] == EXPLAIN_SCHEMA
        assert payload["makespan_delta"] == 3.0
        assert set(payload["dimensions"]) == {"buckets", "operators", "nodes"}
        bucket_dim = payload["dimensions"]["buckets"]
        assert bucket_dim["top"] == "disk"
        assert bucket_dim["rows"][0] == {
            "key": "disk", "a_seconds": 2.0, "b_seconds": 5.0,
            "delta": 3.0, "share": 1.0,
        }
        json.dumps(payload)  # JSON-serializable

    def test_render_smoke(self):
        a = _side("base", 10.0, buckets={"disk": 2.0}, operators={"map*": 2.0},
                  nodes={"n1": 2.0})
        b = _side("cand", 13.0, buckets={"disk": 5.0}, operators={"map*": 5.0},
                  nodes={"n1": 5.0})
        text = render_explain(explain(a, b))
        assert "== explain: A=base -> B=cand ==" in text
        assert "delta +3.000s" in text
        assert "root cause candidates" in text
        assert "disk" in text

    def test_render_identical_runs(self):
        side = _side("x", 5.0, buckets={"disk": 1.0})
        text = render_explain(explain(side, side))
        assert "(none — identical runs)" in text


class TestCli:
    def test_explain_spec_mode(self, capsys):
        from repro.evaluation.__main__ import main

        rc = main(["explain", "wordcount:hamr", "wordcount:hadoop",
                   "--fidelity", "tiny", "--json", "-"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == EXPLAIN_SCHEMA
        assert payload["a"]["engine"] == "hamr"
        assert payload["b"]["engine"] == "hadoop"
        assert payload["makespan_delta"] != 0.0

    def test_explain_bad_spec_exits_2(self, capsys):
        from repro.evaluation.__main__ import main

        assert main(["explain", "nope:hamr", "wordcount:hadoop"]) == 2
        assert main(["explain", "wordcount:hamr", "wordcount:spark"]) == 2
        assert main(["explain", "missing.journal.jsonl", "wordcount:hamr"]) == 2
        err = capsys.readouterr().err
        assert "error" in err

    def test_journal_replay_explain_pipeline(self, tmp_path, capsys, monkeypatch):
        from repro.evaluation.__main__ import main

        base = tmp_path / "base.jsonl"
        rc = main(["journal", "--workload", "wordcount", "--engine", "hamr",
                   "--fidelity", "tiny", "--out", str(base)])
        assert rc == 0 and base.exists()
        monkeypatch.setenv("REPRO_OBS_SLOWDOWN", "disk=2.0")
        inflated = tmp_path / "inflated.jsonl"
        rc = main(["journal", "--workload", "wordcount", "--engine", "hamr",
                   "--fidelity", "tiny", "--out", str(inflated)])
        assert rc == 0 and inflated.exists()
        monkeypatch.delenv("REPRO_OBS_SLOWDOWN")
        capsys.readouterr()
        rc = main(["explain", str(base), str(inflated), "--json", "-"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dimensions"]["buckets"]["top"] == "disk"
        assert payload["b"]["seeded_slowdown"] == {"bucket": "disk", "factor": 2.0}
        assert payload["makespan_delta"] > 0
