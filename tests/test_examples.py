"""Smoke tests: every example script runs end-to-end and prints sane output."""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_exist():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "HAMR word counts" in out
    assert "quick" in out
    assert "makespan" in out


def test_pagerank_webgraph(capsys):
    out = run_example("pagerank_webgraph.py", capsys)
    assert "converged" in out or "iteration" in out
    assert "top pages by rank" in out
    assert "adjacency lists resident" in out


def test_kmeans_movies(capsys):
    out = run_example("kmeans_movies.py", capsys)
    assert "new centroid movie per cluster" in out
    assert "cluster files written to node-local disks" in out
    assert "speedup" in out


def test_streaming_wordcount(capsys):
    out = run_example("streaming_wordcount.py", capsys)
    assert "job finished at t" in out
    assert "final word counts" in out
    # job cannot finish before the last batch at t=8
    finished_line = next(
        line for line in out.splitlines() if "job finished" in line
    )
    t = float(finished_line.split("t = ")[1].split("s")[0])
    assert t >= 8.0


def test_sql_analytics(capsys):
    out = run_example("sql_analytics.py", capsys)
    assert "plan for:" in out
    assert "TableScan" in out
    assert "row(s) in" in out


def test_lambda_architecture(capsys):
    out = run_example("lambda_architecture.py", capsys)
    assert "batch layer" in out
    assert "speed layer" in out
    assert "served view" in out
