"""Unit tests for runtime internals: thread leases, completion propagation,
statuses, aggregated-data charging, ablation-mode semantics, config knobs."""

import pytest

from repro.cluster import Cluster, small_cluster_spec
from repro.common.errors import GraphError, JobError
from repro.core import (
    CollectionSource,
    EdgeMode,
    FlowletGraph,
    HamrConfig,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
    PerNodeSource,
    Reduce,
    sum_combiner,
)
from repro.core.runtime import ThreadLease
from repro.sim import Resource, Simulator


def make_engine(num_workers=3, config=None, **spec_kw):
    cluster = Cluster(small_cluster_spec(num_workers=num_workers, **spec_kw))
    return HamrEngine(cluster, config=config)


def simple_graph(items, **count_kw):
    g = FlowletGraph("simple")
    loader = g.add(Loader("load", CollectionSource(items)))
    count = g.add(
        PartialReduce(
            "count", initial=lambda _k: 0, combine=lambda a, v: a + v, **count_kw
        )
    )
    g.connect(loader, count)
    return g


class TestThreadLease:
    def test_acquire_release_cycle(self):
        sim = Simulator()
        pool = Resource(sim, capacity=1)
        lease = ThreadLease(pool)
        held_during = []

        def proc(sim):
            yield lease.acquire()
            held_during.append(lease.held)
            lease.release()
            held_during.append(lease.held)

        sim.spawn(proc(sim))
        sim.run()
        assert held_during == [True, False]
        assert pool.in_use == 0

    def test_release_unheld_rejected(self):
        sim = Simulator()
        lease = ThreadLease(Resource(sim, capacity=1))
        with pytest.raises(JobError):
            lease.release()


class TestCompletionPropagation:
    def test_reduce_waits_for_all_upstreams(self):
        """A reduce fed by two loaders must see both complete before firing."""
        engine = make_engine()
        g = FlowletGraph("fanin")
        fast = g.add(Loader("fast", CollectionSource([("k", 1)] * 3)))
        slow_source = [("k", 10)] * 3
        slow = g.add(Loader("slow", CollectionSource(slow_source)))
        seen_at = []

        def record_reduce(ctx, key, values):
            seen_at.append(sorted(values))
            ctx.emit(key, sum(values))

        red = g.add(Reduce("red", fn=record_reduce))
        g.connect(fast, red)
        g.connect(slow, red)
        result = engine.run(g)
        # a single reduce call saw ALL six values — no partial firing
        assert result.output("red") == [("k", 33)]
        assert len(seen_at) == 1
        assert seen_at[0] == [1, 1, 1, 10, 10, 10]

    def test_statuses_complete_after_run(self):
        engine = make_engine()
        engine.run(simple_graph([("a", 1)]))
        assert engine.instance_status("load") == ["complete"] * 3
        assert engine.instance_status("count") == ["complete"] * 3

    def test_empty_loader_still_completes_downstream(self):
        engine = make_engine()
        g = FlowletGraph("empty")
        loader = g.add(Loader("load", CollectionSource([])))
        count = g.add(
            PartialReduce("count", initial=lambda _k: 0, combine=lambda a, v: a + v)
        )
        g.connect(loader, count)
        result = engine.run(g)
        assert result.output("count") == []
        assert engine.instance_status("count") == ["complete"] * 3


class TestAggregatedCharging:
    def test_aggregated_output_preserves_results(self):
        items = [(f"w{i % 5}", 1) for i in range(50)]
        plain = make_engine(scale=1000.0).run(simple_graph(items))
        flagged = make_engine(scale=1000.0).run(
            simple_graph(items, aggregated_output=True)
        )
        assert sorted(plain.output("count")) == sorted(flagged.output("count"))

    def test_aggregated_output_cheaper_at_scale(self):
        # The 5-key aggregate sink charged unscaled must finish sooner.
        items = [(f"w{i % 5}", 1) for i in range(50)]
        plain = make_engine(scale=50_000.0).run(simple_graph(items))
        flagged = make_engine(scale=50_000.0).run(
            simple_graph(items, aggregated_output=True)
        )
        assert flagged.makespan < plain.makespan


class TestAblationModes:
    ITEMS = [(f"k{i % 7}", i) for i in range(60)]

    def reference(self):
        expected = {}
        for k, v in self.ITEMS:
            expected[k] = expected.get(k, 0) + v
        return expected

    def test_barrier_mode_same_results_slower_or_equal(self):
        normal = make_engine().run(simple_graph(self.ITEMS))
        barrier = make_engine(config=HamrConfig(barrier_mode=True)).run(
            simple_graph(self.ITEMS)
        )
        assert dict(barrier.output("count")) == self.reference()
        assert barrier.makespan >= normal.makespan

    def test_disk_staging_same_results_slower(self):
        normal = make_engine(scale=10_000.0).run(simple_graph(self.ITEMS))
        staged = make_engine(
            scale=10_000.0, config=HamrConfig(stage_edges_on_disk=True)
        ).run(simple_graph(self.ITEMS))
        assert dict(staged.output("count")) == self.reference()
        assert staged.makespan > normal.makespan

    def test_combiners_can_be_disabled(self):
        g = FlowletGraph("comb")
        loader = g.add(Loader("load", CollectionSource(self.ITEMS)))
        count = g.add(
            PartialReduce("count", initial=lambda _k: 0, combine=lambda a, v: a + v)
        )
        g.connect(loader, count, combiner=sum_combiner())
        engine = make_engine(config=HamrConfig(use_combiners=False))
        result = engine.run(g)
        assert dict(result.output("count")) == self.reference()


class TestConfigKnobs:
    def test_collect_outputs_off(self):
        engine = make_engine(config=HamrConfig(collect_outputs=False))
        result = engine.run(simple_graph([("a", 1), ("b", 2)]))
        assert result.outputs == {}
        assert result.metrics["output_pairs"] == 2  # still counted

    def test_edge_capacity_override(self):
        g = FlowletGraph("cap")
        loader = g.add(Loader("load", CollectionSource([("a", 1)] * 10)))
        mapper = g.add(Map("m", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g.connect(loader, mapper, capacity=123.0)
        engine = make_engine()
        engine.run(g)
        inbox = engine.runtimes[0].instance("m").inbox
        assert inbox.capacity == 123.0

    def test_engine_rejects_reentrant_run(self):
        # `run` drives the sim to completion, so a second concurrent run
        # cannot happen from user code; the guard still exists for misuse
        # from within flowlet code.
        engine = make_engine()

        class Sneaky(Map):
            def map(self, ctx, k, v):
                engine.run(simple_graph([("x", 1)]))

        g2 = FlowletGraph("sneaky")
        loader = g2.add(Loader("load", CollectionSource([("a", 1)])))
        g2.connect(loader, g2.add(Sneaky("evil")))
        with pytest.raises(JobError):
            engine.run(g2)


class TestContextErrors:
    def test_emit_to_unknown_edge(self):
        g = FlowletGraph("routes")
        loader = g.add(Loader("load", CollectionSource([("a", 1)])))
        bad = g.add(Map("bad", fn=lambda ctx, k, v: ctx.emit(k, v, to="nowhere")))
        g.connect(loader, bad)
        with pytest.raises(GraphError):
            make_engine().run(g)

    def test_local_edge_keeps_data_on_node(self):
        engine = make_engine(num_workers=3)
        by_node = {
            w.node_id: [(w.node_id, i) for i in range(4)]
            for w in engine.cluster.workers
        }
        g = FlowletGraph("local")
        loader = g.add(Loader("load", PerNodeSource(by_node)))
        stamp = g.add(
            Map("stamp", fn=lambda ctx, origin, v: ctx.emit((origin, ctx.node.node_id), v))
        )
        g.connect(loader, stamp, mode=EdgeMode.LOCAL)
        result = engine.run(g)
        for (origin, processed_on), _v in result.output("stamp"):
            assert origin == processed_on
