"""Unit tests for repro.common.units."""

import pytest

from repro.common.units import GB, KB, MB, TB, format_bytes, format_duration, parse_bytes


class TestParseBytes:
    def test_plain_int_passthrough(self):
        assert parse_bytes(4096) == 4096

    def test_float_truncates(self):
        assert parse_bytes(10.9) == 10

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("300GB", 300 * GB),
            ("168MB", 168 * MB),
            ("16 GB", 16 * GB),
            ("1.5G", int(1.5 * GB)),
            ("512", 512),
            ("512B", 512),
            ("2k", 2 * KB),
            ("1TB", TB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_bytes(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bytes("lots")

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ValueError):
            parse_bytes("10QB")


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512B"

    def test_gigabytes(self):
        assert format_bytes(3 * GB) == "3.0GB"

    def test_roundtrip_band(self):
        # format then parse lands within 10% (formatting rounds to one decimal)
        n = 1234567890
        assert abs(parse_bytes(format_bytes(n)) - n) / n < 0.1


def test_format_duration_matches_paper_style():
    assert format_duration(5215.079) == "5215.079s"
    assert format_duration(0) == "0.000s"
