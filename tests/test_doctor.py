"""Tests for the regression doctor.

The load-bearing property is the seeded self-test: a journal dilated
with ``REPRO_OBS_SLOWDOWN``-style bucket charges must come back from
``diagnose`` with the injected bucket ranked #1 at HIGH confidence, a
delta matching the injected time, and a counter-scenario that recovers
the injected factor. Everything else (spec resolution, shift
consumption, rendering) hangs off the corpus index.
"""

import json
import re

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster.spec import small_cluster_spec
from repro.evaluation.__main__ import main
from repro.obs.corpus import ingest, save_corpus
from repro.obs.doctor import (
    DOCTOR_SCHEMA,
    HIGH,
    DoctorError,
    diagnose,
    locate_journal,
    parse_series_spec,
    render_doctor,
    resolve_shift,
    resolve_spec,
)
from repro.obs.history import HISTORY_SCHEMA
from repro.obs.journal import JournalWriter, encode_record, seed_bucket_slowdown
from repro.obs.replay import replay_file

FACTOR = 2.0


def _journaled_run(seed=0, workload="wordcount"):
    params = wordcount.WordCountParams(target_bytes=50_000, seed=seed)
    records = wordcount.generate_input(params)
    writer = JournalWriter()
    writer.write_header(
        workload=workload, label="WordCount", data_size="16GB",
        engine="hamr", commit="abc1234",
    )
    env = AppEnv(small_cluster_spec(num_workers=3), obs=True, journal=writer)
    result = wordcount.run_hamr(env, params, records)
    trace = env.cluster.trace.summary()
    writer.write_footer(
        makespan=result.makespan,
        virtual_end=env.cluster.sim.now,
        trace_records=trace["records"],
        trace_dropped=trace["dropped"],
    )
    return writer


@pytest.fixture(scope="module")
def doctor_dir(tmp_path_factory):
    """Baseline + disk-seeded regression + an unrelated run, indexed."""
    root = tmp_path_factory.mktemp("doctor")
    base = _journaled_run(seed=0)
    base.save(str(root / "base.journal.jsonl"))
    seeded = seed_bucket_slowdown(base.records, "disk", FACTOR)
    with open(root / "seeded.journal.jsonl", "w") as fh:
        for record in seeded:
            fh.write(encode_record(record) + "\n")
    _journaled_run(seed=1, workload="terasort").save(
        str(root / "terasort.journal.jsonl")
    )
    index = root / "corpus.jsonl"
    rows, _ = ingest([str(root)], exclude=[str(index)])
    save_corpus(rows, str(index))
    return {"root": root, "index": str(index), "rows": rows}


@pytest.fixture(scope="module")
def seeded_report(doctor_dir):
    root = doctor_dir["root"]
    run_a = replay_file(str(root / "base.journal.jsonl"))
    run_b = replay_file(str(root / "seeded.journal.jsonl"))
    return diagnose(run_a, run_b, "base", "seeded")


# -- the seeded self-test -----------------------------------------------------------


class TestSeededSelfTest:
    def test_injected_bucket_ranks_first_at_high_confidence(self, seeded_report):
        top = seeded_report.verdicts[0]
        assert top["bucket"] == "disk"
        assert top["confidence"] == HIGH
        assert any("seeded-slowdown" in note for note in top["notes"])

    def test_top_delta_matches_the_injected_time(self, seeded_report):
        top = seeded_report.verdicts[0]
        assert seeded_report.makespan_delta > 0
        assert top["delta"] == pytest.approx(
            seeded_report.makespan_delta, rel=0.05
        )

    def test_counter_scenario_recovers_the_injected_factor(self, seeded_report):
        # the command replays the *baseline* with the bucket at 1/F
        # speed (the exact, slow-down direction of record dilation):
        # running it reproduces the regressed makespan
        assert seeded_report.whatif is not None
        assert seeded_report.whatif.startswith(
            "python -m repro.evaluation whatif base --scenario disk="
        )
        match = re.search(r"disk=([0-9.]+)", seeded_report.whatif)
        assert float(match.group(1)) == pytest.approx(1.0 / FACTOR, rel=0.05)

    def test_audits_are_clean_and_identity_is_carried(self, seeded_report):
        assert seeded_report.audit_a["verdict"] == "OK"
        assert seeded_report.audit_b["verdict"] == "OK"
        assert seeded_report.run_a["workload"] == "wordcount"
        assert seeded_report.run_b["seeded_slowdown"] == {
            "bucket": "disk", "factor": FACTOR
        }

    def test_report_is_byte_deterministic_across_fresh_replays(self, doctor_dir):
        root = doctor_dir["root"]

        def fresh():
            return diagnose(
                replay_file(str(root / "base.journal.jsonl")),
                replay_file(str(root / "seeded.journal.jsonl")),
                "base", "seeded",
            )

        one, two = fresh(), fresh()
        assert render_doctor(one) == render_doctor(two)
        assert one.to_json() == two.to_json()

    def test_json_payload_shape(self, seeded_report):
        payload = seeded_report.to_dict()
        assert payload["schema"] == DOCTOR_SCHEMA
        assert payload["a"]["name"] == "base"
        assert payload["verdicts"][0]["bucket"] == "disk"
        assert json.loads(seeded_report.to_json()) == payload

    def test_render_mentions_verdict_and_counter_scenario(self, seeded_report):
        text = render_doctor(seeded_report)
        assert "ranked root-cause verdicts" in text
        assert "1. disk" in text
        assert "confidence HIGH" in text
        assert "counter-scenario: python -m repro.evaluation whatif" in text

    def test_identical_runs_produce_no_verdicts(self, doctor_dir):
        root = doctor_dir["root"]
        run = str(root / "base.journal.jsonl")
        report = diagnose(replay_file(run), replay_file(run), "a", "b")
        assert report.verdicts == []
        assert report.whatif is None
        assert "no bucket moved" in render_doctor(report)


# -- spec resolution ----------------------------------------------------------------


class TestSpecResolution:
    def test_parse_series_spec_defaults_and_overrides(self):
        assert parse_series_spec("wordcount:hamr") == {
            "workload": "wordcount", "engine": "hamr",
            "fabric": "direct", "partitioner": "hash",
        }
        assert parse_series_spec("pagerank:hadoop@twolevel+shard") == {
            "workload": "pagerank", "engine": "hadoop",
            "fabric": "twolevel", "partitioner": "shard",
        }

    @pytest.mark.parametrize("bad", ["wordcount", ":hamr", "wordcount:spark"])
    def test_bad_series_specs_raise(self, bad):
        with pytest.raises(DoctorError, match="bad run selector"):
            parse_series_spec(bad)

    def test_paths_pass_through(self, doctor_dir):
        path = str(doctor_dir["root"] / "base.journal.jsonl")
        assert resolve_spec([], path, "") == path

    def test_fingerprint_prefix_resolves_to_the_journal(self, doctor_dir):
        rows, index = doctor_dir["rows"], doctor_dir["index"]
        row = rows[0]
        resolved = resolve_spec(rows, row["fingerprint"][:12], index)
        assert resolved == row["path"]

    def test_unknown_fingerprint_raises(self, doctor_dir):
        with pytest.raises(DoctorError, match="no corpus row matches"):
            resolve_spec(doctor_dir["rows"], "f" * 16, doctor_dir["index"])

    def test_unique_selector_resolves(self, doctor_dir):
        resolved = resolve_spec(
            doctor_dir["rows"], "terasort:hamr", doctor_dir["index"]
        )
        assert resolved.endswith("terasort.journal.jsonl")

    def test_ambiguous_selector_lists_candidates(self, doctor_dir):
        # base + seeded are both wordcount:hamr
        with pytest.raises(DoctorError, match="matches 2 corpus rows"):
            resolve_spec(doctor_dir["rows"], "wordcount:hamr", doctor_dir["index"])

    def test_locate_journal_rebases_against_the_index_dir(
        self, doctor_dir, tmp_path, monkeypatch
    ):
        row = dict(doctor_dir["rows"][0])
        row["path"] = "base.journal.jsonl"  # as if ingested with cwd inside
        assert locate_journal(row, doctor_dir["index"]) == str(
            doctor_dir["root"] / "base.journal.jsonl"
        )
        row["path"] = "gone.journal.jsonl"
        with pytest.raises(DoctorError, match="not found"):
            locate_journal(row, doctor_dir["index"])


# -- shift consumption --------------------------------------------------------------


def _history_for(doctor_dir):
    """Synthetic trend history whose latest rows sit at the seeded makespan."""
    rows = doctor_dir["rows"]
    base = next(r for r in rows if not r["seeded_slowdown"] and
                r["workload"] == "wordcount")
    seeded = next(r for r in rows if r["seeded_slowdown"])
    values = [base["makespan"]] * 8 + [seeded["makespan"]] * 2
    history = []
    for i, value in enumerate(values):
        history.append({
            "schema": HISTORY_SCHEMA, "commit": f"c{i:02d}",
            "rows": {"wordcount": {"hamr": {"virtual_seconds": value}}},
        })
    return history, base, seeded


class TestResolveShift:
    def test_shift_resolves_to_the_baseline_and_regressed_pair(self, doctor_dir):
        history, base, seeded = _history_for(doctor_dir)
        path_a, path_b, verdict = resolve_shift(
            history, doctor_dir["rows"], "wordcount:hamr",
            index_path=doctor_dir["index"],
        )
        assert path_a == base["path"]
        assert path_b == seeded["path"]
        assert verdict["status"] == "SHIFT"
        assert verdict["series"] == "wordcount:hamr"
        assert verdict["metric"] == "virtual_seconds"

    def test_stable_series_has_nothing_to_diagnose(self, doctor_dir):
        history, base, _seeded = _history_for(doctor_dir)
        for row in history:
            row["rows"]["wordcount"]["hamr"]["virtual_seconds"] = (
                base["makespan"]
            )
        with pytest.raises(DoctorError, match="no sustained shift"):
            resolve_shift(
                history, doctor_dir["rows"], "wordcount:hamr",
                index_path=doctor_dir["index"],
            )

    def test_series_absent_from_corpus_raises(self, doctor_dir):
        history, _base, _seeded = _history_for(doctor_dir)
        history = [
            {**row, "rows": {"pagerank": row["rows"]["wordcount"]}}
            for row in history
        ]
        with pytest.raises(DoctorError, match="no corpus rows match"):
            resolve_shift(
                history, doctor_dir["rows"], "pagerank:hamr",
                index_path=doctor_dir["index"],
            )


# -- CLI ----------------------------------------------------------------------------


class TestDoctorCLI:
    def test_two_paths_end_to_end(self, doctor_dir, capsys):
        root = doctor_dir["root"]
        rc = main([
            "doctor", str(root / "base.journal.jsonl"),
            str(root / "seeded.journal.jsonl"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1. disk" in out
        assert "confidence HIGH" in out
        assert "counter-scenario" in out

    def test_fingerprints_resolve_through_the_index(self, doctor_dir, capsys):
        rows = doctor_dir["rows"]
        base = next(r for r in rows if not r["seeded_slowdown"] and
                    r["workload"] == "wordcount")
        seeded = next(r for r in rows if r["seeded_slowdown"])
        rc = main([
            "doctor", base["fingerprint"][:12], seeded["fingerprint"][:12],
            "--index", doctor_dir["index"],
        ])
        assert rc == 0
        assert "1. disk" in capsys.readouterr().out

    def test_json_payload(self, doctor_dir, capsys):
        root = doctor_dir["root"]
        rc = main([
            "doctor", str(root / "base.journal.jsonl"),
            str(root / "seeded.journal.jsonl"), "--json", "-",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == DOCTOR_SCHEMA
        assert payload["verdicts"][0]["bucket"] == "disk"
        assert payload["verdicts"][0]["confidence"] == HIGH

    def test_shift_mode_end_to_end(self, doctor_dir, tmp_path, capsys):
        history, _base, _seeded = _history_for(doctor_dir)
        hist = tmp_path / "hist.jsonl"
        with open(hist, "w") as fh:
            for row in history:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        rc = main([
            "doctor", "wordcount:hamr", "--shift",
            "--history", str(hist), "--index", doctor_dir["index"],
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shift: wordcount:hamr" in out
        assert "1. disk" in out

    def test_unresolvable_spec_exits_2(self, doctor_dir, capsys):
        rc = main([
            "doctor", "nope:hamr", "also-nope:hamr",
            "--index", doctor_dir["index"],
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_shift_takes_exactly_one_spec(self, doctor_dir):
        with pytest.raises(SystemExit) as exc:
            main(["doctor", "a:hamr", "b:hamr", "--shift"])
        assert exc.value.code == 2
