"""Correctness tests for the scan/aggregate benchmarks:
WordCount, HistogramMovies, HistogramRatings, NaiveBayes.

Each runs flowlet-style on HAMR and job-style on Hadoop, and must
exactly match the pure-Python reference.
"""

import pytest

from repro.apps import histograms, naive_bayes, wordcount
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec


def fresh_env(num_workers=4):
    return AppEnv(small_cluster_spec(num_workers=num_workers))


class TestWordCount:
    @pytest.fixture(scope="class")
    def setup(self):
        params = wordcount.WordCountParams(target_bytes=20_000, seed=1)
        records = wordcount.generate_input(params)
        return params, records, wordcount.reference(records)

    def test_hamr_matches_reference(self, setup):
        params, records, expected = setup
        result = wordcount.run_hamr(fresh_env(), params, records)
        assert result.output == expected
        assert result.makespan > 0

    def test_hadoop_matches_reference(self, setup):
        params, records, expected = setup
        result = wordcount.run_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_hamr_combiner_variant(self, setup):
        _params, records, expected = setup
        params = wordcount.WordCountParams(target_bytes=20_000, seed=1, hamr_combiner=True)
        result = wordcount.run_hamr(fresh_env(), params, records)
        assert result.output == expected


class TestHistogramMovies:
    @pytest.fixture(scope="class")
    def setup(self):
        params = histograms.HistogramParams(n_movies=300, seed=2)
        records = histograms.generate_input(params)
        return params, records, histograms.reference_movies(records)

    def test_hamr(self, setup):
        params, records, expected = setup
        result = histograms.run_movies_hamr(fresh_env(), params, records)
        assert result.output == expected

    def test_hadoop(self, setup):
        params, records, expected = setup
        result = histograms.run_movies_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_bins_are_half_steps(self, setup):
        _params, _records, expected = setup
        assert all((2 * b) == int(2 * b) for b in expected)
        assert all(1.0 <= b <= 5.0 for b in expected)


class TestHistogramRatings:
    @pytest.fixture(scope="class")
    def setup(self):
        params = histograms.HistogramParams(n_movies=300, seed=3)
        records = histograms.generate_input(params)
        return params, records, histograms.reference_ratings(records)

    def test_hamr(self, setup):
        params, records, expected = setup
        result = histograms.run_ratings_hamr(fresh_env(), params, records)
        assert result.output == expected

    def test_hadoop(self, setup):
        params, records, expected = setup
        result = histograms.run_ratings_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_key_space_is_five_ratings(self, setup):
        _params, _records, expected = setup
        assert set(expected) <= {1, 2, 3, 4, 5}

    def test_combiner_variant_matches(self, setup):
        _params, records, expected = setup
        params = histograms.HistogramParams(n_movies=300, seed=3, hamr_combiner=True)
        result = histograms.run_ratings_hamr(fresh_env(), params, records)
        assert result.output == expected


class TestNaiveBayes:
    @pytest.fixture(scope="class")
    def setup(self):
        params = naive_bayes.NaiveBayesParams(n_documents=120, seed=4)
        records = naive_bayes.generate_input(params)
        return params, records, naive_bayes.reference(records)

    def test_hamr(self, setup):
        params, records, expected = setup
        result = naive_bayes.run_hamr(fresh_env(), params, records)
        assert result.output == expected

    def test_hadoop(self, setup):
        params, records, expected = setup
        result = naive_bayes.run_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_label_totals_present(self, setup):
        _params, records, expected = setup
        labels = {k for k in expected if isinstance(k, tuple) and k[0] == "label"}
        assert len(labels) >= 2
        # label totals equal the total word mass of their documents
        total_words = sum(expected[k] for k in labels)
        assert total_words == 120 * 50
