"""Tests for the evaluation harness: workloads, runner, tables, figures,
report rendering, and the paper-number registry."""

import pytest

from repro.evaluation.paper import (
    FIG3A_BENCHMARKS,
    FIG3B_BENCHMARKS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SHAPE_BANDS,
)
from repro.evaluation.report import render_bars, render_table
from repro.evaluation.runner import BenchmarkRow, run_workload
from repro.evaluation.tables import table1
from repro.evaluation.workloads import (
    TABLE2_ORDER,
    table2_workloads,
    workload_by_name,
)


class TestPaperNumbers:
    def test_table2_rows_complete(self):
        assert set(PAPER_TABLE2) == set(TABLE2_ORDER)
        assert len(PAPER_TABLE2) == 8

    def test_speedups_match_published(self):
        # Table 2's speedup column, recomputed from the time columns.
        assert PAPER_TABLE2["kmeans"].speedup == pytest.approx(10.31, abs=0.01)
        assert PAPER_TABLE2["pagerank"].speedup == pytest.approx(13.61, abs=0.01)
        assert PAPER_TABLE2["histogram_ratings"].speedup == pytest.approx(0.26, abs=0.01)

    def test_table3_rows(self):
        assert PAPER_TABLE3["histogram_movies"].speedup == pytest.approx(1.79, abs=0.01)
        assert PAPER_TABLE3["histogram_ratings"].speedup == pytest.approx(0.31, abs=0.01)

    def test_figure_groups_partition_table2(self):
        assert sorted(FIG3A_BENCHMARKS + FIG3B_BENCHMARKS) == sorted(TABLE2_ORDER)

    def test_bands_cover_paper_values(self):
        for name, row in PAPER_TABLE2.items():
            lo, hi = SHAPE_BANDS[name]
            assert lo <= row.speedup <= hi, name


class TestWorkloads:
    def test_registry_complete(self):
        for name in TABLE2_ORDER:
            workload = workload_by_name(name, "tiny")
            assert workload.name == name
            assert workload.records
            assert workload.scale > 1

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            workload_by_name("sorting")

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            workload_by_name("wordcount", "galactic")

    def test_scale_reconstructs_modeled_size(self):
        workload = workload_by_name("wordcount", "tiny")
        assert workload.real_bytes * workload.scale == pytest.approx(
            workload.modeled_bytes, rel=1e-9
        )

    def test_spec_is_paper_cluster(self):
        workload = workload_by_name("wordcount", "tiny")
        spec = workload.spec()
        assert spec.num_nodes == 16
        assert spec.cost.scale == workload.scale


class TestRunner:
    def test_single_engine_run(self):
        workload = workload_by_name("wordcount", "tiny")
        row = run_workload(workload, engines="hamr")
        assert row.hamr_seconds > 0
        assert row.idh_seconds == 0.0
        assert row.paper is PAPER_TABLE2["wordcount"]

    def test_row_math(self):
        row = BenchmarkRow("wordcount", "WordCount", "16GB", 100.0, 50.0)
        assert row.speedup == 2.0
        assert row.in_shape_band  # 2.0 is inside (1.0, 2.5)


class TestTable1:
    def test_renders_paper_values(self):
        text = table1()
        assert "16" in text
        assert "32.0GB" in text
        assert "E5-2620" in text
        assert "InfiniBand" in text


class TestReportRendering:
    def test_render_table_aligns(self):
        text = render_table(
            ("Name", "Value"), [("alpha", 1.5), ("b", 22.25)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}  # separator row
        assert "alpha" in lines[3]
        assert "1.500" in lines[3]

    def test_render_table_empty(self):
        text = render_table(("A",), [])
        assert "A" in text

    def test_render_bars_marks_baseline(self):
        text = render_bars([("fast", 2.0), ("slow", 0.5)], baseline=1.0)
        assert "fast" in text and "slow" in text
        assert "#" in text
        assert "|" in text  # baseline marker on the short bar

    def test_render_bars_empty(self):
        assert render_bars([], title="empty") == "empty"

    def test_render_table_pads_ragged_rows(self):
        text = render_table(("A", "B"), [[], ["x"], ["x", "y", "extra"]])
        lines = text.splitlines()
        assert len(lines) == 5  # header, separator, three rows
        assert "extra" not in text  # cells beyond the headers are dropped

    def test_render_table_all_empty_rows(self):
        text = render_table(("A", "B"), [[], []])
        assert "A" in text and "B" in text

    def test_render_bars_all_zero(self):
        text = render_bars([("x", 0.0), ("y", 0.0)], baseline=None)
        assert "#" not in text
        assert "0.00" in text

    def test_render_bars_negative_values(self):
        text = render_bars([("neg", -3.0), ("pos", 2.0)])
        lines = text.splitlines()
        assert "#" not in lines[0]  # negative renders an empty bar
        assert "#" in lines[1]
        assert "-3.00" in lines[0]

    def test_render_bars_all_negative_no_baseline(self):
        text = render_bars([("a", -1.0), ("b", -2.0)], baseline=None)
        assert "#" not in text
        assert "-1.00" in text and "-2.00" in text


@pytest.mark.slow
class TestShapeReproduction:
    """The headline integration test: every Table 2 row lands in its
    shape band at the reference ("small") fidelity.

    This is the E2/E4/E5 acceptance criterion of DESIGN.md §4.
    """

    @pytest.fixture(scope="class")
    def rows(self):
        return [run_workload(w) for w in table2_workloads("small")]

    def test_all_rows_in_band(self, rows):
        failures = []
        for row in rows:
            lo, hi = SHAPE_BANDS[row.name]
            if not lo <= row.speedup <= hi:
                failures.append(f"{row.name}: {row.speedup:.2f} not in [{lo}, {hi}]")
        assert not failures, "; ".join(failures)

    def test_figure3a_ordering(self, rows):
        # every 3(a) benchmark beats every 3(b) benchmark (the paper's split)
        fig3a = [r.speedup for r in rows if r.name in FIG3A_BENCHMARKS]
        fig3b = [r.speedup for r in rows if r.name in FIG3B_BENCHMARKS]
        assert min(fig3a) > max(fig3b)
        assert min(fig3a) >= 6.0  # "boosts at least 6x" (§5.2)

    def test_histogram_ratings_inverted(self, rows):
        row = next(r for r in rows if r.name == "histogram_ratings")
        assert row.speedup < 1.0  # Hadoop wins, as in the paper

    def test_flow_control_or_contention_on_ratings(self, rows):
        row = next(r for r in rows if r.name == "histogram_ratings")
        metrics = row.hamr_result.metrics
        # the §5.2 pathology must actually be visible in the engine metrics
        assert metrics.get("flow_stalls", 0) > 0 or row.hamr_seconds > 2 * row.idh_seconds
