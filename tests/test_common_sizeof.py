"""Unit and property tests for logical size estimation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.sizeof import logical_sizeof, pair_size


class TestScalars:
    def test_string_is_length(self):
        assert logical_sizeof("hello") == 5
        assert logical_sizeof("") == 0

    def test_bytes_is_length(self):
        assert logical_sizeof(b"abc") == 3

    def test_numbers_fixed_width(self):
        assert logical_sizeof(7) == 8
        assert logical_sizeof(3.14) == 8

    def test_bool_and_none_small(self):
        assert logical_sizeof(True) == 1
        assert logical_sizeof(None) == 1

    def test_numpy_array_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert logical_sizeof(arr) == 800

    def test_numpy_scalar(self):
        assert logical_sizeof(np.float64(1.0)) == 8

    def test_numpy_scalar_widths(self):
        assert logical_sizeof(np.int32(7)) == 4
        assert logical_sizeof(np.int64(7)) == 8
        assert logical_sizeof(np.float32(1.5)) == 4
        assert logical_sizeof(np.uint8(3)) == 1

    def test_unicode_counts_code_points(self):
        # Size is code points, not encoded bytes — multi-byte characters
        # and astral-plane symbols each count once.
        assert logical_sizeof("héllo") == 5
        assert logical_sizeof("日本語") == 3
        assert logical_sizeof("🎉🎉") == 2

    def test_surrogate_keys_sized_not_encoded(self):
        # Lone surrogates can't be UTF-8 encoded; sizing must not try.
        lone = "\ud800" + "x"
        assert logical_sizeof(lone) == 2
        assert pair_size(lone, 1) == 4 + 2 + 8

    def test_bool_not_sized_as_int(self):
        # bool is an int subclass; the bool rule must win the dispatch.
        assert logical_sizeof(False) == 1
        assert logical_sizeof((True, 0)) == 4 + 1 + 8


class TestContainers:
    def test_tuple_sums_with_overhead(self):
        assert logical_sizeof(("word", 1)) == 4 + 8 + 4

    def test_dict(self):
        assert logical_sizeof({"a": 1}) == 4 + 1 + 8

    def test_nested(self):
        nested = [("a", 1), ("bb", 2)]
        assert logical_sizeof(nested) == 4 + (4 + 1 + 8) + (4 + 2 + 8)

    def test_deeply_nested_tuples(self):
        inner = ("k", (1, (2.0, None)))
        # innermost: 4 + 8 + 1; middle: 4 + 8 + innermost; outer: 4 + 1 + middle
        assert logical_sizeof(inner) == 4 + 1 + (4 + 8 + (4 + 8 + 1))
        assert pair_size("k", (1, (2.0, None))) == logical_sizeof(inner)

    def test_empty_containers_cost_overhead_only(self):
        assert logical_sizeof(()) == 4
        assert logical_sizeof([]) == 4
        assert logical_sizeof({}) == 4
        assert logical_sizeof(set()) == 4
        assert logical_sizeof(frozenset()) == 4

    def test_sets_sum_members(self):
        assert logical_sizeof({1, 2}) == 4 + 8 + 8
        assert logical_sizeof(frozenset({"ab"})) == 4 + 2

    def test_unsupported_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            logical_sizeof(Opaque())

    def test_logical_size_protocol(self):
        class LocationRef:
            logical_size = 24

        assert logical_sizeof(LocationRef()) == 24

        class Dynamic:
            def logical_size(self):
                return 12

        assert logical_sizeof(Dynamic()) == 12


json_like = st.recursive(
    st.one_of(
        st.text(max_size=20),
        st.integers(),
        st.floats(allow_nan=False),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=4) | st.tuples(children, children),
    max_leaves=10,
)


class TestProperties:
    @given(json_like)
    def test_non_negative_and_deterministic(self, obj):
        size = logical_sizeof(obj)
        assert size >= 0
        assert logical_sizeof(obj) == size

    @given(st.lists(st.integers(), max_size=8))
    def test_monotone_in_elements(self, items):
        assert logical_sizeof(items + [0]) > logical_sizeof(items)

    @given(st.text(max_size=30), st.integers())
    def test_pair_size_exceeds_parts(self, key, value):
        assert pair_size(key, value) >= logical_sizeof(key) + logical_sizeof(value)

    @given(json_like, json_like)
    def test_pair_size_is_tuple_size(self, key, value):
        # The structural identity the dataplane builds on: one batch type
        # covers record streams and key-value streams alike.
        assert pair_size(key, value) == logical_sizeof((key, value))
