"""Tests for data sources: split shapes, locality hints, striping, errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, small_cluster_spec
from repro.common.errors import StorageError
from repro.core import (
    CollectionSource,
    DFSSource,
    KVStoreSource,
    LocalFSSource,
    PerNodeSource,
)
from repro.storage import DFS, KVStore, LocalFS


def make_cluster(num_workers=3, **kw):
    return Cluster(small_cluster_spec(num_workers=num_workers, **kw))


def run_read(cluster, split, node):
    from repro.common.errors import ReproError, SimulationError

    box = {}

    def proc(sim):
        box["records"] = yield from split.read(node)

    cluster.sim.spawn(proc(cluster.sim))
    try:
        cluster.run()
    except SimulationError as exc:
        if isinstance(exc.__cause__, ReproError):
            raise exc.__cause__ from exc
        raise
    return box["records"]


class TestCollectionSource:
    def test_chunks_cover_everything(self):
        cluster = make_cluster(num_workers=3)
        source = CollectionSource(list(range(20)), splits_per_worker=2)
        splits = source.splits(cluster)
        assert len(splits) == 6
        gathered = []
        for split in splits:
            node = cluster.nodes[split.preferred_nodes[0]]
            gathered.extend(run_read(cluster, split, node))
        assert sorted(gathered) == list(range(20))

    def test_rejects_bad_splits_per_worker(self):
        with pytest.raises(ValueError):
            CollectionSource([], splits_per_worker=0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(), max_size=50), st.integers(1, 4))
    def test_partition_property(self, items, spw):
        cluster = make_cluster(num_workers=2)
        splits = CollectionSource(items, splits_per_worker=spw).splits(cluster)
        total = sum(split.nrecords for split in splits)
        assert total == len(items)


class TestLocalFSSource:
    def test_splits_per_node(self):
        cluster = make_cluster(num_workers=2)
        fs = LocalFS(cluster)
        fs.ingest(cluster.worker(0), "data", list(range(10)))
        fs.ingest(cluster.worker(1), "data", list(range(10, 14)))
        splits = LocalFSSource(fs, "data", splits_per_node=4).splits(cluster)
        by_node = {}
        for split in splits:
            by_node.setdefault(split.preferred_nodes[0], []).append(split)
        assert len(by_node[cluster.worker(0).node_id]) == 4
        assert len(by_node[cluster.worker(1).node_id]) == 4
        gathered = []
        for split in splits:
            node = cluster.nodes[split.preferred_nodes[0]]
            gathered.extend(run_read(cluster, split, node))
        assert sorted(gathered) == list(range(14))

    def test_wrong_node_read_rejected(self):
        cluster = make_cluster(num_workers=2)
        fs = LocalFS(cluster)
        fs.ingest(cluster.worker(0), "data", [1, 2, 3])
        split = LocalFSSource(fs, "data").splits(cluster)[0]
        with pytest.raises(StorageError):
            run_read(cluster, split, cluster.worker(1))

    def test_missing_file_everywhere_rejected(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        with pytest.raises(StorageError):
            LocalFSSource(fs, "ghost").splits(cluster)

    def test_rejects_bad_splits_per_node(self):
        with pytest.raises(ValueError):
            LocalFSSource(None, "x", splits_per_node=0)


class TestKVStoreSource:
    def test_stripes_cover_shard(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        node = cluster.worker(0)
        for i in range(17):
            store.put(node, f"k{i:02d}", i)
        splits = [
            s
            for s in KVStoreSource(store, splits_per_node=4).splits(cluster)
            if s.preferred_nodes == [node.node_id]
        ]
        assert len(splits) == 4
        gathered = []
        for split in splits:
            gathered.extend(run_read(cluster, split, node))
        assert sorted(gathered) == sorted((f"k{i:02d}", i) for i in range(17))

    def test_empty_shard_single_split(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        splits = KVStoreSource(store, splits_per_node=4).splits(cluster)
        # one (empty) split per worker with an empty shard
        assert len(splits) == 2
        for split in splits:
            node = cluster.nodes[split.preferred_nodes[0]]
            assert run_read(cluster, split, node) == []

    def test_wrong_node_rejected(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        store.put(cluster.worker(0), "k", 1)
        split = KVStoreSource(store).splits(cluster)[0]
        with pytest.raises(StorageError):
            run_read(cluster, split, cluster.worker(1))


class TestPerNodeSource:
    def test_rejects_unknown_nodes(self):
        cluster = make_cluster(num_workers=2)
        with pytest.raises(StorageError):
            PerNodeSource({99: [1]}).splits(cluster)

    def test_preserves_placement(self):
        cluster = make_cluster(num_workers=2)
        by_node = {
            cluster.worker(0).node_id: ["a"],
            cluster.worker(1).node_id: ["b", "c"],
        }
        splits = PerNodeSource(by_node).splits(cluster)
        assert {tuple(s.preferred_nodes): s.nrecords for s in splits} == {
            (cluster.worker(0).node_id,): 1,
            (cluster.worker(1).node_id,): 2,
        }


class TestDFSSource:
    def test_splits_match_blocks(self):
        cluster = make_cluster(num_workers=3, scale=1e6)
        dfs = DFS(cluster)
        dfs.ingest("f", [(i, "x" * 50) for i in range(100)])
        file = dfs.get_file("f")
        splits = DFSSource(dfs, "f").splits(cluster)
        assert len(splits) == len(file.blocks) > 1
        assert sum(s.nrecords for s in splits) == 100
