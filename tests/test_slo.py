"""Tests for the declarative SLO engine and its CLI gate."""

import copy
import json

import pytest

from repro.evaluation.__main__ import main
from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO_SCHEMA,
    OBJECTIVES,
    SLOSpec,
    evaluate_entry,
    evaluate_measures,
    evaluate_tracer,
    load_slo_file,
    render_slo,
    slo_dict,
    spec_for,
    stall_share,
)

BENCH = "BENCH_obs.json"


@pytest.fixture(scope="module")
def bench_payload():
    with open(BENCH) as fh:
        return json.load(fh)


# -- specs --------------------------------------------------------------------------


class TestSpecs:
    def test_defaults_cover_every_table2_pair(self):
        for name in TABLE2_ORDER:
            for engine in ("hamr", "hadoop"):
                spec = DEFAULT_SLOS[(name, engine)]
                assert spec.makespan_budget > 0
                assert 0 < spec.max_stall_share <= 1
                assert spec.traffic_ceiling > 0

    def test_unknown_pair_is_unbounded(self):
        assert spec_for("nope", "hamr") == SLOSpec()

    def test_overrides_wildcard_then_exact(self):
        overrides = {
            "*": {"makespan_budget": 10.0, "max_stall_share": 0.5},
            "wordcount:hamr": {"makespan_budget": 7.0},
        }
        spec = spec_for("wordcount", "hamr", overrides)
        assert spec.makespan_budget == 7.0  # exact wins
        assert spec.max_stall_share == 0.5  # wildcard applies
        other = spec_for("kmeans", "hamr", overrides)
        assert other.makespan_budget == 10.0

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SLO fields"):
            SLOSpec().merged({"latency_budget": 1.0})

    def test_load_slo_file_validates_shape(self, tmp_path):
        bad = tmp_path / "spec.json"
        bad.write_text('["not", "an", "object"]')
        with pytest.raises(ValueError, match="JSON object"):
            load_slo_file(str(bad))
        bad.write_text('{"wordcount:hamr": 3}')
        with pytest.raises(ValueError, match="must be an object"):
            load_slo_file(str(bad))


# -- evaluation ---------------------------------------------------------------------


class TestEvaluation:
    def test_stall_share_bounds(self):
        assert stall_share({}, 0.0) == 0.0
        assert stall_share({"stall": 3.0}, 12.0) == 0.25

    def test_verdict_rows_cover_all_objectives(self):
        spec = SLOSpec(makespan_budget=10.0, max_stall_share=0.5)
        rows = evaluate_measures(
            spec, {"makespan": 11.0, "stall_share": 0.25, "traffic_bytes": 1.0}
        )
        assert [r["objective"] for r in rows] == list(OBJECTIVES)
        verdicts = {r["objective"]: r["verdict"] for r in rows}
        assert verdicts["makespan"] == "FAIL"  # over budget
        assert verdicts["stall_share"] == "PASS"
        assert verdicts["traffic_bytes"] == "n/a"  # unbounded
        assert verdicts["straggler_cv"] == "n/a"  # unmeasured

    def test_committed_baseline_meets_its_slos(self, bench_payload):
        for name, per_engine in bench_payload["rows"].items():
            for engine in ("hamr", "hadoop"):
                result = evaluate_entry(name, engine, per_engine[engine])
                assert result["ok"], (name, engine, result["checks"])

    def test_artifact_straggler_cv_is_not_measurable(self, bench_payload):
        entry = bench_payload["rows"]["wordcount"]["hamr"]
        result = evaluate_entry("wordcount", "hamr", entry)
        cv = [c for c in result["checks"] if c["objective"] == "straggler_cv"][0]
        assert cv["verdict"] == "n/a"
        assert cv["value"] is None

    def test_inflated_makespan_breaches(self, bench_payload):
        entry = copy.deepcopy(bench_payload["rows"]["wordcount"]["hamr"])
        entry["virtual_seconds"] *= 2.0
        result = evaluate_entry("wordcount", "hamr", entry)
        assert not result["ok"]
        failed = [c["objective"] for c in result["checks"]
                  if c["verdict"] == "FAIL"]
        assert failed == ["makespan"]

    def test_live_tracer_measures_all_objectives(self):
        row = run_workload(
            workload_by_name("wordcount", "tiny"), engines="hamr", obs=True
        )
        result = evaluate_tracer(
            "wordcount", "hamr", row.hamr_obs, row.hamr_seconds
        )
        values = {c["objective"]: c["value"] for c in result["checks"]}
        assert values["makespan"] == row.hamr_seconds
        assert values["straggler_cv"] is not None  # measurable live
        assert result["ok"], result["checks"]


# -- payload + rendering ------------------------------------------------------------


class TestRendering:
    def test_slo_dict_shape(self, bench_payload):
        entry = bench_payload["rows"]["wordcount"]["hamr"]
        results = [evaluate_entry("wordcount", "hamr", entry)]
        payload = slo_dict(results, BENCH)
        assert payload["schema"] == SLO_SCHEMA
        assert payload["source"] == BENCH
        assert payload["ok"] is True

    def test_render_names_every_breached_pair(self, bench_payload):
        entry = copy.deepcopy(bench_payload["rows"]["wordcount"]["hamr"])
        entry["virtual_seconds"] *= 2.0
        text = render_slo([evaluate_entry("wordcount", "hamr", entry)])
        assert "SLO BREACH: wordcount/hamr" in text
        good = render_slo(
            [evaluate_entry("wordcount", "hamr",
                            bench_payload["rows"]["wordcount"]["hamr"])]
        )
        assert "all SLOs met" in good


# -- CLI ----------------------------------------------------------------------------


class TestSLOCLI:
    def test_committed_artifact_passes(self, capsys):
        assert main(["slo", BENCH]) == 0
        assert "all SLOs met" in capsys.readouterr().out

    def test_breached_artifact_exits_1(self, tmp_path, capsys, bench_payload):
        payload = copy.deepcopy(bench_payload)
        payload["rows"]["wordcount"]["hamr"]["virtual_seconds"] *= 2.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert main(["slo", str(bad)]) == 1
        assert "SLO BREACH: wordcount/hamr" in capsys.readouterr().out

    def test_non_bench_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something/else"}')
        assert main(["slo", str(bad)]) == 2
        assert "not a BENCH artifact" in capsys.readouterr().err

    def test_live_run_passes_defaults(self, capsys):
        rc = main(["slo", "wordcount", "hamr", "--fidelity", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all SLOs met" in out
        assert "straggler_cv" in out

    def test_live_run_breaches_tight_override(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({"*": {"makespan_budget": 0.001}}))
        rc = main(["slo", "wordcount", "hamr", "--fidelity", "tiny",
                   "--slo-spec", str(spec)])
        assert rc == 1
        assert "SLO BREACH" in capsys.readouterr().out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["slo", "nope", "hamr"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_json_payload_round_trips(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        assert main(["slo", BENCH, "--json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == SLO_SCHEMA
        assert payload["ok"] is True
        assert len(payload["results"]) == 16  # 8 workloads x 2 engines
