"""Correctness tests for the iterative/multi-phase benchmarks:
K-Means, Classification, PageRank, K-Cliques.
"""

import pytest

from repro.apps import classification, kcliques, kmeans, pagerank
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec


def fresh_env(num_workers=4):
    return AppEnv(small_cluster_spec(num_workers=num_workers))


class TestKMeans:
    @pytest.fixture(scope="class")
    def setup(self):
        params = kmeans.KMeansParams(n_movies=200, k=5, seed=5, n_users=300)
        records = kmeans.generate_input(params)
        return params, records

    def test_hamr_new_centroids(self, setup):
        params, records = setup
        expected = kmeans.reference(records, params.k)
        result = kmeans.run_hamr(fresh_env(), params, records)
        assert result.output == expected

    def test_hadoop_new_centroids(self, setup):
        params, records = setup
        expected = kmeans.reference(records, params.k)
        result = kmeans.run_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_cluster_sizes_match(self, setup):
        params, records = setup
        sizes = kmeans.reference_sizes(records, params.k)
        result = kmeans.run_hamr(fresh_env(), params, records)
        measured = {
            int(name.split("_")[-1]): int(count)
            for name, count in result.counters.items()
            if name.startswith("cluster_size_")
        }
        assert measured == sizes
        assert sum(sizes.values()) == params.n_movies

    def test_hamr_writes_clusters_locally(self, setup):
        params, records = setup
        env = fresh_env()
        kmeans.run_hamr(env, params, records)
        # every movie line was written to some node-local cluster file
        total = 0
        for worker in env.cluster.workers:
            for name in env.localfs.files_on(worker):
                if name.startswith("kmeans-cluster-"):
                    total += env.localfs.get_file(worker.node_id, name).nrecords
        assert total == params.n_movies

    def test_hamr_centroids_installed_on_all_nodes(self, setup):
        params, records = setup
        env = fresh_env(num_workers=3)
        kmeans.run_hamr(env, params, records)
        for worker in env.cluster.workers:
            keys = {k for k, _v in env.kvstore.items(worker)}
            assert {("centroid", c) for c in range(params.k)} <= keys


class TestClassification:
    @pytest.fixture(scope="class")
    def setup(self):
        params = classification.ClassificationParams(n_movies=200, k=6, seed=6, n_users=300)
        records = classification.generate_input(params)
        return params, records, classification.reference(records, 6)

    def test_hamr(self, setup):
        params, records, expected = setup
        result = classification.run_hamr(fresh_env(), params, records)
        assert result.output == expected

    def test_hadoop(self, setup):
        params, records, expected = setup
        result = classification.run_hadoop(fresh_env(), params, records)
        assert result.output == expected

    def test_all_movies_classified(self, setup):
        params, _records, expected = setup
        assert sum(expected.values()) == params.n_movies


class TestPageRank:
    @pytest.fixture(scope="class")
    def setup(self):
        params = pagerank.PageRankParams(n_pages=120, n_edges=700, iterations=3, seed=7)
        edges = pagerank.generate_input(params)
        return params, edges, pagerank.reference(edges, params)

    def test_hamr_ranks(self, setup):
        params, edges, expected = setup
        result = pagerank.run_hamr(fresh_env(), params, edges)
        assert set(result.output) == set(expected)
        for page, rank in expected.items():
            assert result.output[page] == pytest.approx(rank, rel=1e-9)

    def test_hadoop_ranks(self, setup):
        params, edges, expected = setup
        result = pagerank.run_hadoop(fresh_env(), params, edges)
        assert set(result.output) == set(expected)
        for page, rank in expected.items():
            assert result.output[page] == pytest.approx(rank, rel=1e-9)

    def test_ranks_normalized(self, setup):
        _params, _edges, expected = setup
        assert sum(expected.values()) == pytest.approx(1.0, abs=0.01)

    def test_hamr_keeps_adjacency_in_memory(self, setup):
        params, edges, _expected = setup
        env = fresh_env()
        pagerank.run_hamr(env, params, edges)
        adj_entries = sum(
            1
            for key, _v in env.kvstore.all_items()
            if isinstance(key, tuple) and key[0] == "adj"
        )
        assert adj_entries == params.n_pages

    def test_single_iteration(self):
        params = pagerank.PageRankParams(n_pages=50, n_edges=200, iterations=1, seed=8)
        edges = pagerank.generate_input(params)
        expected = pagerank.reference(edges, params)
        result = pagerank.run_hamr(fresh_env(), params, edges)
        for page, rank in expected.items():
            assert result.output[page] == pytest.approx(rank, rel=1e-9)


class TestKCliques:
    @pytest.fixture(scope="class")
    def setup(self):
        params = kcliques.KCliquesParams(scale=6, n_edges=600, k=3, seed=9)
        edges = kcliques.generate_input(params)
        return params, edges, kcliques.reference(edges, 3)

    def test_reference_sanity(self, setup):
        _params, edges, expected = setup
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        assert len(expected) > 0
        for a, b, c in expected:
            assert a < b < c
            assert b in adjacency[a] and c in adjacency[a] and c in adjacency[b]

    def test_hamr(self, setup):
        params, edges, expected = setup
        result = kcliques.run_hamr(fresh_env(), params, edges)
        assert result.output == expected

    def test_hadoop(self, setup):
        params, edges, expected = setup
        result = kcliques.run_hadoop(fresh_env(), params, edges)
        assert result.output == expected

    def test_four_cliques(self):
        params = kcliques.KCliquesParams(scale=5, n_edges=300, k=4, seed=10)
        edges = kcliques.generate_input(params)
        expected = kcliques.reference(edges, 4)
        hamr = kcliques.run_hamr(fresh_env(), params, edges)
        hadoop = kcliques.run_hadoop(fresh_env(), params, edges)
        assert hamr.output == expected
        assert hadoop.output == expected

    def test_k_below_3_rejected(self):
        with pytest.raises(ValueError):
            kcliques.KCliquesParams(k=2)


class TestPageRankConvergence:
    def test_driver_converges_before_max_iterations(self):
        params = pagerank.PageRankParams(n_pages=60, n_edges=300, iterations=1, seed=3)
        edges = pagerank.generate_input(params)
        result, iterations = pagerank.run_hamr_until_converged(
            fresh_env(), params, edges, tolerance=1e-3, max_iterations=40
        )
        assert 1 < iterations < 40
        assert sum(result.output.values()) == pytest.approx(1.0, abs=0.02)

    def test_tight_tolerance_runs_longer(self):
        params = pagerank.PageRankParams(n_pages=60, n_edges=300, iterations=1, seed=3)
        edges = pagerank.generate_input(params)
        _r1, loose = pagerank.run_hamr_until_converged(
            fresh_env(), params, edges, tolerance=1e-2, max_iterations=40
        )
        _r2, tight = pagerank.run_hamr_until_converged(
            fresh_env(), params, edges, tolerance=1e-6, max_iterations=40
        )
        assert tight > loose
