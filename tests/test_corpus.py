"""Tests for the journal corpus warehouse.

The index must behave like the journals it summarizes: canonical
encoding round-trips byte-identically, ingest is idempotent and
byte-deterministic across reruns (and across gzip/renames of the same
journal), and the filter/lookup views resolve runs unambiguously.
"""

import gzip
import json
import os
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster.spec import small_cluster_spec
from repro.evaluation.__main__ import main
from repro.obs.corpus import (
    CORPUS_SCHEMA,
    decode_row,
    encode_row,
    filter_rows,
    find_by_fingerprint,
    ingest,
    journal_fingerprint,
    load_corpus,
    merge_rows,
    parse_where,
    render_corpus,
    render_row,
    row_sort_key,
    save_corpus,
    scan_journals,
    summarize_journal,
    summarize_records,
)
from repro.obs.journal import (
    JournalError,
    JournalWriter,
    encode_record,
    seed_bucket_slowdown,
)


def _journaled_run(seed=0, target_bytes=50_000):
    """One journaled hamr wordcount run; returns the writer."""
    params = wordcount.WordCountParams(target_bytes=target_bytes, seed=seed)
    records = wordcount.generate_input(params)
    writer = JournalWriter()
    writer.write_header(
        workload="wordcount", label="WordCount", data_size="16GB",
        engine="hamr", commit="abc1234",
    )
    env = AppEnv(small_cluster_spec(num_workers=3), obs=True, journal=writer)
    result = wordcount.run_hamr(env, params, records)
    trace = env.cluster.trace.summary()
    writer.write_footer(
        makespan=result.makespan,
        virtual_end=env.cluster.sim.now,
        trace_records=trace["records"],
        trace_dropped=trace["dropped"],
    )
    return writer


@pytest.fixture(scope="module")
def journal_dir(tmp_path_factory):
    """A directory of journals: two distinct runs plus a seeded regression."""
    root = tmp_path_factory.mktemp("journals")
    base = _journaled_run(seed=0)
    base.save(str(root / "base.journal.jsonl"))
    other = _journaled_run(seed=1)
    other.save(str(root / "other.journal.jsonl"))
    seeded = seed_bucket_slowdown(base.records, "disk", 2.0)
    with open(root / "seeded.journal.jsonl", "w") as fh:
        for record in seeded:
            fh.write(encode_record(record) + "\n")
    return root


# -- canonical encoding -------------------------------------------------------------


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_rows = st.fixed_dictionaries(
    {
        "schema": st.just(CORPUS_SCHEMA),
        "fingerprint": st.text(alphabet="0123456789abcdef", min_size=8, max_size=64),
    },
    optional={
        "workload": st.text(max_size=16),
        "engine": st.sampled_from(["hamr", "hadoop"]),
        "fabric": st.sampled_from(["direct", "tree", "twolevel", "rdma"]),
        "partitioner": st.sampled_from(["hash", "shard"]),
        "makespan": st.floats(allow_nan=False, allow_infinity=False),
        "blame": st.dictionaries(st.text(max_size=8), _scalars, max_size=3),
        "stragglers": st.lists(st.integers(0, 64), max_size=4),
    },
)


class TestRowEncoding:
    @given(_rows)
    @settings(max_examples=200)
    def test_encode_decode_reencode_is_byte_identical(self, row):
        line = encode_row(row)
        assert "\n" not in line
        decoded = decode_row(line)
        assert decoded == row
        assert encode_row(decoded) == line

    @pytest.mark.parametrize(
        "line",
        ["not json", "[1]", '{"schema": "other/v1"}', '{"no": "schema"}'],
    )
    def test_non_corpus_lines_raise(self, line):
        with pytest.raises(JournalError):
            decode_row(line)


class TestMergeInvariants:
    @given(
        st.lists(_rows, max_size=8),
        st.lists(_rows, max_size=8),
    )
    @settings(max_examples=100)
    def test_merge_dedupes_and_sorts_canonically(self, existing, new):
        merged = merge_rows(existing, new)
        fingerprints = [row["fingerprint"] for row in merged]
        assert len(fingerprints) == len(set(fingerprints))
        assert [row_sort_key(r) for r in merged] == sorted(
            row_sort_key(r) for r in merged
        )
        # merging again changes nothing: re-ingest idempotence in the small
        assert merge_rows(merged, new) == merged
        assert merge_rows(merged, []) == merged

    def test_existing_rows_win_over_new(self):
        old = {"schema": CORPUS_SCHEMA, "fingerprint": "aa", "makespan": 1.0}
        new = {"schema": CORPUS_SCHEMA, "fingerprint": "aa", "makespan": 2.0}
        assert merge_rows([old], [new]) == [old]


# -- fingerprints -------------------------------------------------------------------


class TestFingerprint:
    def test_identical_records_fingerprint_identically(self):
        writer = _journaled_run(seed=0)
        again = _journaled_run(seed=0)
        assert journal_fingerprint(writer.records) == journal_fingerprint(
            again.records
        )

    def test_different_runs_fingerprint_differently(self):
        assert journal_fingerprint(_journaled_run(seed=0).records) != (
            journal_fingerprint(_journaled_run(seed=1).records)
        )

    def test_fingerprint_survives_gzip_and_rename(self, journal_dir, tmp_path):
        src = journal_dir / "base.journal.jsonl"
        renamed = tmp_path / "elsewhere.jsonl"
        shutil.copy(src, renamed)
        gzipped = tmp_path / "compressed.jsonl.gz"
        with open(src, "rb") as fh, gzip.open(gzipped, "wb") as gz:
            gz.write(fh.read())
        rows = [
            summarize_journal(str(p)) for p in (src, renamed, gzipped)
        ]
        assert len({row["fingerprint"] for row in rows}) == 1


# -- summary rows -------------------------------------------------------------------


class TestSummarize:
    def test_row_carries_run_identity_and_headline_numbers(self, journal_dir):
        row = summarize_journal(str(journal_dir / "base.journal.jsonl"))
        assert row["schema"] == CORPUS_SCHEMA
        assert row["workload"] == "wordcount"
        assert row["engine"] == "hamr"
        assert row["fabric"] == "direct"
        assert row["partitioner"] == "hash"
        assert row["commit"] == "abc1234"
        assert row["makespan"] > 0
        assert row["blame_total"] > 0
        assert set(row["blame"]) == {
            "atomic", "compute", "disk", "network", "stall", "startup"
        }
        assert row["traffic"]["total_bytes"] > 0
        assert row["critpath"]
        assert row["straggler_cv"] >= 0.0
        assert row["seeded_slowdown"] is None
        assert not row["partial"]

    def test_seeded_marker_lands_in_the_row(self, journal_dir):
        row = summarize_journal(str(journal_dir / "seeded.journal.jsonl"))
        assert row["seeded_slowdown"] == {"bucket": "disk", "factor": 2.0}

    def test_row_is_json_canonical(self, journal_dir):
        row = summarize_journal(str(journal_dir / "base.journal.jsonl"))
        assert decode_row(encode_row(row)) == row


# -- ingest -------------------------------------------------------------------------


class TestIngest:
    def test_ingest_indexes_every_journal(self, journal_dir):
        rows, stats = ingest([str(journal_dir)])
        assert stats == {"scanned": 3, "added": 3, "duplicates": 0, "skipped": 0}
        assert len(rows) == 3

    def test_reingest_is_idempotent(self, journal_dir):
        rows, _ = ingest([str(journal_dir)])
        again, stats = ingest([str(journal_dir)], rows)
        assert again == rows
        assert stats["added"] == 0
        assert stats["duplicates"] == 3

    def test_index_file_is_byte_identical_across_reruns(
        self, journal_dir, tmp_path
    ):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            rows, _ = ingest([str(journal_dir)])
            save_corpus(rows, str(path))
        assert a.read_bytes() == b.read_bytes()
        assert load_corpus(str(a)) == load_corpus(str(b))

    def test_same_journal_under_two_names_dedupes(self, journal_dir, tmp_path):
        extra = tmp_path / "copy.jsonl"
        shutil.copy(journal_dir / "base.journal.jsonl", extra)
        rows, _ = ingest([str(journal_dir)])
        merged, stats = ingest([str(extra)], rows)
        assert stats["duplicates"] == 1
        assert merged == rows

    def test_garbage_file_raises_unless_allow_partial(self, tmp_path):
        (tmp_path / "junk.jsonl").write_text("this is not a journal\n")
        with pytest.raises(JournalError):
            ingest([str(tmp_path)])
        rows, stats = ingest([str(tmp_path)], allow_partial=True)
        assert rows == []
        assert stats["skipped"] == 1

    def test_exclude_skips_the_index_itself(self, journal_dir, tmp_path):
        index = journal_dir / "corpus.jsonl"
        rows, _ = ingest([str(journal_dir)], exclude=[str(index)])
        save_corpus(rows, str(index))
        try:
            again, stats = ingest([str(journal_dir)], rows, exclude=[str(index)])
            assert again == rows
            assert stats["scanned"] == 3
        finally:
            os.unlink(index)

    def test_scan_is_sorted_and_recursive(self, journal_dir, tmp_path):
        nested = tmp_path / "deep" / "er"
        nested.mkdir(parents=True)
        shutil.copy(journal_dir / "base.journal.jsonl", nested / "z.jsonl")
        shutil.copy(journal_dir / "other.journal.jsonl", tmp_path / "a.jsonl")
        (tmp_path / "ignored.txt").write_text("nope")
        found = scan_journals(str(tmp_path))
        assert found == sorted(found)
        assert [os.path.basename(p) for p in found] == ["a.jsonl", "z.jsonl"]


# -- index queries ------------------------------------------------------------------


class TestQueries:
    def test_filter_rows_matches_all_constraints(self, journal_dir):
        rows, _ = ingest([str(journal_dir)])
        assert len(filter_rows(rows, {"engine": "hamr"})) == 3
        assert filter_rows(rows, {"engine": "hadoop"}) == []
        seeded = filter_rows(
            rows, {"seeded_slowdown": {"bucket": "disk", "factor": 2.0}}
        )
        assert len(seeded) == 1

    def test_find_by_fingerprint_prefix(self, journal_dir):
        rows, _ = ingest([str(journal_dir)])
        full = rows[0]["fingerprint"]
        assert find_by_fingerprint(rows, full[:12]) == [rows[0]]

    def test_parse_where(self):
        assert parse_where("workload=wordcount,engine=hamr") == {
            "workload": "wordcount", "engine": "hamr"
        }
        assert parse_where("partial=false,nodes=16") == {
            "partial": False, "nodes": 16
        }
        assert parse_where("commit=") == {"commit": None}
        with pytest.raises(ValueError):
            parse_where("noequals")


# -- CLI ----------------------------------------------------------------------------


class TestCorpusCLI:
    def test_ingest_ls_show_round_trip(self, journal_dir, tmp_path, capsys):
        index = tmp_path / "corpus.jsonl"
        assert main(
            ["corpus", "ingest", str(journal_dir), "--index", str(index)]
        ) == 0
        assert "3 added" in capsys.readouterr().err
        assert main(["corpus", "ls", "--index", str(index)]) == 0
        out = capsys.readouterr().out
        assert "3 run(s) indexed" in out
        assert "seeded" in out
        rows = load_corpus(str(index))
        assert main(
            ["corpus", "show", rows[0]["fingerprint"][:12], "--index", str(index)]
        ) == 0
        assert "blame" in capsys.readouterr().out

    def test_ls_where_filter_and_json(self, journal_dir, tmp_path, capsys):
        index = tmp_path / "corpus.jsonl"
        assert main(
            ["corpus", "ingest", str(journal_dir), "--index", str(index)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["corpus", "ls", "--index", str(index),
             "--where", "engine=hamr", "--json", "-"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == CORPUS_SCHEMA
        assert len(payload["rows"]) == 3

    def test_missing_index_exits_2(self, tmp_path, capsys):
        assert main(
            ["corpus", "ls", "--index", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "corpus ingest" in capsys.readouterr().err

    def test_bad_subcommand_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["corpus", "frobnicate"])
        assert exc.value.code == 2

    def test_renderers_are_deterministic(self, journal_dir):
        rows, _ = ingest([str(journal_dir)])
        assert render_corpus(rows) == render_corpus(list(rows))
        assert render_row(rows[0]) == render_row(dict(rows[0]))
