"""Tests for SQL INNER JOIN compilation and execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.sql import Catalog, SQLError, SQLSession, parse

USERS = [
    {"uid": 1, "name": "ada", "city": "london"},
    {"uid": 2, "name": "bob", "city": "paris"},
    {"uid": 3, "name": "cyd", "city": "london"},
    {"uid": 4, "name": "dee", "city": "tokyo"},
]
ORDERS = [
    {"oid": 100, "uid": 1, "total": 30},
    {"oid": 101, "uid": 1, "total": 50},
    {"oid": 102, "uid": 2, "total": 20},
    {"oid": 103, "uid": 3, "total": 70},
    {"oid": 104, "uid": 9, "total": 99},  # dangling user
]


@pytest.fixture()
def session():
    env = AppEnv(small_cluster_spec(num_workers=3))
    catalog = Catalog()
    catalog.register("users", USERS)
    catalog.register("orders", ORDERS)
    return SQLSession(env.hamr, catalog)


class TestJoinParsing:
    def test_join_clause(self):
        q = parse("SELECT name FROM users JOIN orders ON users.uid = orders.uid")
        assert q.join.right_table == "orders"
        assert q.join.left_key == "uid"
        assert q.join.right_key == "uid"

    def test_inner_keyword_optional(self):
        q = parse("SELECT name FROM users INNER JOIN orders ON orders.uid = users.uid")
        assert q.join.right_table == "orders"

    def test_condition_must_name_both_tables(self):
        with pytest.raises(SQLError):
            parse("SELECT name FROM users JOIN orders ON users.uid = users.uid")

    def test_qualified_columns_in_select(self):
        q = parse("SELECT users.name, orders.total FROM users JOIN orders ON users.uid = orders.uid")
        assert q.output_names() == ["users.name", "orders.total"]


class TestJoinExecution:
    def test_inner_join_rows(self, session):
        result = session.run(
            "SELECT name, oid, total FROM users JOIN orders ON users.uid = orders.uid "
            "ORDER BY oid"
        )
        assert result.rows == [
            {"name": "ada", "oid": 100, "total": 30},
            {"name": "ada", "oid": 101, "total": 50},
            {"name": "bob", "oid": 102, "total": 20},
            {"name": "cyd", "oid": 103, "total": 70},
        ]

    def test_dangling_rows_dropped(self, session):
        result = session.run(
            "SELECT oid FROM users JOIN orders ON users.uid = orders.uid"
        )
        assert 104 not in result.column("oid")
        # user 4 (dee) has no orders and must not appear either
        names = session.run(
            "SELECT name FROM users JOIN orders ON users.uid = orders.uid"
        )
        assert "dee" not in names.column("name")

    def test_qualified_disambiguation(self, session):
        # `uid` exists in both tables -> must be qualified
        result = session.run(
            "SELECT users.uid AS u FROM users JOIN orders ON users.uid = orders.uid "
            "WHERE orders.total > 40"
        )
        assert sorted(result.column("u")) == [1, 3]

    def test_join_with_group_by(self, session):
        result = session.run(
            "SELECT city, COUNT(*) AS orders_n, SUM(total) AS spend "
            "FROM users JOIN orders ON users.uid = orders.uid "
            "GROUP BY city ORDER BY city"
        )
        assert result.rows == [
            {"city": "london", "orders_n": 3, "spend": 150},
            {"city": "paris", "orders_n": 1, "spend": 20},
        ]

    def test_join_where_filters_merged_rows(self, session):
        result = session.run(
            "SELECT oid FROM users JOIN orders ON users.uid = orders.uid "
            "WHERE city = 'london' AND total >= 50 ORDER BY oid"
        )
        assert result.column("oid") == [101, 103]

    def test_explain_shows_hash_join(self, session):
        plan = session.explain(
            "SELECT name FROM users JOIN orders ON users.uid = orders.uid"
        )
        assert "HashJoin" in plan
        assert "JoinScan" in plan

    def test_join_unknown_table(self, session):
        with pytest.raises(SQLError):
            session.run("SELECT a FROM users JOIN ghosts ON users.uid = ghosts.uid")


class TestJoinOracle:
    @settings(max_examples=12, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-9, 9)), max_size=15),
        st.lists(st.tuples(st.integers(0, 5), st.integers(-9, 9)), max_size=15),
    )
    def test_matches_nested_loop_join(self, left, right):
        lrows = [{"k": k, "lv": v} for k, v in left]
        rrows = [{"k": k, "rv": v} for k, v in right]
        if not lrows or not rrows:
            return
        env = AppEnv(small_cluster_spec(num_workers=2))
        catalog = Catalog()
        catalog.register("l", lrows)
        catalog.register("r", rrows)
        result = SQLSession(env.hamr, catalog).run(
            "SELECT lv, rv FROM l JOIN r ON l.k = r.k"
        )
        expected = sorted(
            (a["lv"], b["rv"]) for a in lrows for b in rrows if a["k"] == b["k"]
        )
        assert sorted((row["lv"], row["rv"]) for row in result.rows) == expected
