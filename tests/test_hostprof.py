"""Tests for the dual-clock host profiler, fidelity audit and calibration.

The aggregation tests drive :class:`HostProfiler` with a fake
deterministic nanosecond clock, so every assertion is exact — including
the telescoping invariant (bucket self-ns sum to the measured total).
"""

import json

import pytest

from repro.cluster.spec import CostModel
from repro.obs.fidelity import (
    CALIBRATION_SCHEMA,
    FIDELITY_SCHEMA,
    _engine_samples,
    calibration_dict,
    fidelity_dict,
    fit_cost_constants,
    render_calibration,
    render_fidelity,
)
from repro.obs.hostprof import (
    DATAPLANE,
    ENGINE,
    HOST_BUCKETS,
    HOSTPROF_SCHEMA,
    SIM_KERNEL,
    STORAGE,
    HostProfiler,
    activate,
    current,
    deactivate,
    merge_snapshots,
    normalize_label,
)
from repro.obs.spans import Tracer
from repro.sim import Simulator


class FakeClock:
    """Deterministic ns clock: each read advances by a scripted step."""

    def __init__(self, step=10):
        self.now = 0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def advance(self, ns):
        self.now += ns


def _prof(step=0):
    clock = FakeClock(step=step)
    return HostProfiler(clock=clock), clock


class TestAggregation:
    def test_single_frame_self_equals_total(self):
        prof, clock = _prof()
        prof.push(ENGINE, "map:words")
        clock.advance(500)
        prof.pop()
        assert prof.total_ns == 500
        snap = prof.snapshot()
        [row] = snap["flat"]
        assert row == {
            "bucket": ENGINE,
            "label": "map:words",
            "calls": 1,
            "self_ns": 500,
            "total_ns": 500,
            "records": 0,
            "nbytes": 0,
        }

    def test_nested_frames_split_self_from_child(self):
        prof, clock = _prof()
        prof.push(SIM_KERNEL, "dispatch")
        clock.advance(100)
        prof.push(ENGINE, "map:words")
        clock.advance(700)
        prof.pop()
        clock.advance(200)
        prof.pop()
        by_label = {row["label"]: row for row in prof.snapshot()["flat"]}
        assert by_label["map:words"]["self_ns"] == 700
        assert by_label["dispatch"]["self_ns"] == 300
        assert by_label["dispatch"]["total_ns"] == 1000
        assert prof.total_ns == 1000

    def test_buckets_sum_exactly_to_total(self):
        prof, clock = _prof()
        for _ in range(50):
            prof.push(SIM_KERNEL, "dispatch")
            clock.advance(17)
            prof.push(ENGINE, "map:x")
            clock.advance(31)
            prof.push(DATAPLANE, "sizing")
            clock.advance(5)
            prof.pop()
            prof.pop()
            prof.push(STORAGE, "spill")
            clock.advance(3)
            prof.pop()
            prof.pop()
        buckets = prof.bucket_self_ns()
        assert sum(buckets.values()) == prof.total_ns
        assert set(buckets) == set(HOST_BUCKETS)
        snap = prof.snapshot()
        assert sum(snap["buckets"].values()) == snap["total_ns"]

    def test_sibling_frames_accumulate_by_key(self):
        prof, clock = _prof()
        for _ in range(3):
            prof.push(ENGINE, "reduce:x")
            clock.advance(10)
            prof.pop()
        [row] = prof.snapshot()["flat"]
        assert row["calls"] == 3
        assert row["self_ns"] == 30

    def test_units_attributed_to_top_frame(self):
        prof, clock = _prof()
        prof.push(ENGINE, "map:words")
        prof.units(100, 6400)
        prof.units(50, 3200.5)  # floats coerce to int
        clock.advance(10)
        prof.pop()
        [row] = prof.snapshot()["flat"]
        assert row["records"] == 150
        assert row["nbytes"] == 9600
        prof.units(999, 999)  # no frame: silently dropped
        assert prof.snapshot()["flat"][0]["records"] == 150

    def test_tree_paths_nest(self):
        prof, clock = _prof()
        prof.push(SIM_KERNEL, "dispatch")
        prof.push(ENGINE, "map:x")
        clock.advance(10)
        prof.pop()
        prof.pop()
        paths = [tuple(node["path"]) for node in prof.snapshot()["tree"]]
        assert ("sim-kernel/dispatch",) in paths
        assert ("sim-kernel/dispatch", "engine/map:x") in paths

    def test_non_monotonic_clock_clamped(self):
        clock = FakeClock()
        prof = HostProfiler(clock=clock)
        prof.push(ENGINE, "x")
        clock.advance(-1000)  # hostile clock going backwards
        prof.pop()
        assert prof.total_ns == 0
        assert prof.snapshot()["flat"][0]["self_ns"] == 0

    def test_normalize_label_collapses_digit_runs(self):
        assert normalize_label("wc.map12") == "wc.map*"
        assert normalize_label("n3.task778") == "n*.task*"
        assert normalize_label("driver") == "driver"

    def test_snapshot_schema_and_shares(self):
        prof, clock = _prof()
        prof.push(ENGINE, "x")
        clock.advance(750)
        prof.pop()
        prof.push(SIM_KERNEL, "dispatch")
        clock.advance(250)
        prof.pop()
        snap = prof.snapshot()
        assert snap["schema"] == HOSTPROF_SCHEMA
        assert snap["shares"][ENGINE] == 0.75
        assert snap["shares"][SIM_KERNEL] == 0.25
        json.dumps(snap)  # serializable


class TestClockTrack:
    def test_tick_strides_by_host_interval(self):
        prof, clock = _prof()
        for i in range(10):
            prof.push(SIM_KERNEL, "dispatch")
            clock.advance(400_000)  # 0.4ms per dispatch, 1ms stride
            prof.pop()
            prof.tick(float(i))
        samples = prof.clock_samples()
        assert 0 < len(samples) < 10
        # cumulative ns strictly increasing, virtual times non-decreasing
        assert all(b[1] > a[1] for a, b in zip(samples, samples[1:]))
        assert all(b[0] >= a[0] for a, b in zip(samples, samples[1:]))

    def test_sample_cap_thins_and_doubles_stride(self):
        prof, clock = _prof()
        prof._sample_interval_ns = 1
        for i in range(5000):
            prof.push(SIM_KERNEL, "dispatch")
            clock.advance(10)
            prof.pop()
            prof.tick(float(i))
        assert len(prof.clock_samples()) <= 4096
        assert prof._sample_interval_ns > 1


class TestActivation:
    def test_activation_installs_and_restores(self):
        assert current() is None
        prof = HostProfiler(clock=FakeClock())
        with prof.activation():
            assert current() is prof
            inner = HostProfiler(clock=FakeClock())
            with inner.activation():
                assert current() is inner
            assert current() is prof
        assert current() is None

    def test_manual_activate_deactivate(self):
        prof = HostProfiler(clock=FakeClock())
        activate(prof)
        assert current() is prof
        deactivate()
        assert current() is None


class TestMerge:
    def test_merge_pools_flat_rows_and_buckets(self):
        snaps = []
        for _ in range(2):
            prof, clock = _prof()
            prof.push(ENGINE, "map:x")
            prof.units(10, 100)
            clock.advance(40)
            prof.pop()
            snaps.append(prof.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["total_ns"] == 80
        [row] = merged["flat"]
        assert row["calls"] == 2
        assert row["records"] == 20
        assert merged["tree"] == [] and merged["clock"] == []
        assert sum(merged["buckets"].values()) == merged["total_ns"]

    def test_merge_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="cannot merge"):
            merge_snapshots([{"schema": "bogus"}])


class TestSimulatorHook:
    def test_kernel_dispatch_profiled_without_changing_time(self):
        from repro.sim import Process

        def worker(sim):
            for _ in range(3):
                yield sim.timeout(1.0)

        makespans = []
        for profiled in (False, True):
            sim = Simulator()
            prof = HostProfiler(clock=FakeClock())
            if profiled:
                sim.hostprof = prof
            Process(sim, worker(sim), name="w1.task7")
            sim.run()
            makespans.append(sim.now)
            if profiled:
                labels = {row["label"] for row in prof.snapshot()["flat"]}
                assert "dispatch" in labels
                assert "process:w*.task*" in labels  # digit runs collapsed
                assert prof.total_ns > 0
        assert makespans[0] == makespans[1]


def _span(tracer, name, seconds):
    span = tracer.span(name, "task")
    tracer.sim.now += seconds
    span.finish()


class TestFidelity:
    def _snapshot(self, rows):
        prof, clock = _prof()
        for bucket, label, ns, records, nbytes in rows:
            prof.push(bucket, label)
            prof.units(records, nbytes)
            clock.advance(ns)
            prof.pop()
        return prof.snapshot()

    def test_joins_operators_and_flags_drift(self):
        tracer = Tracer(Simulator(), enabled=True)
        _span(tracer, "map:words", 10.0)
        _span(tracer, "reduce:words", 10.0)
        _span(tracer, "finalize:words", 10.0)
        snap = self._snapshot(
            [
                (ENGINE, "map:words", 1_000_000, 10, 100),
                (ENGINE, "reduce:words", 1_100_000, 10, 100),
                # 50x the ratio of its peers -> DRIFT
                (ENGINE, "finalize:words", 50_000_000, 10, 100),
                # host-only: no matching span
                (DATAPLANE, "sizing", 400_000, 0, 50),
                # process frames are excluded from the join entirely
                (ENGINE, "process:w*.task*", 9_000_000, 0, 0),
            ]
        )
        fid = fidelity_dict(tracer, snap, "wordcount", "hamr")
        assert fid["schema"] == FIDELITY_SCHEMA
        by_op = {op["operator"]: op for op in fid["operators"]}
        assert "process:w*.task*" not in by_op
        assert by_op["map:words"]["verdict"] == "ok"
        assert by_op["finalize:words"]["verdict"] == "DRIFT"
        assert by_op["sizing"]["verdict"] == "host-only"
        assert fid["drift"] == ["finalize:words"]
        assert by_op["map:words"]["ns_per_virtual_second"] == pytest.approx(100_000)
        text = render_fidelity(fid)
        assert "DRIFT in finalize:words" in text

    def test_no_drift_when_ratios_uniform(self):
        tracer = Tracer(Simulator(), enabled=True)
        _span(tracer, "map:a", 5.0)
        _span(tracer, "reduce:a", 2.0)
        snap = self._snapshot(
            [
                (ENGINE, "map:a", 5_000_000, 10, 0),
                (ENGINE, "reduce:a", 2_000_000, 10, 0),
            ]
        )
        fid = fidelity_dict(tracer, snap, "wc", "hamr")
        assert fid["drift"] == []
        assert "fidelity OK" in render_fidelity(fid)

    def test_rejects_non_snapshot_and_bad_tolerance(self):
        tracer = Tracer(Simulator(), enabled=True)
        with pytest.raises(ValueError, match="not a hostprof snapshot"):
            fidelity_dict(tracer, {"schema": "nope"}, "w", "hamr")
        snap = self._snapshot([(ENGINE, "map:a", 10, 1, 1)])
        with pytest.raises(ValueError, match="tolerance"):
            fidelity_dict(tracer, snap, "w", "hamr", tolerance=0.5)


class TestCalibration:
    def test_fit_recovers_known_constants(self):
        # synthetic runs with exact cost 200ns/record + 2ns/byte,
        # record:byte mixes varied so the system is well-conditioned
        samples = [
            (1000, 10_000, 1000 * 200 + 10_000 * 2, "map:a"),
            (500, 100_000, 500 * 200 + 100_000 * 2, "reduce:a"),
            (2000, 5_000, 2000 * 200 + 5_000 * 2, "combine:a"),
            (100, 400_000, 100 * 200 + 400_000 * 2, "finalize:a"),
        ]
        fit = fit_cost_constants(samples, CostModel())
        assert not fit.degenerate
        assert fit.ns_per_record == pytest.approx(200.0)
        assert fit.ns_per_byte == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_proposal_preserves_total_modeled_compute(self):
        cost = CostModel()
        samples = [
            (1000, 10_000, 350_000, "map:a"),
            (500, 900_000, 2_100_000, "reduce:a"),
            (2000, 5_000, 410_000, "combine:a"),
        ]
        fit = fit_cost_constants(samples, cost)
        current_total = sum(
            n * cost.cpu_per_record + b * cost.cpu_per_byte
            for n, b, _, _ in samples
        )
        proposed_total = sum(
            n * fit.proposed_cpu_per_record + b * fit.proposed_cpu_per_byte
            for n, b, _, _ in samples
        )
        assert proposed_total == pytest.approx(current_total)

    def test_collinear_samples_fall_back_to_ratio(self):
        # bytes always exactly 100x records: the 2x2 system is singular
        samples = [
            (n, n * 100, n * 1000, f"op{i}") for i, n in enumerate((10, 20, 40))
        ]
        fit = fit_cost_constants(samples, CostModel())
        assert fit.degenerate
        ratio = CostModel().cpu_per_byte / CostModel().cpu_per_record
        assert fit.ns_per_byte / fit.ns_per_record == pytest.approx(ratio)

    def test_empty_samples_return_none(self):
        assert fit_cost_constants([], CostModel()) is None
        assert fit_cost_constants([(0, 0, 100, "x")], CostModel()) is None

    def test_calibration_dict_and_render(self):
        samples = [
            (1000, 10_000, 220_000, "map:a"),
            (500, 100_000, 300_000, "reduce:a"),
            (2000, 5_000, 410_000, "combine:a"),
        ]
        fit = fit_cost_constants(samples, CostModel())
        cal = calibration_dict(fit, ["wc/hamr"])
        assert cal["schema"] == CALIBRATION_SCHEMA
        assert cal["samples"] == 3
        json.dumps(cal)
        text = render_calibration(cal)
        assert "NOT applied" in text
        assert "cpu_per_record" in text and "cpu_per_byte" in text

    def test_engine_samples_filter(self):
        prof, clock = _prof()
        prof.push(ENGINE, "map:a")
        prof.units(5, 50)
        clock.advance(10)
        prof.pop()
        prof.push(ENGINE, "process:w*")  # excluded: process frame
        prof.units(5, 50)
        clock.advance(10)
        prof.pop()
        prof.push(STORAGE, "spill")  # excluded: not the engine bucket
        prof.units(5, 50)
        clock.advance(10)
        prof.pop()
        prof.push(ENGINE, "reduce:a")  # excluded: no units recorded
        clock.advance(10)
        prof.pop()
        rows = _engine_samples(prof.snapshot())
        assert [label for _, _, _, label in rows] == ["map:a"]


def _bench_artifact(shares_by_engine):
    return {
        "schema": "repro.obs.bench/v5",
        "fidelity": "small",
        "rows": {
            "wordcount": {
                "data_size": "16GB",
                "speedup": 2.0,
                **{
                    engine: {
                        "virtual_seconds": 100.0,
                        "blame": {"compute": 50.0},
                        "hostprof": {"total_ns": 1_000_000, "shares": shares},
                    }
                    for engine, shares in shares_by_engine.items()
                },
            }
        },
    }


class TestDiffHostShares:
    def test_shares_within_band_pass(self):
        from repro.obs.diff import diff_artifacts, normalize

        a = normalize(_bench_artifact({"hamr": {"engine": 0.8, "sim-kernel": 0.2}}))
        b = normalize(_bench_artifact({"hamr": {"engine": 0.75, "sim-kernel": 0.25}}))
        result = diff_artifacts(a, b, host_tolerance=0.15)
        assert result.ok
        comparison = result.rows["wordcount"]["hamr"]
        assert comparison["host_share_delta"]["engine"] == pytest.approx(-0.05)
        assert comparison["host_drift"] == []

    def test_share_shift_beyond_band_drifts(self):
        from repro.obs.diff import diff_artifacts, normalize, render_diff

        a = normalize(_bench_artifact({"hamr": {"engine": 0.8, "sim-kernel": 0.2}}))
        b = normalize(_bench_artifact({"hamr": {"engine": 0.5, "sim-kernel": 0.5}}))
        result = diff_artifacts(a, b, host_tolerance=0.15)
        assert not result.ok
        assert result.drift == ["wordcount/hamr"]
        comparison = result.rows["wordcount"]["hamr"]
        assert comparison["host_drift"] == ["engine", "sim-kernel"]
        text = render_diff(result)
        assert "Host-share deltas" in text
        assert result.to_dict()["host_tolerance"] == 0.15

    def test_missing_shares_skip_host_gate(self):
        from repro.obs.diff import diff_artifacts, normalize

        artifact = _bench_artifact({"hamr": {"engine": 0.8, "sim-kernel": 0.2}})
        del artifact["rows"]["wordcount"]["hamr"]["hostprof"]  # v4-era artifact
        a = normalize(artifact)
        b = normalize(_bench_artifact({"hamr": {"engine": 0.1, "sim-kernel": 0.9}}))
        result = diff_artifacts(a, b, host_tolerance=0.15)
        assert result.ok
        assert "host_share_delta" not in result.rows["wordcount"]["hamr"]


class TestProfileCli:
    def test_unknown_workload_exits_2(self, capsys):
        from repro.evaluation.__main__ import main

        assert main(["profile", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        from repro.evaluation.__main__ import main

        assert main(["report", "--engine", "warp"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_profile_json_to_stdout(self, capsys):
        from repro.evaluation.__main__ import main

        code = main(
            [
                "profile",
                "--workload", "wordcount",
                "--fidelity", "tiny",
                "--engine", "hamr",
                "--json", "-",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # stdout is pure JSON
        assert payload["schema"] == HOSTPROF_SCHEMA
        entry = payload["workloads"]["wordcount"]["hamr"]
        snap = entry["hostprof"]
        assert sum(snap["buckets"].values()) == snap["total_ns"]
        assert entry["fidelity"]["schema"] == FIDELITY_SCHEMA
