"""Tests for the adaptive loader throttle (§2's flow-control knob)."""


from repro.cluster import Cluster, ClusterSpec, CostModel, NodeSpec
from repro.core import (
    CollectionSource,
    FlowletGraph,
    HamrConfig,
    HamrEngine,
    Loader,
    Map,
)


def pressure_graph(n_items=4000):
    """A fast loader feeding a deliberately slow consumer."""
    g = FlowletGraph("pressure")
    loader = g.add(
        Loader("load", CollectionSource([("hot", i) for i in range(n_items)], splits_per_worker=6))
    )
    slow = g.add(Map("slow", fn=lambda ctx, k, v: None, compute_factor=80.0))
    g.connect(loader, slow)
    return g


def make_engine(**config_kw):
    spec = ClusterSpec(
        num_nodes=3,
        node=NodeSpec(worker_threads=4, memory=1 << 30),
        cost=CostModel(bin_size=64, flow_capacity=256),
    )
    return HamrEngine(Cluster(spec), config=HamrConfig(**config_kw))


class TestAdaptiveThrottle:
    def test_off_by_default(self):
        engine = make_engine()
        result = engine.run(pressure_graph())
        assert result.metrics.get("flow_stalls", 0) > 0
        assert result.metrics.get("loader_throttles", 0) == 0

    def test_throttle_engages_under_pressure(self):
        engine = make_engine(adaptive_loader_throttle=True, throttle_stall_threshold=4)
        result = engine.run(pressure_graph())
        assert result.metrics.get("loader_throttles", 0) > 0

    def test_throttle_reduces_stalls(self):
        plain = make_engine().run(pressure_graph())
        throttled = make_engine(
            adaptive_loader_throttle=True,
            throttle_stall_threshold=4,
            throttle_backoff=5.0,
        ).run(pressure_graph())
        assert (
            throttled.metrics.get("flow_stalls", 0)
            < plain.metrics.get("flow_stalls", 0)
        )

    def test_results_unchanged(self):
        # correctness is independent of the throttle
        g1 = pressure_graph(500)
        g2 = pressure_graph(500)
        a = make_engine().run(g1)
        b = make_engine(adaptive_loader_throttle=True, throttle_stall_threshold=2).run(g2)
        assert a.flowlet_metrics["slow"]["pairs_in"] == 500
        assert b.flowlet_metrics["slow"]["pairs_in"] == 500

    def test_no_throttle_without_stalls(self):
        engine = make_engine(adaptive_loader_throttle=True, throttle_stall_threshold=1)
        g = FlowletGraph("calm")
        loader = g.add(Loader("load", CollectionSource([("k", i) for i in range(50)])))
        fast = g.add(Map("fast", fn=lambda ctx, k, v: None))
        g.connect(loader, fast)
        result = engine.run(g)
        assert result.metrics.get("loader_throttles", 0) == 0
