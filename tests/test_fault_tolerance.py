"""Fault-tolerance tests: Hadoop-style map-task retry under injected failures."""

import pytest

from repro.cluster import Cluster, small_cluster_spec
from repro.common.errors import JobError
from repro.mapreduce import HadoopConfig, HadoopEngine, Mapper, MRJob, Reducer
from repro.storage import DFS

LINES = [(i, f"alpha beta w{i}") for i in range(40)]
EXPECTED_ALPHA = 40


def make_engine(**config_kw):
    # scale makes the input span ~10 modeled blocks -> ~10 map tasks, so
    # a 50% per-attempt failure rate reliably injects several failures
    cluster = Cluster(small_cluster_spec(num_workers=3, scale=2e6))
    dfs = DFS(cluster)
    dfs.ingest("in.txt", LINES)
    return HadoopEngine(cluster, dfs, config=HadoopConfig(**config_kw))


def wordcount_job():
    def tokenize(ctx, _off, line):
        for word in line.split():
            ctx.emit(word, 1)

    return MRJob(
        "wc",
        "in.txt",
        "out",
        mapper=Mapper(fn=tokenize),
        reducer=Reducer(fn=lambda ctx, w, counts: ctx.emit(w, sum(counts))),
    )


class TestRetry:
    def test_no_failures_by_default(self):
        engine = make_engine()
        result = engine.run(wordcount_job())
        assert result.metrics.get("map_task_failures", 0) == 0

    def test_failures_are_retried_and_result_correct(self):
        engine = make_engine(map_fail_first_attempts=1)
        result = engine.run(wordcount_job())
        assert result.metrics["map_task_failures"] == result.metrics["map_tasks"]
        assert dict(result.outputs)["alpha"] == EXPECTED_ALPHA

    def test_failures_cost_time(self):
        clean = make_engine().run(wordcount_job())
        flaky = make_engine(map_fail_first_attempts=1).run(wordcount_job())
        assert flaky.makespan > clean.makespan

    def test_probabilistic_injection_deterministic(self):
        a = make_engine(map_failure_rate=0.3, failure_seed=7).run(wordcount_job())
        b = make_engine(map_failure_rate=0.3, failure_seed=7).run(wordcount_job())
        assert a.metrics.get("map_task_failures", 0) == b.metrics.get("map_task_failures", 0)
        assert a.makespan == b.makespan

    def test_two_failures_retried(self):
        clean = make_engine().run(wordcount_job())
        worse = make_engine(map_fail_first_attempts=2).run(wordcount_job())
        assert worse.metrics["map_task_failures"] == 2 * worse.metrics["map_tasks"]
        assert worse.makespan > clean.makespan
        assert dict(worse.outputs)["alpha"] == EXPECTED_ALPHA

    def test_attempt_budget_exhaustion(self):
        engine = make_engine(map_fail_first_attempts=3, max_task_attempts=3)
        with pytest.raises(JobError):
            engine.run(wordcount_job())


class TestSpeculativeExecution:
    """Straggler mitigation on a heterogeneous cluster."""

    @staticmethod
    def make_hetero_engine(speculative: bool):
        from dataclasses import replace

        from repro.cluster import Cluster, small_cluster_spec

        spec = small_cluster_spec(num_workers=4, scale=2e6)
        # worker node 2 runs at one tenth speed (a failing disk controller,
        # a thermally throttled CPU — the classic Hadoop straggler story)
        slow = replace(spec.node, speed_factor=0.1)
        spec = replace(spec, node_overrides=((2, slow),))
        cluster = Cluster(spec)
        dfs = DFS(cluster)
        dfs.ingest("in.txt", LINES)
        return HadoopEngine(
            cluster, dfs,
            config=HadoopConfig(speculative_execution=speculative),
        )

    def test_speculation_beats_straggler(self):
        slow = self.make_hetero_engine(speculative=False).run(wordcount_job())
        fast = self.make_hetero_engine(speculative=True).run(wordcount_job())
        assert fast.metrics.get("speculative_launched", 0) > 0
        assert fast.metrics.get("speculative_wins", 0) > 0
        assert fast.makespan < slow.makespan
        assert dict(fast.outputs) == dict(slow.outputs)

    def test_no_speculation_on_homogeneous_cluster(self):
        engine = make_engine(speculative_execution=True)
        result = engine.run(wordcount_job())
        # nothing is 1.5x slower than the median on identical nodes
        assert result.metrics.get("speculative_launched", 0) == 0
        assert dict(result.outputs)["alpha"] == EXPECTED_ALPHA

    def test_speculation_off_by_default(self):
        result = make_engine().run(wordcount_job())
        assert "speculative_launched" not in result.metrics
