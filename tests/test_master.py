"""Tests for master-slave mode (job management over the engine)."""

import pytest

from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.common.errors import JobError
from repro.core import CollectionSource, FlowletGraph, Loader, Map, PartialReduce
from repro.core.master import HamrMaster, JobState


def make_master(num_workers=3):
    env = AppEnv(small_cluster_spec(num_workers=num_workers))
    return HamrMaster(env.hamr), env


def count_job(name: str, items, fail=False):
    graph = FlowletGraph(name)
    loader = graph.add(Loader("load", CollectionSource(items)))

    def fn(ctx, k, v):
        if fail:
            raise RuntimeError("user code exploded")
        ctx.emit("n", 1)

    mapper = graph.add(Map("m", fn=fn))
    total = graph.add(PartialReduce("total", initial=lambda _k: 0, combine=lambda a, v: a + v))
    graph.connect(loader, mapper)
    graph.connect(mapper, total)
    return graph


class TestLifecycle:
    def test_submit_then_run(self):
        master, _env = make_master()
        handle = master.submit(count_job("j1", [(i, i) for i in range(5)]))
        assert handle.state is JobState.QUEUED
        assert master.queued == [handle]
        ran = master.run_pending()
        assert ran == [handle]
        assert handle.state is JobState.SUCCEEDED
        assert handle.result.output("total") == [("n", 5)]
        assert handle.started_at is not None
        assert handle.finished_at >= handle.started_at

    def test_fifo_order(self):
        master, _env = make_master()
        h1 = master.submit(count_job("first", [(0, 0)]))
        h2 = master.submit(count_job("second", [(0, 0)]))
        master.run_pending()
        assert h1.finished_at <= h2.started_at
        assert [h.name for h in master.history] == ["first", "second"]

    def test_run_convenience(self):
        master, _env = make_master()
        handle = master.run(count_job("now", [(0, 0), (1, 1)]))
        assert handle.state is JobState.SUCCEEDED

    def test_invalid_graph_rejected_at_submit(self):
        master, _env = make_master()
        with pytest.raises(Exception):
            master.submit(FlowletGraph("empty"))

    def test_job_lookup(self):
        master, _env = make_master()
        handle = master.run(count_job("findme", [(0, 0)]))
        assert master.job(handle.job_id) is handle
        with pytest.raises(JobError):
            master.job(999)


class TestFailureHandling:
    def test_failure_poisons_master(self):
        master, _env = make_master()
        bad = master.submit(count_job("bad", [(0, 0)], fail=True))
        queued = master.submit(count_job("after", [(0, 0)]))
        master.run_pending()
        assert bad.state is JobState.FAILED
        assert "user code exploded" in bad.error
        assert not master.healthy
        assert queued.state is JobState.QUEUED  # never started
        with pytest.raises(JobError):
            master.submit(count_job("more", [(0, 0)]))

    def test_reset_recovers(self):
        master, _env = make_master()
        master.submit(count_job("bad", [(0, 0)], fail=True))
        pending = master.submit(count_job("survivor", [(0, 0)]))
        master.run_pending()
        fresh = AppEnv(small_cluster_spec(num_workers=3))
        master.reset(fresh.hamr)
        assert master.healthy
        master.run_pending()
        assert pending.state is JobState.SUCCEEDED


class TestClusterView:
    def test_workers_heartbeat(self):
        master, env = make_master(num_workers=4)
        info = master.workers()
        assert len(info) == 4
        assert all(w.worker_threads == 4 for w in info)
        assert all(w.memory_pressure == 0.0 for w in info)

    def test_summary(self):
        master, _env = make_master()
        master.run(count_job("a", [(0, 0)]))
        master.submit(count_job("b", [(0, 0)]))
        summary = master.summary()
        assert summary["healthy"]
        assert summary["jobs"] == {"succeeded": 1, "queued": 1}
        assert summary["virtual_time"] > 0
        assert summary["workers"] == 3
