"""Tests for the observability subsystem: spans, metrics, blame, reports."""

import json

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.evaluation.obsreport import (
    render_blame,
    render_counters,
    render_gantt,
    render_report,
    render_utilization,
    report_dict,
    report_json,
)
from repro.obs import (
    ATOMIC,
    BUCKETS,
    COMPUTE,
    DISK,
    NULL_SPAN,
    BlameLedger,
    MetricsRegistry,
    Tracer,
    assign_lanes,
)
from repro.sim import Simulator


def _tracer(enabled=True):
    return Tracer(Simulator(), enabled=enabled)


def _run_traced_wordcount(seed=0, target_bytes=50_000, profile=False):
    params = wordcount.WordCountParams(target_bytes=target_bytes, seed=seed)
    records = wordcount.generate_input(params)
    env = AppEnv(small_cluster_spec(num_workers=3), obs=True)
    if profile:
        from repro.obs.hostprof import HostProfiler

        prof = HostProfiler()
        env.cluster.sim.hostprof = prof
        with prof.activation():
            result = wordcount.run_hamr(env, params, records)
        return env, result, prof
    result = wordcount.run_hamr(env, params, records)
    return env, result


class TestSpans:
    def test_span_records_interval(self):
        tracer = _tracer()
        span = tracer.span("work", "task", node=1, job="j")
        tracer.sim.now = 2.5  # advance the virtual clock directly
        span.finish()
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5

    def test_child_inherits_attribution(self):
        tracer = _tracer()
        parent = tracer.span("outer", "task", node=3, job="j", flowlet="f")
        child = parent.child("inner")
        assert child.node == 3
        assert child.job == "j"
        assert child.flowlet == "f"
        assert child.cat == "task"
        assert child.parent_id == parent.span_id

    def test_context_manager_records_error_class(self):
        tracer = _tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", "task") as span:
                raise ValueError("x")
        assert span.args["error"] == "ValueError"
        assert span.end is not None

    def test_double_finish_rejected(self):
        tracer = _tracer()
        span = tracer.span("w", "task").finish()
        with pytest.raises(ValueError):
            span.finish()

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = _tracer(enabled=False)
        span = tracer.span("w", "task", node=1)
        assert span is NULL_SPAN
        assert span.child("c") is NULL_SPAN
        with span:
            pass
        assert tracer.spans == []

    def test_disabled_tracer_records_nothing(self):
        tracer = _tracer(enabled=False)
        tracer.count("c")
        tracer.charge("j", COMPUTE, 1.0)
        tracer.observe("h", 0.5)
        assert tracer.metrics.names() == []
        assert tracer.blame.jobs() == []

    def test_finished_spans_filters_by_cat(self):
        tracer = _tracer()
        tracer.span("a", "task").finish()
        tracer.span("b", "stall").finish()
        tracer.span("open", "task")  # never finished
        assert [s.name for s in tracer.finished_spans("task")] == ["a"]
        assert len(tracer.finished_spans()) == 2


class TestAssignLanes:
    def test_overlapping_spans_get_distinct_lanes(self):
        tracer = _tracer()
        a = tracer.span("a", "task", node=1)
        b = tracer.span("b", "task", node=1)
        tracer.sim.now = 1.0
        a.finish()
        b.finish()
        lanes = assign_lanes(tracer.finished_spans())
        assert lanes[a.span_id] != lanes[b.span_id]

    def test_sequential_spans_share_a_lane(self):
        tracer = _tracer()
        a = tracer.span("a", "task", node=1)
        tracer.sim.now = 1.0
        a.finish()
        b = tracer.span("b", "task", node=1)
        tracer.sim.now = 2.0
        b.finish()
        lanes = assign_lanes(tracer.finished_spans())
        assert lanes[a.span_id] == lanes[b.span_id]

    def test_nodes_do_not_share_lanes(self):
        tracer = _tracer()
        a = tracer.span("a", "task", node=1)
        b = tracer.span("b", "task", node=2)
        tracer.sim.now = 1.0
        a.finish()
        b.finish()
        lanes = assign_lanes(tracer.finished_spans())
        # each node starts its own lane numbering at 0
        assert lanes[a.span_id] == 0
        assert lanes[b.span_id] == 0


class TestMetrics:
    def test_counter_aggregation(self):
        reg = MetricsRegistry()
        reg.counter("reads", node=1).inc(2)
        reg.counter("reads", node=2).inc(3)
        reg.counter("reads", node=1).inc()
        assert reg.counter_total("reads") == 6
        assert reg.counter_by("reads", "node") == {1: 3.0, 2: 3.0}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)

    def test_series_collapses_same_instant(self):
        reg = MetricsRegistry()
        s = reg.series("busy", node=1)
        s.append(0.0, 1)
        s.append(0.0, 2)
        s.append(1.0, 3)
        assert s.points == [(0.0, 2), (1.0, 3)]
        assert s.value_at(0.5) == 2

    def test_snapshot_is_sorted_and_serializable(self):
        reg = MetricsRegistry()
        reg.counter("z", node=2).inc()
        reg.counter("a", node=1).inc()
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must be JSON-serializable


class TestBlame:
    def test_buckets_sum_to_total(self):
        ledger = BlameLedger()
        ledger.charge("j", COMPUTE, 2.0, node=1)
        ledger.charge("j", DISK, 1.0, node=2)
        ledger.charge("j", ATOMIC, 0.5)
        summary = ledger.job_summary("j")
        assert sum(summary.values()) == pytest.approx(ledger.job_total("j"))
        assert set(summary) == set(BUCKETS)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(ValueError):
            BlameLedger().charge("j", "gremlins", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            BlameLedger().charge("j", COMPUTE, -1.0)

    def test_node_summary_partitions_job_total(self):
        ledger = BlameLedger()
        ledger.charge("j", COMPUTE, 2.0, node=1)
        ledger.charge("j", COMPUTE, 3.0, node=2)
        per_node = ledger.node_summary("j")
        assert per_node[1][COMPUTE] == 2.0
        assert per_node[2][COMPUTE] == 3.0
        total = sum(sum(buckets.values()) for buckets in per_node.values())
        assert total == pytest.approx(ledger.job_total("j"))


class TestTracedRun:
    """End-to-end: a traced WordCount run on the HAMR engine."""

    @pytest.fixture(scope="class")
    def traced(self):
        return _run_traced_wordcount()

    def test_task_spans_are_attributed(self, traced):
        env, _result = traced
        tasks = env.obs.finished_spans("task")
        assert tasks
        assert all(s.job == "wordcount" for s in tasks)
        assert all(s.node is not None for s in tasks)
        names = {s.name.split(":")[0] for s in tasks}
        assert "load" in names
        assert "reduce" in names or "partial_reduce" in names

    def test_job_span_covers_the_run(self, traced):
        env, result = traced
        jobs = env.obs.finished_spans("job")
        assert len(jobs) == 1
        assert jobs[0].duration == pytest.approx(result.makespan)

    def test_blame_buckets_sum_to_job_total(self, traced):
        env, _result = traced
        blame = env.obs.blame
        assert blame.jobs() == ["wordcount"]
        summary = blame.job_summary("wordcount")
        assert sum(summary.values()) == pytest.approx(
            blame.job_total("wordcount"), rel=0, abs=1e-12
        )
        assert summary["compute"] > 0
        assert summary["startup"] > 0

    def test_thread_series_recorded(self, traced):
        env, _result = traced
        busy = env.obs.metrics.series("threads_busy", node=1)
        assert busy.points
        assert max(v for _t, v in busy.points) >= 1

    def test_chrome_trace_is_valid(self, traced):
        env, _result = traced
        trace = env.obs.to_chrome_trace()
        events = trace["traceEvents"]
        assert events
        assert all(e["ph"] in ("X", "s", "f", "C") for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
        json.dumps(trace)

    def test_chrome_counter_tracks_present(self, traced):
        env, _result = traced
        events = env.obs.to_chrome_trace()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # telemetry renders as Perfetto counter tracks
        names = {e["name"] for e in counters}
        assert "telemetry.cpu" in names
        assert all(e["name"].startswith("telemetry.") for e in counters)
        assert all(e["tid"] == 0 and len(e["args"]) == 1 for e in counters)

    def test_chrome_flow_events_pair_up(self, traced):
        env, _result = traced
        events = env.obs.to_chrome_trace()["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts  # causal edges rendered as flows
        assert starts == finishes
        assert all(
            e["cat"].startswith("flow.") for e in events if e["ph"] in ("s", "f")
        )

    def test_chrome_lanes_never_overlap(self, traced):
        env, _result = traced
        events = [
            e for e in env.obs.to_chrome_trace()["traceEvents"] if e["ph"] == "X"
        ]
        last_end: dict[tuple, float] = {}
        for e in events:
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last_end.get(key, float("-inf"))
            last_end[key] = e["ts"] + e["dur"]

    def test_report_renders(self, traced):
        env, _result = traced
        text = render_report(env.obs, title="T")
        assert "Task timeline" in text
        assert "Blame" in text
        assert "Thread utilization" in text
        for section in (
            render_gantt(env.obs),
            render_blame(env.obs),
            render_utilization(env.obs),
            render_counters(env.obs),
        ):
            assert section  # non-empty

    def test_report_dict_schema(self, traced):
        env, _result = traced
        rep = report_dict(env.obs, "wordcount", "hamr")
        assert rep["schema"] == "repro.obs.report/v4"
        assert rep["engine"] == "hamr"
        assert rep["trace_dropped"] == 0
        assert rep["trace"]["schema"] == "repro.obs.trace/v2"
        assert rep["span_counts"]["task"] > 0
        assert rep["critpath"]["schema"] == "repro.obs.critpath/v1"

    def test_report_spill_section(self, traced):
        env, _result = traced
        rep = report_dict(env.obs, "wordcount", "hamr")
        spill = rep["spill"]
        assert set(spill) == {
            "nodes", "total_runs", "total_bytes", "total_bytes_read_back",
        }
        # totals are exactly the sum over per-node entries
        assert spill["total_runs"] == sum(
            e["runs"] for e in spill["nodes"].values()
        )
        assert spill["total_bytes"] == sum(
            e["bytes"] for e in spill["nodes"].values()
        )
        # the per-node view matches the unlabeled counter totals
        assert spill["total_bytes"] == int(
            env.obs.metrics.counter_total("spill.bytes")
        )


class TestDeterminism:
    def test_identical_runs_serialize_byte_identically(self):
        env1, _res1 = _run_traced_wordcount()
        env2, _res2 = _run_traced_wordcount()
        assert env1.obs.to_json() == env2.obs.to_json()
        assert report_json(env1.obs, "wordcount", "hamr") == report_json(
            env2.obs, "wordcount", "hamr"
        )
        assert json.dumps(env1.obs.to_chrome_trace(), sort_keys=True) == json.dumps(
            env2.obs.to_chrome_trace(), sort_keys=True
        )

    def test_tracing_does_not_change_virtual_time(self):
        params = wordcount.WordCountParams(target_bytes=50_000, seed=0)
        records = wordcount.generate_input(params)
        makespans = []
        for obs in (False, True):
            env = AppEnv(small_cluster_spec(num_workers=3), obs=obs)
            result = wordcount.run_hamr(env, params, records)
            makespans.append(result.makespan)
        assert makespans[0] == makespans[1]

    def test_profiling_does_not_perturb_virtual_outputs(self):
        """The dual clock is provably one-way: with the host profiler on,
        every virtual-clock artifact stays byte-identical."""
        env_off, res_off = _run_traced_wordcount()
        env_on, res_on, prof = _run_traced_wordcount(profile=True)
        assert res_off.makespan == res_on.makespan
        assert env_off.obs.to_json() == env_on.obs.to_json()
        assert report_json(env_off.obs, "wordcount", "hamr") == report_json(
            env_on.obs, "wordcount", "hamr"
        )
        assert json.dumps(env_off.obs.to_chrome_trace(), sort_keys=True) == json.dumps(
            env_on.obs.to_chrome_trace(), sort_keys=True
        )
        # ... while the host clock actually measured something coherent
        snap = prof.snapshot()
        assert snap["total_ns"] > 0
        assert sum(snap["buckets"].values()) == snap["total_ns"]


class TestHadoopTracing:
    def test_hadoop_run_produces_spans_and_blame(self):
        params = wordcount.WordCountParams(target_bytes=50_000, seed=0)
        records = wordcount.generate_input(params)
        env = AppEnv(small_cluster_spec(num_workers=3), obs=True)
        wordcount.run_hadoop(env, params, records)
        tasks = env.obs.finished_spans("task")
        names = {s.name for s in tasks}
        assert "map" in names
        assert "reduce" in names
        assert env.obs.finished_spans("shuffle")  # fetch spans
        jobs = env.obs.blame.jobs()
        assert len(jobs) == 1
        summary = env.obs.blame.job_summary(jobs[0])
        assert summary["startup"] > 0
        assert summary["network"] > 0
        assert sum(summary.values()) == pytest.approx(
            env.obs.blame.job_total(jobs[0])
        )
        # DFS locality counters fired
        reads = env.obs.metrics.counter_total(
            "dfs.local_reads"
        ) + env.obs.metrics.counter_total("dfs.remote_reads")
        assert reads > 0
