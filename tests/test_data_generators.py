"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.data import (
    ZipfSampler,
    book_corpus,
    document_corpus,
    make_vocabulary,
    movie_corpus,
    parse_document_line,
    parse_movie_line,
    rmat_edges,
    webgraph_edges,
    zipf_weights,
)
from repro.data.movies import cosine_similarity, format_movie_line
from repro.data.rmat import degree_stats
from repro.data.webgraph import out_degrees


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(99))

    def test_exponent_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_sampler_skews_to_low_ranks(self):
        sampler = ZipfSampler(1000, 1.2, make_rng(1, "z"))
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=1000)
        assert counts[0] > counts[100] > 0
        top_share = counts[0] / len(draws)
        assert abs(top_share - sampler.expected_top_share()) < 0.05

    def test_sampler_in_range(self):
        sampler = ZipfSampler(7, 1.0, make_rng(2, "z"))
        draws = sampler.sample(500)
        assert draws.min() >= 0 and draws.max() < 7

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1)


class TestBookCorpus:
    def test_reaches_target_size(self):
        records = book_corpus(50_000, seed=3)
        total = sum(len(line) for _, line in records)
        assert 50_000 <= total < 55_000

    def test_offsets_monotone(self):
        records = book_corpus(5_000, seed=3)
        offsets = [off for off, _ in records]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)

    def test_deterministic(self):
        assert book_corpus(10_000, seed=9) == book_corpus(10_000, seed=9)

    def test_seeds_differ(self):
        assert book_corpus(10_000, seed=1) != book_corpus(10_000, seed=2)

    def test_vocabulary(self):
        vocab = make_vocabulary(25)
        assert len(vocab) == 25
        assert vocab[0] == "the"
        assert len(set(vocab)) == 25


class TestMovies:
    def test_roundtrip(self):
        line = format_movie_line(7, [1, 5, 9], [3, 4, 5])
        rec = parse_movie_line(line)
        assert rec.movie_id == 7
        assert rec.user_ids == (1, 5, 9)
        assert rec.ratings == (3, 4, 5)
        assert rec.average_rating == 4.0

    def test_corpus_shape(self):
        records = movie_corpus(50, seed=4, n_users=200)
        assert len(records) == 50
        for _, line in records:
            rec = parse_movie_line(line)
            assert 5 <= len(rec.ratings) <= 30
            assert all(1 <= r <= 5 for r in rec.ratings)
            assert len(set(rec.user_ids)) == len(rec.user_ids)

    def test_rating_distribution_skewed(self):
        records = movie_corpus(400, seed=5)
        counts = {r: 0 for r in range(1, 6)}
        for _, line in records:
            for r in parse_movie_line(line).ratings:
                counts[r] += 1
        assert counts[4] > counts[1]  # 4s dominate 1s by construction

    def test_cosine_similarity(self):
        a = {1: 1.0, 2: 2.0}
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, {3: 1.0}) == 0.0
        assert cosine_similarity(a, {}) == 0.0
        b = {1: 2.0, 2: 4.0}
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            movie_corpus(0)
        with pytest.raises(ValueError):
            movie_corpus(5, min_ratings=0)
        with pytest.raises(ValueError):
            movie_corpus(5, rating_weights=(1, 0, 0, 0))


class TestWebGraph:
    def test_shape_and_no_self_links(self):
        edges = webgraph_edges(100, 500, seed=6)
        assert len(edges) == 500
        assert all(0 <= s < 100 and 0 <= d < 100 and s != d for s, d in edges)

    def test_every_page_has_outdegree(self):
        edges = webgraph_edges(50, 300, seed=7)
        assert set(out_degrees(edges)) == set(range(50))

    def test_indegree_skew(self):
        edges = webgraph_edges(500, 20_000, seed=8, zipf_exponent=1.0)
        indeg = {}
        for _, d in edges:
            indeg[d] = indeg.get(d, 0) + 1
        values = sorted(indeg.values(), reverse=True)
        # top page gets far more links than the median page
        assert values[0] > 10 * values[len(values) // 2]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            webgraph_edges(1, 10)
        with pytest.raises(ValueError):
            webgraph_edges(10, 5)


class TestRmat:
    def test_canonical_undirected_edges(self):
        edges = rmat_edges(8, 2_000, seed=9)
        assert all(u < v for u, v in edges)
        assert all(0 <= u < 256 and 0 <= v < 256 for u, v in edges)
        assert len(set(edges)) == len(edges)  # deduplicated

    def test_power_law_degrees(self):
        edges = rmat_edges(10, 8_000, seed=10)
        n, mean, peak = degree_stats(edges)
        assert n > 0
        assert peak > 5 * mean  # heavy-tailed

    def test_deterministic(self):
        assert rmat_edges(6, 500, seed=1) == rmat_edges(6, 500, seed=1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 10)
        with pytest.raises(ValueError):
            rmat_edges(5, 10, probs=(0.5, 0.5, 0.5, 0.5))


class TestDocuments:
    def test_format(self):
        records = document_corpus(20, seed=11, n_labels=3)
        assert len(records) == 20
        labels = set()
        for _, line in records:
            label, words = parse_document_line(line)
            labels.add(label)
            assert len(words) == 50
        assert labels <= {"label0", "label1", "label2"}

    def test_labels_have_distinct_topics(self):
        records = document_corpus(200, seed=12, n_labels=2, vocabulary_size=1000)
        top: dict[str, dict[str, int]] = {}
        for _, line in records:
            label, words = parse_document_line(line)
            counts = top.setdefault(label, {})
            for w in words:
                counts[w] = counts.get(w, 0) + 1
        most0 = max(top["label0"], key=top["label0"].get)
        most1 = max(top["label1"], key=top["label1"].get)
        assert most0 != most1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=5))
    def test_deterministic_property(self, n_docs, seed):
        assert document_corpus(n_docs, seed=seed) == document_corpus(n_docs, seed=seed)
