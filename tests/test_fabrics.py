"""Tests for pluggable exchange fabrics: routing, charging, topology.

Covers the fabric contract (DESIGN.md "Exchange fabrics"): ``plan()`` is
pure routing, ``charge()`` books wire bytes identically at either
engine's historical charge site, ``direct`` reproduces the legacy
single-hop accounting bit-exactly, and the rack-aware / tree / RDMA
fabrics deliver their modeled savings without changing job output.
"""

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster import Cluster, small_cluster_spec
from repro.common.sizeof import logical_sizeof, pair_size
from repro.core import (
    CollectionSource,
    EdgeMode,
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
)
from repro.core.engine import HamrConfig
from repro.dataplane import exchange_targets
from repro.dataplane.fabrics import (
    FABRICS,
    DirectFabric,
    RdmaFabric,
    Topology,
    TreeFabric,
    TwoLevelFabric,
    make_fabric,
)
from repro.evaluation.telemetryreport import telemetry_json
from repro.obs.telemetry import TrafficMatrix


# -- topology ---------------------------------------------------------------------


class TestTopology:
    def test_rackless_default(self):
        topo = Topology(8)
        assert not topo.multi_rack
        assert topo.num_racks == 1
        assert topo.rack_of(5) == 0
        assert topo.gateway(0) == 0

    def test_racks_of_two(self):
        topo = Topology(8, 2)
        assert topo.multi_rack
        assert topo.num_racks == 4
        assert topo.rack_of(0) == 0
        assert topo.rack_of(5) == 2
        assert topo.gateway(2) == 4

    def test_uneven_last_rack(self):
        topo = Topology(5, 2)
        assert topo.num_racks == 3
        assert topo.rack_of(4) == 2

    def test_rack_covering_all_workers_is_rackless(self):
        assert not Topology(4, 4).multi_rack
        assert not Topology(4, 0).multi_rack


class TestMakeFabric:
    def test_every_registered_fabric_constructs(self):
        for name in FABRICS:
            fabric = make_fabric(name, topology=Topology(4, 2))
            assert fabric.name == name
            assert fabric.topology.num_workers == 4

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError):
            make_fabric("teleport")


# -- direct fabric: plan shape + legacy charge parity ------------------------------


def _node_of(worker):
    return 20 + worker


class TestDirectFabric:
    def test_shuffle_plan_single_hop(self):
        fabric = DirectFabric()
        plan = fabric.plan(
            "shuffle", 3, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=64.0, nrecords=4,
        )
        assert plan.mode == "shuffle"
        assert plan.targets == [3]
        [delivery] = plan.deliveries
        [hop] = delivery.hops
        assert (hop.src, hop.dst, hop.nbytes) == (0, 3, 64.0)
        assert plan.wire_bytes == 64.0

    def test_broadcast_plan_one_hop_per_worker(self):
        fabric = DirectFabric()
        plan = fabric.plan(
            "broadcast", 0, worker_index=1, num_workers=3, nbytes=10.0,
        )
        assert plan.targets == [0, 1, 2]
        assert all(len(d.hops) == 1 for d in plan.deliveries)
        assert plan.wire_bytes == 30.0

    @pytest.mark.parametrize(
        "mode,partition",
        [("shuffle", 3), ("broadcast", 0), ("shuffle", -1), ("local", 0)],
    )
    def test_charge_matches_legacy_exchange_targets(self, mode, partition):
        """The refactor moved the charge behind the fabric without moving
        a byte: fabric plan+charge must book exactly what the legacy
        one-shot ``exchange_targets`` call booked, mode and partition
        operands included."""
        kwargs = dict(
            worker_index=1, num_workers=4, owner_of=lambda p: p % 4,
            nbytes=48.0, nrecords=6,
        )
        legacy = TrafficMatrix("j")
        targets = exchange_targets(
            mode, partition, traffic=legacy,
            src_node=_node_of(1), node_of=_node_of, **kwargs,
        )
        fabric = DirectFabric()
        plan = fabric.plan(mode, partition, **kwargs)
        planned = TrafficMatrix("j")
        fabric.charge(plan, planned, node_of=_node_of)
        assert plan.targets == targets
        assert planned.to_dict() == legacy.to_dict()

    def test_charge_site_invariant(self):
        """Charging the same plan at HAMR's site (right after planning)
        and at Hadoop's site (after unrelated charges landed in between)
        books identical wire bytes — the plan fully determines the
        charge, call order only interleaves independent entries."""
        fabric = DirectFabric()
        plan = fabric.plan(
            "shuffle", 2, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=100.0, nrecords=10,
        )
        at_plan_time = TrafficMatrix("j")
        fabric.charge(plan, at_plan_time, node_of=_node_of)

        after_fetch = TrafficMatrix("j")
        # Hadoop charges DISK/NETWORK blame first; traffic entries from
        # other payloads may land in between — they must not perturb
        # this plan's booking.
        after_fetch.charge(_node_of(3), _node_of(3), 7.0, mode="local")
        fabric.charge(plan, after_fetch, node_of=_node_of)
        assert after_fetch.edge_bytes(_node_of(0), _node_of(2)) == (
            at_plan_time.edge_bytes(_node_of(0), _node_of(2))
        )
        assert (
            after_fetch.totals()["shuffle_bytes"]
            == at_plan_time.totals()["shuffle_bytes"]
            == 100.0
        )

    def test_charge_scale_applies_per_hop(self):
        fabric = DirectFabric()
        plan = fabric.plan(
            "broadcast", 0, worker_index=0, num_workers=3, nbytes=8.0,
        )
        m = TrafficMatrix("j")
        fabric.charge(plan, m, node_of=_node_of, scale=lambda b: b * 2.5)
        assert m.totals()["broadcast_bytes"] == 3 * 8.0 * 2.5

    def test_charge_none_traffic_is_noop(self):
        fabric = DirectFabric()
        plan = fabric.plan(
            "shuffle", 0, worker_index=0, num_workers=2, owner_of=lambda p: 0,
            nbytes=4.0,
        )
        fabric.charge(plan, None, node_of=_node_of)  # must not raise

    def test_rdma_is_direct_with_zero_serde(self):
        assert RdmaFabric().serde_factor == 0.0
        assert DirectFabric().serde_factor == 1.0
        plan_d = DirectFabric().plan(
            "shuffle", 1, worker_index=0, num_workers=4,
            owner_of=lambda p: p, nbytes=16.0,
        )
        plan_r = RdmaFabric().plan(
            "shuffle", 1, worker_index=0, num_workers=4,
            owner_of=lambda p: p, nbytes=16.0,
        )
        assert [(h.src, h.dst, h.nbytes) for d in plan_r.deliveries for h in d.hops] == [
            (h.src, h.dst, h.nbytes) for d in plan_d.deliveries for h in d.hops
        ]


# -- tree fabric ------------------------------------------------------------------


class TestTreeFabric:
    def _broadcast_plan(self, num_workers, root):
        fabric = TreeFabric(Topology(num_workers))
        return fabric.plan(
            "broadcast", 0, worker_index=root, num_workers=num_workers,
            nbytes=10.0,
        )

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_binomial_schedule_reaches_everyone_once(self, root):
        n = 8
        plan = self._broadcast_plan(n, root)
        assert sorted(plan.targets) == list(range(n))
        by_target = {d.target: d.hops for d in plan.deliveries}
        assert by_target[root] == []  # the root already holds the payload
        # one tree edge per non-root worker: N-1 timed hops total
        assert sum(len(h) for h in by_target.values()) == n - 1
        # every non-root target receives on its own single hop
        for target, hops in by_target.items():
            if target == root:
                continue
            [hop] = hops
            assert hop.dst == target
        # root sends exactly log2(N) copies down its subtrees
        root_sends = sum(
            1 for hops in by_target.values() for h in hops if h.src == root
        )
        assert root_sends == 3  # log2(8)

    @pytest.mark.parametrize("root", [0, 2, 5])
    def test_tree_parents_chain_to_root(self, root):
        n = 6
        plan = self._broadcast_plan(n, root)
        by_target = {d.target: d.hops for d in plan.deliveries}
        for target in range(n):
            if target == root:
                continue
            node, seen = target, set()
            while node != root:
                assert node not in seen, "cycle in broadcast tree"
                seen.add(node)
                [hop] = by_target[node]
                node = hop.src
            assert len(seen) <= n - 1

    def test_broadcast_wire_bytes_drop_vs_direct(self):
        n = 8
        tree = self._broadcast_plan(n, 0)
        direct = DirectFabric().plan(
            "broadcast", 0, worker_index=0, num_workers=n, nbytes=10.0,
        )
        assert tree.wire_bytes == (n - 1) * 10.0
        assert direct.wire_bytes == n * 10.0

    def test_shuffle_routes_direct(self):
        fabric = TreeFabric(Topology(4))
        plan = fabric.plan(
            "shuffle", 2, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=32.0,
        )
        [delivery] = plan.deliveries
        assert [(h.src, h.dst) for h in delivery.hops] == [(0, 2)]


# -- twolevel fabric --------------------------------------------------------------


class TestTwoLevelFabric:
    def _fabric(self, num_workers=4, rack_size=2):
        return TwoLevelFabric(Topology(num_workers, rack_size))

    def test_rackless_degrades_to_direct(self):
        fabric = TwoLevelFabric(Topology(4))
        plan = fabric.plan(
            "shuffle", 3, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=16.0,
        )
        [delivery] = plan.deliveries
        assert [(h.src, h.dst, h.nbytes) for h in delivery.hops] == [(0, 3, 16.0)]

    def test_remote_shuffle_routes_via_gateways(self):
        fabric = self._fabric()
        plan = fabric.plan(
            "shuffle", 3, worker_index=1, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=16.0,
            records=[("k", 1)], stream="s",
        )
        [delivery] = plan.deliveries
        # worker 1 (rack 0) -> gateway 0 -> gateway 2 -> worker 3 (rack 1)
        assert [(h.src, h.dst) for h in delivery.hops] == [(1, 0), (0, 2), (2, 3)]
        assert all(h.nbytes == 16.0 for h in delivery.hops)  # unseen key: full

    def test_gateway_endpoints_skip_self_hops(self):
        fabric = self._fabric()
        plan = fabric.plan(
            "shuffle", 2, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=16.0,
        )
        [delivery] = plan.deliveries
        # src 0 IS rack 0's gateway, dst 2 IS rack 1's gateway: one hop
        assert [(h.src, h.dst) for h in delivery.hops] == [(0, 2)]

    def test_intra_rack_shuffle_stays_direct(self):
        fabric = self._fabric()
        plan = fabric.plan(
            "shuffle", 1, worker_index=0, num_workers=4,
            owner_of=lambda p: p % 4, nbytes=16.0,
        )
        [delivery] = plan.deliveries
        assert [(h.src, h.dst) for h in delivery.hops] == [(0, 1)]

    def test_aggregated_repeat_key_crosses_free(self):
        fabric = self._fabric()
        kwargs = dict(
            worker_index=1, num_workers=4, owner_of=lambda p: p % 4,
            records=[("k", 1)], aggregated=True, stream="e0",
        )
        nbytes = float(pair_size("k", 1))
        first = fabric.plan("shuffle", 3, nbytes=nbytes, **kwargs)
        second = fabric.plan("shuffle", 3, nbytes=nbytes, **kwargs)
        inter_first = first.deliveries[0].hops[1]
        inter_second = second.deliveries[0].hops[1]
        assert (inter_first.src, inter_first.dst) == (0, 2)
        assert inter_first.nbytes == nbytes
        assert inter_second.nbytes == 0.0  # folded into the combined record
        assert fabric.inter_rack_bytes_saved == pytest.approx(nbytes)

    def test_non_aggregated_repeat_still_ships_value(self):
        fabric = self._fabric()
        kwargs = dict(
            worker_index=1, num_workers=4, owner_of=lambda p: p % 4,
            records=[("key", 7)], aggregated=False, stream="e0",
        )
        nbytes = float(pair_size("key", 7))
        fabric.plan("shuffle", 3, nbytes=nbytes, **kwargs)
        second = fabric.plan("shuffle", 3, nbytes=nbytes, **kwargs)
        expected = nbytes * (nbytes - logical_sizeof("key")) / nbytes
        assert second.deliveries[0].hops[1].nbytes == pytest.approx(expected)

    def test_dedup_is_scoped_per_stream_and_rack_pair(self):
        fabric = self._fabric()
        kwargs = dict(
            worker_index=1, num_workers=4, owner_of=lambda p: p % 4,
            records=[("k", 1)], aggregated=True,
        )
        nbytes = float(pair_size("k", 1))
        fabric.plan("shuffle", 3, nbytes=nbytes, stream="e0", **kwargs)
        other_stream = fabric.plan("shuffle", 3, nbytes=nbytes, stream="e1", **kwargs)
        # a different logical exchange pays full freight again
        assert other_stream.deliveries[0].hops[1].nbytes == nbytes

    def test_broadcast_crosses_each_remote_rack_once(self):
        fabric = self._fabric(num_workers=6, rack_size=2)
        plan = fabric.plan(
            "broadcast", 0, worker_index=0, num_workers=6, nbytes=10.0,
        )
        topo = fabric.topology
        inter_hops = [
            h for d in plan.deliveries for h in d.hops
            if topo.rack_of(h.src) != topo.rack_of(h.dst)
        ]
        # two remote racks, one crossing each
        assert len(inter_hops) == 2
        assert sorted(h.dst for h in inter_hops) == [2, 4]  # the gateways
        assert sorted(plan.targets) == list(range(6))


# -- engine integration -----------------------------------------------------------


def _run_app(
    engine="hamr", target_bytes=30_000, num_workers=4, block_size=None, **env_kw
):
    params = wordcount.WordCountParams(target_bytes=target_bytes, seed=0)
    records = wordcount.generate_input(params)
    spec = small_cluster_spec(num_workers=num_workers)
    if block_size is not None:
        # shrink DFS blocks so tiny inputs still split into several map
        # tasks (the combining gateway needs repeated keys per rack pair)
        from dataclasses import replace

        spec = replace(spec, cost=replace(spec.cost, hdfs_block_size=block_size))
    env = AppEnv(spec, obs=True, **env_kw)
    runner = wordcount.run_hamr if engine == "hamr" else wordcount.run_hadoop
    result = runner(env, params, records)
    return env, result


class TestEngineFabricRuns:
    @pytest.fixture(scope="class")
    def direct_runs(self):
        return {engine: _run_app(engine) for engine in ("hamr", "hadoop")}

    @pytest.mark.parametrize("fabric", ["tree", "twolevel", "rdma"])
    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_fabrics_preserve_output(self, direct_runs, engine, fabric):
        _env, result = _run_app(engine, fabric=fabric)
        _denv, direct = direct_runs[engine]
        assert result.output == direct.output

    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_explicit_direct_is_byte_identical_to_default(self, direct_runs, engine):
        env, result = _run_app(engine, fabric="direct")
        denv, direct = direct_runs[engine]
        assert result.makespan == direct.makespan
        assert telemetry_json(env.obs, "wordcount", engine) == telemetry_json(
            denv.obs, "wordcount", engine
        )

    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_rdma_skips_serde_but_moves_identical_bytes(self, direct_runs, engine):
        env, result = _run_app(engine, fabric="rdma")
        denv, direct = direct_runs[engine]
        if engine == "hamr":
            # zero-copy exchange: strictly less virtual time
            assert result.makespan < direct.makespan
        else:
            # Hadoop serializes map output to *disk* (its serde charge
            # predates the exchange), so a zero-copy wire changes nothing
            assert result.makespan == direct.makespan
        assert env.obs.traffic_totals() == denv.obs.traffic_totals()

    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_twolevel_cuts_inter_rack_bytes(self, engine):
        # several map tasks per run: the gateway dedup needs the same key
        # crossing a rack pair more than once (4 KB blocks force ~8 maps)
        block = 4 * 1024 if engine == "hadoop" else None
        denv, _ = _run_app(engine, rack_size=2, block_size=block)
        tenv, _ = _run_app(engine, fabric="twolevel", rack_size=2, block_size=block)
        direct_net, two_net = denv.cluster.network, tenv.cluster.network
        assert direct_net.inter_rack_bytes > 0
        assert two_net.inter_rack_bytes < direct_net.inter_rack_bytes
        # the combining gateway's savings surface in the traffic matrix too
        direct_tm = denv.obs.traffic_totals()["inter_rack_bytes"]
        two_tm = tenv.obs.traffic_totals()["inter_rack_bytes"]
        assert two_tm < direct_tm

    def test_rackless_totals_omit_inter_rack_key(self):
        env, _ = _run_app("hamr")
        assert "inter_rack_bytes" not in env.obs.traffic_totals()

    @pytest.mark.parametrize("fabric", ["tree", "twolevel", "rdma"])
    def test_determinism_off_direct(self, fabric):
        env1, r1 = _run_app("hamr", fabric=fabric, rack_size=2)
        env2, r2 = _run_app("hamr", fabric=fabric, rack_size=2)
        assert r1.makespan == r2.makespan
        assert telemetry_json(env1.obs, "wordcount", "hamr") == telemetry_json(
            env2.obs, "wordcount", "hamr"
        )


class TestTrafficClassSplit:
    """Broadcast/shuffle/local accounting survives every fabric."""

    def _class_graph(self):
        pairs = [(f"k{i % 5}", i) for i in range(40)]
        g = FlowletGraph("classes")
        loader = g.add(Loader("load", CollectionSource(pairs)))
        tag = g.add(Map("tag", fn=lambda ctx, k, v: ctx.emit(k, v)))
        count = g.add(
            PartialReduce(
                "count", initial=lambda _k: 0, combine=lambda a, v: a + v,
                aggregated_output=True,
            )
        )
        announce = g.add(Map("announce", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g.connect(loader, tag, mode=EdgeMode.LOCAL)
        g.connect(tag, count)
        g.connect(count, announce, mode=EdgeMode.BROADCAST)
        return g

    def _run(self, fabric, rack_size=0):
        spec = small_cluster_spec(num_workers=4)
        if rack_size:
            spec = spec.with_racks(rack_size)
        cluster = Cluster(spec, obs=True)
        engine = HamrEngine(cluster, config=HamrConfig(fabric=fabric))
        result = engine.run(self._class_graph())
        return cluster, result

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_every_class_charged(self, fabric):
        cluster, result = self._run(fabric, rack_size=2)
        totals = cluster.obs.traffic_totals()
        assert totals["local_bytes"] > 0, fabric
        assert totals["shuffle_bytes"] > 0, fabric
        assert totals["broadcast_bytes"] > 0, fabric
        assert result.makespan > 0

    def test_tree_shrinks_broadcast_class_only(self):
        direct_cluster, _ = self._run("direct")
        tree_cluster, _ = self._run("tree")
        direct_totals = direct_cluster.obs.traffic_totals()
        tree_totals = tree_cluster.obs.traffic_totals()
        assert tree_totals["broadcast_bytes"] < direct_totals["broadcast_bytes"]
        assert tree_totals["shuffle_bytes"] == direct_totals["shuffle_bytes"]
        assert tree_totals["local_bytes"] == direct_totals["local_bytes"]

    def test_rdma_totals_match_direct(self):
        direct_cluster, _ = self._run("direct")
        rdma_cluster, _ = self._run("rdma")
        assert rdma_cluster.obs.traffic_totals() == (
            direct_cluster.obs.traffic_totals()
        )

    def test_per_edge_fabric_override(self):
        """Edge.fabric overrides the engine default on that edge alone."""
        pairs = [(f"k{i % 5}", i) for i in range(40)]
        g = FlowletGraph("override")
        loader = g.add(Loader("load", CollectionSource(pairs)))
        count = g.add(
            PartialReduce(
                "count", initial=lambda _k: 0, combine=lambda a, v: a + v,
                aggregated_output=True,
            )
        )
        announce = g.add(Map("announce", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g.connect(loader, count)
        g.connect(count, announce, mode=EdgeMode.BROADCAST, fabric="tree")
        cluster = Cluster(small_cluster_spec(num_workers=4), obs=True)
        engine = HamrEngine(cluster)  # engine default stays direct
        engine.run(g)
        g2 = FlowletGraph("override")
        loader2 = g2.add(Loader("load", CollectionSource(pairs)))
        count2 = g2.add(
            PartialReduce(
                "count", initial=lambda _k: 0, combine=lambda a, v: a + v,
                aggregated_output=True,
            )
        )
        announce2 = g2.add(Map("announce", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g2.connect(loader2, count2)
        g2.connect(count2, announce2, mode=EdgeMode.BROADCAST)
        cluster2 = Cluster(small_cluster_spec(num_workers=4), obs=True)
        HamrEngine(cluster2).run(g2)
        tree_bcast = cluster.obs.traffic_totals()["broadcast_bytes"]
        direct_bcast = cluster2.obs.traffic_totals()["broadcast_bytes"]
        assert tree_bcast < direct_bcast


class TestShardPartitionerSpillReroute:
    """Satellite: a shard-aware partitioner must move the Hadoop reducer —
    and its ``spill_pool.for_node`` manager — to the owning node."""

    def test_reducers_and_spills_land_on_owner_nodes(self):
        env, result = _run_app("hadoop", target_bytes=8_000, partitioner="shard")
        owners = env.cluster.partition_owners
        assert owners, "shard partitioner must install partition owners"
        assert len(owners) < env.cluster.num_workers, (
            "test input must be sparse enough that some workers hold no "
            "shards (otherwise the reroute is unobservable)"
        )
        owner_nodes = {
            env.cluster.workers[index].node_id for index in owners
        }
        reduce_spans = [
            s for s in env.obs.spans if s.cat == "task" and s.name == "reduce"
        ]
        assert reduce_spans
        assert all(s.node in owner_nodes for s in reduce_spans), (
            "every reducer (hence its SpillManager node) must sit on an "
            "input-shard owner"
        )

    def test_hash_default_keeps_round_robin_layout(self):
        env, _ = _run_app("hadoop")
        assert env.cluster.partition_owners is None
        reduce_spans = [
            s for s in env.obs.spans if s.cat == "task" and s.name == "reduce"
        ]
        nodes = {s.node for s in reduce_spans}
        worker_ids = {w.node_id for w in env.cluster.workers}
        assert nodes == worker_ids, "hash layout spreads reducers everywhere"

    def test_shard_and_hash_agree_on_output(self):
        _, hashed = _run_app("hadoop", target_bytes=8_000)
        _, sharded = _run_app("hadoop", target_bytes=8_000, partitioner="shard")
        assert hashed.output == sharded.output

    def test_hamr_shard_partitioner_matches_hash_output(self):
        _, hashed = _run_app("hamr", target_bytes=8_000)
        _, sharded = _run_app("hamr", target_bytes=8_000, partitioner="shard")
        assert hashed.output == sharded.output


class TestFabricDiffKeying:
    """Bench entries recorded off-direct must never gate against a direct
    baseline row in ``diff`` (they land as only_a/only_b instead)."""

    def _bench(self, fabric=None):
        entry = {"virtual_seconds": 45.0, "blame": {"network": 1.0}}
        if fabric is not None:
            entry["fabric"] = fabric
        return {
            "schema": "repro.obs.bench/v5",
            "fidelity": "tiny",
            "rows": {"wordcount": {"hamr": entry}},
        }

    def test_non_direct_entry_keys_engine_at_fabric(self):
        from repro.obs.diff import normalize

        rows = normalize(self._bench("twolevel"))
        assert list(rows["wordcount"]) == ["hamr@twolevel"]

    def test_direct_and_absent_fabric_share_the_legacy_key(self):
        from repro.obs.diff import normalize

        assert list(normalize(self._bench())["wordcount"]) == ["hamr"]
        assert list(normalize(self._bench("direct"))["wordcount"]) == ["hamr"]

    def test_cross_fabric_rows_never_compared(self):
        from repro.obs.diff import diff_artifacts, normalize

        result = diff_artifacts(
            normalize(self._bench()), normalize(self._bench("twolevel"))
        )
        # the keys don't intersect: no comparison, hence no false drift
        assert result.rows["wordcount"] == {}
        assert not result.drift
