"""Tests for graph description and misc graph API surface."""

from repro.core import (
    CollectionSource,
    EdgeMode,
    FlowletGraph,
    Loader,
    Map,
    PartialReduce,
    Reduce,
    sum_combiner,
)


def build_graph():
    g = FlowletGraph("pipeline")
    loader = g.add(Loader("load", CollectionSource([("k", 1)])))
    mapper = g.add(Map("transform", fn=lambda ctx, k, v: ctx.emit(k, v)))
    count = g.add(
        PartialReduce("count", initial=lambda _k: 0, combine=lambda a, v: a + v)
    )
    audit = g.add(Reduce("audit", fn=lambda ctx, k, vs: None))
    g.connect(loader, mapper, mode=EdgeMode.LOCAL)
    g.connect(mapper, count, combiner=sum_combiner())
    g.connect(mapper, audit)
    return g


class TestDescribe:
    def test_lists_every_flowlet_with_kind(self):
        text = build_graph().describe()
        assert "FlowletGraph 'pipeline'" in text
        assert "[loader] load" in text
        assert "[map] transform" in text
        assert "[partial_reduce] count" in text
        assert "[reduce] audit" in text

    def test_edges_annotated(self):
        text = build_graph().describe()
        assert "-> transform  (local)" in text
        assert "-> count  (combiner)" in text
        assert "-> audit" in text

    def test_sinks_marked(self):
        text = build_graph().describe()
        assert text.count("=> job output") == 2  # count and audit

    def test_dependency_order(self):
        text = build_graph().describe()
        assert text.index("load") < text.index("[map] transform")
        assert text.index("[map] transform") < text.index("[partial_reduce] count")
