"""Tests for differential profiling and the perf-regression gate CLI."""

import json

import pytest

from repro.evaluation.__main__ import main as evaluation_main
from repro.obs.diff import (
    ArtifactError,
    EngineRecord,
    diff_artifacts,
    load_artifact,
    normalize,
    render_diff,
)


def _bench_artifact(wordcount_hamr=45.017, extra_workload=None):
    rows = {
        "wordcount": {
            "data_size": "1 GB",
            "speedup": 1.15,
            "hamr": {
                "virtual_seconds": wordcount_hamr,
                "blame": {"compute": 30.0, "disk": 10.0},
                "critpath": {"compute": 25.0, "disk": 8.0},
            },
            "hadoop": {
                "virtual_seconds": 51.984,
                "blame": {"compute": 20.0, "disk": 25.0},
                "critpath": {"compute": 15.0, "disk": 20.0},
            },
        },
    }
    if extra_workload:
        rows[extra_workload] = {
            "data_size": "1 GB",
            "speedup": None,
            "hamr": {"virtual_seconds": 1.0, "blame": {}, "critpath": {}},
        }
    return {"schema": "repro.obs.bench/v2", "fidelity": "tiny", "rows": rows}


def _bench_artifact_v4(shuffle_bytes=1000.0, total_bytes=1500.0):
    """A schema-v4 artifact carrying telemetry traffic totals."""
    doc = _bench_artifact()
    doc["schema"] = "repro.obs.bench/v4"
    for engine in ("hamr", "hadoop"):
        doc["rows"]["wordcount"][engine]["telemetry"] = {
            "traffic": {
                "total_bytes": total_bytes,
                "remote_bytes": total_bytes * 0.6,
                "shuffle_bytes": shuffle_bytes,
                "local_bytes": total_bytes - shuffle_bytes,
                "broadcast_bytes": 0.0,
                "payloads": 40.0,
                "records": 900.0,
            }
        }
    return doc


class TestNormalize:
    def test_bench_schema(self):
        norm = normalize(_bench_artifact())
        rec = norm["wordcount"]["hamr"]
        assert isinstance(rec, EngineRecord)
        assert rec.virtual_seconds == 45.017
        assert rec.blame["disk"] == 10.0
        assert rec.critpath["compute"] == 25.0

    def test_report_schema(self):
        artifact = {
            "schema": "repro.obs.report/v2",
            "workload": "wordcount",
            "engines": {
                "hamr": {
                    "virtual_end": 45.0,
                    "blame": {
                        "wordcount": {"buckets": {"compute": 30.0, "disk": 10.0}},
                        "wordcount#2": {"buckets": {"compute": 5.0}},
                    },
                    "critpath": {"rollup": {"compute": 20.0}},
                }
            },
        }
        rec = normalize(artifact)["wordcount"]["hamr"]
        assert rec.virtual_seconds == 45.0
        assert rec.blame["compute"] == 35.0  # jobs sum
        assert rec.critpath == {"compute": 20.0}

    def test_unknown_schema_raises(self):
        with pytest.raises(ArtifactError, match="unrecognized schema"):
            normalize({"schema": "repro.obs.nonsense/v9"}, source="x.json")


class TestDiff:
    def test_identical_artifacts_are_ok(self):
        a = normalize(_bench_artifact())
        result = diff_artifacts(a, normalize(_bench_artifact()))
        assert result.ok
        assert result.drift == []
        row = result.rows["wordcount"]["hamr"]
        assert row["rel_delta"] == 0.0
        assert not row["drift"]

    def test_drift_beyond_tolerance(self):
        a = normalize(_bench_artifact())
        b = normalize(_bench_artifact(wordcount_hamr=45.017 * 1.2))
        result = diff_artifacts(a, b, tolerance=0.05)
        assert not result.ok
        assert result.drift == ["wordcount/hamr"]
        assert result.rows["wordcount"]["hamr"]["rel_delta"] == pytest.approx(0.2)
        # hadoop side unchanged
        assert not result.rows["wordcount"]["hadoop"]["drift"]

    def test_drift_within_tolerance_is_ok(self):
        a = normalize(_bench_artifact())
        b = normalize(_bench_artifact(wordcount_hamr=45.017 * 1.004))
        assert diff_artifacts(a, b, tolerance=0.01).ok

    def test_only_a_only_b(self):
        a = normalize(_bench_artifact(extra_workload="kmeans"))
        b = normalize(_bench_artifact())
        result = diff_artifacts(a, b)
        assert result.only_a == ["kmeans"]
        assert result.only_b == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            diff_artifacts({}, {}, tolerance=-0.1)

    def test_to_json_is_deterministic(self):
        a = normalize(_bench_artifact())
        b = normalize(_bench_artifact(wordcount_hamr=50.0))
        one = diff_artifacts(a, b).to_json()
        two = diff_artifacts(
            normalize(_bench_artifact()), normalize(_bench_artifact(wordcount_hamr=50.0))
        ).to_json()
        assert one == two
        payload = json.loads(one)
        assert payload["schema"] == "repro.obs.diff/v1"

    def test_render_is_deterministic_and_verdicted(self):
        a = normalize(_bench_artifact())
        b = normalize(_bench_artifact(wordcount_hamr=60.0))
        result = diff_artifacts(a, b)
        text = render_diff(result, label_a="base", label_b="cand")
        assert text == render_diff(result, label_a="base", label_b="cand")
        assert "DRIFT" in text
        assert "verdict: DRIFT in wordcount/hamr" in text
        ok_text = render_diff(diff_artifacts(a, normalize(_bench_artifact())))
        assert "verdict: OK — within tolerance" in ok_text


class TestTrafficGating:
    def test_v4_traffic_parsed_into_record(self):
        rec = normalize(_bench_artifact_v4())["wordcount"]["hamr"]
        assert rec.traffic is not None
        assert rec.traffic["shuffle_bytes"] == 1000.0

    def test_v2_artifact_has_no_traffic_and_diffs_fine(self):
        rec = normalize(_bench_artifact())["wordcount"]["hamr"]
        assert rec.traffic is None
        result = diff_artifacts(
            normalize(_bench_artifact()), normalize(_bench_artifact())
        )
        assert result.ok
        assert "traffic_delta" not in result.rows["wordcount"]["hamr"]

    def test_identical_traffic_is_ok(self):
        a = normalize(_bench_artifact_v4())
        result = diff_artifacts(a, normalize(_bench_artifact_v4()))
        assert result.ok
        row = result.rows["wordcount"]["hamr"]
        assert row["traffic_drift"] == []
        assert all(rel == 0.0 for rel in row["traffic_delta"].values())

    def test_traffic_drift_gates_even_with_stable_makespan(self):
        a = normalize(_bench_artifact_v4(shuffle_bytes=1000.0))
        b = normalize(_bench_artifact_v4(shuffle_bytes=1200.0))
        result = diff_artifacts(a, b, tolerance=0.05)
        assert not result.ok
        assert "wordcount/hamr" in result.drift
        row = result.rows["wordcount"]["hamr"]
        # makespan itself did not move — traffic alone trips the gate
        assert row["rel_delta"] == 0.0
        assert row["drift"] is True
        assert "shuffle_bytes" in row["traffic_drift"]
        assert "local_bytes" in row["traffic_drift"]
        assert row["traffic_delta"]["shuffle_bytes"] == pytest.approx(0.2)

    def test_traffic_within_tolerance_is_ok(self):
        a = normalize(_bench_artifact_v4(shuffle_bytes=1000.0))
        b = normalize(_bench_artifact_v4(shuffle_bytes=1004.0, total_bytes=1504.0))
        assert diff_artifacts(a, b, tolerance=0.01).ok

    def test_traffic_from_zero_reports_inf(self):
        a = normalize(_bench_artifact_v4(shuffle_bytes=0.0))
        b = normalize(_bench_artifact_v4(shuffle_bytes=50.0))
        result = diff_artifacts(a, b, tolerance=0.05)
        row = result.rows["wordcount"]["hamr"]
        assert row["traffic_delta"]["shuffle_bytes"] == float("inf")
        assert not result.ok

    def test_render_includes_traffic_table(self):
        a = normalize(_bench_artifact_v4(shuffle_bytes=1000.0))
        b = normalize(_bench_artifact_v4(shuffle_bytes=1300.0))
        text = render_diff(diff_artifacts(a, b, tolerance=0.05))
        assert "Traffic deltas" in text
        assert "shuffle_bytes" in text
        ok_text = render_diff(
            diff_artifacts(a, normalize(_bench_artifact_v4(shuffle_bytes=1000.0)))
        )
        assert "Traffic deltas" in ok_text
        assert "(unchanged)" in ok_text


class TestCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        base = tmp_path / "base.json"
        same = tmp_path / "same.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_bench_artifact()))
        same.write_text(json.dumps(_bench_artifact()))
        slow.write_text(json.dumps(_bench_artifact(wordcount_hamr=60.0)))
        return base, same, slow

    def test_ok_exit_zero(self, artifacts, capsys):
        base, same, _ = artifacts
        rc = evaluation_main(["diff", str(base), str(same), "--fail-on-drift"])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_drift_without_gate_still_exits_zero(self, artifacts, capsys):
        base, _, slow = artifacts
        rc = evaluation_main(["diff", str(base), str(slow)])
        assert rc == 0
        assert "DRIFT" in capsys.readouterr().out

    def test_drift_with_gate_exits_nonzero(self, artifacts, tmp_path, capsys):
        base, _, slow = artifacts
        delta = tmp_path / "delta.json"
        rc = evaluation_main(
            ["diff", str(base), str(slow), "--fail-on-drift", "--json", str(delta)]
        )
        assert rc == 1
        payload = json.loads(delta.read_text())
        assert payload["ok"] is False
        assert payload["drift"] == ["wordcount/hamr"]
        capsys.readouterr()

    def test_missing_paths_errors(self, artifacts):
        base, _, _ = artifacts
        with pytest.raises(SystemExit):
            evaluation_main(["diff", str(base)])

    def test_load_artifact_rejects_bad_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope/v1"}))
        with pytest.raises(ArtifactError):
            load_artifact(str(bad))


def _load_bench_obs(module_name):
    """Import benchmarks/bench_obs.py without putting benchmarks/ on sys.path."""
    import importlib.util
    import pathlib
    import sys

    bench_path = (
        pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_obs.py"
    )
    spec = importlib.util.spec_from_file_location(module_name, bench_path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_synthetic_slowdown_trips_gate(tmp_path, monkeypatch, capsys):
    """REPRO_OBS_SLOWDOWN -> bench artifact -> diff gate exits non-zero."""
    import sys

    bench_obs = _load_bench_obs("bench_obs_gate_test")
    try:
        monkeypatch.delenv("REPRO_OBS_SLOWDOWN", raising=False)
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        args = ["--fidelity", "tiny", "--workloads", "wordcount"]
        assert bench_obs.main(args + ["--out", str(base)]) == 0
        monkeypatch.setenv("REPRO_OBS_SLOWDOWN", "wordcount=1.2")
        assert bench_obs.main(args + ["--out", str(slow)]) == 0
    finally:
        sys.modules.pop("bench_obs_gate_test", None)

    rc = evaluation_main(
        ["diff", str(base), str(slow), "--tolerance", "0.05", "--fail-on-drift"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "+20.000%" in out
    assert "verdict: DRIFT in wordcount/hadoop, wordcount/hamr" in out


def test_identical_runs_diff_byte_identical(tmp_path, monkeypatch, capsys):
    """Two independent bench runs are byte-identical (modulo wall clock)
    and diff clean."""
    import json
    import sys

    bench_obs = _load_bench_obs("bench_obs_det_test")
    try:
        monkeypatch.delenv("REPRO_OBS_SLOWDOWN", raising=False)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        args = ["--fidelity", "tiny", "--workloads", "wordcount"]
        assert bench_obs.main(args + ["--out", str(a)]) == 0
        assert bench_obs.main(args + ["--out", str(b)]) == 0
    finally:
        sys.modules.pop("bench_obs_det_test", None)

    # wall_seconds and the hostprof section are real host time — the
    # only fields allowed to vary between runs. Everything else must be
    # byte-identical.
    def masked(path):
        doc = json.loads(path.read_text())
        for row in doc["rows"].values():
            for engine in ("hamr", "hadoop"):
                assert row[engine]["wall_seconds"] > 0.0
                row[engine]["wall_seconds"] = 0.0
                prof = row[engine].pop("hostprof")
                assert prof["total_ns"] > 0
                assert abs(sum(prof["shares"].values()) - 1.0) < 1e-3
        return json.dumps(doc, indent=2, sort_keys=True)

    assert masked(a) == masked(b)
    # host shares are noisy at tiny fidelity: open the host band fully so
    # this asserts virtual determinism only (the share band has its own
    # self-test in CI and tests/test_hostprof.py)
    rc = evaluation_main(
        ["diff", str(a), str(b), "--host-tolerance", "1.0", "--fail-on-drift"]
    )
    assert rc == 0
    assert "verdict: OK" in capsys.readouterr().out
