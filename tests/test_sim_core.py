"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DeadlockError, SimulationError
from repro.sim import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_empty_run(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()

        def proc(sim):
            yield 2.5
            yield 1.5

        sim.spawn(proc(sim))
        assert sim.run() == 4.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=20))
    def test_clock_is_max_of_parallel_sleeps(self, delays):
        sim = Simulator()

        def sleeper(sim, d):
            yield d

        for d in delays:
            sim.spawn(sleeper(sim, d))
        assert sim.run() == pytest.approx(max(delays))


class TestProcesses:
    def test_join_returns_value(self):
        sim = Simulator()
        results = []

        def child(sim):
            yield 1.0
            return 42

        def parent(sim):
            value = yield sim.spawn(child(sim))
            results.append(value)

        sim.spawn(parent(sim))
        sim.run()
        assert results == [42]

    def test_exception_propagates_to_joiner(self):
        sim = Simulator()
        caught = []

        def child(sim):
            yield 1.0
            raise ValueError("boom")

        def parent(sim):
            try:
                yield sim.spawn(child(sim))
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(parent(sim))
        sim.run()
        assert caught == ["boom"]

    def test_unobserved_failure_aborts(self):
        sim = Simulator()

        def bad(sim):
            yield 1.0
            raise RuntimeError("silent")

        sim.spawn(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_yield_bad_object_raises(self):
        sim = Simulator()

        def bad(sim):
            yield object()

        def parent(sim):
            yield sim.spawn(bad(sim))

        sim.spawn(parent(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_sequential_spawns_are_fifo_at_same_time(self):
        sim = Simulator()
        order = []

        def proc(sim, tag):
            order.append(tag)
            yield 0.0
            order.append(tag + "!")

        for tag in "abc":
            sim.spawn(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c", "a!", "b!", "c!"]

    def test_determinism(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(sim, i):
                yield (i * 7) % 3 + 0.5
                log.append((sim.now, i))
                yield 0.25
                log.append((sim.now, -i))

            for i in range(10):
                sim.spawn(worker(sim, i))
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestEvents:
    def test_manual_event_value(self):
        sim = Simulator()
        got = []

        def waiter(sim, evt):
            got.append((yield evt))

        evt = sim.event("signal")
        sim.spawn(waiter(sim, evt))

        def firer(sim):
            yield 3.0
            evt.trigger("payload")

        sim.spawn(firer(sim))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        evt = sim.event()
        evt.trigger(1)
        with pytest.raises(SimulationError):
            evt.trigger(2)

    def test_callback_after_trigger_still_fires(self):
        sim = Simulator()
        evt = sim.event()
        evt.trigger("v")
        sim.run()
        fired = []
        evt.add_callback(lambda e: fired.append(e.value))
        sim.run()
        assert fired == ["v"]

    def test_all_of(self):
        sim = Simulator()
        got = []

        def proc(sim):
            values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            got.append((sim.now, values))

        sim.spawn(proc(sim))
        sim.run()
        assert got == [(3.0, ["a", "b"])]

    def test_all_of_empty(self):
        sim = Simulator()
        done = []

        def proc(sim):
            yield sim.all_of([])
            done.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert done == [0.0]

    def test_any_of_first_wins(self):
        sim = Simulator()
        got = []

        def proc(sim):
            index, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            got.append((sim.now, index, value))

        sim.spawn(proc(sim))
        sim.run()
        assert got == [(1.0, 1, "fast")]


class TestDeadlock:
    def test_detects_deadlock(self):
        sim = Simulator()

        def stuck(sim):
            yield sim.event("never")

        sim.spawn(stuck(sim))
        with pytest.raises(DeadlockError):
            sim.run()

    def test_run_until_pauses(self):
        sim = Simulator()

        def proc(sim):
            yield 10.0

        sim.spawn(proc(sim))
        assert sim.run(until=4.0) == 4.0
        assert sim.pending_events == 1
        assert sim.run() == 10.0
