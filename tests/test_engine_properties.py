"""Property-based tests: the engines against pure-Python oracles on
randomized inputs, and conservation invariants of the data plane."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import pagerank, wordcount
from repro.apps.base import AppEnv
from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    CollectionSource,
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
    Reduce,
)
from repro.mapreduce import HadoopEngine, Mapper, MRJob, Reducer
from repro.storage import DFS

slow_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

words = st.text(alphabet="abcdefg", min_size=1, max_size=4)
corpus = st.lists(
    st.lists(words, min_size=0, max_size=8).map(" ".join), min_size=0, max_size=25
)


def count_reference(lines):
    counts = {}
    for line in lines:
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


class TestWordCountOracle:
    @slow_settings
    @given(corpus, st.integers(min_value=2, max_value=5))
    def test_hamr_matches_python(self, lines, workers):
        records = list(enumerate(lines))
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=workers)))
        g = FlowletGraph("wc")
        loader = g.add(Loader("load", CollectionSource(records)))
        tok = g.add(
            Map("tok", fn=lambda ctx, _k, line: [ctx.emit(w, 1) for w in line.split()] and None)
        )
        count = g.add(
            PartialReduce("count", initial=lambda _w: 0, combine=lambda a, v: a + v)
        )
        g.connect(loader, tok)
        g.connect(tok, count)
        result = engine.run(g)
        assert dict(result.output("count")) == count_reference(lines)

    @slow_settings
    @given(corpus)
    def test_hadoop_matches_python(self, lines):
        records = list(enumerate(lines))
        cluster = Cluster(small_cluster_spec(num_workers=3))
        dfs = DFS(cluster)
        dfs.ingest("in", records)
        engine = HadoopEngine(cluster, dfs)

        def tok(ctx, _k, line):
            for w in line.split():
                ctx.emit(w, 1)

        job = MRJob(
            "wc", "in", "out",
            mapper=Mapper(fn=tok),
            reducer=Reducer(fn=lambda ctx, w, vs: ctx.emit(w, sum(vs))),
        )
        result = engine.run(job)
        assert dict(result.outputs) == count_reference(lines)


class TestConservation:
    @slow_settings
    @given(
        st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=40),
        st.integers(min_value=2, max_value=6),
    )
    def test_identity_pipeline_delivers_every_pair_once(self, pairs, workers):
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=workers)))
        g = FlowletGraph("ident")
        loader = g.add(Loader("load", CollectionSource(pairs, splits_per_worker=2)))
        ident = g.add(Map("ident", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g.connect(loader, ident)
        result = engine.run(g)
        assert sorted(result.output("ident"), key=repr) == sorted(pairs, key=repr)

    @slow_settings
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(-100, 100)), max_size=40))
    def test_reduce_sees_exactly_the_emitted_multiset(self, pairs):
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=3)))
        g = FlowletGraph("grp")
        loader = g.add(Loader("load", CollectionSource(pairs)))
        red = g.add(Reduce("red", fn=lambda ctx, k, vs: ctx.emit(k, sorted(vs))))
        g.connect(loader, red)
        result = engine.run(g)
        expected = {}
        for k, v in pairs:
            expected.setdefault(k, []).append(v)
        assert dict(result.output("red")) == {
            k: sorted(vs) for k, vs in expected.items()
        }

    @slow_settings
    @given(st.lists(st.integers(1, 5), min_size=1, max_size=4))
    def test_map_chain_composes(self, multipliers):
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=2)))
        g = FlowletGraph("chain")
        inputs = [(i, i) for i in range(12)]
        prev = g.add(Loader("load", CollectionSource(inputs)))
        for stage, m in enumerate(multipliers):
            mapper = g.add(
                Map(f"x{stage}", fn=lambda ctx, k, v, m=m: ctx.emit(k, v * m))
            )
            g.connect(prev, mapper)
            prev = mapper
        result = engine.run(g)
        product = 1
        for m in multipliers:
            product *= m
        assert sorted(result.output(prev.name)) == [(i, i * product) for i in range(12)]


class TestPageRankOracle:
    @slow_settings
    @given(
        st.integers(min_value=10, max_value=40),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=99),
    )
    def test_hamr_matches_reference(self, n_pages, iterations, seed):
        params = pagerank.PageRankParams(
            n_pages=n_pages, n_edges=n_pages * 3, iterations=iterations, seed=seed
        )
        edges = pagerank.generate_input(params)
        expected = pagerank.reference(edges, params)
        env = AppEnv(small_cluster_spec(num_workers=3))
        result = pagerank.run_hamr(env, params, edges)
        assert set(result.output) == set(expected)
        for page, rank in expected.items():
            assert result.output[page] == pytest.approx(rank, rel=1e-9)


class TestWordCountEnginesAgree:
    @slow_settings
    @given(corpus)
    def test_both_engines_identical_output(self, lines):
        records = list(enumerate(lines))
        params = wordcount.WordCountParams()
        hamr = wordcount.run_hamr(AppEnv(small_cluster_spec()), params, records)
        hadoop = wordcount.run_hadoop(AppEnv(small_cluster_spec()), params, records)
        assert hamr.output == hadoop.output
