"""End-to-end tests of the HAMR flowlet engine on small jobs."""

import pytest

from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    CollectionSource,
    DFSSource,
    EdgeMode,
    FlowletGraph,
    HamrEngine,
    KVStoreSource,
    Loader,
    Map,
    PartialReduce,
    PerNodeSource,
    Reduce,
    StreamSource,
    TimedBatch,
    sum_combiner,
)
from repro.storage import DFS


def make_engine(num_workers=4, **kw):
    cluster = Cluster(small_cluster_spec(num_workers=num_workers, **kw))
    return HamrEngine(cluster)


def wordcount_graph(source, use_partial=True, combiner=None):
    g = FlowletGraph("wordcount")
    loader = g.add(Loader("lines", source))
    tokenize = g.add(
        Map(
            "tokenize",
            fn=lambda ctx, _off, line: [ctx.emit(w, 1) for w in line.split()] and None,
        )
    )
    if use_partial:
        count = g.add(
            PartialReduce("count", initial=lambda k: 0, combine=lambda a, v: a + v)
        )
    else:
        count = g.add(Reduce("count", fn=lambda ctx, k, vs: ctx.emit(k, sum(vs))))
    g.connect(loader, tokenize)
    g.connect(tokenize, count, combiner=combiner)
    return g


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog"),
]
EXPECTED = {"the": 3, "quick": 2, "dog": 2, "brown": 1, "fox": 1, "lazy": 1}


class TestWordCount:
    def test_partial_reduce_counts(self):
        engine = make_engine()
        result = engine.run(wordcount_graph(CollectionSource(LINES)))
        assert dict(result.output("count")) == EXPECTED
        assert result.makespan > 0

    def test_full_reduce_counts(self):
        engine = make_engine()
        result = engine.run(wordcount_graph(CollectionSource(LINES), use_partial=False))
        assert dict(result.output("count")) == EXPECTED

    def test_combiner_preserves_result(self):
        engine = make_engine()
        result = engine.run(
            wordcount_graph(CollectionSource(LINES), combiner=sum_combiner())
        )
        assert dict(result.output("count")) == EXPECTED

    def test_from_dfs(self):
        engine = make_engine()
        dfs = DFS(engine.cluster)
        dfs.ingest("input.txt", LINES)
        result = engine.run(wordcount_graph(DFSSource(dfs, "input.txt")))
        assert dict(result.output("count")) == EXPECTED

    def test_larger_input_spread_over_nodes(self):
        engine = make_engine(num_workers=5)
        lines = [(i, f"word{i % 23} word{i % 7} filler") for i in range(500)]
        result = engine.run(wordcount_graph(CollectionSource(lines, splits_per_worker=3)))
        counts = dict(result.output("count"))
        assert counts["filler"] == 500
        assert sum(counts.values()) == 1500

    def test_determinism(self):
        def run_once():
            engine = make_engine()
            result = engine.run(wordcount_graph(CollectionSource(LINES)))
            return result.makespan, sorted(result.output("count"))

        assert run_once() == run_once()


class TestDagFeatures:
    def test_fan_out_data_reuse(self):
        # §3.2: "HAMR only needs to load data once and connect the loader
        # to two flowlets with different functions".
        engine = make_engine()
        g = FlowletGraph("fanout")
        loader = g.add(Loader("load", CollectionSource([(i, i) for i in range(20)])))
        evens = g.add(
            Map("evens", fn=lambda ctx, k, v: ctx.emit(k, v) if v % 2 == 0 else None)
        )
        odds = g.add(
            Map("odds", fn=lambda ctx, k, v: ctx.emit(k, v) if v % 2 == 1 else None)
        )
        g.connect(loader, evens)
        g.connect(loader, odds)
        result = engine.run(g)
        assert sorted(v for _, v in result.output("evens")) == list(range(0, 20, 2))
        assert sorted(v for _, v in result.output("odds")) == list(range(1, 20, 2))

    def test_fan_in(self):
        engine = make_engine()
        g = FlowletGraph("fanin")
        l1 = g.add(Loader("l1", CollectionSource([("a", 1)] * 3)))
        l2 = g.add(Loader("l2", CollectionSource([("a", 10)] * 2)))
        total = g.add(PartialReduce("sum", initial=lambda k: 0, combine=lambda a, v: a + v))
        g.connect(l1, total)
        g.connect(l2, total)
        result = engine.run(g)
        assert result.output("sum") == [("a", 23)]

    def test_multi_phase_chain(self):
        # A chain of maps — the K-Cliques pattern (Alg. 3).
        engine = make_engine()
        g = FlowletGraph("chain")
        loader = g.add(Loader("load", CollectionSource([(i, 1) for i in range(10)])))
        prev = loader
        for stage in range(3):
            mapper = g.add(
                Map(f"stage{stage}", fn=lambda ctx, k, v: ctx.emit(k, v * 2))
            )
            g.connect(prev, mapper)
            prev = mapper
        result = engine.run(g)
        assert sorted(v for _, v in result.output("stage2")) == [8] * 10

    def test_local_edge_stays_on_node(self):
        engine = make_engine(num_workers=3)
        g = FlowletGraph("local")
        data = {
            w.node_id: [(w.node_id, f"rec{i}") for i in range(5)]
            for w in engine.cluster.workers
        }
        loader = g.add(Loader("load", PerNodeSource(data)))
        tag = g.add(Map("tag", fn=lambda ctx, k, v: ctx.emit(ctx.node.node_id, v)))
        g.connect(loader, tag, mode=EdgeMode.LOCAL)
        result = engine.run(g)
        # every record tagged with the node that originally held it
        for node_id, rec in result.output("tag"):
            assert rec in {f"rec{i}" for i in range(5)}
            assert node_id in data

    def test_broadcast_edge_replicates(self):
        engine = make_engine(num_workers=3)
        g = FlowletGraph("bcast")
        loader = g.add(Loader("load", CollectionSource([("c0", 42)])))
        recv = g.add(
            Map("recv", fn=lambda ctx, k, v: ctx.emit(ctx.worker_index, v))
        )
        g.connect(loader, recv, mode=EdgeMode.BROADCAST)
        result = engine.run(g)
        # each of the 3 workers saw the pair once
        assert sorted(k for k, _ in result.output("recv")) == [0, 1, 2]

    def test_emit_to_targets_one_edge(self):
        engine = make_engine()
        g = FlowletGraph("route")
        loader = g.add(Loader("load", CollectionSource([(i, i) for i in range(10)])))
        router = g.add(
            Map(
                "route",
                fn=lambda ctx, k, v: ctx.emit(k, v, to="low")
                if v < 5
                else ctx.emit(k, v, to="high"),
            )
        )
        low = g.add(Map("low", fn=lambda ctx, k, v: ctx.emit(k, v)))
        high = g.add(Map("high", fn=lambda ctx, k, v: ctx.emit(k, v)))
        g.connect(loader, router)
        g.connect(router, low)
        g.connect(router, high)
        result = engine.run(g)
        assert sorted(v for _, v in result.output("low")) == [0, 1, 2, 3, 4]
        assert sorted(v for _, v in result.output("high")) == [5, 6, 7, 8, 9]


class TestReduceSemantics:
    def test_reduce_groups_all_values(self):
        engine = make_engine()
        g = FlowletGraph("group")
        pairs = [(f"k{i % 3}", i) for i in range(30)]
        loader = g.add(Loader("load", CollectionSource(pairs)))
        reducer = g.add(Reduce("group", fn=lambda ctx, k, vs: ctx.emit(k, sorted(vs))))
        g.connect(loader, reducer)
        result = engine.run(g)
        out = dict(result.output("group"))
        assert out["k0"] == list(range(0, 30, 3))
        assert out["k1"] == list(range(1, 30, 3))
        assert out["k2"] == list(range(2, 30, 3))

    def test_reduce_spills_under_memory_pressure(self):
        # Tiny memory budget at high scale forces the grouped store to spill.
        cluster = Cluster(
            small_cluster_spec(num_workers=2, memory=200_000, scale=1000.0)
        )
        engine = HamrEngine(cluster)
        g = FlowletGraph("spilly")
        pairs = [(f"key{i % 50}", "v" * 50) for i in range(400)]
        loader = g.add(Loader("load", CollectionSource(pairs)))
        reducer = g.add(Reduce("collect", fn=lambda ctx, k, vs: ctx.emit(k, len(vs))))
        g.connect(loader, reducer)
        result = engine.run(g)
        assert sum(v for _, v in result.output("collect")) == 400
        assert result.metrics.get("reduce_spills", 0) > 0

    def test_counters_aggregate(self):
        engine = make_engine()
        g = FlowletGraph("counted")
        loader = g.add(Loader("load", CollectionSource([(i, i) for i in range(10)])))
        m = g.add(
            Map("m", fn=lambda ctx, k, v: ctx.counter("seen"))
        )
        g.connect(loader, m)
        result = engine.run(g)
        assert result.counters["seen"] == 10


class TestKVStoreIntegration:
    def test_kv_persists_across_jobs(self):
        engine = make_engine(num_workers=3)
        g1 = FlowletGraph("store")
        loader = g1.add(Loader("load", CollectionSource([(f"k{i}", i) for i in range(9)])))
        store = g1.add(Map("store", fn=lambda ctx, k, v: ctx.kv_put(k, v)))
        g1.connect(loader, store)
        engine.run(g1)
        assert engine.kvstore.total_entries() == 9

        g2 = FlowletGraph("reload")
        reload_ = g2.add(Loader("reload", KVStoreSource(engine.kvstore)))
        double = g2.add(Map("double", fn=lambda ctx, k, v: ctx.emit(k, v * 2)))
        g2.connect(reload_, double)
        result = engine.run(g2)
        assert dict(result.output("double")) == {f"k{i}": 2 * i for i in range(9)}

    def test_iterative_runs_accumulate_time(self):
        engine = make_engine()
        g = wordcount_graph(CollectionSource(LINES))
        r1 = engine.run(g)
        g2 = wordcount_graph(CollectionSource(LINES))
        r2 = engine.run(g2)
        assert r2.start_time >= r1.end_time
        assert r2.makespan > 0


class TestStreaming:
    def test_stream_batches_arrive_over_time(self):
        engine = make_engine(num_workers=2)
        batches = [
            TimedBatch.make(5.0, [(0, "hello world")]),
            TimedBatch.make(10.0, [(1, "hello again")]),
        ]
        g = wordcount_graph(StreamSource(batches, partitions=2))
        result = engine.run(g)
        assert dict(result.output("count")) == {"hello": 2, "world": 1, "again": 1}
        # the job cannot end before the last batch lands at t=10
        assert result.end_time >= 10.0

    def test_stream_requires_time_order(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            StreamSource([TimedBatch.make(5, []), TimedBatch.make(1, [])])


class TestFlowControl:
    def test_backpressure_stalls_recorded(self):
        # A fast producer into a tiny-capacity edge must hit flow control.
        from repro.cluster import CostModel, ClusterSpec, NodeSpec

        spec = ClusterSpec(
            num_nodes=3,
            node=NodeSpec(worker_threads=4, memory=1 << 30),
            cost=CostModel(bin_size=64, flow_capacity=128),
        )
        engine = HamrEngine(Cluster(spec))
        g = FlowletGraph("pressure")
        pairs = [("hot", i) for i in range(3000)]
        loader = g.add(Loader("load", CollectionSource(pairs)))
        slow = g.add(
            Map("slow", fn=lambda ctx, k, v: None, compute_factor=50.0)
        )
        g.connect(loader, slow)
        result = engine.run(g)
        assert result.metrics.get("flow_stalls", 0) > 0

    def test_no_stalls_with_roomy_buffers(self):
        engine = make_engine()
        result = engine.run(wordcount_graph(CollectionSource(LINES)))
        assert result.metrics.get("flow_stalls", 0) == 0
