"""Tests for tracing and utilization metering, plus seed derivation."""

import pytest

from repro.common.rng import derive_seed, make_rng
from repro.sim import Simulator, Trace, UtilizationMeter


class TestTrace:
    def test_records_time_and_payload(self):
        sim = Simulator()
        trace = Trace(sim)

        def proc(sim):
            trace.record("spill", nbytes=100)
            yield 2.0
            trace.record("spill", nbytes=200)
            trace.record("stall")

        sim.spawn(proc(sim))
        sim.run()
        assert trace.count("spill") == 2
        assert trace.count("stall") == 1
        assert [r.time for r in trace.filter("spill")] == [0.0, 2.0]
        assert trace.filter("spill")[1].payload == {"nbytes": 200}
        assert len(trace) == 3

    def test_disabled_trace_records_nothing(self):
        sim = Simulator()
        trace = Trace(sim, enabled=False)
        trace.record("x")
        assert len(trace) == 0

    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        sim = Simulator()
        trace = Trace(sim, max_records=3)
        for i in range(5):
            trace.record("tick", i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [r.payload["i"] for r in trace] == [2, 3, 4]
        # filtering still works over the retained window
        assert trace.count("tick") == 3

    def test_ring_buffer_no_drops_below_capacity(self):
        sim = Simulator()
        trace = Trace(sim, max_records=10)
        trace.record("tick")
        assert trace.dropped == 0
        assert len(trace) == 1

    def test_unbounded_default_unchanged(self):
        sim = Simulator()
        trace = Trace(sim)
        assert trace.max_records is None
        assert isinstance(trace.records, list)
        for _ in range(4):
            trace.record("tick")
        assert len(trace) == 4
        assert trace.dropped == 0

    def test_ring_buffer_rejects_nonpositive_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Trace(sim, max_records=0)


class TestUtilizationMeter:
    def test_half_busy(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=2)

        def proc(sim):
            meter.enter(2)
            yield 5.0
            meter.leave(2)
            yield 5.0

        sim.spawn(proc(sim))
        sim.run()
        assert meter.utilization() == pytest.approx(0.5)

    def test_leave_more_than_busy_rejected(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=1)
        with pytest.raises(ValueError):
            meter.leave()

    def test_zero_elapsed(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=1)
        assert meter.utilization() == 0.0

    def test_since_excludes_earlier_busy_time(self):
        # Regression: the busy integral used to accumulate from t=0 but be
        # divided by ``now - since``, overestimating windowed utilization.
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=1)

        def proc(sim):
            meter.enter()  # busy over [0, 5)
            yield 5.0
            meter.leave()  # idle over [5, 10)
            yield 5.0

        sim.spawn(proc(sim))
        sim.run()
        assert meter.utilization() == pytest.approx(0.5)
        # the [5, 10) window was fully idle — must be 0, not 1.0
        assert meter.utilization(since=5.0) == pytest.approx(0.0)
        # the [2.5, 10) window holds 2.5 busy seconds of 7.5
        assert meter.utilization(since=2.5) == pytest.approx(2.5 / 7.5)

    def test_since_mid_busy_interval(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=2)

        def proc(sim):
            yield 4.0
            meter.enter(2)  # both slots busy over [4, 8)
            yield 4.0
            meter.leave(2)
            yield 2.0

        sim.spawn(proc(sim))
        sim.run()
        # window [6, 10): 2 slots busy over [6, 8) -> 4 slot-seconds of 8
        assert meter.utilization(since=6.0) == pytest.approx(0.5)
        # a window starting after everything ended is all idle
        assert meter.utilization(since=9.0) == pytest.approx(0.0)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_name(self):
        assert derive_seed(42, "webgraph") != derive_seed(42, "text")

    def test_differs_by_master(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_rng_streams_independent(self):
        a = make_rng(7, "gen", 0).random(8)
        b = make_rng(7, "gen", 1).random(8)
        assert not (a == b).all()

    def test_rng_reproducible(self):
        assert (make_rng(7, "gen").random(8) == make_rng(7, "gen").random(8)).all()
