"""Tests for tracing and utilization metering, plus seed derivation."""

import pytest

from repro.common.rng import derive_seed, make_rng
from repro.sim import Simulator, Trace, UtilizationMeter


class TestTrace:
    def test_records_time_and_payload(self):
        sim = Simulator()
        trace = Trace(sim)

        def proc(sim):
            trace.record("spill", nbytes=100)
            yield 2.0
            trace.record("spill", nbytes=200)
            trace.record("stall")

        sim.spawn(proc(sim))
        sim.run()
        assert trace.count("spill") == 2
        assert trace.count("stall") == 1
        assert [r.time for r in trace.filter("spill")] == [0.0, 2.0]
        assert trace.filter("spill")[1].payload == {"nbytes": 200}
        assert len(trace) == 3

    def test_disabled_trace_records_nothing(self):
        sim = Simulator()
        trace = Trace(sim, enabled=False)
        trace.record("x")
        assert len(trace) == 0


class TestUtilizationMeter:
    def test_half_busy(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=2)

        def proc(sim):
            meter.enter(2)
            yield 5.0
            meter.leave(2)
            yield 5.0

        sim.spawn(proc(sim))
        sim.run()
        assert meter.utilization() == pytest.approx(0.5)

    def test_leave_more_than_busy_rejected(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=1)
        with pytest.raises(ValueError):
            meter.leave()

    def test_zero_elapsed(self):
        sim = Simulator()
        meter = UtilizationMeter(sim, capacity=1)
        assert meter.utilization() == 0.0


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_name(self):
        assert derive_seed(42, "webgraph") != derive_seed(42, "text")

    def test_differs_by_master(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_rng_streams_independent(self):
        a = make_rng(7, "gen", 0).random(8)
        b = make_rng(7, "gen", 1).random(8)
        assert not (a == b).all()

    def test_rng_reproducible(self):
        assert (make_rng(7, "gen").random(8) == make_rng(7, "gen").random(8)).all()
