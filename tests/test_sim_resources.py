"""Tests for simulated resources."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim import BandwidthResource, Resource, SerializedCell, Simulator
from repro.sim.resources import StripedBandwidth


class TestResource:
    def test_grant_immediately_when_free(self):
        sim = Simulator()
        pool = Resource(sim, capacity=4)
        done = []

        def proc(sim):
            yield pool.acquire(2)
            done.append(sim.now)
            pool.release(2)

        sim.spawn(proc(sim))
        sim.run()
        assert done == [0.0]
        assert pool.in_use == 0

    def test_serializes_when_exhausted(self):
        sim = Simulator()
        pool = Resource(sim, capacity=1)
        finish = []

        def proc(sim, tag):
            yield pool.acquire()
            yield 5.0
            pool.release()
            finish.append((tag, sim.now))

        sim.spawn(proc(sim, "a"))
        sim.spawn(proc(sim, "b"))
        sim.run()
        assert finish == [("a", 5.0), ("b", 10.0)]

    def test_parallelism_up_to_capacity(self):
        sim = Simulator()
        pool = Resource(sim, capacity=3)

        def proc(sim):
            yield pool.acquire()
            yield 5.0
            pool.release()

        for _ in range(6):
            sim.spawn(proc(sim))
        assert sim.run() == 10.0

    def test_fifo_grant_order(self):
        sim = Simulator()
        pool = Resource(sim, capacity=1)
        order = []

        def proc(sim, tag):
            yield pool.acquire()
            order.append(tag)
            yield 1.0
            pool.release()

        for tag in "abcd":
            sim.spawn(proc(sim, tag))
        sim.run()
        assert order == list("abcd")

    def test_over_release_rejected(self):
        sim = Simulator()
        pool = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_acquire_more_than_capacity_rejected(self):
        sim = Simulator()
        pool = Resource(sim, capacity=2)
        with pytest.raises(SimulationError):
            pool.acquire(3)

    def test_utilization(self):
        sim = Simulator()
        pool = Resource(sim, capacity=2)

        def proc(sim):
            yield pool.acquire(2)
            yield 10.0
            pool.release(2)
            yield 10.0  # idle tail

        def main(sim):
            yield sim.spawn(proc(sim))

        sim.spawn(main(sim))
        sim.run()
        assert pool.utilization() == pytest.approx(0.5)


class TestBandwidthResource:
    def test_single_transfer_time(self):
        sim = Simulator()
        disk = BandwidthResource(sim, bandwidth=100.0, latency=1.0)
        done = []

        def proc(sim):
            yield disk.transfer(500)
            done.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert done == [6.0]  # 1s latency + 500/100

    def test_transfers_serialize(self):
        sim = Simulator()
        disk = BandwidthResource(sim, bandwidth=100.0)
        times = []

        def proc(sim):
            yield disk.transfer(200)
            times.append(sim.now)
            # submitted by a second process at t=0 (below)

        def proc2(sim):
            yield disk.transfer(300)
            times.append(sim.now)

        sim.spawn(proc(sim))
        sim.spawn(proc2(sim))
        sim.run()
        assert times == [2.0, 5.0]

    def test_metrics(self):
        sim = Simulator()
        disk = BandwidthResource(sim, bandwidth=10.0)

        def proc(sim):
            yield disk.transfer(50)
            yield disk.transfer(50)

        sim.spawn(proc(sim))
        sim.run()
        assert disk.total_bytes == 100
        assert disk.total_ops == 2
        assert disk.utilization() == pytest.approx(1.0)

    def test_zero_byte_transfer_has_latency_only(self):
        sim = Simulator()
        nic = BandwidthResource(sim, bandwidth=1e9, latency=0.001)

        def proc(sim):
            yield nic.transfer(0)

        sim.spawn(proc(sim))
        assert sim.run() == pytest.approx(0.001)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=20),
        st.floats(min_value=1.0, max_value=1e6),
    )
    def test_makespan_is_total_bytes_over_bandwidth(self, sizes, bw):
        sim = Simulator()
        disk = BandwidthResource(sim, bandwidth=bw)

        def proc(sim, n):
            yield disk.transfer(n)

        for n in sizes:
            sim.spawn(proc(sim, n))
        assert sim.run() == pytest.approx(sum(sizes) / bw)


class TestSerializedCell:
    def test_updates_serialize(self):
        sim = Simulator()
        cell = SerializedCell(sim, update_cost=0.5)
        times = []

        def proc(sim):
            yield cell.update()
            times.append(sim.now)

        for _ in range(4):
            sim.spawn(proc(sim))
        sim.run()
        assert times == [0.5, 1.0, 1.5, 2.0]
        assert cell.total_updates == 4

    def test_batched_updates(self):
        sim = Simulator()
        cell = SerializedCell(sim, update_cost=0.1)

        def proc(sim):
            yield cell.update(10)

        sim.spawn(proc(sim))
        assert sim.run() == pytest.approx(1.0)

    def test_zero_cost_is_instant(self):
        sim = Simulator()
        cell = SerializedCell(sim, update_cost=0.0)

        def proc(sim):
            yield cell.update(1000)

        sim.spawn(proc(sim))
        assert sim.run() == 0.0


class TestStripedBandwidth:
    def test_stripes_across_devices(self):
        sim = Simulator()
        disks = [BandwidthResource(sim, bandwidth=100.0) for _ in range(5)]
        striped = StripedBandwidth(disks, stripe_unit=10)

        def proc(sim):
            yield striped.transfer(1000)

        sim.spawn(proc(sim))
        # 1000 bytes over 5 disks at 100 B/s each → 200/100 = 2s, not 10s
        assert sim.run() == pytest.approx(2.0)
        assert striped.total_bytes == 1000

    def test_small_transfer_single_device(self):
        sim = Simulator()
        disks = [BandwidthResource(sim, bandwidth=100.0) for _ in range(2)]
        striped = StripedBandwidth(disks, stripe_unit=1000)

        def proc(sim):
            yield striped.transfer(100)
            yield striped.transfer(100)

        sim.spawn(proc(sim))
        sim.run()
        # round-robin: one op per device
        assert disks[0].total_ops == 1
        assert disks[1].total_ops == 1
