"""Tests for the benchmark environment plumbing and workload consistency."""


import repro
from repro.apps.base import AppEnv, AppResult
from repro.cluster import small_cluster_spec
from repro.evaluation.paper import PAPER_TABLE2
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name


class TestAppEnv:
    def test_fresh_env_components_share_cluster(self):
        env = AppEnv(small_cluster_spec(num_workers=3))
        assert env.hamr.cluster is env.cluster
        assert env.hadoop.cluster is env.cluster
        assert env.hamr.localfs is env.localfs
        assert env.hamr.kvstore is env.kvstore
        assert env.hadoop.dfs is env.dfs

    def test_ingest_local_round_robin(self):
        env = AppEnv(small_cluster_spec(num_workers=3))
        env.ingest_local("data", list(range(10)))
        sizes = [
            env.localfs.get_file(w.node_id, "data").nrecords
            for w in env.cluster.workers
        ]
        assert sorted(sizes) == [3, 3, 4]
        total = []
        for w in env.cluster.workers:
            total.extend(env.localfs.get_file(w.node_id, "data").records)
        assert sorted(total) == list(range(10))

    def test_ingest_dfs(self):
        env = AppEnv(small_cluster_spec(num_workers=3))
        env.ingest_dfs("f", [(0, "x")])
        assert env.dfs.exists("f")

    def test_default_spec(self):
        env = AppEnv()
        assert env.cluster.num_workers == 4


class TestWorkloadConsistency:
    def test_data_size_labels_match_paper(self):
        for name in TABLE2_ORDER:
            workload = workload_by_name(name, "tiny")
            assert workload.data_size == PAPER_TABLE2[name].data_size

    def test_labels_match_paper(self):
        for name in TABLE2_ORDER:
            workload = workload_by_name(name, "tiny")
            assert workload.label == PAPER_TABLE2[name].benchmark

    def test_fidelity_scales_real_data(self):
        tiny = workload_by_name("wordcount", "tiny")
        small = workload_by_name("wordcount", "small")
        assert small.real_bytes > 5 * tiny.real_bytes
        # modeled size stays constant across fidelities
        assert tiny.modeled_bytes == small.modeled_bytes

    def test_seed_changes_records(self):
        a = workload_by_name("wordcount", "tiny", seed=1)
        b = workload_by_name("wordcount", "tiny", seed=2)
        assert a.records != b.records


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_app_result_shape(self):
        result = AppResult("x", "hamr", 1.5, {"k": 1})
        assert result.makespan == 1.5
        assert result.counters == {}
        assert result.metrics == {}
