"""Edge-case tests for the simulation kernel and substrate pieces that the
engine paths don't exercise directly."""

import pytest

from repro.common.errors import SimulationError
from repro.core.bins import Bin, BinPacker
from repro.sim import BandwidthResource, SerializedCell, Simulator, SimQueue


class TestEventFailures:
    def test_all_of_fails_with_first_failure(self):
        sim = Simulator()
        caught = []

        def failer(sim):
            yield 1.0
            raise ValueError("child died")

        def parent(sim):
            child = sim.spawn(failer(sim))
            try:
                yield sim.all_of([sim.timeout(5), child.completion])
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        sim.spawn(parent(sim))
        sim.run()
        assert caught == [(1.0, "child died")]

    def test_any_of_failure_propagates(self):
        sim = Simulator()
        caught = []

        def failer(sim):
            yield 1.0
            raise RuntimeError("fast failure")

        def parent(sim):
            child = sim.spawn(failer(sim))
            try:
                yield sim.any_of([sim.timeout(10), child.completion])
            except RuntimeError:
                caught.append(sim.now)

        sim.spawn(parent(sim))
        sim.run()
        assert caught == [1.0]

    def test_any_of_requires_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_join_after_completion(self):
        sim = Simulator()
        got = []

        def quick(sim):
            yield 1.0
            return "done"

        def late_joiner(sim, child):
            yield 5.0  # child finished long ago
            got.append((yield child))

        child = sim.spawn(quick(sim))
        sim.spawn(late_joiner(sim, child))
        sim.run()
        assert got == ["done"]

    def test_event_fail_then_callback(self):
        sim = Simulator()
        evt = sim.event("e")
        evt.fail(ValueError("late"))
        sim.run()
        seen = []
        evt.add_callback(lambda e: seen.append(type(e.exception).__name__))
        sim.run()
        assert seen == ["ValueError"]


class TestRunControl:
    def test_run_until_then_resume_preserves_order(self):
        sim = Simulator()
        order = []

        def proc(sim, tag, delay):
            yield delay
            order.append(tag)

        sim.spawn(proc(sim, "a", 1.0))
        sim.spawn(proc(sim, "b", 3.0))
        sim.run(until=2.0)
        assert order == ["a"]
        sim.run()
        assert order == ["a", "b"]

    def test_step(self):
        sim = Simulator()

        def proc(sim):
            yield 1.0
            yield 1.0

        sim.spawn(proc(sim))
        steps = 0
        while sim.step():
            steps += 1
        assert steps >= 2
        assert sim.now == 2.0


class TestQueueEdgeCases:
    def test_try_get(self):
        sim = Simulator()
        q = SimQueue(sim)
        assert q.try_get() == (False, None)
        q.try_put("x")
        assert q.try_get() == (True, "x")

    def test_close_with_blocked_producer_rejected(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=1)
        q.try_put("a")
        q.put("b")  # blocks
        with pytest.raises(SimulationError):
            q.close()

    def test_getter_gets_handed_item_directly(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=1)
        got = []

        def consumer(sim):
            got.append((yield q.get()))

        def producer(sim):
            yield 1.0
            yield q.put("direct")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert got == ["direct"]
        assert len(q) == 0


class TestCellContention:
    def test_idle_cell_charges_base_cost(self):
        sim = Simulator()
        cell = SerializedCell(sim, update_cost=1.0, base_cost=0.1)

        def proc(sim):
            yield cell.update()
            yield 10.0  # let the cell go idle
            yield cell.update()

        sim.spawn(proc(sim))
        sim.run()
        assert cell.contended_updates == 0
        assert sim.now == pytest.approx(0.1 + 10.0 + 0.1)

    def test_busy_cell_charges_contended_cost(self):
        sim = Simulator()
        cell = SerializedCell(sim, update_cost=1.0, base_cost=0.1)

        def hammer(sim):
            yield cell.update()

        for _ in range(4):
            sim.spawn(hammer(sim))
        sim.run()
        # first update uncontended (0.1), the rest pile on (1.0 each)
        assert cell.contended_updates == 3
        assert sim.now == pytest.approx(0.1 + 3.0)

    def test_base_cannot_exceed_contended(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            SerializedCell(sim, update_cost=0.1, base_cost=1.0)


class TestBinPackerAggregated:
    def test_flag_propagates_to_bins(self):
        packer = BinPacker(bin_size=8, aggregated=True)
        sealed = packer.add(0, 0, "key", 123)
        assert sealed is not None
        assert sealed.aggregated

    def test_effective_records(self):
        b = Bin(0, 0)
        b.append("a", 1)
        b.append("b", 2)
        assert b.effective_records == 2
        combined = Bin(0, 0, represents=50)
        combined.append("a", 3)
        assert combined.effective_records == 50


class TestBandwidthEta:
    def test_eta_has_no_side_effects(self):
        sim = Simulator()
        pipe = BandwidthResource(sim, bandwidth=10.0, latency=0.5)
        eta = pipe.eta(100)
        assert eta == pytest.approx(0.5 + 10.0)
        assert pipe.total_ops == 0
        assert pipe.backlog == 0.0
