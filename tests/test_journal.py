"""Tests for durable run journals and byte-identical replay.

Mirrors the hostprof non-perturbation suite: journaling must be provably
one-way (virtual outputs byte-identical with the journal on or off), the
journal itself must be byte-deterministic across identical runs, and
replaying a journal must reproduce every derived view — report,
timeline, chrome trace, critical path — byte for byte, with no
re-execution.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster.spec import small_cluster_spec
from repro.evaluation.obsreport import report_json
from repro.evaluation.runner import run_workload
from repro.evaluation.telemetryreport import telemetry_json
from repro.evaluation.workloads import table2_workloads
from repro.obs.blame import BUCKETS
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    RECORD_TYPES,
    JournalError,
    JournalWriter,
    bucket_slowdown_from_env,
    decode_record,
    dilate_bucket_charges,
    encode_record,
    journal_open,
    load_journal,
    read_journal,
    seed_bucket_slowdown,
)
from repro.obs.replay import replay_file, replay_lines


def _run_journaled_wordcount(seed=0, target_bytes=50_000, trace_max_records=None,
                             sink=None):
    """One journaled hamr wordcount run on the small test cluster."""
    params = wordcount.WordCountParams(target_bytes=target_bytes, seed=seed)
    records = wordcount.generate_input(params)
    writer = JournalWriter(sink=sink)
    writer.write_header(
        workload="wordcount", label="WordCount", data_size="16GB", engine="hamr"
    )
    env = AppEnv(
        small_cluster_spec(num_workers=3), obs=True, journal=writer,
        trace_max_records=trace_max_records,
    )
    result = wordcount.run_hamr(env, params, records)
    trace = env.cluster.trace.summary()
    writer.write_footer(
        makespan=result.makespan,
        virtual_end=env.cluster.sim.now,
        trace_records=trace["records"],
        trace_dropped=trace["dropped"],
        trace_max_records=trace_max_records,
    )
    return env, result, writer


# -- encoding -------------------------------------------------------------------


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_records = st.fixed_dictionaries(
    {"t": st.sampled_from(RECORD_TYPES)},
    optional={
        "n": st.text(max_size=20),
        "v": _scalars,
        "l": st.lists(
            st.tuples(st.text(max_size=8), _scalars).map(list), max_size=3
        ),
        "a": st.dictionaries(st.text(max_size=8), _scalars, max_size=3),
    },
)


class TestEncoding:
    @given(_records)
    @settings(max_examples=200)
    def test_encode_decode_reencode_is_byte_identical(self, record):
        line = encode_record(record)
        assert "\n" not in line
        decoded = decode_record(line)
        assert decoded == record
        assert encode_record(decoded) == line

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_floats_round_trip_exactly(self, value):
        record = {"t": "c", "v": value}
        assert decode_record(encode_record(record))["v"] == value

    def test_int_float_distinction_survives(self):
        as_int = decode_record(encode_record({"t": "c", "v": 3}))["v"]
        as_float = decode_record(encode_record({"t": "c", "v": 3.0}))["v"]
        assert isinstance(as_int, int) and isinstance(as_float, float)

    @pytest.mark.parametrize(
        "line",
        ["not json", "[1, 2]", '"just a string"', '{"no": "type"}',
         '{"t": "nope"}'],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(JournalError):
            decode_record(line)

    def test_read_journal_validates_structure(self):
        header = encode_record({"t": "header", "schema": JOURNAL_SCHEMA})
        footer = encode_record({"t": "footer", "events": 0})
        with pytest.raises(JournalError, match="empty"):
            read_journal([])
        with pytest.raises(JournalError, match="header"):
            read_journal([footer])
        with pytest.raises(JournalError, match="schema"):
            read_journal([encode_record({"t": "header", "schema": "x/v9"}), footer])
        with pytest.raises(JournalError, match="footer"):
            read_journal([header, encode_record({"t": "c", "n": "x", "l": [], "v": 1})])
        assert len(read_journal([header, footer])) == 2


class TestWriter:
    def test_header_footer_lifecycle(self):
        writer = JournalWriter()
        writer.write_header(workload="w")
        writer.emit({"t": "e", "s": 1, "d": 2, "k": "produce"})
        writer.write_footer(makespan=1.5)
        records = read_journal(writer.lines)
        assert records[0]["schema"] == JOURNAL_SCHEMA
        assert records[0]["workload"] == "w"
        # the footer's event count excludes the footer itself
        assert records[-1]["events"] == 2
        assert records[-1]["makespan"] == 1.5
        with pytest.raises(JournalError, match="sealed"):
            writer.emit({"t": "e", "s": 2, "d": 3, "k": "produce"})

    def test_double_header_and_missing_header_raise(self):
        writer = JournalWriter()
        writer.write_header()
        with pytest.raises(JournalError, match="already"):
            writer.write_header()
        fresh = JournalWriter()
        with pytest.raises(JournalError, match="before header"):
            fresh.write_footer()

    def test_span_counts(self):
        writer = JournalWriter()
        writer.write_header()
        writer.emit({"t": "so", "id": 1, "n": "a", "c": "task", "st": 0.0})
        writer.emit({"t": "so", "id": 2, "n": "b", "c": "task", "st": 1.0})
        writer.emit({"t": "sc", "id": 1, "end": 2.0})
        writer.write_footer()
        footer = writer.records[-1]
        assert footer["spans_opened"] == 2
        assert footer["spans_closed"] == 1

    def test_sink_streams_identical_bytes(self):
        sink = io.StringIO()
        _env, _result, writer = _run_journaled_wordcount(sink=sink)
        assert sink.getvalue() == writer.getvalue()

    def test_save_load_round_trip(self, tmp_path):
        _env, _result, writer = _run_journaled_wordcount()
        path = tmp_path / "run.journal.jsonl"
        writer.save(str(path))
        assert replay_file(str(path)).tracer.to_json() == replay_lines(
            writer.lines
        ).tracer.to_json()


# -- non-perturbation and determinism --------------------------------------------


class TestNonPerturbation:
    def test_journaling_does_not_perturb_virtual_outputs(self):
        """Journal on vs off: every virtual artifact stays byte-identical."""
        params = wordcount.WordCountParams(target_bytes=50_000, seed=0)
        records = wordcount.generate_input(params)
        env_off = AppEnv(small_cluster_spec(num_workers=3), obs=True)
        res_off = wordcount.run_hamr(env_off, params, records)
        env_on, res_on, _writer = _run_journaled_wordcount()
        assert res_off.makespan == res_on.makespan
        assert env_off.obs.to_json() == env_on.obs.to_json()
        assert report_json(env_off.obs, "wordcount", "hamr") == report_json(
            env_on.obs, "wordcount", "hamr"
        )
        assert json.dumps(env_off.obs.to_chrome_trace(), sort_keys=True) == (
            json.dumps(env_on.obs.to_chrome_trace(), sort_keys=True)
        )

    def test_journal_requires_enabled_tracer(self):
        from repro.obs.spans import Tracer
        from repro.sim import Simulator

        with pytest.raises(ValueError, match="enabled"):
            Tracer(Simulator(), enabled=False, journal=JournalWriter())


class TestDeterminism:
    def test_identical_runs_journal_byte_identically(self):
        _e1, _r1, w1 = _run_journaled_wordcount()
        _e2, _r2, w2 = _run_journaled_wordcount()
        assert w1.getvalue() == w2.getvalue()

    def test_cross_engine_determinism_at_fixed_seed(self):
        from repro.evaluation.workloads import make_wordcount

        rows = [
            run_workload(make_wordcount("tiny", seed=0), engines="both", journal=True)
            for _ in range(2)
        ]
        assert rows[0].hamr_journal.getvalue() == rows[1].hamr_journal.getvalue()
        assert rows[0].hadoop_journal.getvalue() == rows[1].hadoop_journal.getvalue()
        # the two engines produce *different* journals for the same input
        assert rows[0].hamr_journal.getvalue() != rows[0].hadoop_journal.getvalue()


# -- replay ----------------------------------------------------------------------


class TestReplay:
    def test_replay_metadata(self):
        _env, result, writer = _run_journaled_wordcount()
        run = replay_lines(writer.lines)
        assert run.workload == "wordcount"
        assert run.engine == "hamr"
        assert run.label == "WordCount"
        assert run.makespan == result.makespan
        assert run.trace_dropped == 0
        assert "WordCount" in run.title()

    def test_replay_reconstructs_wordcount_byte_identically(self):
        env, _result, writer = _run_journaled_wordcount()
        run = replay_lines(writer.lines)
        assert run.tracer.to_json() == env.obs.to_json()
        assert report_json(run.tracer, "wordcount", "hamr") == report_json(
            env.obs, "wordcount", "hamr"
        )
        assert telemetry_json(run.tracer, "wordcount", "hamr") == telemetry_json(
            env.obs, "wordcount", "hamr"
        )
        assert json.dumps(run.tracer.to_chrome_trace(), sort_keys=True) == (
            json.dumps(env.obs.to_chrome_trace(), sort_keys=True)
        )

    def test_replay_equals_live_for_all_table2_workloads(self):
        """The acceptance bar: every Table 2 workload x both engines
        replays to a byte-identical report from the journal alone."""
        for w in table2_workloads("tiny"):
            row = run_workload(w, engines="both", journal=True)
            for engine, writer, tracer in (
                ("hamr", row.hamr_journal, row.hamr_obs),
                ("hadoop", row.hadoop_journal, row.hadoop_obs),
            ):
                run = replay_lines(writer.lines)
                assert report_json(run.tracer, w.name, engine) == report_json(
                    tracer, w.name, engine
                ), f"{w.name}/{engine} replay diverged from the live report"
                assert telemetry_json(run.tracer, w.name, engine) == (
                    telemetry_json(tracer, w.name, engine)
                ), f"{w.name}/{engine} replay diverged from the live timeline"

    def test_replay_rejects_unknown_mid_journal_record(self):
        writer = JournalWriter()
        writer.write_header()
        writer.emit({"t": "header", "schema": JOURNAL_SCHEMA})  # header mid-stream
        writer.write_footer()
        with pytest.raises(JournalError, match="mid-journal"):
            replay_lines(writer.lines)


# -- trace drop accounting --------------------------------------------------------


class TestTraceDropped:
    def test_ring_buffer_summary_counts_evictions(self):
        from repro.sim import Simulator, Trace

        trace = Trace(Simulator(), max_records=3)
        for i in range(7):
            trace.record("spill", run=i)
        summary = trace.summary()
        assert summary == {"records": 3, "dropped": 4, "max_records": 3}
        # the newest records are the ones kept
        assert [r.payload["run"] for r in trace.records] == [4, 5, 6]

    def test_bounded_run_footer_carries_the_drop_count(self):
        # hadoop naive_bayes spills at tiny (sim-trace records exist),
        # so a tight bound provably evicts
        from repro.evaluation.workloads import make_naive_bayes

        row = run_workload(
            make_naive_bayes("tiny", seed=0), engines="hadoop",
            journal=True, trace_max_records=5,
        )
        footer = row.hadoop_journal.records[-1]
        assert footer["trace_records"] == 5
        assert footer["trace_dropped"] == row.hadoop_trace_dropped > 0
        assert footer["trace_max_records"] == 5
        run = replay_lines(row.hadoop_journal.lines)
        assert run.trace_dropped == footer["trace_dropped"]
        assert run.trace_max_records == 5

    def test_unbounded_trace_drops_nothing(self):
        env, _result, writer = _run_journaled_wordcount()
        assert env.cluster.trace.summary()["dropped"] == 0
        assert writer.records[-1]["trace_dropped"] == 0

    def test_report_warns_on_dropped_records(self, capsys):
        from repro.evaluation.__main__ import main

        rc = main(["report", "--workload", "naive_bayes", "--engine", "hadoop",
                   "--fidelity", "tiny", "--trace-max-records", "5",
                   "--json", "-"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "WARNING" in err and "trace records dropped" in err

    def test_non_positive_trace_bound_exits_2(self, capsys):
        from repro.evaluation.__main__ import main

        for bad in ("0", "-3"):
            assert main(["report", "--workload", "wordcount",
                         "--trace-max-records", bad]) == 2
        assert "must be positive" in capsys.readouterr().err


# -- seeded synthetic regression --------------------------------------------------


class TestSeededSlowdown:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_SLOWDOWN", raising=False)
        assert bucket_slowdown_from_env() is None
        # the workload=factor form belongs to bench_obs, not the journal
        monkeypatch.setenv("REPRO_OBS_SLOWDOWN", "wordcount=2.0")
        assert bucket_slowdown_from_env() is None
        monkeypatch.setenv("REPRO_OBS_SLOWDOWN", "disk=2.0")
        assert bucket_slowdown_from_env() == ("disk", 2.0)
        monkeypatch.setenv("REPRO_OBS_SLOWDOWN", "disk=fast")
        with pytest.raises(SystemExit):
            bucket_slowdown_from_env()

    def test_rejects_bad_arguments(self):
        _env, _result, writer = _run_journaled_wordcount()
        with pytest.raises(ValueError, match="bucket"):
            seed_bucket_slowdown(writer.records, "nope", 2.0)
        with pytest.raises(ValueError, match="positive"):
            seed_bucket_slowdown(writer.records, "disk", 0.0)

    def test_dilation_grows_makespan_and_scales_charges(self):
        _env, _result, writer = _run_journaled_wordcount()
        records = writer.records
        factor = 2.0
        disk_total = sum(
            r["v"] for r in records if r["t"] == "b" and r["bk"] == "disk"
            and r.get("sp") is not None
        )
        assert disk_total > 0
        seeded = seed_bucket_slowdown(records, "disk", factor)
        base_footer, new_footer = records[-1], seeded[-1]
        grown = new_footer["makespan"] - base_footer["makespan"]
        assert grown == pytest.approx((factor - 1.0) * disk_total)
        assert new_footer["seeded_slowdown"] == {"bucket": "disk", "factor": factor}
        # every span's dilated interval is covered by its (scaled +
        # compensating) charges, so the critical path sees no phantom time
        assert sum(
            r["v"] for r in seeded if r["t"] == "b" and r["bk"] == "disk"
        ) >= factor * disk_total - 1e-9

    def test_dilation_preserves_event_order_and_replays(self):
        _env, _result, writer = _run_journaled_wordcount()
        seeded = seed_bucket_slowdown(writer.records, "disk", 2.0)
        # monotone remap: span opens never move before their original order
        opens = [r["st"] for r in seeded if r["t"] == "so"]
        base_opens = [r["st"] for r in writer.records if r["t"] == "so"]
        for base, new in zip(base_opens, opens):
            assert new >= base - 1e-12
        lines = [encode_record(r) for r in seeded]
        run = replay_lines(lines)
        assert run.makespan == seeded[-1]["makespan"]
        # the dilated journal still renders every derived view
        assert report_json(run.tracer, "wordcount", "hamr")

    def test_identity_factor_changes_only_the_footer(self):
        _env, _result, writer = _run_journaled_wordcount()
        seeded = seed_bucket_slowdown(writer.records, "disk", 1.0)
        assert len(seeded) == len(writer.records)
        assert seeded[:-1] == writer.records[:-1]

    def test_explain_ranks_seeded_bucket_first(self):
        """The CI self-test, in-process: a seeded disk slowdown must come
        back as the #1 makespan-delta contributor."""
        from repro.obs.explain import explain, side_from_tracer

        _env, _result, writer = _run_journaled_wordcount()
        assert "disk" in BUCKETS
        seeded = seed_bucket_slowdown(writer.records, "disk", 2.0)
        base = replay_lines(writer.lines)
        inflated = replay_lines([encode_record(r) for r in seeded])
        result = explain(
            side_from_tracer(base.tracer, "baseline"),
            side_from_tracer(inflated.tracer, "inflated"),
        )
        assert result.makespan_delta > 0
        assert result.top["buckets"] == "disk"
        top_row = result.rows["buckets"][0]
        assert top_row[0] == "disk"
        # the ranked contribution explains (at least) the makespan growth
        assert top_row[3] == pytest.approx(result.makespan_delta, rel=0.05)


# -- gzip transport ---------------------------------------------------------------


class TestGzipJournals:
    def test_gz_round_trip_is_byte_identical(self, tmp_path):
        """Same canonical encoding under gzip: decompressed bytes match the
        plain file, and replay reconstructs the identical tracer."""
        import gzip

        _env, _result, writer = _run_journaled_wordcount()
        plain = tmp_path / "run.journal.jsonl"
        packed = tmp_path / "run.journal.jsonl.gz"
        writer.save(str(plain))
        writer.save(str(packed))
        assert gzip.open(str(packed), "rb").read() == plain.read_bytes()
        assert replay_file(str(packed)).tracer.to_json() == replay_file(
            str(plain)
        ).tracer.to_json()

    def test_gz_files_are_deterministic(self, tmp_path):
        """No mtime/filename leaks into the gzip container."""
        _env, _result, writer = _run_journaled_wordcount()
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        writer.save(str(a))
        writer.save(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_journal_open_modes(self, tmp_path):
        path = tmp_path / "x.jsonl.gz"
        with journal_open(str(path), "w") as fh:
            fh.write("hello\n")
        with journal_open(str(path)) as fh:
            assert fh.read() == "hello\n"
        with pytest.raises(ValueError):
            journal_open(str(path), "a")


# -- truncated journals -----------------------------------------------------------


class TestPartialJournals:
    def test_footerless_journal_raises_by_default(self):
        _env, _result, writer = _run_journaled_wordcount()
        truncated = writer.lines[:-1]
        with pytest.raises(JournalError, match="allow-partial"):
            read_journal(truncated)

    def test_allow_partial_reconstructs_the_makespan(self):
        _env, result, writer = _run_journaled_wordcount()
        truncated = writer.lines[:-1]
        records = read_journal(truncated, allow_partial=True)
        footer = records[-1]
        assert footer["partial"] is True
        assert footer["makespan"] == result.makespan
        run = replay_lines(truncated, allow_partial=True)
        assert run.partial and run.makespan == result.makespan

    def test_partial_flag_defaults_false_on_complete_journals(self):
        _env, _result, writer = _run_journaled_wordcount()
        assert replay_lines(writer.lines).partial is False

    def test_midfile_truncation_keeps_the_complete_prefix(self):
        _env, _result, writer = _run_journaled_wordcount()
        cut = len(writer.lines) // 2
        truncated = writer.lines[:cut] + [writer.lines[cut][: 10]]
        with pytest.raises(JournalError):
            read_journal(truncated)
        records = read_journal(truncated, allow_partial=True)
        assert records[-1]["partial"] is True
        assert len(records) == cut + 1  # complete prefix + synthesized footer

    def test_replay_cli_exits_2_without_allow_partial(self, tmp_path, capsys):
        from repro.evaluation.__main__ import main

        _env, _result, writer = _run_journaled_wordcount()
        path = tmp_path / "trunc.jsonl"
        path.write_text("\n".join(writer.lines[:-1]) + "\n")
        assert main(["replay", str(path)]) == 2
        assert "allow-partial" in capsys.readouterr().err
        assert main(["replay", str(path), "--allow-partial"]) == 0
        assert "partial" in capsys.readouterr().err

    def test_load_journal_reads_partial_gz(self, tmp_path):
        _env, _result, writer = _run_journaled_wordcount()
        path = tmp_path / "trunc.jsonl.gz"
        with journal_open(str(path), "w") as fh:
            fh.write("\n".join(writer.lines[:-1]) + "\n")
        records = load_journal(str(path), allow_partial=True)
        assert records[-1]["partial"] is True


# -- multi-bucket dilation --------------------------------------------------------


class TestMultiBucketDilation:
    def test_single_bucket_wrapper_is_byte_identical(self):
        _env, _result, writer = _run_journaled_wordcount()
        via_wrapper = seed_bucket_slowdown(writer.records, "disk", 2.0)
        via_dict = dilate_bucket_charges(writer.records, {"disk": 2.0})
        assert [encode_record(r) for r in via_wrapper] == [
            encode_record(r) for r in via_dict
        ]

    def test_composed_factors_grow_by_both_buckets(self):
        _env, _result, writer = _run_journaled_wordcount()
        records = writer.records
        totals = {}
        for r in records:
            if r["t"] == "b" and r.get("sp") is not None:
                totals[r["bk"]] = totals.get(r["bk"], 0.0) + r["v"]
        out = dilate_bucket_charges(records, {"disk": 2.0, "network": 3.0})
        grown = out[-1]["makespan"] - records[-1]["makespan"]
        expected = totals.get("disk", 0.0) + 2.0 * totals.get("network", 0.0)
        assert grown == pytest.approx(expected)
        assert out[-1]["seeded_slowdown"] == {
            "buckets": {"disk": 2.0, "network": 3.0}
        }

    def test_composed_dilation_still_replays(self):
        _env, _result, writer = _run_journaled_wordcount()
        out = dilate_bucket_charges(writer.records, {"disk": 1.5, "compute": 2.0})
        run = replay_lines([encode_record(r) for r in out])
        assert run.makespan == out[-1]["makespan"]

    def test_rejects_bad_factor_dicts(self):
        _env, _result, writer = _run_journaled_wordcount()
        with pytest.raises(ValueError, match="bucket"):
            dilate_bucket_charges(writer.records, {"nope": 2.0})
        with pytest.raises(ValueError, match="positive"):
            dilate_bucket_charges(writer.records, {"disk": -1.0})


# -- reader resilience -------------------------------------------------------------


class TestReaderResilience:
    """A fleet warehouse ingests journals it did not write: corrupted
    lines, replayed duplicates and records from future schema versions
    must fail with a clean JournalError (or degrade explicitly under
    allow_partial), never with a KeyError deep in replay."""

    @pytest.fixture(scope="class")
    def lines(self):
        _env, _result, writer = _run_journaled_wordcount()
        return list(writer.lines)

    def test_garbage_interleaved_line_raises_cleanly(self, lines):
        torn = lines[: len(lines) // 2] + ["{'single': 'quotes"] + (
            lines[len(lines) // 2:]
        )
        with pytest.raises(JournalError, match="malformed journal line"):
            read_journal(torn)

    def test_allow_partial_keeps_the_prefix_before_the_tear(self, lines):
        cut = len(lines) // 2
        torn = lines[:cut] + ["\x00\x00garbage"] + lines[cut:]
        records = read_journal(torn, allow_partial=True)
        # everything before the tear survives; the tail is discarded and
        # a synthesized footer closes the stream
        assert len(records) == cut + 1
        assert records[-1]["t"] == "footer"
        assert records[-1]["partial"] is True
        run = replay_lines(torn, allow_partial=True)
        assert run.partial

    def test_duplicate_span_close_raises(self, lines):
        records = [decode_record(line) for line in lines]
        close = next(r for r in records if r["t"] == "sc")
        i = records.index(close)
        dup = records[: i + 1] + [dict(close)] + records[i + 1:]
        with pytest.raises(JournalError, match="duplicate close for span id"):
            replay_lines([encode_record(r) for r in dup])

    def test_close_for_unknown_span_raises(self, lines):
        records = [decode_record(line) for line in lines]
        close = dict(next(r for r in records if r["t"] == "sc"))
        close["id"] = 10**9
        dup = records[:-1] + [close] + records[-1:]
        with pytest.raises(JournalError, match="unknown span id"):
            replay_lines([encode_record(r) for r in dup])

    def test_unknown_future_record_type_raises(self, lines):
        future = lines[:-1] + ['{"t":"zz9","v":1}'] + lines[-1:]
        with pytest.raises(JournalError, match="unknown journal record type"):
            read_journal(future)

    def test_allow_partial_stops_at_a_future_record_type(self, lines):
        cut = len(lines) - 5
        future = lines[:cut] + ['{"t":"zz9","v":1}'] + lines[cut:]
        records = read_journal(future, allow_partial=True)
        assert len(records) == cut + 1
        assert records[-1]["partial"] is True

    def test_known_type_in_the_wrong_position_raises(self, lines):
        records = [decode_record(line) for line in lines]
        stray = records[:-1] + [dict(records[0])] + records[-1:]
        with pytest.raises(JournalError, match="mid-journal"):
            replay_lines([encode_record(r) for r in stray])

    def test_headerless_stream_raises(self, lines):
        with pytest.raises(JournalError, match="does not start with a header"):
            read_journal(lines[1:])
