"""Tests for the SQL layer: lexer/parser, compiler, execution on the engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.sql import Catalog, SQLError, SQLSession, parse
from repro.sql.ast import BinOp, Literal
from repro.sql.compiler import order_and_limit

MOVIES = [
    {"title": "Alpha", "genre": "drama", "year": 1999, "rating": 3.5},
    {"title": "Beta", "genre": "comedy", "year": 2005, "rating": 4.0},
    {"title": "Gamma", "genre": "drama", "year": 2010, "rating": 4.5},
    {"title": "Delta", "genre": "comedy", "year": 2001, "rating": 2.0},
    {"title": "Epsilon", "genre": "drama", "year": 2015, "rating": 5.0},
    {"title": "Zeta", "genre": "scifi", "year": 2020, "rating": 4.2},
]


@pytest.fixture()
def session():
    env = AppEnv(small_cluster_spec(num_workers=3))
    catalog = Catalog()
    catalog.register("movies", MOVIES)
    return SQLSession(env.hamr, catalog)


class TestParser:
    def test_minimal(self):
        q = parse("SELECT title FROM movies")
        assert q.table == "movies"
        assert q.output_names() == ["title"]
        assert not q.is_aggregate

    def test_full_clause_set(self):
        q = parse(
            "SELECT genre, COUNT(*) AS n FROM movies WHERE year > 2000 "
            "GROUP BY genre HAVING n > 1 ORDER BY n DESC, genre ASC LIMIT 3;"
        )
        assert q.is_aggregate
        assert q.group_by == ("genre",)
        assert q.having is not None
        assert [(o.name, o.descending) for o in q.order_by] == [("n", True), ("genre", False)]
        assert q.limit == 3

    def test_expression_precedence(self):
        q = parse("SELECT a + b * 2 AS x FROM t")
        expr = q.select[0].expr
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_string_literal_escaping(self):
        q = parse("SELECT title FROM movies WHERE title = 'it''s'")
        assert q.where.right == Literal("it's")

    def test_keywords_case_insensitive(self):
        q = parse("select title from movies where year >= 2000")
        assert q.where is not None

    def test_count_star_only(self):
        parse("SELECT COUNT(*) FROM t")
        with pytest.raises(SQLError):
            parse("SELECT SUM(*) FROM t")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t LIMIT -1",
            "SELECT a FROM t GROUP a",
            "SELECT a b c FROM t",
            "SELECT a FROM t ??",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SQLError):
            parse(bad)

    def test_not_and_or(self):
        q = parse("SELECT a FROM t WHERE NOT a = 1 AND b = 2 OR c = 3")
        # OR binds loosest
        assert isinstance(q.where, BinOp) and q.where.op == "OR"


class TestProjectionQueries:
    def test_select_columns(self, session):
        result = session.run("SELECT title, year FROM movies")
        assert len(result) == 6
        assert set(result.names) == {"title", "year"}
        assert sorted(result.column("title")) == sorted(m["title"] for m in MOVIES)

    def test_where_filters(self, session):
        result = session.run("SELECT title FROM movies WHERE genre = 'drama'")
        assert sorted(result.column("title")) == ["Alpha", "Epsilon", "Gamma"]

    def test_computed_columns(self, session):
        result = session.run(
            "SELECT title, (2026 - year) AS age FROM movies WHERE title = 'Alpha'"
        )
        assert result.rows == [{"title": "Alpha", "age": 27}]

    def test_order_by_limit(self, session):
        result = session.run(
            "SELECT title, rating FROM movies ORDER BY rating DESC LIMIT 2"
        )
        assert result.column("title") == ["Epsilon", "Gamma"]

    def test_complex_predicate(self, session):
        result = session.run(
            "SELECT title FROM movies WHERE (year >= 2000 AND rating > 4.0) OR genre = 'scifi'"
        )
        assert sorted(result.column("title")) == ["Epsilon", "Gamma", "Zeta"]

    def test_unknown_column_fails(self, session):
        with pytest.raises(Exception):
            session.run("SELECT nope FROM movies")


class TestAggregateQueries:
    def test_global_count(self, session):
        result = session.run("SELECT COUNT(*) AS n FROM movies")
        assert result.rows == [{"n": 6}]

    def test_group_by_count_and_avg(self, session):
        result = session.run(
            "SELECT genre, COUNT(*) AS n, AVG(rating) AS avg_r FROM movies "
            "GROUP BY genre ORDER BY genre"
        )
        assert result.column("genre") == ["comedy", "drama", "scifi"]
        assert result.column("n") == [2, 3, 1]
        assert result.column("avg_r")[1] == pytest.approx((3.5 + 4.5 + 5.0) / 3)

    def test_min_max_sum(self, session):
        result = session.run(
            "SELECT MIN(year) AS lo, MAX(year) AS hi, SUM(rating) AS total FROM movies"
        )
        assert result.rows == [
            {"lo": 1999, "hi": 2020, "total": pytest.approx(23.2)}
        ]

    def test_having(self, session):
        result = session.run(
            "SELECT genre, COUNT(*) AS n FROM movies GROUP BY genre HAVING n >= 2 ORDER BY genre"
        )
        assert result.column("genre") == ["comedy", "drama"]

    def test_where_before_group(self, session):
        result = session.run(
            "SELECT genre, COUNT(*) AS n FROM movies WHERE year >= 2005 GROUP BY genre ORDER BY genre"
        )
        assert dict(zip(result.column("genre"), result.column("n"))) == {
            "comedy": 1, "drama": 2, "scifi": 1,
        }

    def test_aggregate_arithmetic(self, session):
        result = session.run(
            "SELECT SUM(rating) / COUNT(*) AS mean FROM movies WHERE genre = 'comedy'"
        )
        assert result.rows == [{"mean": pytest.approx(3.0)}]

    def test_bare_column_outside_group_rejected(self, session):
        with pytest.raises(SQLError):
            session.run("SELECT title, COUNT(*) FROM movies GROUP BY genre")


class TestSessionPlumbing:
    def test_unknown_table(self, session):
        with pytest.raises(SQLError):
            session.run("SELECT a FROM nothere")

    def test_catalog_validation(self):
        catalog = Catalog()
        with pytest.raises(SQLError):
            catalog.register("empty", [])
        with pytest.raises(SQLError):
            catalog.register("ragged", [{"a": 1}, {"b": 2}])

    def test_declared_columns_allow_an_empty_table(self):
        # a legitimately empty table (e.g. a fleet with no stragglers)
        # registers with columns= and queries like any other
        env = AppEnv(small_cluster_spec(num_workers=3))
        catalog = Catalog()
        catalog.register("stragglers", [], columns=("run", "node"))
        assert catalog.columns("stragglers") == ("run", "node")
        session = SQLSession(env.hamr, catalog)
        assert session.run("SELECT run, node FROM stragglers").rows == []
        # no input rows → no groups: the global aggregate yields no row
        # (same contract on the MapReduce path, so dual-engine checks hold)
        result = session.run("SELECT COUNT(*) AS n FROM stragglers")
        assert result.rows == []

    def test_declared_columns_still_validate(self):
        catalog = Catalog()
        with pytest.raises(SQLError, match="columns are empty"):
            catalog.register("empty", [], columns=())
        with pytest.raises(SQLError, match="columns differ"):
            catalog.register("bad", [{"a": 1}], columns=("a", "b"))
        # schema-less empty registration keeps its original error
        with pytest.raises(SQLError, match="declare columns="):
            catalog.register("empty", [])

    def test_catalog_listing(self, session):
        assert session.catalog.tables() == ["movies"]
        assert session.catalog.columns("movies") == ("title", "genre", "year", "rating")

    def test_explain(self, session):
        plan = session.explain(
            "SELECT genre, COUNT(*) AS n FROM movies GROUP BY genre ORDER BY n"
        )
        assert "TableScan" in plan
        assert "partial_reduce" in plan
        assert "OrderAndLimit" in plan

    def test_makespan_positive(self, session):
        assert session.run("SELECT title FROM movies").makespan > 0


class TestOrderAndLimit:
    def test_none_sorts_first(self):
        q = parse("SELECT a FROM t ORDER BY a")
        rows = [{"a": 3}, {"a": None}, {"a": 1}]
        assert [r["a"] for r in order_and_limit(rows, q)] == [None, 1, 3]

    def test_unknown_order_column(self):
        q = parse("SELECT a FROM t ORDER BY b")
        with pytest.raises(SQLError):
            order_and_limit([{"a": 1}], q)


class TestSQLvsPython:
    """Property test: GROUP BY + COUNT/SUM matches a plain dict fold."""

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(min_value=0, max_value=100)),
            min_size=1,
            max_size=40,
        )
    )
    def test_group_count_sum(self, pairs):
        rows = [{"k": k, "v": v} for k, v in pairs]
        expected: dict[str, tuple[int, int]] = {}
        for k, v in pairs:
            n, s = expected.get(k, (0, 0))
            expected[k] = (n + 1, s + v)

        env = AppEnv(small_cluster_spec(num_workers=2))
        catalog = Catalog()
        catalog.register("t", rows)
        result = SQLSession(env.hamr, catalog).run(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k"
        )
        measured = {row["k"]: (row["n"], row["s"]) for row in result.rows}
        assert measured == expected
