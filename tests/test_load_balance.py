"""Load-balance tests for a paper claim (§2): running the *whole* flowlet
graph on every node with fine-grain tasks "brings in more balanced
workload" — so HAMR should tolerate a straggler node better than the
barrier-bound baseline."""

from dataclasses import replace

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec


def hetero_spec(slow_factor: float):
    spec = small_cluster_spec(num_workers=4, scale=2e5)
    slow = replace(spec.node, speed_factor=slow_factor)
    return replace(spec, node_overrides=((2, slow),))


@pytest.fixture(scope="module")
def records():
    params = wordcount.WordCountParams(target_bytes=60_000, seed=5)
    return params, wordcount.generate_input(params)


def degradation(engine_runner, params, records, slow_factor):
    """makespan(with straggler) / makespan(homogeneous)."""
    base = engine_runner(AppEnv(small_cluster_spec(num_workers=4, scale=2e5)), params, records)
    slow = engine_runner(AppEnv(hetero_spec(slow_factor)), params, records)
    return slow.makespan / base.makespan


class TestStragglerTolerance:
    def test_both_engines_degrade(self, records):
        params, recs = records
        hamr = degradation(wordcount.run_hamr, params, recs, 0.25)
        hadoop = degradation(wordcount.run_hadoop, params, recs, 0.25)
        assert hamr > 1.0
        assert hadoop > 1.0

    def test_degradations_comparable(self, records):
        """An honest finding worth recording: under *static key ownership*
        (hash partitioning pins 1/4 of the key space to the slow node),
        neither engine escapes the straggler — fine-grain scheduling
        balances work *within* a node's share, not across shares. Both
        degradations land in the same band (within 35% of each other),
        bounded by the slow node's 4x share cost."""
        params, recs = records
        hamr = degradation(wordcount.run_hamr, params, recs, 0.25)
        hadoop = degradation(wordcount.run_hadoop, params, recs, 0.25)
        assert hamr / hadoop < 1.35
        assert hadoop / hamr < 1.35
        # and neither exceeds the theoretical 4x bound
        assert hamr < 4.0 and hadoop < 4.0

    def test_results_identical_on_hetero_cluster(self, records):
        params, recs = records
        expected = wordcount.reference(recs)
        hamr = wordcount.run_hamr(AppEnv(hetero_spec(0.25)), params, recs)
        hadoop = wordcount.run_hadoop(AppEnv(hetero_spec(0.25)), params, recs)
        assert hamr.output == expected
        assert hadoop.output == expected
