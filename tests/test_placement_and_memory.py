"""Tests for split placement and the KCliques memory contrast the paper
highlights ("Hadoop quickly runs out of memory for larger graphs" while
HAMR shares one store per node)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import kcliques
from repro.apps.base import AppEnv
from repro.cluster import Cluster, small_cluster_spec
from repro.cluster.placement import assign_splits


class _FakeSplit:
    def __init__(self, preferred):
        self.preferred_nodes = preferred


class TestPlacement:
    def test_prefers_replica_holders(self):
        cluster = Cluster(small_cluster_spec(num_workers=4))
        w = [n.node_id for n in cluster.workers]
        splits = [_FakeSplit([w[2]]), _FakeSplit([w[2], w[3]]), _FakeSplit([w[0]])]
        assignment = assign_splits(cluster, splits)
        assert splits[0] in assignment[2]
        assert splits[2] in assignment[0]
        # second split balances away from the already-loaded worker 2
        assert splits[1] in assignment[3]

    def test_no_preference_round_robins(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        splits = [_FakeSplit([]) for _ in range(9)]
        assignment = assign_splits(cluster, splits)
        assert [len(s) for s in assignment] == [3, 3, 3]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=40))
    def test_every_split_assigned_exactly_once(self, prefs):
        cluster = Cluster(small_cluster_spec(num_workers=4))
        worker_ids = [n.node_id for n in cluster.workers]
        splits = [_FakeSplit([worker_ids[p]]) for p in prefs]
        assignment = assign_splits(cluster, splits)
        flat = [s for worker in assignment for s in worker]
        assert len(flat) == len(splits)
        assert {id(s) for s in flat} == {id(s) for s in splits}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=60))
    def test_balance_without_preferences(self, n):
        cluster = Cluster(small_cluster_spec(num_workers=4))
        assignment = assign_splits(cluster, [_FakeSplit([]) for _ in range(n)])
        sizes = [len(s) for s in assignment]
        assert max(sizes) - min(sizes) <= 1


class TestKCliquesMemoryContrast:
    """§5.2: all clique info must fit a Hadoop reduce JVM, while HAMR
    builds the graph into one shared store per node."""

    @pytest.fixture(scope="class")
    def params(self):
        return kcliques.KCliquesParams(scale=8, n_edges=3000, k=3, seed=4)

    def test_hadoop_reduce_heap_spills_on_big_graph(self, params):
        # Scale the edges so adjacency + candidates overflow the 1GB
        # reduce-task heap: the Hadoop job survives only by spilling.
        env = AppEnv(small_cluster_spec(num_workers=3, scale=3e5))
        edges = kcliques.generate_input(params)
        result = kcliques.run_hadoop(env, params, edges)
        assert result.metrics.get("reduce_spills", 0) > 0

    def test_hamr_holds_graph_in_shared_memory(self, params):
        env = AppEnv(small_cluster_spec(num_workers=3, scale=3e5, memory=32 << 30))
        edges = kcliques.generate_input(params)
        result = kcliques.run_hamr(env, params, edges)
        # zero reduce-side spills: adjacency lives in the node-shared store
        assert result.metrics.get("reduce_spills", 0) == 0
        assert env.kvstore.total_entries() > 0
        # the store accounts real memory on every node that holds vertices
        assert any(w.memory.used > 0 for w in env.cluster.workers)

    def test_same_answer_under_pressure(self, params):
        edges = kcliques.generate_input(params)
        expected = kcliques.reference(edges, params.k)
        env_hamr = AppEnv(small_cluster_spec(num_workers=3, scale=3e5, memory=32 << 30))
        env_hadoop = AppEnv(small_cluster_spec(num_workers=3, scale=3e5))
        assert kcliques.run_hamr(env_hamr, params, edges).output == expected
        assert kcliques.run_hadoop(env_hadoop, params, edges).output == expected
