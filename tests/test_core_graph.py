"""Tests for flowlet definitions, graphs, bins, combiners."""

import pytest

from repro.common.errors import ConfigError, GraphError
from repro.core import (
    Bin,
    BinPacker,
    Combiner,
    CollectionSource,
    EdgeMode,
    FlowletGraph,
    FlowletKind,
    Loader,
    Map,
    PartialReduce,
    Reduce,
    sum_combiner,
)


def make_loader(name="load"):
    return Loader(name, CollectionSource([("k", 1)]))


class TestFlowletTypes:
    def test_kinds(self):
        assert make_loader().kind is FlowletKind.LOADER
        assert Map("m", fn=lambda c, k, v: None).kind is FlowletKind.MAP
        assert Reduce("r", fn=lambda c, k, vs: None).kind is FlowletKind.REDUCE
        assert (
            PartialReduce("p", initial=lambda k: 0, combine=lambda a, v: a).kind
            is FlowletKind.PARTIAL_REDUCE
        )

    def test_requires_name(self):
        with pytest.raises(ConfigError):
            Map("", fn=lambda c, k, v: None)

    def test_loader_requires_source(self):
        with pytest.raises(ConfigError):
            Loader("l", None)

    def test_bad_compute_factor(self):
        with pytest.raises(ConfigError):
            Map("m", fn=lambda c, k, v: None, compute_factor=0)

    def test_unimplemented_methods_raise(self):
        with pytest.raises(NotImplementedError):
            Map("m").map(None, "k", "v")
        with pytest.raises(NotImplementedError):
            Reduce("r").reduce(None, "k", [])
        with pytest.raises(NotImplementedError):
            PartialReduce("p").initial("k")
        with pytest.raises(NotImplementedError):
            PartialReduce("p").combine(0, 1)


class TestGraphConstruction:
    def test_basic_chain(self):
        g = FlowletGraph("wc")
        loader = g.add(make_loader())
        mapper = g.add(Map("m", fn=lambda c, k, v: None))
        g.connect(loader, mapper)
        g.validate()
        assert g.loaders() == [loader]
        assert g.sinks() == [mapper]
        assert g.downstream(loader) == [mapper]
        assert g.upstream(mapper) == [loader]

    def test_connect_by_name(self):
        g = FlowletGraph()
        g.add(make_loader("l"))
        g.add(Map("m", fn=lambda c, k, v: None))
        edge = g.connect("l", "m", mode=EdgeMode.LOCAL)
        assert edge.mode is EdgeMode.LOCAL

    def test_duplicate_names_rejected(self):
        g = FlowletGraph()
        g.add(make_loader("x"))
        with pytest.raises(GraphError):
            g.add(Map("x", fn=lambda c, k, v: None))

    def test_edge_into_loader_rejected(self):
        g = FlowletGraph()
        loader = g.add(make_loader())
        mapper = g.add(Map("m", fn=lambda c, k, v: None))
        with pytest.raises(GraphError):
            g.connect(mapper, loader)

    def test_duplicate_edge_rejected(self):
        g = FlowletGraph()
        loader = g.add(make_loader())
        mapper = g.add(Map("m", fn=lambda c, k, v: None))
        g.connect(loader, mapper)
        with pytest.raises(GraphError):
            g.connect(loader, mapper)

    def test_unadded_flowlet_rejected(self):
        g = FlowletGraph()
        g.add(make_loader())
        stranger = Map("m", fn=lambda c, k, v: None)
        with pytest.raises(GraphError):
            g.connect("load", stranger)

    def test_fan_out_and_fan_in(self):
        # "there can be multiple flowlets flowing to one flowlet and vice versa" (§3.2)
        g = FlowletGraph()
        loader = g.add(make_loader())
        m1 = g.add(Map("m1", fn=lambda c, k, v: None))
        m2 = g.add(Map("m2", fn=lambda c, k, v: None))
        r = g.add(Reduce("r", fn=lambda c, k, vs: None))
        g.connect(loader, m1)
        g.connect(loader, m2)
        g.connect(m1, r)
        g.connect(m2, r)
        g.validate()
        assert len(g.in_edges(r)) == 2
        assert g.sinks() == [r]


class TestGraphValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            FlowletGraph().validate()

    def test_needs_loader(self):
        g = FlowletGraph()
        g.add(Map("m", fn=lambda c, k, v: None))
        with pytest.raises(GraphError):
            g.validate()

    def test_orphan_non_loader_rejected(self):
        g = FlowletGraph()
        g.add(make_loader())
        g.add(Map("orphan", fn=lambda c, k, v: None))
        with pytest.raises(GraphError):
            g.validate()

    def test_topological_order(self):
        g = FlowletGraph()
        loader = g.add(make_loader())
        a = g.add(Map("a", fn=lambda c, k, v: None))
        b = g.add(Map("b", fn=lambda c, k, v: None))
        g.connect(loader, a)
        g.connect(a, b)
        order = [f.name for f in g.topological_order()]
        assert order.index("load") < order.index("a") < order.index("b")


class TestBinPacker:
    def test_seals_at_size(self):
        packer = BinPacker(bin_size=30)
        sealed = packer.add(0, 0, "k", "v" * 10)  # pair ~ 4+1+10 + overhead
        assert sealed is None
        sealed = packer.add(0, 0, "k", "v" * 10)
        assert sealed is not None
        assert sealed.nrecords == 2
        assert packer.open_bins == 0

    def test_separate_slots(self):
        packer = BinPacker(bin_size=1000)
        packer.add(0, 0, "a", 1)
        packer.add(0, 1, "b", 2)
        packer.add(1, 0, "c", 3)
        assert packer.open_bins == 3

    def test_drain_all(self):
        packer = BinPacker(bin_size=1000)
        packer.add(0, 0, "a", 1)
        packer.add(1, 2, "b", 2)
        drained = packer.drain()
        assert len(drained) == 2
        assert packer.open_bins == 0
        assert {(b.edge_id, b.partition) for b in drained} == {(0, 0), (1, 2)}

    def test_drain_one_edge(self):
        packer = BinPacker(bin_size=1000)
        packer.add(0, 0, "a", 1)
        packer.add(1, 0, "b", 2)
        drained = packer.drain(edge_id=1)
        assert len(drained) == 1
        assert drained[0].edge_id == 1
        assert packer.open_bins == 1

    def test_bin_tracks_bytes(self):
        b = Bin(0, 0)
        b.append("key", 7)
        assert b.nbytes == 3 + 8 + 4
        assert list(b) == [("key", 7)]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BinPacker(0)


class TestCombiner:
    def test_sum_combiner(self):
        c = sum_combiner()
        out = c.apply([("a", 1), ("b", 2), ("a", 3)])
        assert sorted(out) == [("a", 4), ("b", 2)]

    def test_emit_value(self):
        c = Combiner(
            initial=lambda k: [],
            combine=lambda acc, v: acc + [v],
            emit_value=lambda acc: len(acc),
        )
        out = c.apply([("x", "p"), ("x", "q")])
        assert out == [("x", 2)]

    def test_requires_functions(self):
        with pytest.raises(ConfigError):
            Combiner(None, lambda a, v: a)

    def test_empty_batch(self):
        assert sum_combiner().apply([]) == []
