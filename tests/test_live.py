"""Tests for the live progress engine: frames, watchdog, non-perturbation.

The monitor must be provably one-way (a watched run's virtual outputs
byte-identical to an unwatched one), its frames byte-deterministic across
identical runs and journal replays, and its watchdog must trip on a
seeded slowdown while staying quiet on every clean Table 2 run.
"""

import json

import pytest

from repro.evaluation.__main__ import main
from repro.evaluation.obsreport import report_json
from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs.journal import seed_bucket_slowdown
from repro.obs.live import (
    STATUS_BREACH,
    STATUS_DONE,
    STATUS_RUNNING,
    STATUS_STALLED,
    LiveMonitor,
    WatchConfig,
    render_frame,
    render_watch,
    watchdog_statuses,
)
from repro.obs.replay import replay_records
from repro.obs.slo import SLOSpec


def _watched_run(name="wordcount", engines="hamr", interval=5.0, window=300.0,
                 slo=None, journal=True):
    config = WatchConfig(interval=interval, window=window)
    if slo is not None:
        watch = lambda engine, tracer: LiveMonitor(  # noqa: E731
            tracer, config=config, slo=slo
        )
    else:
        watch = config
    return run_workload(
        workload_by_name(name, "tiny"), engines=engines,
        journal=journal, watch=watch,
    )


# -- watchdog fold ------------------------------------------------------------------


class TestWatchdogStatuses:
    def _frames(self, *tms_adv):
        return [{"tm": tm, "adv": adv} for tm, adv in tms_adv]

    def test_quiet_gap_past_window_stalls(self):
        frames = self._frames((10.0, True), (100.0, False), (400.0, False))
        watchdog_statuses(frames, window=300.0)
        assert [f["status"] for f in frames] == [
            STATUS_RUNNING, STATUS_RUNNING, STATUS_STALLED,
        ]

    def test_advance_resets_the_window(self):
        frames = self._frames((250.0, True), (500.0, True), (790.0, False))
        watchdog_statuses(frames, window=300.0)
        assert all(f["status"] == STATUS_RUNNING for f in frames)

    def test_run_start_counts_as_an_advance(self):
        frames = self._frames((299.0, False), (300.0, False))
        watchdog_statuses(frames, window=300.0)
        assert [f["status"] for f in frames] == [STATUS_RUNNING, STATUS_STALLED]

    def test_stall_verdict_uses_pre_advance_state(self):
        # the frame that finally advances still reports the stall that
        # preceded it — the advance only helps *later* frames
        frames = self._frames((350.0, True), (400.0, False))
        watchdog_statuses(frames, window=300.0)
        assert [f["status"] for f in frames] == [STATUS_STALLED, STATUS_RUNNING]

    def test_stalled_outranks_breach_and_done(self):
        frames = [{"tm": 500.0, "adv": False, "br": ["makespan"], "fin": True}]
        watchdog_statuses(frames, window=300.0)
        assert frames[0]["status"] == STATUS_STALLED

    def test_breach_outranks_done(self):
        frames = [{"tm": 10.0, "adv": True, "br": ["makespan"], "fin": True}]
        watchdog_statuses(frames, window=300.0)
        assert frames[0]["status"] == STATUS_BREACH

    def test_zero_window_disables_the_watchdog(self):
        frames = self._frames((1e9, False))
        watchdog_statuses(frames, window=0.0)
        assert frames[0]["status"] == STATUS_RUNNING


# -- monitor construction -----------------------------------------------------------


class TestMonitorConstruction:
    def test_requires_enabled_tracer(self):
        class Disabled:
            enabled = False

        with pytest.raises(ValueError, match="enabled tracer"):
            LiveMonitor(Disabled())

    def test_rejects_non_positive_interval(self):
        class Enabled:
            enabled = True
            journal = None

        with pytest.raises(ValueError, match="interval"):
            LiveMonitor(Enabled(), config=WatchConfig(interval=0.0))


# -- live runs ----------------------------------------------------------------------


class TestLiveFrames:
    def test_frames_cover_the_run_and_finish_done(self):
        row = _watched_run(engines="both", journal=None)
        for monitor in (row.hamr_watch, row.hadoop_watch):
            frames = monitor.frames
            assert frames, "no frames captured"
            assert frames[-1]["fin"] is True
            assert frames[-1]["frac"] == 1.0
            assert frames[-1]["status"] == STATUS_DONE
            assert monitor.status == STATUS_DONE
            assert monitor.stalled_frames() == 0
            # frame times are non-decreasing and interval-spaced
            tms = [f["tm"] for f in frames]
            assert tms == sorted(tms)

    def test_stage_fractions_monotone_and_complete(self):
        row = _watched_run(journal=None)
        frames = row.hamr_watch.frames
        seen = {}
        for frame in frames:
            for stage, (done, total) in frame["stages"].items():
                assert 0.0 <= done <= total
                assert done >= seen.get(stage, 0.0)  # done never regresses
                seen[stage] = done
        final = frames[-1]["stages"]
        assert final, "no stages declared"
        for stage, (done, total) in final.items():
            assert done == total, f"{stage} incomplete at the final frame"

    def test_frames_are_deterministic_across_identical_runs(self):
        a = _watched_run(journal=None).hamr_watch
        b = _watched_run(journal=None).hamr_watch
        assert json.dumps(a.frames, sort_keys=True) == json.dumps(
            b.frames, sort_keys=True
        )

    def test_watching_does_not_perturb_virtual_outputs(self):
        plain = run_workload(workload_by_name("wordcount", "tiny"),
                             engines="hamr", obs=True)
        watched = _watched_run(journal=None)
        assert watched.hamr_seconds == plain.hamr_seconds
        assert report_json(watched.hamr_obs, "wordcount", "hamr") == report_json(
            plain.hamr_obs, "wordcount", "hamr"
        )

    def test_render_frame_and_watch_are_pure(self):
        monitor = _watched_run(journal=None).hamr_watch
        before = json.dumps(monitor.frames, sort_keys=True)
        text = render_watch("WordCount (16GB) on hamr", monitor)
        assert "— watch ==" in text
        assert f"{len(monitor.frames)} frames" in text
        assert text.endswith(f"stalled frames: 0/{len(monitor.frames)}")
        for frame in monitor.frames:
            assert render_frame(frame) in text
        assert json.dumps(monitor.frames, sort_keys=True) == before


# -- journal round trip -------------------------------------------------------------


class TestJournaledFrames:
    def test_replay_recovers_config_and_frames_byte_identically(self):
        row = _watched_run()
        run = replay_records(row.hamr_journal.records)
        assert run.watch_config == {"interval": 5.0, "window": 300.0}
        assert json.dumps(run.frames, sort_keys=True) == json.dumps(
            row.hamr_watch.frames, sort_keys=True
        )

    def test_unwatched_journal_has_no_frames(self):
        row = run_workload(
            workload_by_name("wordcount", "tiny"), engines="hamr", journal=True
        )
        run = replay_records(row.hamr_journal.records)
        assert run.frames == []
        assert run.watch_config is None

    def test_seeded_slowdown_trips_the_watchdog(self):
        row = _watched_run()
        live_frames = row.hamr_watch.frames
        assert all(f["status"] != STATUS_STALLED for f in live_frames)
        records = seed_bucket_slowdown(row.hamr_journal.records, "disk", 50.0)
        dilated = [r for r in records if r.get("t") == "fr"]
        assert len(dilated) == len(live_frames)
        stalled = [f for f in dilated if f["status"] == STATUS_STALLED]
        assert stalled, "50x disk slowdown did not trip the 300s stall window"
        # the stall is flagged within one window of the dilated quiet gap:
        # every stalled frame really sat >= window past the last advance
        last_advance = 0.0
        for frame in dilated:
            if frame["status"] == STATUS_STALLED:
                assert frame["tm"] - last_advance >= 300.0
            if frame.get("adv"):
                last_advance = frame["tm"]

    def test_seeded_slowdown_recomputes_etas(self):
        row = _watched_run()
        records = seed_bucket_slowdown(row.hamr_journal.records, "disk", 50.0)
        for frame in (r for r in records if r.get("t") == "fr"):
            if frame["frac"] > 0:
                assert frame["eta"] == round(frame["tm"] / frame["frac"], 6)


# -- clean-run watchdog sweep -------------------------------------------------------


class TestCleanRunsNeverStall:
    @pytest.mark.parametrize("name", TABLE2_ORDER)
    def test_default_window_stays_quiet(self, name):
        # default interval/window (25s/300s), both engines, tiny fidelity:
        # a clean run must never flag STALLED or breach its default SLO
        row = run_workload(
            workload_by_name(name, "tiny"), engines="both", watch=True
        )
        for engine, monitor in (("hamr", row.hamr_watch),
                                ("hadoop", row.hadoop_watch)):
            statuses = [f["status"] for f in monitor.frames]
            assert STATUS_STALLED not in statuses, (name, engine, statuses)
            assert monitor.status == STATUS_DONE, (name, engine, statuses)


# -- live SLO escalation ------------------------------------------------------------


class TestLiveSLOEscalation:
    def test_breached_budget_escalates_frames(self):
        spec = SLOSpec(makespan_budget=1.0)  # impossible budget
        row = _watched_run(slo=spec, journal=None)
        frames = row.hamr_watch.frames
        assert all(f["status"] == STATUS_BREACH for f in frames)
        assert all(f["br"] == ["makespan"] for f in frames)

    def test_unbounded_spec_never_escalates(self):
        row = _watched_run(slo=SLOSpec(), journal=None)
        assert all("br" not in f for f in row.hamr_watch.frames)


# -- CLI ----------------------------------------------------------------------------


class TestWatchCLI:
    def test_unknown_workload_exits_2(self, capsys):
        assert main(["watch", "nope", "hamr"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_engine_exits_2(self, capsys):
        assert main(["watch", "wordcount", "nope"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_non_positive_interval_exits_2(self, capsys):
        rc = main(["watch", "wordcount", "hamr", "--fidelity", "tiny",
                   "--interval", "0"])
        assert rc == 2
        assert "--interval" in capsys.readouterr().err

    def test_watch_renders_and_replays_byte_identically(self, tmp_path, capsys):
        journal = tmp_path / "w.jsonl"
        rc = main(["watch", "wordcount", "hamr", "--fidelity", "tiny",
                   "--interval", "5", "--out", str(journal)])
        assert rc == 0
        live = capsys.readouterr().out
        assert "— watch ==" in live
        rc = main(["replay", str(journal), "--view", "watch"])
        assert rc == 0
        assert capsys.readouterr().out == live

    def test_watch_json_matches_replay_json(self, tmp_path, capsys):
        journal = tmp_path / "w.jsonl"
        live_json = tmp_path / "live.json"
        replay_json = tmp_path / "replay.json"
        assert main(["watch", "wordcount", "hamr", "--fidelity", "tiny",
                     "--interval", "5", "--out", str(journal),
                     "--json", str(live_json)]) == 0
        assert main(["replay", str(journal), "--view", "watch",
                     "--json", str(replay_json)]) == 0
        capsys.readouterr()
        assert live_json.read_bytes() == replay_json.read_bytes()

    def test_replay_watch_view_needs_a_watched_journal(self, tmp_path, capsys):
        row = run_workload(
            workload_by_name("wordcount", "tiny"), engines="hamr", journal=True
        )
        path = tmp_path / "plain.jsonl"
        row.hamr_journal.save(str(path))
        assert main(["replay", str(path), "--view", "watch"]) == 2
        assert "live monitoring" in capsys.readouterr().err
