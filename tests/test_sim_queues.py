"""Tests for bounded simulated queues (flow-control substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim import QueueClosed, Simulator, SimQueue


class TestBasicFlow:
    def test_put_then_get(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def producer(sim):
            yield q.put("x")

        def consumer(sim):
            got.append((yield q.get()))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def consumer(sim):
            item = yield q.get()
            got.append((sim.now, item))

        def producer(sim):
            yield 5.0
            yield q.put("late")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert got == [(5.0, "late")]

    def test_fifo_order(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def producer(sim):
            for i in range(5):
                yield q.put(i)

        def consumer(sim):
            for _ in range(5):
                got.append((yield q.get()))

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]


class TestBoundedCapacity:
    def test_put_blocks_when_full(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=1)
        log = []

        def producer(sim):
            yield q.put("a")
            log.append(("put-a", sim.now))
            yield q.put("b")
            log.append(("put-b", sim.now))

        def consumer(sim):
            yield 10.0
            yield q.get()
            yield q.get()

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert log == [("put-a", 0.0), ("put-b", 10.0)]
        assert q.put_blocked == 1

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=2)
        assert q.try_put("a")
        assert q.try_put("b")
        assert not q.try_put("c")

    def test_weighted_capacity(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=100)
        assert q.try_put("big", weight=80)
        assert not q.try_put("big2", weight=40)
        assert q.try_put("small", weight=20)
        assert q.weight == 100
        assert q.full

    def test_oversized_item_rejected(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=10)
        with pytest.raises(SimulationError):
            q.try_put("x", weight=11)

    def test_when_space_fires_after_get(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=1)
        q.try_put("a")
        resumed = []

        def waiter(sim):
            yield q.when_space()
            resumed.append(sim.now)
            assert q.try_put("b")

        def consumer(sim):
            yield 3.0
            yield q.get()

        sim.spawn(waiter(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert resumed == [3.0]

    def test_when_space_immediate_if_not_full(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=5)
        fired = []

        def waiter(sim):
            yield q.when_space()
            fired.append(sim.now)

        sim.spawn(waiter(sim))
        sim.run()
        assert fired == [0.0]


class TestClose:
    def test_drain_then_closed(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def consumer(sim):
            try:
                while True:
                    got.append((yield q.get()))
            except QueueClosed:
                got.append("closed")

        def producer(sim):
            yield q.put(1)
            yield q.put(2)
            q.close()

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert got == [1, 2, "closed"]

    def test_pending_getter_fails_on_close(self):
        sim = Simulator()
        q = SimQueue(sim)
        outcome = []

        def consumer(sim):
            try:
                yield q.get()
            except QueueClosed:
                outcome.append(sim.now)

        def closer(sim):
            yield 2.0
            q.close()

        sim.spawn(consumer(sim))
        sim.spawn(closer(sim))
        sim.run()
        assert outcome == [2.0]

    def test_put_after_close_rejected(self):
        sim = Simulator()
        q = SimQueue(sim)
        q.close()
        with pytest.raises(SimulationError):
            q.try_put("x")

    def test_close_idempotent(self):
        sim = Simulator()
        q = SimQueue(sim)
        q.close()
        q.close()
        assert q.closed


class TestPipelineProperty:
    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=5))
    def test_everything_flows_through_bounded_pipe(self, items, capacity):
        sim = Simulator()
        q = SimQueue(sim, capacity=capacity)
        received = []

        def producer(sim):
            for item in items:
                yield q.put(item)
            q.close()

        def consumer(sim):
            try:
                while True:
                    received.append((yield q.get()))
                    yield 0.01  # slow consumer forces backpressure
            except QueueClosed:
                pass

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert received == items
        assert q.total_put == len(items)
        assert q.total_got == len(items)
