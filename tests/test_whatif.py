"""Tests for the counterfactual what-if engine (repro.obs.whatif).

The engine's contract is self-auditing: the identity scenario predicts
the journal's own makespan *exactly* (all 8 workloads x 2 engines),
bucket-speed scenarios are bit-exact against the executable
``REPRO_OBS_SLOWDOWN`` dilation transform, and structural scenarios
(nodes, fabric) stay within the documented prediction-error tolerances
when validated against real re-runs.
"""

import json

import pytest

from repro.evaluation.__main__ import main
from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs.journal import encode_record, seed_bucket_slowdown
from repro.obs.whatif import (
    WHATIF_SCHEMA,
    Scenario,
    ScenarioError,
    WhatIfModel,
    parse_scenario,
    parse_sweep,
    validate,
    validation_matrix,
    whatif_dict,
)

#: documented tolerances (README "what-if / capacity planning"): bucket
#: scenarios are exact, fabric swaps within 5%, node rescales within 60%
FABRIC_TOLERANCE = 0.05
NODES_TOLERANCE = 0.60


@pytest.fixture(scope="module")
def journals():
    """(workload, engine) -> journal records, tiny fidelity, all of Table 2."""
    out = {}
    for name in TABLE2_ORDER:
        row = run_workload(workload_by_name(name, "tiny"), journal=True)
        out[(name, "hamr")] = row.hamr_journal.records
        out[(name, "hadoop")] = row.hadoop_journal.records
    return out


@pytest.fixture(scope="module")
def wc_model(journals):
    return WhatIfModel(journals[("wordcount", "hamr")])


# -- scenario parsing ---------------------------------------------------------------


class TestScenarioParsing:
    def test_identity_forms(self):
        for text in (None, "", "identity", "none"):
            sc = parse_scenario(text)
            assert sc.is_identity and sc.describe() == "identity"

    def test_aliases_and_canonical_order(self):
        sc = parse_scenario("net=2.0,io=0.5,cpu=4")
        assert sc.speeds == {"network": 2.0, "disk": 0.5, "compute": 4.0}
        assert sc.describe() == "compute=4,disk=0.5,network=2"

    def test_parse_describe_fixpoint(self):
        text = "compute=0.5,network=2,nodes=9,fabric=rdma,racks=4"
        assert parse_scenario(text).describe() == text
        assert parse_scenario(parse_scenario(text).describe()).describe() == text

    def test_speeds_invert_to_time_factors(self):
        sc = parse_scenario("disk=0.5")
        assert sc.time_factors == {"disk": 2.0}

    @pytest.mark.parametrize(
        "bad",
        ["gpu=2", "disk", "disk=", "disk=zero", "disk=0", "disk=-1",
         "nodes=1", "nodes=x", "racks=0", "fabric=warp"],
    )
    def test_rejects_malformed_terms(self, bad):
        with pytest.raises(ScenarioError):
            parse_scenario(bad)

    def test_sweep_doubling(self):
        assert parse_sweep("nodes=4..32") == ("nodes", [4, 8, 16, 32])

    def test_sweep_linear_step(self):
        assert parse_sweep("nodes=4..16:4") == ("nodes", [4, 8, 12, 16])

    def test_sweep_explicit_list_and_alias(self):
        assert parse_sweep("io=0.25,0.5,2") == ("disk", [0.25, 0.5, 2.0])

    @pytest.mark.parametrize(
        "bad", ["fabric=a..b", "nodes=", "nodes=8..4", "nodes=4..6", "nodes=4..16:0"]
    )
    def test_sweep_rejects_malformed(self, bad):
        with pytest.raises(ScenarioError):
            parse_sweep(bad)


# -- the identity invariant ---------------------------------------------------------


class TestIdentityExactness:
    def test_identity_predicts_own_makespan_exactly_for_all_table2(self, journals):
        """8 workloads x 2 engines: empty scenario == recorded makespan."""
        for (name, engine), records in journals.items():
            model = WhatIfModel(records)
            p = model.predict(Scenario())
            assert p.exact and p.method == "identity", (name, engine)
            assert p.predicted == model.makespan, (name, engine)
            assert p.optimistic == model.makespan, (name, engine)
            assert p.pessimistic == model.makespan, (name, engine)
            assert p.predicted == records[-1]["makespan"], (name, engine)

    def test_payload_is_deterministic(self, journals):
        records = journals[("wordcount", "hamr")]
        scenarios = [parse_scenario(s) for s in ("identity", "disk=0.5", "nodes=9")]
        dumps = []
        for _ in range(2):
            model = WhatIfModel(records)
            payload = whatif_dict(model, [model.predict(s) for s in scenarios])
            dumps.append(json.dumps(payload, sort_keys=True))
        assert dumps[0] == dumps[1]
        assert json.loads(dumps[0])["schema"] == WHATIF_SCHEMA


# -- bucket scenarios: exact vs the executable transform ---------------------------


class TestBucketScenarios:
    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_prediction_is_bit_exact_vs_seeded_slowdown(self, journals, engine):
        records = journals[("wordcount", engine)]
        model = WhatIfModel(records)
        p = model.predict(parse_scenario("disk=0.5"))
        seeded = seed_bucket_slowdown(records, "disk", 2.0)
        assert p.exact and p.method == "dilation"
        assert p.predicted == seeded[-1]["makespan"]
        assert p.optimistic == p.predicted == p.pessimistic

    def test_scenario_journal_matches_seeding_byte_for_byte(self, journals):
        records = journals[("wordcount", "hamr")]
        model = WhatIfModel(records)
        ours = model.scenario_journal(parse_scenario("network=0.25"))
        seeded = seed_bucket_slowdown(records, "network", 4.0)
        assert [encode_record(r) for r in ours] == [
            encode_record(r) for r in seeded
        ]

    def test_scenario_journal_rejects_structural_scenarios(self, wc_model):
        with pytest.raises(ScenarioError):
            wc_model.scenario_journal(parse_scenario("nodes=9"))

    def test_slowdown_is_monotone_in_the_factor(self, wc_model):
        """Scaling a bucket down in speed never decreases the prediction."""
        speeds = [4.0, 2.0, 1.0, 0.5, 0.25]
        preds = [
            wc_model.predict(parse_scenario(f"disk={s}")).predicted for s in speeds
        ]
        for faster, slower in zip(preds, preds[1:]):
            assert faster <= slower + 1e-9
        assert preds[2] == wc_model.makespan  # speed 1.0 is the identity

    def test_composed_equals_sequential_dilation(self, journals):
        """One composed scenario == the two dilations applied in sequence."""
        records = journals[("wordcount", "hamr")]
        model = WhatIfModel(records)
        composed = model.predict(parse_scenario("disk=0.5,network=0.5")).predicted
        once = seed_bucket_slowdown(records, "disk", 2.0)
        twice = seed_bucket_slowdown(once, "network", 2.0)
        assert composed == pytest.approx(twice[-1]["makespan"], rel=1e-9)

    def test_structural_noop_matches_pure_dilation(self, wc_model):
        """nodes= the journal's own cluster adds nothing to a dilation."""
        pure = wc_model.predict(parse_scenario("disk=0.5")).predicted
        noop = wc_model.predict(
            parse_scenario(f"disk=0.5,nodes={wc_model.num_workers + 1}")
        )
        assert noop.method == "model"
        assert noop.predicted == pytest.approx(pure, rel=1e-9)


# -- structural scenarios: nodes and fabric ----------------------------------------


class TestNodeScaling:
    def test_scale_down_never_speeds_up(self, wc_model):
        base = wc_model.makespan
        for nodes in (5, 9, 13):
            p = wc_model.predict(parse_scenario(f"nodes={nodes}"))
            assert p.predicted >= base - 1e-9, nodes
            assert p.pessimistic >= p.predicted >= p.optimistic

    def test_scale_up_never_slows_down(self, wc_model):
        base = wc_model.makespan
        for nodes in (24, 32):
            p = wc_model.predict(parse_scenario(f"nodes={nodes}"))
            assert p.predicted <= base + 1e-9, nodes

    def test_prediction_error_within_tolerance_vs_real_rerun(self):
        """nodes=9 on wordcount:hamr — predicted vs an actual re-run."""
        row = run_workload(workload_by_name("wordcount", "tiny"),
                           engines="hamr", journal=True)
        model = WhatIfModel(row.hamr_journal.records)
        p = model.predict(parse_scenario("nodes=9"))
        rerun = workload_by_name("wordcount", "tiny")
        rerun.num_workers = 8
        actual = run_workload(rerun, engines="hamr").hamr_seconds
        error = abs(p.predicted - actual) / actual
        assert error <= NODES_TOLERANCE
        slack = 1e-3 * model.makespan
        assert p.optimistic - slack <= actual <= p.pessimistic + slack


class TestFabricScenarios:
    def test_rdma_rebates_serde_on_hamr_only(self, journals):
        hamr = WhatIfModel(journals[("wordcount", "hamr")])
        hadoop = WhatIfModel(journals[("wordcount", "hadoop")])
        p_hamr = hamr.predict(parse_scenario("fabric=rdma"))
        p_hadoop = hadoop.predict(parse_scenario("fabric=rdma"))
        assert p_hamr.predicted < hamr.makespan
        assert p_hadoop.predicted == pytest.approx(hadoop.makespan)

    def test_fabric_error_within_tolerance_vs_real_rerun(self, wc_model):
        p = wc_model.predict(parse_scenario("fabric=rdma"))
        rerun = run_workload(
            workload_by_name("wordcount", "tiny"), engines="hamr", fabric="rdma"
        )
        actual = rerun.hamr_seconds
        assert abs(p.predicted - actual) / actual <= FABRIC_TOLERANCE

    def test_same_fabric_is_a_noop(self, wc_model):
        p = wc_model.predict(parse_scenario("fabric=direct,serde=1"))
        assert p.predicted == pytest.approx(wc_model.makespan)


# -- sweeps -------------------------------------------------------------------------


class TestSweep:
    def test_node_sweep_orders_capacity_curve(self, wc_model):
        key, values = parse_sweep("nodes=4..32")
        points = wc_model.sweep(key, values, Scenario())
        assert [p.scenario.nodes for p in points] == [4, 8, 16, 32]
        preds = [p.predicted for p in points]
        assert preds == sorted(preds, reverse=True)  # more nodes, never slower

    def test_sweep_composes_with_a_base_scenario(self, wc_model):
        key, values = parse_sweep("nodes=8,16")
        points = wc_model.sweep(key, values, parse_scenario("disk=0.5"))
        assert all(p.scenario.speeds == {"disk": 0.5} for p in points)
        assert [p.scenario.nodes for p in points] == [8, 16]


# -- the validation harness ---------------------------------------------------------


class TestValidationHarness:
    def test_matrix_covers_all_scenario_families(self, wc_model):
        matrix = validation_matrix(wc_model)
        texts = [s.describe() for s in matrix]
        assert texts[0] == "identity"
        assert any(s.bucket_only for s in matrix)
        assert any(s.nodes is not None for s in matrix)
        assert any(s.fabric is not None for s in matrix)

    def test_identity_row_is_exact_without_an_executor(self, wc_model):
        rows = validate(wc_model, executor=None)
        first = rows[0]
        assert first.method == "identity"
        assert first.error == 0.0 and first.within_bounds
        assert all(r.method == "skipped" and r.actual is None for r in rows[1:])

    def test_executor_results_feed_error_and_bounds(self, wc_model):
        def executor(sc):
            return wc_model.predict(sc).predicted * 1.10

        rows = validate(
            wc_model, executor, scenarios=[parse_scenario("nodes=9")]
        )
        (row,) = rows
        assert row.method == "run"
        assert row.error == pytest.approx(-0.10 / 1.10)

    def test_dilation_rows_validate_exactly(self, wc_model):
        def executor(sc):
            return wc_model.scenario_journal(sc)[-1]["makespan"]

        rows = validate(
            wc_model, executor, scenarios=[parse_scenario("compute=0.5")]
        )
        assert rows[0].method == "dilation" and rows[0].error == 0.0


# -- CLI ----------------------------------------------------------------------------


class TestWhatifCLI:
    @pytest.fixture(scope="class")
    def journal_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("whatif") / "wc.journal.jsonl"
        assert main([
            "journal", "--workload", "wordcount", "--engine", "hamr",
            "--fidelity", "tiny", "--out", str(path),
        ]) == 0
        return str(path)

    def test_scenario_table_and_json(self, journal_path, tmp_path, capsys):
        out = tmp_path / "wi.json"
        assert main([
            "whatif", journal_path,
            "--scenario", "net=2.0,disk=0.5", "--json", str(out),
        ]) == 0
        assert "What-if" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == WHATIF_SCHEMA
        assert payload["scenarios"][0]["scenario"] == "disk=0.5,network=2"
        assert payload["scenarios"][0]["exact"] is True

    def test_sweep_renders_capacity_curve(self, journal_path, capsys):
        assert main([
            "whatif", journal_path, "--sweep", "nodes=4..16:4",
        ]) == 0
        assert "Capacity curve" in capsys.readouterr().out

    def test_identity_emit_journal_is_byte_identical(self, journal_path,
                                                     tmp_path, capsys):
        out = tmp_path / "id.jsonl"
        assert main(["whatif", journal_path, "--emit-journal", str(out)]) == 0
        assert out.read_bytes() == open(journal_path, "rb").read()

    def test_emit_journal_rejects_structural_scenarios(self, journal_path,
                                                       tmp_path, capsys):
        assert main([
            "whatif", journal_path, "--scenario", "nodes=9",
            "--emit-journal", str(tmp_path / "x.jsonl"),
        ]) == 2
        assert "bucket-only" in capsys.readouterr().err

    def test_bad_scenario_exits_2(self, journal_path, capsys):
        assert main(["whatif", journal_path, "--scenario", "gpu=2"]) == 2
        assert "unknown scenario key" in capsys.readouterr().err

    def test_missing_journal_exits_2(self, capsys):
        assert main(["whatif", "no_such.journal.jsonl"]) == 2

    def test_bad_spec_exits_2(self, capsys):
        assert main(["whatif", "wordcount:spark"]) == 2
        assert "neither a journal file" in capsys.readouterr().err

    def test_execute_dilation_passes_a_tight_gate(self, journal_path, capsys):
        assert main([
            "whatif", journal_path, "--scenario", "disk=0.5",
            "--execute", "--max-error", "1e-9",
        ]) == 0
        assert "Validation" in capsys.readouterr().out

    def test_max_error_gate_fails_loudly(self, journal_path, capsys,
                                         monkeypatch):
        real_validate = validate

        def bad_executor_validate(model, executor=None, scenarios=None):
            rows = real_validate(model, None, scenarios=scenarios)
            for row in rows:
                row.actual = row.prediction.predicted * 2.0
                row.method = "run"
            return rows

        monkeypatch.setattr(
            "repro.obs.whatif.validate", bad_executor_validate
        )
        assert main([
            "whatif", journal_path, "--scenario", "disk=0.5",
            "--execute", "--max-error", "0.25",
        ]) == 1
        assert "exceeds" in capsys.readouterr().err
