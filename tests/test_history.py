"""Tests for perf-history rows and sustained-shift detection."""

import json

import pytest

from repro.evaluation.__main__ import main
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    TREND_SCHEMA,
    append_history,
    detect_shift,
    encode_row,
    entry_matches,
    history_row,
    load_history,
    render_trend,
    resolve_commit,
    series,
    series_label,
    trend_report,
)

BENCH = "BENCH_obs.json"


@pytest.fixture(scope="module")
def bench_payload():
    with open(BENCH) as fh:
        return json.load(fh)


def _synthetic_history(values, workload="wordcount", engine="hamr",
                       metric="virtual_seconds"):
    rows = []
    for i, value in enumerate(values):
        entry = {"virtual_seconds": 40.0, "wall_seconds": 1.0,
                 "stall_share": 0.6, "traffic_bytes": 5.0e10,
                 "host_shares": None}
        entry[metric] = value
        rows.append({
            "schema": HISTORY_SCHEMA, "bench_schema": "repro.obs.bench/v5",
            "fidelity": "small", "commit": f"c{i:02d}",
            "rows": {workload: {engine: entry}},
        })
    return rows


def _write(rows, path):
    with open(path, "w") as fh:
        for row in rows:
            fh.write(encode_row(row) + "\n")


# -- rows ---------------------------------------------------------------------------


class TestHistoryRows:
    def test_row_from_committed_bench(self, bench_payload):
        row = history_row(bench_payload, commit="abc1234")
        assert row["schema"] == HISTORY_SCHEMA
        assert row["bench_schema"] == "repro.obs.bench/v5"
        assert row["commit"] == "abc1234"
        assert set(row["rows"]) == set(bench_payload["rows"])
        entry = row["rows"]["wordcount"]["hamr"]
        src = bench_payload["rows"]["wordcount"]["hamr"]
        assert entry["virtual_seconds"] == src["virtual_seconds"]
        assert entry["traffic_bytes"] == (
            src["telemetry"]["traffic"]["total_bytes"]
        )
        assert 0.0 <= entry["stall_share"] <= 1.0
        assert entry["host_shares"] == src["hostprof"]["shares"]

    def test_rejects_non_bench_payloads(self):
        with pytest.raises(ValueError, match="not a bench payload"):
            history_row({"schema": "something/else"})

    def test_append_load_round_trip(self, tmp_path, bench_payload):
        path = tmp_path / "hist.jsonl"
        row = history_row(bench_payload, commit="abc")
        append_history(row, str(path))
        append_history(row, str(path))  # append, never rewrite
        loaded = load_history(str(path))
        assert loaded == [row, row]

    def test_load_validates_schema_and_json(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"schema": "wrong/v0"}\n')
        with pytest.raises(ValueError, match="unsupported history schema"):
            load_history(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="malformed history row"):
            load_history(str(path))

    def test_series_skips_rows_missing_the_pair(self):
        rows = _synthetic_history([1.0, 2.0])
        rows.append({"schema": HISTORY_SCHEMA, "rows": {}})
        assert series(rows, "wordcount", "hamr", "virtual_seconds") == [1.0, 2.0]

    def test_series_are_keyed_on_the_exchange_configuration(self):
        rows = _synthetic_history([1.0, 2.0])
        twolevel = _synthetic_history([9.0])[0]
        twolevel["rows"]["wordcount"]["hamr"]["fabric"] = "twolevel"
        rows.append(twolevel)
        # a twolevel run never pollutes the direct baseline's band...
        assert series(rows, "wordcount", "hamr", "virtual_seconds") == [1.0, 2.0]
        # ...and trends as its own series
        assert series(
            rows, "wordcount", "hamr", "virtual_seconds", fabric="twolevel"
        ) == [9.0]
        shard = _synthetic_history([7.0])[0]
        shard["rows"]["wordcount"]["hamr"]["partitioner"] = "shard"
        assert series(
            [shard], "wordcount", "hamr", "virtual_seconds",
            partitioner="shard",
        ) == [7.0]
        assert series(
            [shard], "wordcount", "hamr", "virtual_seconds"
        ) == []

    def test_legacy_entries_default_to_direct_hash(self):
        # pre-fabric rows (no fabric/partitioner keys) keep trending in
        # the default series
        entry = {"virtual_seconds": 1.0}
        assert entry_matches(entry, "direct", "hash")
        assert not entry_matches(entry, "twolevel", "hash")

    def test_series_label_is_a_doctor_spec(self):
        assert series_label("wordcount", "hamr") == "wordcount:hamr"
        assert series_label(
            "terasort", "hadoop", fabric="twolevel"
        ) == "terasort:hadoop@twolevel"
        assert series_label(
            "terasort", "hadoop", fabric="twolevel", partitioner="shard"
        ) == "terasort:hadoop@twolevel+shard"
        assert series_label(
            "wordcount", "hamr", partitioner="shard"
        ) == "wordcount:hamr+shard"

    def test_resolve_commit_prefers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_COMMIT", "deadbee")
        assert resolve_commit() == "deadbee"

    def test_committed_seed_history_loads(self):
        rows = load_history(DEFAULT_HISTORY_PATH)
        assert rows, "seed BENCH_history.jsonl is empty"
        assert all(r["schema"] == HISTORY_SCHEMA for r in rows)


# -- detection ----------------------------------------------------------------------


class TestDetectShift:
    def test_short_history_gives_no_verdict(self):
        assert detect_shift([1.0, 1.0, 1.0])["status"] == "SHORT"

    def test_stable_series_stays_stable(self):
        values = [41.2, 41.3, 41.1, 41.25, 41.2, 41.3, 41.15]
        verdict = detect_shift(values)
        assert verdict["status"] == "STABLE"
        assert verdict["latest"] == values[-1]

    def test_sustained_shift_reports_first_shifted_index(self):
        values = [41.2] * 8 + [55.0, 55.2]
        verdict = detect_shift(values)
        assert verdict["status"] == "SHIFT"
        assert verdict["index"] == 8
        assert verdict["direction"] == 1
        assert verdict["delta_pct"] > 30.0

    def test_single_outlier_is_not_sustained(self):
        values = [41.2] * 8 + [70.0] + [41.2] * 2
        assert detect_shift(values)["status"] == "STABLE"

    def test_downward_shift_has_negative_direction(self):
        values = [41.2] * 8 + [20.0, 20.1]
        verdict = detect_shift(values)
        assert verdict["status"] == "SHIFT"
        assert verdict["direction"] == -1

    def test_rel_floor_absorbs_byte_identical_noise(self):
        # zero MAD (byte-identical reruns): a 1% wiggle stays in band
        values = [100.0] * 8 + [101.0, 101.0]
        assert detect_shift(values)["status"] == "STABLE"
        values = [100.0] * 8 + [105.0, 105.0]
        assert detect_shift(values)["status"] == "SHIFT"

    def test_reference_freezes_at_streak_start(self):
        # the shifted rows must not creep into the reference and mask
        # the regression
        values = [41.2] * 8 + [55.0, 55.1, 55.0, 55.2]
        verdict = detect_shift(values)
        assert verdict["status"] == "SHIFT"
        assert verdict["index"] == 8
        assert verdict["median"] == 41.2


# -- reports ------------------------------------------------------------------------


class TestTrendReport:
    def test_report_counts_shifts(self):
        rows = _synthetic_history([41.2] * 8 + [55.0, 55.2])
        report = trend_report(rows)
        assert report["schema"] == TREND_SCHEMA
        assert report["rows_total"] == 10
        assert report["shifts"] == 1
        assert report["results"][0]["workload"] == "wordcount"

    def test_report_filters_pairs(self):
        rows = _synthetic_history([41.2] * 10)
        assert trend_report(rows, engines=["hadoop"])["results"] == []

    def test_render_prints_doctor_command_on_shift(self):
        rows = _synthetic_history([41.2] * 8 + [55.0, 55.2])
        text = render_trend(trend_report(rows), history_path="hist.jsonl")
        assert "SHIFT" in text
        assert "row 8" in text
        # the exact ready-to-run diagnosis command, series spec included
        assert (
            "python -m repro.evaluation doctor --shift wordcount:hamr "
            "--history hist.jsonl --metric virtual_seconds" in text
        )
        quiet = render_trend(trend_report(_synthetic_history([41.2] * 10)))
        assert "no sustained shifts" in quiet
        assert "doctor" not in quiet


# -- CLI ----------------------------------------------------------------------------


class TestTrendCLI:
    def test_shifted_history_fails_the_gate(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(_synthetic_history([41.2] * 8 + [55.0, 55.2]), path)
        assert main(["trend", str(path)]) == 0  # informational by default
        assert main(["trend", str(path), "--fail-on-shift"]) == 1
        assert "sustained shift" in capsys.readouterr().out

    def test_clean_prefix_passes_the_gate(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(_synthetic_history([41.2] * 7), path)
        assert main(["trend", str(path), "--fail-on-shift"]) == 0
        assert "no sustained shifts" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trend", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_history_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trend", str(path)]) == 2
        assert "no history rows" in capsys.readouterr().err

    def test_metric_and_knobs_flow_through(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(
            _synthetic_history([0.6] * 8 + [0.9, 0.9], metric="stall_share"),
            path,
        )
        rc = main(["trend", str(path), "--metric", "stall_share",
                   "--fail-on-shift"])
        assert rc == 1
        capsys.readouterr()
        # a taller band hides the same shift
        rc = main(["trend", str(path), "--metric", "stall_share",
                   "--mad-threshold", "1000000", "--fail-on-shift"])
        assert rc == 1  # rel_floor still flags 50% jumps
        capsys.readouterr()

    def test_json_payload(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        _write(_synthetic_history([41.2] * 8 + [55.0, 55.2]), path)
        out = tmp_path / "trend.json"
        assert main(["trend", str(path), "--json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == TREND_SCHEMA
        assert payload["shifts"] == 1

    def test_window_bounds_the_scanned_rows(self, tmp_path, capsys):
        """--window N drops older rows: an ancient shift inside a stable
        recent window no longer trips the gate."""
        path = tmp_path / "hist.jsonl"
        # old regime at 41.2, then a sustained shift to 55.x
        _write(_synthetic_history([41.2] * 8 + [55.0, 55.2] * 4), path)
        assert main(["trend", str(path), "--fail-on-shift"]) == 1
        capsys.readouterr()
        # the last 8 rows are all post-shift: nothing to flag
        assert main(["trend", str(path), "--window", "8",
                     "--fail-on-shift"]) == 0
        out = capsys.readouterr().out
        assert "8 history rows" in out

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_window_exits_2(self, tmp_path, capsys, bad):
        path = tmp_path / "hist.jsonl"
        _write(_synthetic_history([41.2] * 7), path)
        assert main(["trend", str(path), "--window", bad]) == 2
        assert "--window must be positive" in capsys.readouterr().err
