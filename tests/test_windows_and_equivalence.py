"""Tumbling-window streaming tests and engine-equivalence property tests."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import histograms
from repro.apps.base import AppEnv
from repro.cluster import Cluster, small_cluster_spec
from repro.common.errors import ConfigError
from repro.core import (
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
    StreamSource,
    TimedBatch,
)
from repro.core.windows import TumblingWindows

slow_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestTumblingWindows:
    def test_window_assignment(self):
        win = TumblingWindows(width=10.0)
        assert win.window_of(0.0) == 0
        assert win.window_of(9.99) == 0
        assert win.window_of(10.0) == 1
        assert win.start(3) == 30.0
        assert win.end(3) == 40.0

    def test_origin_shift(self):
        win = TumblingWindows(width=10.0, origin=5.0)
        assert win.window_of(4.9) == -1
        assert win.window_of(5.0) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            TumblingWindows(width=0)

    def test_windowed_streaming_wordcount(self):
        """Per-minute word counts over a timed stream, end to end."""
        win = TumblingWindows(width=60.0)
        feed = [
            (10.0, "alpha beta"),
            (30.0, "alpha"),
            (70.0, "beta beta"),
            (130.0, "alpha gamma"),
        ]
        batches = [
            TimedBatch.make(t, [(t, line)]) for t, line in feed
        ]
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=3)))
        graph = FlowletGraph("windowed-wc")
        loader = graph.add(Loader("feed", StreamSource(batches, partitions=3)))

        def windowed_tokenize(ctx, event_time, line):
            for word in line.split():
                ctx.emit(win.key(event_time, word), 1)

        tok = graph.add(Map("tok", fn=windowed_tokenize))
        count = graph.add(
            PartialReduce("count", initial=lambda _k: 0, combine=lambda a, v: a + v)
        )
        graph.connect(loader, tok)
        graph.connect(tok, count)
        result = engine.run(graph)

        by_window = win.group_output(result.output("count"))
        assert by_window == {
            0: {"alpha": 2, "beta": 1},
            1: {"beta": 2},
            2: {"alpha": 1, "gamma": 1},
        }


class TestEngineEquivalence:
    """Both engines must agree with each other (and the reference) on
    randomized histogram inputs — rating distribution included."""

    @slow_settings
    @given(
        st.integers(min_value=10, max_value=80),
        st.integers(min_value=0, max_value=50),
        st.tuples(*[st.floats(min_value=0.05, max_value=1.0)] * 5).map(
            lambda w: tuple(x / sum(w) for x in w)
        ),
    )
    def test_histogram_ratings_equivalence(self, n_movies, seed, weights):
        params = histograms.HistogramParams(
            n_movies=n_movies, seed=seed, rating_weights=weights
        )
        records = histograms.generate_input(params)
        expected = histograms.reference_ratings(records)
        hamr = histograms.run_ratings_hamr(
            AppEnv(small_cluster_spec(num_workers=2)), params, records
        )
        hadoop = histograms.run_ratings_hadoop(
            AppEnv(small_cluster_spec(num_workers=2)), params, records
        )
        assert hamr.output == expected
        assert hadoop.output == expected

    @slow_settings
    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=50))
    def test_histogram_movies_equivalence(self, n_movies, seed):
        params = histograms.HistogramParams(n_movies=n_movies, seed=seed)
        records = histograms.generate_input(params)
        expected = histograms.reference_movies(records)
        hamr = histograms.run_movies_hamr(
            AppEnv(small_cluster_spec(num_workers=3)), params, records
        )
        hadoop = histograms.run_movies_hadoop(
            AppEnv(small_cluster_spec(num_workers=3)), params, records
        )
        assert hamr.output == expected
        assert hadoop.output == expected
