"""Unit and property tests for repro.common.partitioner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.partitioner import (
    HashPartitioner,
    ModPartitioner,
    RangePartitioner,
    partition_counts,
    stable_hash,
)

keys = st.one_of(
    st.text(max_size=40),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.binary(max_size=40),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False),
    st.tuples(st.text(max_size=10), st.integers(min_value=0, max_value=1000)),
)


class TestStableHash:
    @given(keys)
    def test_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(keys)
    def test_64_bit_range(self, key):
        assert 0 <= stable_hash(key) < 2**64

    def test_type_tagged(self):
        # the same bit pattern through different types must not collide trivially
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(b"x") != stable_hash("x")
        assert stable_hash(True) != stable_hash(1)

    def test_known_distinct_words(self):
        words = ["the", "quick", "brown", "fox", "jumps"]
        assert len({stable_hash(w) for w in words}) == len(words)

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            stable_hash(["list"])


class TestHashPartitioner:
    @given(keys, st.integers(min_value=1, max_value=64))
    def test_in_range(self, key, n):
        p = HashPartitioner(n)
        assert 0 <= p.partition(key) < n

    @given(keys)
    def test_single_partition_collapses(self, key):
        assert HashPartitioner(1).partition(key) == 0

    def test_spread_over_many_words(self):
        p = HashPartitioner(16)
        counts = partition_counts(p, (f"word{i}" for i in range(4000)))
        # Even key space → roughly balanced partitions (each within 2x of fair share)
        assert min(counts) > 4000 / 16 / 2
        assert max(counts) < 4000 / 16 * 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestModPartitioner:
    def test_direct_placement(self):
        p = ModPartitioner(5)
        assert [p.partition(i) for i in range(7)] == [0, 1, 2, 3, 4, 0, 1]


class TestPartitionOwnership:
    """Partitioner x cluster ownership: the shuffle's delivery invariant."""

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=8),
    )
    def test_every_partition_owned_exactly_once(self, num_partitions, num_workers):
        from repro.cluster import Cluster, small_cluster_spec

        cluster = Cluster(small_cluster_spec(num_workers=num_workers))
        owners = [
            cluster.owner_of_partition(p, num_partitions).node_id
            for p in range(num_partitions)
        ]
        # Each partition resolves to exactly one worker, so across workers
        # the partition space is covered exactly once — nothing dropped,
        # nothing double-delivered.
        assert len(owners) == num_partitions
        assert set(owners) <= {w.node_id for w in cluster.workers}
        per_worker = {w.node_id: 0 for w in cluster.workers}
        for owner in owners:
            per_worker[owner] += 1
        assert sum(per_worker.values()) == num_partitions
        # Round-robin layout: worker loads differ by at most one.
        assert max(per_worker.values()) - min(per_worker.values()) <= 1

    @given(keys, st.integers(min_value=1, max_value=6))
    def test_keys_route_to_their_partitions_owner(self, key, num_workers):
        from repro.cluster import Cluster, small_cluster_spec

        cluster = Cluster(small_cluster_spec(num_workers=num_workers))
        partitioner = cluster.default_partitioner()
        p = partitioner.partition(key)
        owner = cluster.owner_of_partition(p, partitioner.num_partitions)
        assert owner.node_id == cluster.owner_of_partition(
            p, partitioner.num_partitions
        ).node_id  # deterministic


class TestRangePartitioner:
    def test_boundaries(self):
        p = RangePartitioner([10, 20, 30])
        assert p.num_partitions == 4
        assert p.partition(5) == 0
        assert p.partition(10) == 0
        assert p.partition(11) == 1
        assert p.partition(25) == 2
        assert p.partition(99) == 3

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            RangePartitioner([3, 1, 2])

    @given(st.lists(st.integers(), min_size=1, max_size=20).map(sorted), st.integers())
    def test_partition_respects_boundaries(self, boundaries, key):
        p = RangePartitioner(boundaries)
        idx = p.partition(key)
        assert 0 <= idx <= len(boundaries)
        if idx > 0:
            assert boundaries[idx - 1] < key
        if idx < len(boundaries):
            assert key <= boundaries[idx]
