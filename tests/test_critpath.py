"""Tests for critical-path extraction and the paper's §5 explanations."""

import pytest

from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs import BUCKETS, EDGE_BARRIER, EDGE_SHUFFLE, EDGE_STALL
from repro.obs.critpath import (
    OTHER,
    ROLLUP_KEYS,
    WAIT,
    PathNode,
    critical_path,
    from_tracer,
    from_trace_dict,
    render_critpath,
)


def _node(span_id, start, end, name="w", cat="task", job="j", charges=None):
    return PathNode(
        span_id=span_id, name=name, cat=cat, node=0, job=job,
        start=start, end=end, charges=charges or {},
    )


class TestSyntheticPaths:
    def test_chain_covers_every_span(self):
        nodes = {
            1: _node(1, 0.0, 2.0, "a"),
            2: _node(2, 2.0, 5.0, "b"),
            3: _node(3, 5.0, 9.0, "c"),
        }
        edges = [(1, 2, EDGE_SHUFFLE), (2, 3, EDGE_BARRIER)]
        cp = critical_path(nodes, edges)
        assert [seg.span.span_id for seg in cp.segments] == [1, 2, 3]
        # the via kind names the edge that *ends* each segment on the walk
        assert [seg.via for seg in cp.segments] == [EDGE_SHUFFLE, EDGE_BARRIER, None]
        assert cp.path_seconds == pytest.approx(9.0)
        assert cp.makespan == pytest.approx(9.0)

    def test_walk_picks_latest_predecessor(self):
        # two preds of the terminal: the later-finishing one is binding
        nodes = {
            1: _node(1, 0.0, 1.0, "early"),
            2: _node(2, 0.0, 6.0, "late"),
            3: _node(3, 6.0, 8.0, "sink"),
        }
        edges = [(1, 3, EDGE_BARRIER), (2, 3, EDGE_BARRIER)]
        cp = critical_path(nodes, edges)
        assert [seg.span.span_id for seg in cp.segments] == [2, 3]

    def test_dependency_inside_span_gates_its_tail(self):
        # pred ends inside the consumer: only the tail after the cut is
        # on the path (the §5.2 stall wait-for shape)
        nodes = {
            1: _node(1, 0.0, 4.0, "producer"),
            2: _node(2, 1.0, 10.0, "consumer"),
        }
        cp = critical_path(nodes, [(1, 2, EDGE_STALL)])
        tail = cp.segments[-1]
        assert tail.span.span_id == 2
        assert tail.t0 == pytest.approx(4.0)
        assert tail.t1 == pytest.approx(10.0)

    def test_lead_in_charged_to_startup(self):
        nodes = {
            1: _node(1, 0.0, 10.0, "job", cat="job"),
            2: _node(2, 3.0, 10.0, "work"),
        }
        cp = critical_path(nodes, [])
        assert cp.lead_in == pytest.approx(3.0)
        assert cp.rollup["startup"] == pytest.approx(3.0)
        assert cp.makespan == pytest.approx(10.0)

    def test_gap_between_segments_is_wait(self):
        # pred finishes at 2, consumer only starts at 5: 3s of slack
        nodes = {
            1: _node(1, 0.0, 2.0, "a"),
            2: _node(2, 5.0, 8.0, "b"),
        }
        cp = critical_path(nodes, [(1, 2, EDGE_BARRIER)])
        assert cp.rollup[WAIT] == pytest.approx(3.0)

    def test_charges_scale_to_on_path_share(self):
        # half the span is on-path, so half its disk charge is too; the
        # uncharged remainder lands in "other"
        nodes = {
            1: _node(1, 0.0, 4.0, "a"),
            2: _node(2, 1.0, 9.0, "b", charges={"disk": 4.0}),
        }
        cp = critical_path(nodes, [(1, 2, EDGE_STALL)])
        tail = cp.segments[-1]
        assert tail.duration == pytest.approx(5.0)  # [4, 9] of the 8s span
        assert cp.rollup["disk"] == pytest.approx(4.0 * 5.0 / 8.0)
        # uncharged time: the producer's full 4s plus the tail's remainder
        assert cp.rollup[OTHER] == pytest.approx(4.0 + 5.0 - 4.0 * 5.0 / 8.0)

    def test_overcharged_span_normalizes(self):
        # recorded charges exceed the span duration: never explain more
        # time than the segment covers
        nodes = {1: _node(1, 0.0, 2.0, "a", charges={"disk": 3.0, "compute": 1.0})}
        cp = critical_path(nodes, [])
        explained = cp.rollup["disk"] + cp.rollup["compute"]
        assert explained == pytest.approx(2.0)
        assert cp.rollup[OTHER] == pytest.approx(0.0)

    def test_zero_length_cycle_terminates(self):
        nodes = {
            1: _node(1, 0.0, 5.0, "a"),
            2: _node(2, 0.0, 5.0, "b"),
        }
        edges = [(1, 2, EDGE_STALL), (2, 1, EDGE_STALL)]
        cp = critical_path(nodes, edges)  # must not hang
        assert cp.segments

    def test_what_if_bounds(self):
        nodes = {1: _node(1, 0.0, 10.0, "a", charges={"disk": 6.0, "compute": 4.0})}
        cp = critical_path(nodes, [])
        wi = cp.what_if("disk")
        assert wi.removed == pytest.approx(6.0)
        assert wi.bound_makespan == pytest.approx(4.0)
        assert wi.bound_speedup == pytest.approx(2.5)
        both = cp.what_if(("disk", "compute"))
        assert both.removed == pytest.approx(10.0)
        assert both.bound_speedup > 1e9  # everything removed -> unbounded

    def test_what_if_rejects_unknown_bucket(self):
        cp = critical_path({1: _node(1, 0.0, 1.0)}, [])
        with pytest.raises(ValueError, match="unknown rollup keys"):
            cp.what_if("gpu")

    def test_job_filter_restricts_spans(self):
        nodes = {
            1: _node(1, 0.0, 3.0, "a", job="j1"),
            2: _node(2, 0.0, 9.0, "b", job="j2"),
        }
        cp = critical_path(nodes, [], job="j1")
        assert [seg.span.span_id for seg in cp.segments] == [1]

    def test_empty_trace_yields_empty_path(self):
        cp = critical_path({}, [])
        assert cp.segments == []
        assert cp.makespan == 0.0
        assert set(cp.rollup) == set(ROLLUP_KEYS)


@pytest.fixture(scope="module")
def tiny_rows():
    """One traced tiny-fidelity run per Table 2 workload, both engines."""
    rows = {}
    for name in TABLE2_ORDER:
        rows[name] = run_workload(
            workload_by_name(name, "tiny"), engines="both", obs=True
        )
    return rows


class TestTracedRuns:
    def test_trace_dict_round_trip_matches_live(self, tiny_rows):
        tracer = tiny_rows["wordcount"].hamr_obs
        live = from_tracer(tracer).to_dict()
        replayed = from_trace_dict(tracer.to_dict()).to_dict()
        assert live == replayed

    def test_path_is_contiguous_backward_walk(self, tiny_rows):
        for name, row in tiny_rows.items():
            for tracer in (row.hamr_obs, row.hadoop_obs):
                cp = from_tracer(tracer)
                assert cp.segments, f"{name}: expected a non-empty path"
                prev_end = None
                for seg in cp.segments:
                    assert seg.t1 >= seg.t0 - 1e-9
                    if prev_end is not None:
                        assert seg.t0 >= prev_end - 1e-9
                    prev_end = seg.t1
                # path + lead-in never explain more than the makespan
                assert cp.path_seconds + cp.lead_in <= cp.makespan + 1e-6

    def test_rollup_accounts_for_path_seconds(self, tiny_rows):
        for name, row in tiny_rows.items():
            cp = from_tracer(row.hamr_obs)
            explained = sum(cp.rollup.values())
            covered = cp.path_seconds + cp.lead_in + cp.rollup[WAIT]
            assert explained == pytest.approx(covered, rel=1e-6), name

    def test_blame_bucket_sum_invariant(self, tiny_rows):
        """Per-span charges and the ledger agree: every job's bucket sums
        equal its total, for all 8 Table 2 workloads x both engines."""
        for name, row in tiny_rows.items():
            for engine, tracer in (("hamr", row.hamr_obs), ("hadoop", row.hadoop_obs)):
                jobs = tracer.blame.jobs()
                assert jobs, f"{name}/{engine}: no blame recorded"
                for job in jobs:
                    summary = tracer.blame.job_summary(job)
                    assert set(summary) == set(BUCKETS)
                    total = tracer.blame.job_total(job)
                    assert sum(summary.values()) == pytest.approx(
                        total, abs=1e-9
                    ), f"{name}/{engine}/{job}"

    def test_render_critpath_is_deterministic(self, tiny_rows):
        tracer = tiny_rows["histogram_ratings"].hamr_obs
        cp = from_tracer(tracer)
        assert render_critpath(cp) == render_critpath(from_tracer(tracer))


class TestPaperExplanations:
    """The what-if bounds reproduce the paper's §5 performance stories."""

    def test_naive_bayes_hadoop_is_startup_disk_bound(self, tiny_rows):
        # §5.1/Table 2: ClassificationNB on Hadoop pays per-iteration job
        # startup and disk-bound shuffle; HAMR's win comes from removing it
        cp = from_tracer(tiny_rows["naive_bayes"].hadoop_obs)
        overhead = cp.rollup["startup"] + cp.rollup["disk"]
        assert overhead > 0.5 * cp.makespan
        wi = cp.what_if(("disk", "startup"))
        assert wi.bound_speedup > 5.0

    def test_classification_hadoop_pays_startup_and_disk(self, tiny_rows):
        cp = from_tracer(tiny_rows["classification"].hadoop_obs)
        assert cp.what_if(("disk", "startup")).bound_speedup > 1.4

    def test_histogram_ratings_hamr_is_atomic_bound(self, tiny_rows):
        # §5.2: HistogramRatings on HAMR serializes on hot accumulator
        # keys — atomic time dominates the critical path, and relieving
        # atomic+stall buys far more than relieving disk+startup
        cp = from_tracer(tiny_rows["histogram_ratings"].hamr_obs)
        dominant = max(BUCKETS, key=lambda b: cp.rollup.get(b, 0.0))
        assert dominant == "atomic"
        assert cp.rollup["atomic"] > 0.5 * cp.makespan
        atomic_wi = cp.what_if(("atomic", "stall"))
        io_wi = cp.what_if(("disk", "startup"))
        assert atomic_wi.bound_speedup > 2.0
        assert atomic_wi.bound_speedup > io_wi.bound_speedup

    def test_histogram_ratings_hadoop_is_not_atomic_bound(self, tiny_rows):
        # the same workload on Hadoop has no shared accumulators: its
        # path carries (virtually) no atomic time
        cp = from_tracer(tiny_rows["histogram_ratings"].hadoop_obs)
        assert cp.rollup.get("atomic", 0.0) < 0.05 * cp.makespan

    def test_traced_run_with_edges_matches_untraced_time(self, tiny_rows):
        # tracing + causal edges must not perturb the simulation
        for name in ("naive_bayes", "histogram_ratings"):
            traced = tiny_rows[name]
            untraced = run_workload(
                workload_by_name(name, "tiny"), engines="both", obs=False
            )
            assert traced.hamr_seconds == untraced.hamr_seconds, name
            assert traced.idh_seconds == untraced.idh_seconds, name
