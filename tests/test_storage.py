"""Tests for the storage layer: DFS, LocalFS, spill runs, KV store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MemoryBudgetExceeded, StorageError
from repro.common.partitioner import HashPartitioner
from repro.cluster import Cluster, small_cluster_spec
from repro.storage import DFS, KVStore, LocalFS, LocationRef, SpillManager


def make_cluster(**kw):
    return Cluster(small_cluster_spec(**kw))


def run_process(cluster, gen):
    """Spawn a process, run the sim, return (result, elapsed)."""
    box = {}

    def wrapper(sim):
        box["result"] = yield from gen
        return box["result"]

    cluster.sim.spawn(wrapper(cluster.sim))
    elapsed = cluster.run()
    return box["result"], elapsed


class TestDFSIngest:
    def test_ingest_preserves_records(self):
        cluster = make_cluster(num_workers=3)
        dfs = DFS(cluster)
        records = [f"line-{i}" for i in range(100)]
        file = dfs.ingest("input.txt", records)
        assert list(file.records()) == records
        assert file.nrecords == 100
        assert dfs.exists("input.txt")

    def test_ingest_charges_no_time(self):
        cluster = make_cluster(num_workers=3)
        DFS(cluster).ingest("f", ["x"] * 1000)
        assert cluster.run() == 0.0
        assert cluster.total_disk_bytes() == 0

    def test_block_splitting_respects_scale(self):
        # 100 records x ~100B = 10KB real; at scale 1e4 that's 100MB modeled,
        # so with 128MB blocks everything fits one block; at scale 1e5 → 1GB → 8 blocks.
        records = ["x" * 100 for _ in range(100)]
        one = DFS(make_cluster(num_workers=3, scale=1e4)).ingest("f", records)
        many = DFS(make_cluster(num_workers=3, scale=1e5)).ingest("f", records)
        assert len(one.blocks) == 1
        assert len(many.blocks) == 8

    def test_replicas_distinct_and_on_workers(self):
        cluster = make_cluster(num_workers=5)
        dfs = DFS(cluster)
        file = dfs.ingest("f", ["data"] * 10)
        worker_ids = {n.node_id for n in cluster.workers}
        for block in file.blocks:
            assert len(block.replica_nodes) == 3  # default replication
            assert len(set(block.replica_nodes)) == 3
            assert set(block.replica_nodes) <= worker_ids

    def test_replication_capped_by_workers(self):
        cluster = make_cluster(num_workers=2)
        file = DFS(cluster).ingest("f", ["x"])
        assert len(file.blocks[0].replica_nodes) == 2

    def test_duplicate_name_rejected(self):
        dfs = DFS(make_cluster())
        dfs.ingest("f", [])
        with pytest.raises(StorageError):
            dfs.ingest("f", [])

    def test_missing_file(self):
        with pytest.raises(StorageError):
            DFS(make_cluster()).get_file("nope")

    def test_empty_file_has_one_empty_block(self):
        file = DFS(make_cluster()).ingest("empty", [])
        assert len(file.blocks) == 1
        assert file.nrecords == 0


class TestDFSReadWrite:
    def test_local_read_charges_disk_only(self):
        cluster = make_cluster(num_workers=3)
        dfs = DFS(cluster)
        file = dfs.ingest("f", ["r"] * 50)
        block = file.blocks[0]
        reader = cluster.nodes[block.replica_nodes[0]]
        records, elapsed = run_process(cluster, dfs.read_block(block, reader))
        assert records == ["r"] * 50
        assert elapsed > 0
        assert cluster.network.total_bytes == 0

    def test_remote_read_charges_network(self):
        cluster = make_cluster(num_workers=5)
        dfs = DFS(cluster)
        file = dfs.ingest("f", ["r"] * 50)
        block = file.blocks[0]
        non_replicas = [
            w for w in cluster.workers if w.node_id not in block.replica_nodes
        ]
        records, _ = run_process(cluster, dfs.read_block(block, non_replicas[0]))
        assert records == ["r"] * 50
        assert cluster.network.total_bytes > 0

    def test_write_replicates(self):
        cluster = make_cluster(num_workers=4)
        dfs = DFS(cluster)
        writer = cluster.worker(0)
        file, elapsed = run_process(cluster, dfs.write("out", ["a", "b"], writer))
        assert elapsed > 0
        assert list(file.records()) == ["a", "b"]
        # writer-local first replica
        assert file.blocks[0].replica_nodes[0] == writer.node_id
        assert cluster.network.total_bytes > 0  # pipeline to other replicas

    def test_write_existing_rejected(self):
        cluster = make_cluster()
        dfs = DFS(cluster)
        dfs.ingest("out", [])
        with pytest.raises(StorageError):
            # write() raises before yielding anything
            next(iter(dfs.write("out", ["x"], cluster.worker(0))), None)

    def test_splits_expose_locality(self):
        cluster = make_cluster(num_workers=3)
        dfs = DFS(cluster)
        dfs.ingest("f", ["x"] * 10)
        splits = dfs.splits("f")
        assert len(splits) == 1
        assert splits[0].preferred_nodes == dfs.get_file("f").blocks[0].replica_nodes
        assert splits[0].nrecords == 10


class TestLocalFS:
    def test_ingest_and_read(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        node = cluster.worker(1)
        fs.ingest(node, "data", [1, 2, 3])
        records, elapsed = run_process(cluster, fs.read(node, "data"))
        assert records == [1, 2, 3]
        assert elapsed > 0

    def test_write_returns_location_ref(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        node = cluster.worker(0)
        ref, _ = run_process(cluster, fs.write(node, "out", ["a", "b"]))
        assert ref == LocationRef(node.node_id, "out", offset=0, length=2)

    def test_append_offsets(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        node = cluster.worker(0)
        run_process(cluster, fs.write(node, "out", ["a"]))
        ref2, _ = run_process(cluster, fs.write(node, "out", ["b", "c"]))
        assert ref2.offset == 1
        assert ref2.length == 2

    def test_read_ref_resolves_slice(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        node = cluster.worker(0)
        fs.ingest(node, "f", list("abcdef"))
        ref = LocationRef(node.node_id, "f", offset=2, length=3)
        records, _ = run_process(cluster, fs.read_ref(node, ref))
        assert records == ["c", "d", "e"]

    def test_read_ref_on_wrong_node_rejected(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        owner, other = cluster.worker(0), cluster.worker(1)
        fs.ingest(owner, "f", ["x"])
        ref = LocationRef(owner.node_id, "f")
        with pytest.raises(StorageError):
            next(iter(fs.read_ref(other, ref)), None)

    def test_location_ref_is_small(self):
        from repro.common.sizeof import logical_sizeof

        ref = LocationRef(3, "clusters-0", offset=100, length=5000)
        assert logical_sizeof(ref) == 24

    def test_namespaces_are_per_node(self):
        cluster = make_cluster()
        fs = LocalFS(cluster)
        fs.ingest(cluster.worker(0), "same", [1])
        fs.ingest(cluster.worker(1), "same", [2])
        assert fs.get_file(cluster.worker(0).node_id, "same").records == [1]
        assert fs.get_file(cluster.worker(1).node_id, "same").records == [2]


class TestSpill:
    def test_spill_and_read_back(self):
        cluster = make_cluster()
        node = cluster.worker(0)
        node.alloc(13)  # logical size of ("k", 1): 4 + 1 + 8
        spill = SpillManager(node)
        run, _ = run_process(cluster, spill.spill([("k", 1)], sorted_by_key=True))
        assert run.sorted_by_key
        assert node.memory.used == 0  # freed by spilling
        records, _ = run_process(cluster, spill.read_back(run))
        assert records == [("k", 1)]
        assert spill.bytes_spilled > 0
        assert spill.bytes_read_back > 0

    def test_read_freed_run_rejected(self):
        cluster = make_cluster()
        node = cluster.worker(0)
        spill = SpillManager(node)
        run, _ = run_process(cluster, spill.spill([], free_memory=False))
        spill.free(run)
        with pytest.raises(StorageError):
            next(iter(spill.read_back(run)), None)
        assert spill.live_runs == 0

    def test_wrong_node_rejected(self):
        cluster = make_cluster()
        spill0 = SpillManager(cluster.worker(0))
        spill1 = SpillManager(cluster.worker(1))
        run, _ = run_process(cluster, spill0.spill([1], free_memory=False))
        with pytest.raises(StorageError):
            next(iter(spill1.read_back(run)), None)


class TestKVStore:
    def test_put_get_per_node(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        a, b = cluster.worker(0), cluster.worker(1)
        store.put(a, "k", "va")
        store.put(b, "k", "vb")
        assert store.get(a, "k") == "va"
        assert store.get(b, "k") == "vb"
        assert store.total_entries() == 2

    def test_memory_accounted_and_released(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        node = cluster.worker(0)
        store.put(node, "key", "x" * 100)
        assert node.memory.used > 0
        store.delete(node, "key")
        assert node.memory.used == 0

    def test_replace_releases_old(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        node = cluster.worker(0)
        store.put(node, "k", "x" * 1000)
        big = node.memory.used
        store.put(node, "k", "y")
        assert node.memory.used < big

    def test_oom_on_budget(self):
        cluster = make_cluster(num_workers=2, memory=1000, scale=1.0)
        store = KVStore(cluster)
        node = cluster.worker(0)
        with pytest.raises(MemoryBudgetExceeded):
            store.put(node, "k", "x" * 2000)

    def test_owner_routing(self):
        cluster = make_cluster(num_workers=4)
        store = KVStore(cluster)
        partitioner = HashPartitioner(4)
        owner = store.owner("some-key", partitioner)
        assert owner.node_id == cluster.owner_of_partition(
            partitioner.partition("some-key"), 4
        ).node_id

    def test_clear_releases_everything(self):
        cluster = make_cluster(num_workers=2)
        store = KVStore(cluster)
        for i, node in enumerate(cluster.workers):
            store.put(node, f"k{i}", "v" * 50)
        store.clear()
        assert store.total_entries() == 0
        assert all(n.memory.used == 0 for n in cluster.workers)

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=30))
    def test_roundtrip_property(self, mapping):
        cluster = make_cluster(num_workers=3)
        store = KVStore(cluster)
        node = cluster.worker(0)
        for k, v in mapping.items():
            store.put(node, k, v)
        assert dict(store.items(node)) == mapping
