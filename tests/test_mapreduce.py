"""Tests for the Hadoop-style baseline engine."""

import pytest

from repro.common.errors import JobError
from repro.cluster import Cluster, small_cluster_spec
from repro.core.combiner import sum_combiner
from repro.mapreduce import HadoopEngine, Mapper, MRJob, Reducer, run_chain
from repro.mapreduce.chain import chain_makespan
from repro.storage import DFS


LINES = [
    (0, "the quick brown fox"),
    (1, "the lazy dog"),
    (2, "the quick dog"),
]
EXPECTED = {"the": 3, "quick": 2, "dog": 2, "brown": 1, "fox": 1, "lazy": 1}


def make_engine(num_workers=4, **kw):
    cluster = Cluster(small_cluster_spec(num_workers=num_workers, **kw))
    dfs = DFS(cluster)
    return HadoopEngine(cluster, dfs)


def tokenize(ctx, _offset, line):
    for word in line.split():
        ctx.emit(word, 1)


def wordcount_job(input_file="in.txt", output_file="out", combiner=None):
    return MRJob(
        "wordcount",
        input_file,
        output_file,
        mapper=Mapper(fn=tokenize),
        reducer=Reducer(fn=lambda ctx, k, vs: ctx.emit(k, sum(vs))),
        combiner=combiner,
    )


class TestWordCount:
    def test_counts_correct(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        result = engine.run(wordcount_job())
        assert dict(result.outputs) == EXPECTED
        assert result.makespan > 0

    def test_output_written_to_dfs(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        engine.run(wordcount_job())
        assert engine.dfs.exists("out")
        assert dict(engine.dfs.get_file("out").records()) == EXPECTED

    def test_combiner_preserves_result(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        result = engine.run(wordcount_job(combiner=sum_combiner()))
        assert dict(result.outputs) == EXPECTED

    def test_combiner_reduces_shuffle(self):
        lines = [(i, "alpha beta " * 20) for i in range(200)]
        plain = make_engine()
        plain.dfs.ingest("in.txt", lines)
        r_plain = plain.run(wordcount_job())
        combined = make_engine()
        combined.dfs.ingest("in.txt", lines)
        r_comb = combined.run(wordcount_job(combiner=sum_combiner()))
        assert r_comb.metrics["shuffled_bytes"] < r_plain.metrics["shuffled_bytes"]

    def test_job_startup_floor(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        result = engine.run(wordcount_job())
        cost = engine.cluster.cost
        assert result.makespan >= cost.hadoop_job_startup + cost.hadoop_task_startup

    def test_determinism(self):
        def run_once():
            engine = make_engine()
            engine.dfs.ingest("in.txt", LINES)
            result = engine.run(wordcount_job())
            return result.makespan, sorted(result.outputs)

        assert run_once() == run_once()

    def test_counters(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        job = MRJob(
            "count-lines",
            "in.txt",
            "out",
            mapper=Mapper(fn=lambda ctx, k, v: ctx.counter("lines")),
            reducer=Reducer(fn=lambda ctx, k, vs: None),
        )
        result = engine.run(job)
        assert result.counters["lines"] == 3


class TestMapOnly:
    def test_map_only_job(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", [(i, i * i) for i in range(10)])
        job = MRJob(
            "square",
            "in.txt",
            "out",
            mapper=Mapper(fn=lambda ctx, k, v: ctx.emit(k, v + 1)),
        )
        result = engine.run(job)
        assert sorted(result.outputs) == [(i, i * i + 1) for i in range(10)]
        assert engine.dfs.exists("out")
        assert result.metrics["reduce_tasks"] == 0


class TestChains:
    def test_two_job_chain(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        job1 = wordcount_job("in.txt", "counts")
        # second job: bucket counts by frequency
        job2 = MRJob(
            "bucket",
            "counts",
            "buckets",
            mapper=Mapper(fn=lambda ctx, word, count: ctx.emit(count, word)),
            reducer=Reducer(fn=lambda ctx, count, words: ctx.emit(count, sorted(words))),
        )
        results = run_chain(engine, [job1, job2])
        assert len(results) == 2
        buckets = dict(results[1].outputs)
        assert buckets[3] == ["the"]
        assert set(buckets[2]) == {"dog", "quick"}
        # chain pays two job startups
        assert chain_makespan(results) >= 2 * engine.cost.hadoop_job_startup

    def test_chain_missing_input_rejected(self):
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        bad = wordcount_job("missing.txt", "out")
        with pytest.raises(JobError):
            run_chain(engine, [bad])

    def test_empty_chain_rejected(self):
        with pytest.raises(JobError):
            run_chain(make_engine(), [])


class TestCostStructure:
    def test_more_blocks_more_map_tasks(self):
        # High scale → more modeled blocks → more map tasks.
        engine = make_engine(num_workers=4, scale=2e6)
        lines = [(i, "x" * 100) for i in range(2000)]  # ~200KB real → ~400GB modeled
        engine.dfs.ingest("in.txt", lines)
        result = engine.run(wordcount_job())
        assert result.metrics["map_tasks"] > 100

    def test_reduce_barrier_orders_phases(self):
        # Map and reduce JVM startups overlap (reducers launch at job
        # start), so the hard floor is startup + one task startup, and the
        # reduce path must add fetch + merge + DFS write on top of it.
        engine = make_engine()
        engine.dfs.ingest("in.txt", LINES)
        result = engine.run(wordcount_job())
        cost = engine.cluster.cost
        assert result.makespan > cost.hadoop_job_startup + cost.hadoop_task_startup

    def test_reducer_side_spill_under_pressure(self):
        # Fetched shuffle segments overflow the per-reduce-task container
        # heap (1GB modeled) when the scale multiplier makes them huge.
        engine = make_engine(num_workers=2, scale=2e7)
        lines = [(i, f"w{i % 40} " * 30) for i in range(300)]
        engine.dfs.ingest("in.txt", lines)
        result = engine.run(wordcount_job())
        total = sum(v for _, v in result.outputs)
        assert total == 300 * 30
        assert result.metrics.get("reduce_spills", 0) > 0
