"""Unit and property tests for repro.common.stats."""


import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import Histogram, RunningStats, gini, percentile

floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    @given(st.lists(floats, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.count == len(values)
        assert s.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert s.min == min(values)
        assert s.max == max(values)
        if len(values) > 1:
            assert s.variance == pytest.approx(
                float(np.var(values, ddof=1)), rel=1e-6, abs=1e-4
            )

    def test_total(self):
        s = RunningStats()
        s.extend([1.0, 2.0, 3.0])
        assert s.total == 6.0


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 5.0, 5)
        for v in [0.1, 1.2, 2.5, 4.9]:
            h.add(v)
        assert h.counts == [1, 1, 1, 0, 1]

    def test_clamps_out_of_range(self):
        h = Histogram(0.0, 1.0, 2)
        h.add(-5.0)
        h.add(99.0)
        assert h.counts == [1, 1]
        assert h.total == 2

    def test_weighted_add(self):
        h = Histogram(0.0, 1.0, 1)
        h.add(0.5, count=10)
        assert h.total == 10

    def test_merge(self):
        a = Histogram(0.0, 1.0, 2)
        b = Histogram(0.0, 1.0, 2)
        a.add(0.1)
        b.add(0.9)
        a.merge(b)
        assert a.counts == [1, 1]

    def test_merge_rejects_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(0, 1, 2).merge(Histogram(0, 1, 3))

    def test_edges(self):
        h = Histogram(0.0, 1.0, 4)
        assert h.edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Histogram(0, 1, 0)
        with pytest.raises(ValueError):
            Histogram(1, 1, 3)

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), max_size=100))
    def test_total_conserved(self, values):
        h = Histogram(0.0, 10.0, 7)
        for v in values:
            h.add(v)
        assert h.total == len(values)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        vals = list(range(11))
        assert percentile(vals, 0) == 0
        assert percentile(vals, 100) == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(floats, min_size=1, max_size=100).map(sorted), st.floats(0, 100))
    def test_matches_numpy(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-6
        )


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_bounded(self, values):
        g = gini(values)
        assert -1e-9 <= g < 1.0
