"""Tests for the extension features: per-flowlet metrics, KV-store
checkpointing, the evaluation CLI, and the ablation helpers."""

import pytest

from repro.cluster import Cluster, small_cluster_spec
from repro.core import (
    CollectionSource,
    FlowletGraph,
    HamrEngine,
    Loader,
    Map,
    PartialReduce,
)
from repro.evaluation.__main__ import main as eval_main
from repro.evaluation.ablations import (
    AblationResult,
    ablation_async,
    ablation_bin_size,
    ablation_locality,
    ablation_memory,
    ablation_partial_reduce,
)
from repro.evaluation.workloads import make_kmeans, make_pagerank, make_wordcount
from repro.storage import KVStore, LocalFS


class TestFlowletMetrics:
    def test_profile_shape(self):
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=3)))
        g = FlowletGraph("wc")
        loader = g.add(Loader("load", CollectionSource([(i, f"a b c{i}") for i in range(20)])))
        tok = g.add(
            Map("tok", fn=lambda ctx, _k, line: [ctx.emit(w, 1) for w in line.split()] and None)
        )
        count = g.add(
            PartialReduce("count", initial=lambda _w: 0, combine=lambda a, v: a + v)
        )
        g.connect(loader, tok)
        g.connect(tok, count)
        result = engine.run(g)
        profile = result.flowlet_metrics
        assert set(profile) == {"load", "tok", "count"}
        assert profile["tok"]["pairs_in"] == 20
        assert profile["count"]["pairs_in"] == 60  # 3 words per line
        assert profile["tok"]["bins_in"] > 0
        assert all(row["stalls"] == 0 for row in profile.values())


class TestKVCheckpoint:
    def run_proc(self, cluster, gen):
        from repro.common.errors import ReproError, SimulationError

        cluster.sim.spawn(gen)
        try:
            cluster.run()
        except SimulationError as exc:  # pragma: no cover - defensive
            if isinstance(exc.__cause__, ReproError):
                raise exc.__cause__ from exc
            raise

    def test_roundtrip(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        fs = LocalFS(cluster)
        store = KVStore(cluster)
        for i, worker in enumerate(cluster.workers):
            store.put(worker, f"k{i}", {"v": i})
        self.run_proc(cluster, store.checkpoint(fs, "ckpt"))
        elapsed_after_ckpt = cluster.sim.now
        assert elapsed_after_ckpt > 0  # disk writes were charged
        store.clear()
        assert store.total_entries() == 0
        self.run_proc(cluster, store.restore(fs, "ckpt"))
        assert dict(store.all_items()) == {f"k{i}": {"v": i} for i in range(3)}
        # memory re-accounted on restore
        assert any(w.memory.used > 0 for w in cluster.workers)

    def test_checkpoint_overwrites(self):
        cluster = Cluster(small_cluster_spec(num_workers=2))
        fs = LocalFS(cluster)
        store = KVStore(cluster)
        store.put(cluster.worker(0), "a", 1)
        self.run_proc(cluster, store.checkpoint(fs, "ckpt"))
        store.put(cluster.worker(0), "b", 2)
        self.run_proc(cluster, store.checkpoint(fs, "ckpt"))
        store.clear()
        self.run_proc(cluster, store.restore(fs, "ckpt"))
        assert dict(store.all_items()) == {"a": 1, "b": 2}


class TestEvaluationCLI:
    def test_table1(self, capsys):
        assert eval_main(["table1"]) == 0
        assert "Cluster Information" in capsys.readouterr().out

    def test_bench_single(self, capsys):
        assert eval_main(["bench", "wordcount", "--fidelity", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "WordCount" in out
        assert "speedup" in out

    def test_bench_requires_name(self):
        with pytest.raises(SystemExit):
            eval_main(["bench"])

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            eval_main(["table9"])


@pytest.mark.slow
class TestAblationHelpers:
    """The ablation functions return sane comparisons (tiny fidelity —
    direction checks are reserved for the benches at reference fidelity)."""

    def test_memory_ablation(self):
        result = ablation_memory(make_pagerank("tiny"))
        assert isinstance(result, AblationResult)
        assert result.with_feature > 0 and result.without_feature > 0
        assert result.factor > 1.0  # disk staging hurts at any fidelity

    def test_async_ablation(self):
        result = ablation_async(make_wordcount("tiny"))
        assert result.factor >= 0.99

    def test_partial_reduce_ablation(self):
        result = ablation_partial_reduce(make_wordcount("tiny"))
        assert result.factor >= 0.99

    def test_bin_size_ablation(self):
        result = ablation_bin_size(make_wordcount("tiny"))
        assert result.without_feature > 0

    def test_locality_ablation(self):
        result = ablation_locality(make_kmeans("tiny"))
        assert result.factor > 1.0
