"""Tests for the shared record-batch data plane.

The load-bearing invariant: a batch's cached size equals the sum of its
records' per-record charges, so batching changes how often sizes are
computed but never what they sum to — virtual-clock results stay
byte-identical to per-record accounting.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.partitioner import HashPartitioner
from repro.common.sizeof import logical_sizeof, pair_size
from repro.cluster import Cluster, small_cluster_spec
from repro.dataplane import (
    BROADCAST,
    BROADCAST_PARTITION,
    LOCAL,
    SHUFFLE,
    BatchBuilder,
    RecordBatch,
    SpillPool,
    batch_nbytes,
    chunk_records,
    exchange_targets,
    partition_batch,
    spill_batch,
)

records_strategy = st.lists(
    st.one_of(
        st.text(max_size=20),
        st.integers(),
        st.tuples(st.text(max_size=10), st.integers()),
    ),
    max_size=30,
)

pairs_strategy = st.lists(
    st.tuples(st.text(max_size=12), st.integers()), max_size=40
)


class TestRecordBatch:
    @given(records_strategy)
    def test_batch_charge_equals_per_record_sum(self, records):
        # The accounting rule the whole refactor rests on.
        assert RecordBatch(list(records)).nbytes == sum(
            logical_sizeof(r) for r in records
        )

    @given(records_strategy)
    def test_cached_size_trusted(self, records):
        # A producer-supplied size is never recomputed.
        batch = RecordBatch(list(records), nbytes=123456)
        assert batch.nbytes == 123456

    def test_append_keeps_cache_valid(self):
        batch = RecordBatch(["ab"], nbytes=2)
        batch.append(("k", 1))
        assert batch.nbytes == 2 + pair_size("k", 1)
        assert batch.nbytes == batch_nbytes(batch.records)

    def test_extend_keeps_cache_valid(self):
        batch = RecordBatch([], nbytes=0)
        batch.extend(["ab", "cde"])
        assert batch.nbytes == 5 == batch_nbytes(batch.records)

    def test_sort_preserves_size(self):
        batch = RecordBatch([("b", 2), ("a", 1)])
        before = batch.nbytes
        batch.sort(key=lambda kv: repr(kv[0]))
        assert batch.records == [("a", 1), ("b", 2)]
        assert batch.nbytes == before

    def test_compares_to_plain_list(self):
        assert RecordBatch(["x", "y"]) == ["x", "y"]
        assert RecordBatch(["x"]) == RecordBatch(["x"])
        assert RecordBatch(["x"]) != ["y"]

    def test_len_bool_iter(self):
        batch = RecordBatch(["a", "b"])
        assert len(batch) == 2 and batch.nrecords == 2
        assert list(batch) == ["a", "b"]
        assert bool(batch) and not bool(RecordBatch())


class TestBatchBuilder:
    @given(records_strategy, st.integers(min_value=1, max_value=200))
    def test_chunking_equals_inline_accumulation(self, records, limit):
        # The builder must seal exactly where the engines' old inline
        # loops did: after the record that pushes the size to >= limit.
        chunks = chunk_records(list(records), limit)
        expected, open_chunk, open_bytes = [], [], 0
        for r in records:
            open_chunk.append(r)
            open_bytes += logical_sizeof(r)
            if open_bytes >= limit:
                expected.append(open_chunk)
                open_chunk, open_bytes = [], 0
        if open_chunk:
            expected.append(open_chunk)
        assert [c.records for c in chunks] == expected
        for chunk in chunks:
            assert chunk.nbytes == batch_nbytes(chunk.records)

    def test_presized_batch_passes_through_unsplit(self):
        batch = RecordBatch(["abc"] * 4, nbytes=12)
        assert chunk_records(batch, 100) == [batch]
        assert chunk_records(RecordBatch([], nbytes=0), 100) == []

    def test_scale_fn_moves_boundaries(self):
        # With a 10x scale, a 10-byte limit seals after every ~1 real byte.
        builder = BatchBuilder(10, scale_fn=lambda b: b * 10)
        assert builder.add("a") is not None
        assert builder.batches_sealed == 1

    def test_drain_returns_remainder_once(self):
        builder = BatchBuilder(1000)
        builder.add("tail")
        assert builder.drain().records == ["tail"]
        assert builder.drain() is None

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            BatchBuilder(0)


class TestPartitionBatch:
    @given(pairs_strategy, st.integers(min_value=1, max_value=8))
    def test_matches_per_pair_partitioning(self, pairs, n):
        partitioner = HashPartitioner(n)
        batches = partition_batch(pairs, partitioner)
        expected: dict[int, list] = {}
        for key, value in pairs:
            expected.setdefault(partitioner.partition(key), []).append((key, value))
        assert {p: b.records for p, b in batches.items()} == expected
        for batch in batches.values():
            assert batch.nbytes == sum(pair_size(k, v) for k, v in batch.records)

    def test_empty_partitions_absent(self):
        assert partition_batch([], HashPartitioner(4)) == {}

    def test_aggregated_flag_propagates(self):
        batches = partition_batch([("k", 1)], HashPartitioner(2), aggregated=True)
        assert all(b.aggregated for b in batches.values())


class TestExchangeTargets:
    def test_broadcast_reaches_every_worker(self):
        assert exchange_targets(
            BROADCAST, 0, worker_index=1, num_workers=4
        ) == [0, 1, 2, 3]

    def test_broadcast_partition_overrides_mode(self):
        assert exchange_targets(
            SHUFFLE, BROADCAST_PARTITION, worker_index=0, num_workers=3
        ) == [0, 1, 2]

    def test_local_stays_home(self):
        assert exchange_targets(LOCAL, 5, worker_index=2, num_workers=4) == [2]

    def test_shuffle_resolves_owner(self):
        targets = exchange_targets(
            SHUFFLE, 7, worker_index=0, num_workers=4, owner_of=lambda p: p % 4
        )
        assert targets == [3]

    def test_shuffle_requires_resolver(self):
        with pytest.raises(ValueError):
            exchange_targets(SHUFFLE, 0, worker_index=0, num_workers=2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            exchange_targets("teleport", 0, worker_index=0, num_workers=2)

    def test_partition_ownership_covers_each_partition_once(self):
        # Round-robin ownership: across all workers, every partition is
        # owned exactly once — no pair is dropped or double-delivered.
        cluster = Cluster(small_cluster_spec(num_workers=4))
        for num_partitions in (1, 3, 4, 7, 16):
            owners = [
                cluster.owner_of_partition(p, num_partitions).node_id
                for p in range(num_partitions)
            ]
            worker_ids = {w.node_id for w in cluster.workers}
            assert set(owners) <= worker_ids
            # each partition resolved exactly once and deterministically
            assert owners == [
                cluster.owner_of_partition(p, num_partitions).node_id
                for p in range(num_partitions)
            ]
            seen = [
                sum(1 for q in range(num_partitions)
                    if cluster.owner_of_partition(q, num_partitions).node_id == w)
                for w in sorted(worker_ids)
            ]
            assert sum(seen) == num_partitions


class TestSpillPool:
    def _run(self, cluster, gen):
        box = {}

        def wrapper(sim):
            box["result"] = yield from gen

        cluster.sim.spawn(wrapper(cluster.sim))
        cluster.run()
        return box["result"]

    def test_one_manager_per_node(self):
        cluster = Cluster(small_cluster_spec(num_workers=3))
        pool = SpillPool(job="j")
        node0, node1 = cluster.worker(0), cluster.worker(1)
        assert pool.for_node(node0) is pool.for_node(node0)
        assert pool.for_node(node0) is not pool.for_node(node1)
        assert len(pool.managers) == 2

    def test_spill_batch_uses_cached_size(self):
        cluster = Cluster(small_cluster_spec(num_workers=2))
        pool = SpillPool(job="j")
        node = cluster.worker(0)
        pairs = [("k", i) for i in range(10)]
        batch = RecordBatch(pairs, nbytes=sum(pair_size(k, v) for k, v in pairs))
        run = self._run(
            cluster, spill_batch(pool.for_node(node), batch, sorted_by_key=True)
        )
        # The run's size is the batch's cached size — exactly the
        # per-record sum the spill layer would otherwise recompute.
        assert run.nbytes == batch.nbytes == batch_nbytes(pairs)
        assert run.sorted_by_key
        assert pool.runs_created == 1
        assert pool.bytes_spilled > 0

    def test_shared_id_space_per_node(self):
        cluster = Cluster(small_cluster_spec(num_workers=2))
        pool = SpillPool(job="j")
        manager = pool.for_node(cluster.worker(0))
        first = self._run(cluster, manager.spill(["a"], free_memory=False))
        second = self._run(cluster, manager.spill(["b"], free_memory=False))
        assert (first.run_id, second.run_id) == (0, 1)
        read = self._run(cluster, manager.read_back(first))
        assert read == ["a"]
        assert pool.bytes_read_back > 0
