"""Tests for fleet analytics: corpus tables + dual-engine SQL.

The contract under test is threefold: the corpus index explodes into
relational tables with exactly the declared schemas, every canned query
returns *identical* rows from the flowlet compiler and the MapReduce
executor, and the MR SQL session honors the same registration rules as
the flowlet :class:`Catalog` (declared-schema empty tables included).
"""

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster.spec import small_cluster_spec
from repro.evaluation.__main__ import main
from repro.obs.blame import BUCKETS
from repro.obs.corpus import ingest, save_corpus
from repro.obs.journal import JournalWriter, encode_record, seed_bucket_slowdown
from repro.obs.analytics import (
    ANALYTICS_SCHEMA,
    CANNED_QUERIES,
    TABLE_COLUMNS,
    canonical_rows,
    corpus_tables,
    render_analytics,
    rows_match,
    run_analytics,
)
from repro.sql import Catalog, SQLError, SQLSession
from repro.sql.mr import MRSQLSession


def _journaled_run(seed=0):
    params = wordcount.WordCountParams(target_bytes=50_000, seed=seed)
    records = wordcount.generate_input(params)
    writer = JournalWriter()
    writer.write_header(
        workload="wordcount", label="WordCount", data_size="16GB",
        engine="hamr", commit="abc1234",
    )
    env = AppEnv(small_cluster_spec(num_workers=3), obs=True, journal=writer)
    result = wordcount.run_hamr(env, params, records)
    trace = env.cluster.trace.summary()
    writer.write_footer(
        makespan=result.makespan,
        virtual_end=env.cluster.sim.now,
        trace_records=trace["records"],
        trace_dropped=trace["dropped"],
    )
    return writer


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A two-run corpus (baseline + disk-seeded) with a saved index."""
    root = tmp_path_factory.mktemp("fleet")
    base = _journaled_run(seed=0)
    base.save(str(root / "base.journal.jsonl"))
    seeded = seed_bucket_slowdown(base.records, "disk", 2.0)
    with open(root / "seeded.journal.jsonl", "w") as fh:
        for record in seeded:
            fh.write(encode_record(record) + "\n")
    index = root / "corpus.jsonl"
    rows, _ = ingest([str(root)], exclude=[str(index)])
    save_corpus(rows, str(index))
    return {"rows": rows, "index": str(index)}


MOVIES = [
    {"title": "Heat", "genre": "crime", "year": 1995, "rating": 8.3},
    {"title": "Ronin", "genre": "action", "year": 1998, "rating": 7.2},
    {"title": "Drive", "genre": "crime", "year": 2011, "rating": 7.8},
    {"title": "Sicario", "genre": "crime", "year": 2015, "rating": 7.6},
    {"title": "Mad Max", "genre": "action", "year": 2015, "rating": 8.1},
]


# -- table export -------------------------------------------------------------------


class TestCorpusTables:
    def test_tables_carry_exactly_the_declared_columns(self, corpus):
        tables = corpus_tables(corpus["rows"])
        assert set(tables) == set(TABLE_COLUMNS)
        for name, table in tables.items():
            for row in table:
                assert tuple(row.keys()) == TABLE_COLUMNS[name]

    def test_row_counts_follow_the_corpus(self, corpus):
        rows = corpus["rows"]
        tables = corpus_tables(rows)
        assert len(tables["runs"]) == len(rows)
        assert len(tables["blame"]) == len(rows) * len(BUCKETS)
        assert len(tables["traffic"]) == len(rows)
        assert tables["critpath"]  # every run charges something

    def test_blame_shares_sum_to_one_per_run(self, corpus):
        tables = corpus_tables(corpus["rows"])
        by_run = {}
        for row in tables["blame"]:
            by_run.setdefault(row["fingerprint"], 0.0)
            by_run[row["fingerprint"]] += row["share"]
        for total in by_run.values():
            assert total == pytest.approx(1.0, abs=1e-4)

    def test_seeded_flag_and_text_defaults(self, corpus):
        tables = corpus_tables(corpus["rows"])
        assert sorted(row["seeded"] for row in tables["runs"]) == [0, 1]
        assert all(row["commit"] == "abc1234" for row in tables["runs"])
        # None-ish string columns become "-": sortable, never None
        blank = corpus_tables([{"fingerprint": "ff" * 8}])
        assert blank["runs"][0]["workload"] == "-"
        assert blank["runs"][0]["nodes"] == 0


class TestRowComparison:
    def test_canonical_rows_round_floats_only(self):
        rows = canonical_rows([{"a": 1.23456789, "b": 7, "c": "x"}])
        assert rows == [{"a": 1.234568, "b": 7, "c": "x"}]

    def test_rows_match_tolerates_last_bit_floats(self):
        a = [{"v": 0.1 + 0.2}]
        assert rows_match(a, [{"v": 0.3}])
        assert not rows_match(a, [{"v": 0.31}])
        assert not rows_match(a, [])
        assert not rows_match(a, [{"w": 0.3}])
        assert not rows_match([{"v": "x"}], [{"v": "y"}])


# -- dual-engine execution ----------------------------------------------------------


class TestRunAnalytics:
    @pytest.fixture(scope="class")
    def report(self, corpus):
        return run_analytics(corpus["rows"])

    def test_every_canned_query_matches_across_engines(self, report):
        assert report["schema"] == ANALYTICS_SCHEMA
        assert len(report["queries"]) == len(CANNED_QUERIES)
        for query in report["queries"]:
            assert query["match"], f"{query['name']} diverged across engines"
        assert report["all_match"]

    def test_queries_cost_virtual_time_on_both_engines(self, report):
        for query in report["queries"]:
            assert query["hamr_seconds"] > 0.0
            assert query["hadoop_seconds"] > 0.0

    def test_canned_queries_return_sensible_rows(self, report):
        by_name = {q["name"]: q for q in report["queries"]}
        fabric = by_name["fabric_traffic"]
        assert fabric["rows"][0]["fabric"] == "direct"
        assert fabric["rows"][0]["runs"] == 2
        makespans = by_name["makespan_by_engine"]
        assert makespans["rows"][0]["workload"] == "wordcount"
        slowest = by_name["slowest_runs"]
        # projection is ordered DESC: the seeded run leads
        assert slowest["rows"][0]["makespan"] >= slowest["rows"][-1]["makespan"]

    def test_query_subset_and_unknown_names(self, corpus):
        report = run_analytics(corpus["rows"], queries=["critpath_profile"])
        assert [q["name"] for q in report["queries"]] == ["critpath_profile"]
        with pytest.raises(ValueError, match="unknown analytics queries"):
            run_analytics(corpus["rows"], queries=["nope"])

    def test_render_is_deterministic_and_reports_the_verdict(self, report):
        text = render_analytics(report)
        assert text == render_analytics(report)
        assert "engines ok" in text
        assert "results identical" in text
        assert "fabric_traffic" in text


# -- the MapReduce SQL session ------------------------------------------------------


class TestMRSQLSession:
    @pytest.fixture()
    def envs(self):
        hamr_env = AppEnv(small_cluster_spec(num_workers=3))
        hadoop_env = AppEnv(small_cluster_spec(num_workers=3))
        catalog = Catalog()
        catalog.register("movies", MOVIES)
        flowlet = SQLSession(hamr_env.hamr, catalog)
        mr = MRSQLSession(hadoop_env)
        mr.register("movies", MOVIES)
        return flowlet, mr

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT genre, COUNT(*) AS n, AVG(rating) AS avg_rating "
            "FROM movies GROUP BY genre ORDER BY genre",
            "SELECT genre, MAX(rating) AS best FROM movies "
            "WHERE year > 1996 GROUP BY genre HAVING best > 7.5 ORDER BY genre",
            "SELECT title, rating FROM movies WHERE rating > 7.5 "
            "ORDER BY rating DESC LIMIT 2",
            "SELECT COUNT(*) AS n, SUM(rating) AS total FROM movies",
        ],
    )
    def test_mr_results_equal_flowlet_results(self, envs, sql):
        flowlet, mr = envs
        res_a, res_b = flowlet.run(sql), mr.run(sql)
        assert res_a.names == res_b.names
        assert rows_match(canonical_rows(res_a.rows), canonical_rows(res_b.rows))

    def test_repeated_queries_get_fresh_output_files(self, envs):
        _flowlet, mr = envs
        sql = "SELECT title FROM movies WHERE year = 2015 ORDER BY title"
        first = mr.run(sql)
        second = mr.run(sql)  # DFS is write-once: would crash without _seq
        assert first.rows == second.rows

    def test_join_is_rejected_on_the_mr_path(self, envs):
        _flowlet, mr = envs
        mr.register("genres", [{"genre": "crime", "boost": 1.0}])
        with pytest.raises(SQLError, match="JOIN queries are not supported"):
            mr.run(
                "SELECT movies.title FROM movies JOIN genres "
                "ON movies.genre = genres.genre"
            )

    def test_register_mirrors_catalog_validation(self):
        mr = MRSQLSession(AppEnv(small_cluster_spec(num_workers=3)))
        with pytest.raises(SQLError, match="has no rows"):
            mr.register("empty", [])
        with pytest.raises(SQLError, match="columns are empty"):
            mr.register("empty", [], columns=())
        with pytest.raises(SQLError, match="columns differ"):
            mr.register("ragged", [{"a": 1}, {"b": 2}])
        mr.register("declared", [], columns=("a", "b"))
        assert mr.columns("declared") == ("a", "b")
        result = mr.run("SELECT a FROM declared")
        assert result.rows == []

    def test_unknown_table_raises(self):
        mr = MRSQLSession(AppEnv(small_cluster_spec(num_workers=3)))
        with pytest.raises(SQLError, match="unknown table"):
            mr.run("SELECT x FROM ghost")
        with pytest.raises(SQLError, match="unknown table"):
            mr.columns("ghost")


# -- CLI ----------------------------------------------------------------------------


class TestAnalyticsCLI:
    def test_end_to_end_over_the_index(self, corpus, capsys):
        assert main(["analytics", "--index", corpus["index"]]) == 0
        out = capsys.readouterr().out
        assert "obs-analytics over 2 corpus run(s)" in out
        assert "results identical" in out

    def test_where_filter_narrows_the_fleet(self, corpus, capsys):
        rc = main([
            "analytics", "--index", corpus["index"],
            "--where", "seeded_slowdown=",
        ])
        assert rc == 0
        assert "over 1 corpus run(s)" in capsys.readouterr().out

    def test_empty_selection_exits_2(self, corpus, capsys):
        rc = main([
            "analytics", "--index", corpus["index"],
            "--where", "engine=hadoop",
        ])
        assert rc == 2
        assert "no matching runs" in capsys.readouterr().err

    def test_bad_worker_count_exits_2(self, corpus, capsys):
        assert main(
            ["analytics", "--index", corpus["index"], "--workers", "0"]
        ) == 2
        assert "workers" in capsys.readouterr().err
