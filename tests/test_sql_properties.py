"""Property-based tests for the SQL layer: expression evaluation against a
Python oracle, parser round-trips, and aggregate correctness on random data."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.sql import Catalog, SQLSession, parse
from repro.sql.ast import BinOp, Column, Literal, Neg, Not

slow_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

numbers = st.integers(min_value=-50, max_value=50)


class TestExpressionOracle:
    """Random arithmetic/boolean expressions evaluate like Python."""

    @staticmethod
    def exprs(depth=0):
        leaf = st.one_of(
            numbers.map(Literal),
            st.sampled_from(["a", "b"]).map(Column),
        )
        if depth >= 3:
            return leaf
        sub = st.deferred(lambda: TestExpressionOracle.exprs(depth + 1))
        return st.one_of(
            leaf,
            st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
                lambda t: BinOp(t[0], t[1], t[2])
            ),
            sub.map(Neg),
        )

    @settings(max_examples=100, deadline=None)
    @given(exprs.__func__(), numbers, numbers)
    def test_arithmetic_matches_python(self, expr, a, b):
        row = {"a": a, "b": b}

        def py_eval(e):
            if isinstance(e, Literal):
                return e.value
            if isinstance(e, Column):
                return row[e.name]
            if isinstance(e, Neg):
                return -py_eval(e.operand)
            ops = {"+": lambda x, y: x + y, "-": lambda x, y: x - y, "*": lambda x, y: x * y}
            return ops[e.op](py_eval(e.left), py_eval(e.right))

        assert expr.eval(row) == py_eval(expr)

    @settings(max_examples=100, deadline=None)
    @given(numbers, numbers)
    def test_comparisons(self, a, b):
        row = {"a": a, "b": b}
        assert BinOp("<", Column("a"), Column("b")).eval(row) == (a < b)
        assert BinOp(">=", Column("a"), Column("b")).eval(row) == (a >= b)
        assert BinOp("=", Column("a"), Column("b")).eval(row) == (a == b)
        assert Not(BinOp("=", Column("a"), Column("b"))).eval(row) == (a != b)


class TestParserProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_limit_roundtrip(self, n):
        q = parse(f"SELECT a FROM t LIMIT {n}")
        assert q.limit == n

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet="abcxyz_", min_size=1, max_size=10))
    def test_identifier_roundtrip(self, name):
        q = parse(f"SELECT {name} FROM t")
        assert q.output_names() == [name]

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet=st.characters(blacklist_characters="'", codec="ascii"), max_size=15))
    def test_string_literal_roundtrip(self, s):
        escaped = s.replace("'", "''")
        q = parse(f"SELECT a FROM t WHERE a = '{escaped}'")
        assert q.where.right == Literal(s)


class TestAggregateOracle:
    @slow_settings
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(-20, 20)),
            min_size=1,
            max_size=30,
        )
    )
    def test_min_max_avg(self, pairs):
        rows = [{"g": g, "v": v} for g, v in pairs]
        env = AppEnv(small_cluster_spec(num_workers=2))
        catalog = Catalog()
        catalog.register("t", rows)
        result = SQLSession(env.hamr, catalog).run(
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS mean FROM t GROUP BY g"
        )
        expected: dict[int, list[int]] = {}
        for g, v in pairs:
            expected.setdefault(g, []).append(v)
        assert len(result) == len(expected)
        for row in result.rows:
            values = expected[row["g"]]
            assert row["lo"] == min(values)
            assert row["hi"] == max(values)
            assert row["mean"] == pytest.approx(sum(values) / len(values))

    @slow_settings
    @given(
        st.lists(st.integers(-30, 30), min_size=1, max_size=30),
        st.integers(-10, 10),
    )
    def test_where_equals_python_filter(self, values, threshold):
        rows = [{"v": v} for v in values]
        env = AppEnv(small_cluster_spec(num_workers=2))
        catalog = Catalog()
        catalog.register("t", rows)
        result = SQLSession(env.hamr, catalog).run(
            f"SELECT v FROM t WHERE v > {threshold}" if threshold >= 0
            else f"SELECT v FROM t WHERE v > (0 - {-threshold})"
        )
        assert sorted(result.column("v")) == sorted(v for v in values if v > threshold)
