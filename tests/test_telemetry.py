"""Tests for cluster telemetry: timelines, traffic matrix, skew, determinism."""

import json

import pytest

from repro.apps import wordcount
from repro.apps.base import AppEnv
from repro.cluster import small_cluster_spec
from repro.dataplane import exchange_targets
from repro.evaluation.telemetryreport import (
    render_telemetry,
    telemetry_dict,
    telemetry_json,
)
from repro.obs import Tracer
from repro.obs.telemetry import (
    CPU,
    TELEMETRY_SCHEMA,
    DISK,
    MEM_USED,
    NIC_RX,
    NIC_TX,
    QUEUE,
    TimelineSampler,
    TrafficMatrix,
    build_skew_report,
    merge_traffic_totals,
    skew_stats,
)
from repro.sim import Simulator


def _sampler(enabled=True):
    return TimelineSampler(Simulator(), enabled=enabled)


def _run_traced(engine="hamr", seed=0, target_bytes=50_000, profile=False, fabric=None):
    params = wordcount.WordCountParams(target_bytes=target_bytes, seed=seed)
    records = wordcount.generate_input(params)
    env = AppEnv(small_cluster_spec(num_workers=3), obs=True, fabric=fabric)
    runner = wordcount.run_hamr if engine == "hamr" else wordcount.run_hadoop
    if profile:
        from repro.obs.hostprof import HostProfiler

        prof = HostProfiler()
        env.cluster.sim.hostprof = prof
        with prof.activation():
            result = runner(env, params, records)
    else:
        result = runner(env, params, records)
    return env, result


class TestTimelineSampler:
    def test_step_track_binning_time_weighted_mean(self):
        sampler = _sampler()
        # busy level 4 over [0, 5), 0 afterwards; bin to 10 bins of 1s
        sampler.record_step(CPU, 1, 0.0, 4.0)
        sampler.record_step(CPU, 1, 5.0, 0.0)
        bins = sampler.binned(CPU, 1, bins=10, t_end=10.0)
        assert bins[:5] == pytest.approx([4.0] * 5)
        assert bins[5:] == pytest.approx([0.0] * 5)

    def test_watermark_track_carries_level_into_later_bins(self):
        sampler = _sampler()
        sampler.record_step(MEM_USED, 2, 1.0, 100.0)
        sampler.record_step(MEM_USED, 2, 7.0, 10.0)
        bins = sampler.binned(MEM_USED, 2, bins=4, t_end=8.0)
        # level 100 spans bins 0..3 until t=7; bin 3 still saw 100
        assert bins == pytest.approx([100.0, 100.0, 100.0, 100.0])

    def test_rate_track_spreads_weight_proportionally(self):
        sampler = _sampler()
        # 8 bytes moved over [1, 5) -> 2 bytes per 1s bin
        sampler.record_interval(NIC_TX, 1, 1.0, 5.0, 8.0)
        bins = sampler.binned(NIC_TX, 1, bins=8, t_end=8.0)
        assert sum(bins) == pytest.approx(8.0)
        assert bins[1] == pytest.approx(2.0)
        assert bins[4] == pytest.approx(2.0)
        assert bins[6] == 0.0

    def test_rate_weight_clipped_interval_stays_conserved(self):
        sampler = _sampler()
        sampler.record_interval(DISK, 1, 0.0, 4.0, 4.0)
        # t_end truncates the interval: only the covered share is charged
        bins = sampler.binned(DISK, 1, bins=2, t_end=2.0)
        assert sum(bins) == pytest.approx(2.0)

    def test_busy_seconds_integral(self):
        sampler = _sampler()
        sampler.record_step(CPU, 3, 0.0, 2.0)
        sampler.record_step(CPU, 3, 4.0, 1.0)
        assert sampler.busy_seconds(CPU, 3, t_end=10.0) == pytest.approx(
            2.0 * 4 + 1.0 * 6
        )

    def test_same_instant_step_collapses_keep_last(self):
        sampler = _sampler()
        sampler.record_step(QUEUE, 1, 2.0, 5.0)
        sampler.record_step(QUEUE, 1, 2.0, 9.0)
        assert sampler._steps[(QUEUE, 1)] == [(2.0, 9.0)]

    def test_disabled_sampler_records_nothing(self):
        sampler = _sampler(enabled=False)
        sampler.record_step(CPU, 1, 0.0, 1.0)
        sampler.record_interval(DISK, 1, 0.0, 1.0, 1.0)
        assert sampler.tracks() == []

    def test_depth_observer_aggregates_deltas(self):
        sampler = _sampler()
        observe = sampler.depth_observer(QUEUE, 4)
        observe(1.0, 10.0)
        observe(2.0, 5.0)
        observe(3.0, -10.0)
        assert sampler._steps[(QUEUE, 4)] == [(1.0, 10.0), (2.0, 15.0), (3.0, 5.0)]

    def test_to_dict_deterministic_and_serializable(self):
        sampler = _sampler()
        sampler.record_step(CPU, 1, 0.0, 1.0)
        sampler.record_interval(NIC_RX, 2, 0.0, 1.0, 7.0)
        d1 = json.dumps(sampler.to_dict(bins=4, t_end=2.0), sort_keys=True)
        d2 = json.dumps(sampler.to_dict(bins=4, t_end=2.0), sort_keys=True)
        assert d1 == d2

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            _sampler().binned(CPU, 1, bins=0, t_end=1.0)


class TestTrafficMatrix:
    def test_edges_and_totals(self):
        m = TrafficMatrix("job")
        m.charge(1, 2, 100.0, records=10, mode="shuffle", partition=0)
        m.charge(1, 2, 50.0, records=5, mode="shuffle", partition=0)
        m.charge(2, 2, 30.0, records=3, mode="local")
        m.charge(1, 3, 20.0, records=2, mode="broadcast")
        assert m.edge_bytes(1, 2) == 150.0
        assert m.tx_bytes(1) == 170.0
        assert m.rx_bytes(2) == 180.0
        totals = m.totals()
        assert totals["total_bytes"] == 200.0
        assert totals["remote_bytes"] == 170.0  # the 2->2 local edge excluded
        assert totals["payloads"] == 4.0
        assert totals["records"] == 20.0
        assert totals["shuffle_bytes"] == 150.0
        assert totals["local_bytes"] == 30.0
        assert totals["broadcast_bytes"] == 20.0

    def test_partition_ledger_shuffle_only(self):
        m = TrafficMatrix("job")
        m.charge(1, 2, 10.0, records=1, mode="shuffle", partition=7)
        m.charge(1, 2, 10.0, records=1, mode="local", partition=7)
        assert m.partition_records() == {7: 1}
        assert m.partition_bytes() == {7: 10.0}

    def test_rejects_bad_inputs(self):
        m = TrafficMatrix()
        with pytest.raises(ValueError):
            m.charge(1, 2, -1.0)
        with pytest.raises(ValueError):
            m.charge(1, 2, 1.0, mode="teleport")

    def test_merge_totals(self):
        a, b = TrafficMatrix("a"), TrafficMatrix("b")
        a.charge(1, 2, 10.0, records=1, mode="shuffle", partition=0)
        b.charge(2, 1, 5.0, records=2, mode="local")
        merged = merge_traffic_totals([a, b])
        assert merged["total_bytes"] == 15.0
        assert merged["records"] == 3.0

    def test_to_dict_deterministic(self):
        m = TrafficMatrix("job")
        m.charge(3, 1, 5.0, mode="shuffle", partition=2)
        m.charge(1, 3, 5.0, mode="shuffle", partition=1)
        assert json.dumps(m.to_dict(), sort_keys=True) == json.dumps(
            m.to_dict(), sort_keys=True
        )
        assert m.to_dict()["edges"][0][:2] == [1, 3]  # sorted by (src, dst)


class TestExchangeChargesTraffic:
    def test_shuffle_charges_owner_edge(self):
        m = TrafficMatrix("j")
        targets = exchange_targets(
            "shuffle", 3,
            worker_index=0, num_workers=4, owner_of=lambda p: p % 4,
            traffic=m, src_node=10, node_of=lambda w: 20 + w,
            nbytes=64.0, nrecords=4,
        )
        assert targets == [3]
        assert m.edge_bytes(10, 23) == 64.0
        assert m.partition_records() == {3: 4}

    def test_broadcast_charges_every_worker(self):
        m = TrafficMatrix("j")
        exchange_targets(
            "broadcast", 0,
            worker_index=1, num_workers=3,
            traffic=m, src_node=1, node_of=lambda w: w + 1,
            nbytes=10.0, nrecords=1,
        )
        assert m.totals()["broadcast_bytes"] == 30.0
        assert m.payloads == 3

    def test_broadcast_partition_counts_as_broadcast_mode(self):
        m = TrafficMatrix("j")
        exchange_targets(
            "shuffle", -1,  # BROADCAST_PARTITION rides a shuffle edge
            worker_index=0, num_workers=2, owner_of=lambda p: 0,
            traffic=m, src_node=5, node_of=lambda w: w,
            nbytes=8.0, nrecords=1,
        )
        assert m.totals()["broadcast_bytes"] == 16.0
        assert m.totals()["shuffle_bytes"] == 0.0
        assert m.partition_records() == {}  # not a shuffle partition

    def test_charging_requires_resolvers(self):
        with pytest.raises(ValueError):
            exchange_targets(
                "local", 0, worker_index=0, num_workers=1,
                traffic=TrafficMatrix(), nbytes=1.0,
            )

    def test_no_traffic_kwarg_is_free(self):
        assert exchange_targets(
            "local", 0, worker_index=2, num_workers=4
        ) == [2]


class TestSkew:
    def test_stats_balanced(self):
        stats = skew_stats({0: 10.0, 1: 10.0, 2: 10.0})
        assert stats["max_mean_ratio"] == pytest.approx(1.0)
        assert stats["cv"] == pytest.approx(0.0)

    def test_stats_skewed(self):
        stats = skew_stats({0: 1.0, 1: 1.0, 2: 10.0})
        assert stats["max_mean_ratio"] == pytest.approx(10.0 / 4.0)
        assert stats["argmax"] == 2
        assert stats["cv"] > 1.0

    def test_stats_empty_and_zero(self):
        assert skew_stats({})["n"] == 0
        assert skew_stats({0: 0.0})["max_mean_ratio"] == 0.0

    def test_straggler_identification(self):
        sampler = _sampler()
        sampler.record_step(CPU, 1, 0.0, 1.0)
        sampler.record_step(CPU, 1, 2.0, 0.0)  # n1: 2 busy-seconds
        sampler.record_step(CPU, 2, 0.0, 1.0)
        sampler.record_step(CPU, 2, 8.0, 0.0)  # n2: 8 busy-seconds
        sampler.sim.now = 10.0
        report = build_skew_report(sampler, [])
        assert report.stragglers == [2]
        stats = report.sections["cpu_busy_seconds"]["stats"]
        assert stats["max_mean_ratio"] == pytest.approx(8.0 / 5.0)

    def test_report_dict_deterministic(self):
        m = TrafficMatrix("j")
        m.charge(1, 2, 10.0, records=5, mode="shuffle", partition=0)
        report = build_skew_report(_sampler(), [m])
        assert json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
            report.to_dict(), sort_keys=True
        )
        assert "exchange_tx_bytes" in report.sections


class TestTracedRunTelemetry:
    @pytest.fixture(scope="class")
    def traced(self):
        return _run_traced("hamr")

    def test_timeline_tracks_populated(self, traced):
        env, _result = traced
        timeline = env.obs.timeline
        tracks = timeline.tracks()
        for track in (CPU, DISK, NIC_TX, NIC_RX, MEM_USED, QUEUE):
            assert track in tracks, f"missing telemetry track {track!r}"
        assert timeline.nodes(CPU)
        assert timeline.busy_seconds(CPU, timeline.nodes(CPU)[0]) > 0

    def test_traffic_matrix_populated(self, traced):
        env, _result = traced
        matrices = env.obs.traffic_matrices()
        assert len(matrices) == 1
        matrix = matrices[0]
        assert matrix.total_bytes > 0
        assert matrix.payloads > 0
        totals = env.obs.traffic_totals()
        assert totals["total_bytes"] == pytest.approx(
            matrix.totals()["total_bytes"]
        )

    def test_memory_high_water_time_recorded(self, traced):
        env, _result = traced
        workers = env.cluster.workers
        peaks = [(n.memory.high_water, n.memory.high_water_time) for n in workers]
        assert any(hw > 0 for hw, _t in peaks)
        assert all(t >= 0.0 for _hw, t in peaks)
        assert any(t > 0.0 for hw, t in peaks if hw > 0)

    def test_render_telemetry_sections(self, traced):
        env, _result = traced
        text = render_telemetry(env.obs, title="T")
        assert "CPU slot occupancy" in text
        assert "traffic matrix" in text
        assert "Skew" in text

    def test_telemetry_dict_schema(self, traced):
        env, _result = traced
        d = telemetry_dict(env.obs, "wordcount", "hamr", bins=16)
        assert d["schema"] == TELEMETRY_SCHEMA
        assert d["timeline"]["bins"] == 16
        assert d["traffic_totals"]["total_bytes"] > 0
        assert d["skew"]["sections"]


class TestTelemetryDeterminism:
    def test_two_runs_byte_identical_hamr(self):
        env1, _ = _run_traced("hamr")
        env2, _ = _run_traced("hamr")
        j1 = telemetry_json(env1.obs, "wordcount", "hamr")
        j2 = telemetry_json(env2.obs, "wordcount", "hamr")
        assert j1 == j2

    def test_two_runs_byte_identical_hadoop(self):
        env1, _ = _run_traced("hadoop")
        env2, _ = _run_traced("hadoop")
        j1 = telemetry_json(env1.obs, "wordcount", "hadoop")
        j2 = telemetry_json(env2.obs, "wordcount", "hadoop")
        assert j1 == j2

    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_two_runs_byte_identical_twolevel_fabric(self, engine):
        # the rack-aware fabric (racked topology, combining gateways,
        # rerouted hops) must be as deterministic as the direct path
        env1, _ = _run_traced(engine, fabric="twolevel")
        env2, _ = _run_traced(engine, fabric="twolevel")
        j1 = telemetry_json(env1.obs, "wordcount", engine)
        j2 = telemetry_json(env2.obs, "wordcount", engine)
        assert j1 == j2

    def test_chrome_counter_events_deterministic(self):
        env1, _ = _run_traced("hamr")
        env2, _ = _run_traced("hamr")
        c1 = json.dumps(env1.obs.to_chrome_trace(), sort_keys=True)
        c2 = json.dumps(env2.obs.to_chrome_trace(), sort_keys=True)
        assert c1 == c2

    @pytest.mark.parametrize("engine", ["hamr", "hadoop"])
    def test_host_profiling_leaves_telemetry_byte_identical(self, engine):
        env_off, _ = _run_traced(engine)
        env_on, _ = _run_traced(engine, profile=True)
        assert telemetry_json(env_off.obs, "wordcount", engine) == telemetry_json(
            env_on.obs, "wordcount", engine
        )

    def test_both_engines_share_dataplane_accounting(self):
        # The two engines model different systems, so volumes differ — but
        # both must route every payload through the same dataplane charge
        # path: shuffle totals present, every edge a valid worker node.
        for engine in ("hamr", "hadoop"):
            env, _ = _run_traced(engine)
            [matrix] = env.obs.traffic_matrices()
            worker_ids = {n.node_id for n in env.cluster.workers}
            assert set(matrix.nodes()) <= worker_ids, engine
            assert matrix.totals()["shuffle_bytes"] > 0, engine


class TestDisabledTracerTelemetry:
    def test_disabled_tracer_charges_nothing(self):
        tracer = Tracer(Simulator(), enabled=False)
        assert tracer.timeline.enabled is False
        assert tracer.traffic_totals()["total_bytes"] == 0.0
        assert tracer.traffic_matrices() == []
