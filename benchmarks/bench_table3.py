"""E3 / A7 — regenerate Table 3: HAMR with combiners on the histograms.

The paper's finding: the combiner barely helps HistogramMovies
(1.72x -> 1.79x) because HAMR's data never touches disk anyway, but helps
HistogramRatings more (0.26x -> 0.31x) by relieving flow control — and it
never flips the HistogramRatings winner.
"""

import pytest

from conftest import run_once
from repro.evaluation.paper import PAPER_TABLE3
from repro.evaluation.tables import table3


@pytest.fixture(scope="module")
def table3_result(fidelity):
    return table3(fidelity)


def test_table3_render(benchmark, fidelity):
    result = run_once(benchmark, lambda: table3(fidelity))
    print()
    print(result.rendered)
    assert len(result.rows) == 2


def test_combiner_does_not_flip_ratings(table3_result, fidelity):
    if fidelity == "tiny":
        pytest.skip("bands are calibrated at the reference fidelity")
    ratings = table3_result.row("histogram_ratings")
    # Hadoop still wins HistogramRatings even with the combiner (Table 3).
    assert ratings.speedup < 1.0
    paper = PAPER_TABLE3["histogram_ratings"]
    assert ratings.paper is paper


def test_combiner_movies_band(table3_result, fidelity):
    if fidelity == "tiny":
        pytest.skip("bands are calibrated at the reference fidelity")
    movies = table3_result.row("histogram_movies")
    assert 1.0 <= movies.speedup <= 4.0
