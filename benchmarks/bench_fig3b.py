"""E5 — regenerate Figure 3(b): speedups of the IO-intensive benchmarks.

WordCount, HistogramMovies, HistogramRatings and NaiveBayes are the
simple scan-and-aggregate workloads "Hadoop is very good at": gains
shrink toward 1x and HistogramRatings inverts (Hadoop ~3x faster) due to
the five-key skew -> flow control + atomic contention pathology of §5.2.
"""

from conftest import run_once
from repro.evaluation.figures import figure3b


def test_figure3b(benchmark, fidelity):
    figure = run_once(benchmark, lambda: figure3b(fidelity))
    print()
    print(figure.rendered)
    assert len(figure.series) == 4
    benchmark.extra_info.update({label: round(s, 2) for label, s in figure.series})
    if fidelity != "tiny":
        speedups = dict(figure.series)
        assert speedups["HistogramRatings"] < 1.0  # the paper's inversion
        assert speedups["WordCount"] < 6.0  # modest gains on this side
