"""Observability benchmark: traced Table 2 runs -> ``BENCH_obs.json``.

Run::

    pytest benchmarks/bench_obs.py --benchmark-only -s

Every Table 2 workload runs once per engine with tracing enabled; the
final case writes ``BENCH_obs.json`` at the repo root (override with
``REPRO_BENCH_OBS_PATH``) holding each row's virtual seconds and blame
buckets, so later PRs can diff where the task-seconds went — not just
how many there were.
"""

import json
import os
import pathlib

import pytest

from conftest import run_once
from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs import BUCKETS

BENCH_SCHEMA = "repro.obs.bench/v1"

_rows: dict[str, dict] = {}  # accumulated across the parametrized cases


def _engine_entry(tracer, virtual_seconds):
    jobs = tracer.blame.jobs()
    blame = (
        tracer.blame.job_summary(jobs[0]) if jobs else {b: 0.0 for b in BUCKETS}
    )
    return {
        "virtual_seconds": round(virtual_seconds, 6),
        "blame": {bucket: round(blame[bucket], 6) for bucket in sorted(blame)},
    }


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_traced_row(benchmark, fidelity, name):
    workload = workload_by_name(name, fidelity)

    row = run_once(benchmark, lambda: run_workload(workload, obs=True))

    _rows[name] = {
        "data_size": workload.data_size,
        "speedup": round(row.speedup, 4),
        "hamr": _engine_entry(row.hamr_obs, row.hamr_seconds),
        "hadoop": _engine_entry(row.hadoop_obs, row.idh_seconds),
    }
    benchmark.extra_info.update(
        {
            "hamr_seconds": round(row.hamr_seconds, 3),
            "idh_seconds": round(row.idh_seconds, 3),
            "hamr_blame": _rows[name]["hamr"]["blame"],
        }
    )


def test_write_bench_obs_json(fidelity):
    assert set(_rows) == set(TABLE2_ORDER), "run the full parametrized set first"
    payload = {
        "schema": BENCH_SCHEMA,
        "fidelity": fidelity,
        "rows": {name: _rows[name] for name in TABLE2_ORDER},
    }
    default = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    path = pathlib.Path(os.environ.get("REPRO_BENCH_OBS_PATH", default))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")
