"""Observability benchmark: traced Table 2 runs -> ``BENCH_obs.json``.

Run under pytest-benchmark::

    pytest benchmarks/bench_obs.py --benchmark-only -s
    pytest benchmarks/bench_obs.py --benchmark-only -s \
        --workloads wordcount,naive_bayes --engines hamr

or as a plain script (no pytest-benchmark needed — what the CI
perf-regression gate uses)::

    python benchmarks/bench_obs.py --fidelity small --out BENCH_obs.json
    python benchmarks/bench_obs.py --workloads wordcount,naive_bayes

Every selected Table 2 workload runs once per engine with tracing
enabled; the artifact (schema ``repro.obs.bench/v5``) holds each row's
virtual seconds, blame buckets (plus their ledger total, for the
bucket-sum invariant), critical-path rollup, telemetry
traffic-matrix totals (total/remote/per-mode exchange bytes, payload and
record counts — drift-gated, so partitioner/exchange work is judged on
shuffle volume), and a ``hostprof`` section (total host ns plus
per-bucket shares from the dual-clock profiler), so later runs can be
diffed with ``python -m repro.evaluation diff`` — where the
task-seconds (and the bytes) went, not just how many there were. Each
entry also records ``wall_seconds``: real host elapsed time for the run,
deliberately *excluded* from the drift comparison (it varies machine to
machine) but kept in the artifact so data-plane speedups are measurable
before/after. Hostprof ``total_ns`` is likewise informational; only the
bucket *shares* gate, under the diff's absolute ``--host-tolerance``
band.

``--append-history [PATH]`` additionally appends one compact perf-history
row (schema ``repro.obs.history/v1``: the v5 totals, host shares and the
producing git commit) to ``BENCH_history.jsonl`` — the append-only series
``python -m repro.evaluation trend`` scans for sustained regressions.

``REPRO_OBS_SLOWDOWN=workload=factor`` scales one workload's recorded
virtual seconds — a seeded synthetic regression for validating that the
CI gate actually fails on drift. ``REPRO_OBS_HOST_SLOWDOWN=bucket=factor``
does the same on the host clock: it multiplies one hostprof bucket's
nanoseconds before shares are computed, shifting the recorded composition
so the gate's host-share band can be self-tested.
"""

import argparse
import json
import os
import pathlib
import sys

import pytest

from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs import BUCKETS
from repro.obs.critpath import from_tracer
from repro.obs.history import DEFAULT_HISTORY_PATH, append_history, history_row, resolve_commit

BENCH_SCHEMA = "repro.obs.bench/v5"

_rows: dict[str, dict] = {}  # accumulated across the parametrized cases
_snapshots: dict[str, dict] = {}  # workload -> engine -> full hostprof snapshot


def _synthetic_slowdown() -> tuple[str, float]:
    """Parse ``REPRO_OBS_SLOWDOWN=workload=factor`` (gate validation)."""
    raw = os.environ.get("REPRO_OBS_SLOWDOWN", "")
    if not raw:
        return "", 1.0
    workload, _, factor = raw.partition("=")
    try:
        return workload, float(factor)
    except ValueError:
        raise SystemExit(
            f"REPRO_OBS_SLOWDOWN must be 'workload=factor', got {raw!r}"
        ) from None


def _host_slowdown() -> tuple[str, float]:
    """Parse ``REPRO_OBS_HOST_SLOWDOWN=bucket=factor`` (host-gate validation)."""
    raw = os.environ.get("REPRO_OBS_HOST_SLOWDOWN", "")
    if not raw:
        return "", 1.0
    bucket, _, factor = raw.partition("=")
    try:
        return bucket, float(factor)
    except ValueError:
        raise SystemExit(
            f"REPRO_OBS_HOST_SLOWDOWN must be 'bucket=factor', got {raw!r}"
        ) from None


def _hostprof_entry(snapshot) -> dict:
    """Bench-artifact ``hostprof`` section: total ns + per-bucket shares.

    The synthetic host slowdown (if any) is applied to the chosen
    bucket's ns *before* shares are computed — exactly the composition
    shift a real host-side regression in that subsystem would record.
    """
    if snapshot is None:
        return {"total_ns": 0, "shares": {}}
    slow_bucket, slow_factor = _host_slowdown()
    buckets = dict(snapshot["buckets"])
    if slow_bucket in buckets:
        buckets[slow_bucket] = int(buckets[slow_bucket] * slow_factor)
    total = sum(buckets.values())
    return {
        # total_ns is informational (machine noise) — only shares gate
        "total_ns": total,
        "shares": {
            bucket: round(ns / total, 6) if total else 0.0
            for bucket, ns in sorted(buckets.items())
        },
    }


def _engine_entry(tracer, virtual_seconds, wall_seconds=0.0, hostprof=None):
    jobs = tracer.blame.jobs() if tracer is not None else []
    blame = (
        tracer.blame.job_summary(jobs[0]) if jobs else {b: 0.0 for b in BUCKETS}
    )
    blame_total = tracer.blame.job_total(jobs[0]) if jobs else 0.0
    critpath = from_tracer(tracer).rollup if tracer is not None else {}
    traffic = tracer.traffic_totals() if tracer is not None else {}
    return {
        "virtual_seconds": round(virtual_seconds, 6),
        # wall_seconds is informational: host time, excluded from diffing
        "wall_seconds": round(wall_seconds, 4),
        "blame": {bucket: round(blame[bucket], 6) for bucket in sorted(blame)},
        "blame_total": round(blame_total, 6),
        "critpath": {key: round(sec, 6) for key, sec in sorted(critpath.items())},
        # traffic totals ARE drift-gated (schema v4): shuffle-volume
        # regressions fail the perf gate just like makespan regressions
        "telemetry": {
            "traffic": {key: traffic[key] for key in sorted(traffic)}
        },
        # schema v5: host-clock composition; shares gate under the diff's
        # --host-tolerance absolute band, total_ns never does
        "hostprof": _hostprof_entry(hostprof),
    }


def run_row(
    name: str, fidelity: str, engines: str = "both",
    journal_stem: str | None = None, fabric: str = "direct",
    partitioner: str = "hash",
) -> dict:
    """Run one traced+profiled workload row and build its artifact entry.

    ``journal_stem`` additionally writes one durable run journal per
    engine to ``<journal_stem>.<name>.<engine>.journal.jsonl`` (see
    :mod:`repro.obs.journal`) — replayable via
    ``python -m repro.evaluation replay`` with byte-identical output.

    ``fabric`` selects the exchange fabric for both engines (fabric
    sweeps); non-direct entries carry a ``"fabric"`` key so the diff
    gate keys them as ``engine@fabric`` and never compares them against
    a direct baseline row.
    """
    journal = None
    if journal_stem is not None:
        from repro.obs.journal import JournalWriter

        journal = lambda engine: JournalWriter(meta={"fidelity": fidelity})  # noqa: E731
    workload = workload_by_name(name, fidelity)
    row = run_workload(
        workload, engines=engines, obs=True, profile=True, journal=journal,
        fabric=None if fabric == "direct" else fabric,
        partitioner=None if partitioner == "hash" else partitioner,
    )
    if journal_stem is not None:
        for engine, writer in (
            ("hamr", row.hamr_journal), ("hadoop", row.hadoop_journal)
        ):
            if writer is not None:
                journal_path = f"{journal_stem}.{name}.{engine}.journal.jsonl"
                writer.save(journal_path)
                print(f"wrote {journal_path}", file=sys.stderr)
    slow_name, slow_factor = _synthetic_slowdown()
    factor = slow_factor if name == slow_name else 1.0
    entry = {
        "data_size": workload.data_size,
        "speedup": round(row.speedup, 4) if engines == "both" else None,
    }
    if engines in ("both", "hamr"):
        entry["hamr"] = _engine_entry(
            row.hamr_obs, row.hamr_seconds * factor, row.hamr_wall_seconds,
            row.hamr_hostprof,
        )
    if engines in ("both", "hadoop"):
        entry["hadoop"] = _engine_entry(
            row.hadoop_obs, row.idh_seconds * factor, row.hadoop_wall_seconds,
            row.hadoop_hostprof,
        )
    # Off-default exchange configurations are stamped per engine entry so
    # the diff gate and trend series key on them (default entries stay
    # key-free — the committed baseline artifact is unchanged).
    for engine in ("hamr", "hadoop"):
        if engine not in entry:
            continue
        if fabric != "direct":
            entry[engine]["fabric"] = fabric
        if partitioner != "hash":
            entry[engine]["partitioner"] = partitioner
    snaps = {}
    if row.hamr_hostprof is not None:
        snaps["hamr"] = {"hostprof": row.hamr_hostprof}
    if row.hadoop_hostprof is not None:
        snaps["hadoop"] = {"hostprof": row.hadoop_hostprof}
    _snapshots[name] = snaps
    return entry


def build_payload(rows: dict[str, dict], fidelity: str) -> dict:
    ordered = [name for name in TABLE2_ORDER if name in rows]
    return {
        "schema": BENCH_SCHEMA,
        "fidelity": fidelity,
        "rows": {name: rows[name] for name in ordered},
    }


def _default_path() -> pathlib.Path:
    default = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    return pathlib.Path(os.environ.get("REPRO_BENCH_OBS_PATH", default))


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- pytest-benchmark harness -----------------------------------------------------


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_traced_row(
    benchmark, fidelity, workloads_filter, engines_filter, name,
    profile_enabled, hostprof_sink,
):
    if workloads_filter and name not in workloads_filter:
        pytest.skip(f"{name} not in --workloads filter")
    from conftest import run_once

    engines = engines_filter or "both"
    entry = run_once(benchmark, lambda: run_row(name, fidelity, engines))
    if profile_enabled:
        hostprof_sink[name] = _snapshots.get(name, {})

    _rows[name] = entry
    extra = {}
    if "hamr" in entry:
        extra["hamr_seconds"] = entry["hamr"]["virtual_seconds"]
        extra["hamr_blame"] = entry["hamr"]["blame"]
    if "hadoop" in entry:
        extra["idh_seconds"] = entry["hadoop"]["virtual_seconds"]
    benchmark.extra_info.update(extra)


def test_write_bench_obs_json(fidelity, workloads_filter, engines_filter):
    if workloads_filter or engines_filter:
        pytest.skip("filtered run — not writing the full baseline artifact")
    assert set(_rows) == set(TABLE2_ORDER), "run the full parametrized set first"
    path = _default_path()
    write_payload(build_payload(_rows, fidelity), path)
    print(f"\nwrote {path}")


# -- plain-script mode (CI perf gate: no pytest-benchmark required) ---------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Traced Table 2 bench artifact (repro.obs.bench/v5)."
    )
    parser.add_argument(
        "--fidelity",
        default=os.environ.get("REPRO_FIDELITY", "small"),
        choices=["tiny", "small", "medium"],
    )
    parser.add_argument(
        "--workloads",
        default="",
        help="comma-separated subset of Table 2 workloads (default: all)",
    )
    parser.add_argument(
        "--engines", default="both", choices=["both", "hamr", "hadoop"]
    )
    parser.add_argument(
        "--fabric",
        default="direct",
        choices=["direct", "tree", "twolevel", "rdma"],
        help="exchange fabric for both engines (fabric sweeps; non-direct "
        "entries are keyed engine@fabric by the diff gate)",
    )
    parser.add_argument(
        "--partitioner",
        default="hash",
        choices=["hash", "shard"],
        help="partition-ownership strategy for both engines (non-hash "
        "entries are stamped so trend series never mix strategies)",
    )
    parser.add_argument(
        "--out", default=str(_default_path()), help="artifact output path"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also write the full hostprof snapshots (flat/tree/clock) "
        "to <out-stem>.hostprof.json",
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="also write one durable run journal per workload x engine "
        "to <out-stem>.<workload>.<engine>.journal.jsonl",
    )
    parser.add_argument(
        "--append-history",
        nargs="?",
        const=DEFAULT_HISTORY_PATH,
        default=None,
        metavar="PATH",
        help="also append one perf-history row (totals + host shares + "
        f"git commit) to PATH (default {DEFAULT_HISTORY_PATH}; see "
        "`python -m repro.evaluation trend`)",
    )
    args = parser.parse_args(argv)

    selected = [w for w in args.workloads.split(",") if w] or list(TABLE2_ORDER)
    unknown = sorted(set(selected) - set(TABLE2_ORDER))
    if unknown:
        parser.error(f"unknown workloads {unknown}; pick from {TABLE2_ORDER}")

    journal_stem = None
    if args.journal:
        out_path = pathlib.Path(args.out)
        journal_stem = str(out_path.parent / out_path.stem)
    rows = {}
    for name in selected:
        print(f"  running {name} ({args.fidelity}, {args.engines}) ...", file=sys.stderr)
        rows[name] = run_row(
            name, args.fidelity, args.engines, journal_stem=journal_stem,
            fabric=args.fabric, partitioner=args.partitioner,
        )
    path = pathlib.Path(args.out)
    payload = build_payload(rows, args.fidelity)
    write_payload(payload, path)
    print(f"wrote {path}")
    if args.append_history is not None:
        append_history(history_row(payload, resolve_commit()), args.append_history)
        print(f"appended history row to {args.append_history}")
    if args.profile:
        from repro.evaluation.profilereport import profile_payload

        prof_path = path.with_suffix(".hostprof.json")
        prof_path.write_text(
            json.dumps(
                profile_payload(
                    args.fidelity, {name: _snapshots.get(name, {}) for name in selected}
                ),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {prof_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
