"""A1-A6 — ablation benches for the design choices DESIGN.md §5 calls out.

Each bench turns one HAMR feature off and reports how much slower the
engine gets (``factor`` > 1 means the feature pays for itself), printing
a one-line verdict per ablation.
"""


from conftest import run_once
from repro.evaluation.ablations import (
    ablation_async,
    ablation_bin_size,
    ablation_combiner,
    ablation_locality,
    ablation_memory,
    ablation_partial_reduce,
    ablation_skew,
)
from repro.evaluation.workloads import (
    make_histogram_ratings,
    make_kmeans,
    make_pagerank,
    make_wordcount,
)


def _report(benchmark, result):
    print(
        f"\n[{result.ablation}] {result.description}: "
        f"{result.with_feature:.1f}s with vs {result.without_feature:.1f}s without "
        f"(x{result.factor:.2f})"
    )
    benchmark.extra_info.update(
        {
            "with_feature_s": round(result.with_feature, 2),
            "without_feature_s": round(result.without_feature, 2),
            "factor": round(result.factor, 2),
        }
    )
    return result


def test_a1_in_memory_vs_disk_staged(benchmark, fidelity):
    workload = make_pagerank(fidelity)
    result = _report(benchmark, run_once(benchmark, lambda: ablation_memory(workload)))
    # staging every edge through disk must cost something
    assert result.factor > 1.0


def test_a2_async_vs_barrier(benchmark, fidelity):
    workload = make_wordcount(fidelity)
    result = _report(benchmark, run_once(benchmark, lambda: ablation_async(workload)))
    # barriers can only delay completion
    assert result.factor >= 0.99


def test_a3_partial_reduce_vs_reduce(benchmark, fidelity):
    workload = make_wordcount(fidelity)
    result = _report(
        benchmark, run_once(benchmark, lambda: ablation_partial_reduce(workload))
    )
    # the full reduce must buffer and group everything; partial reduce
    # must not be slower
    assert result.factor >= 0.99


def test_a4_bin_size(benchmark, fidelity):
    workload = make_wordcount(fidelity)
    result = _report(benchmark, run_once(benchmark, lambda: ablation_bin_size(workload)))
    # coarse (1MB) bins strangle fine-grain parallelism
    assert result.factor > 1.0


def test_a5_skew_sensitivity(benchmark, fidelity):
    series = run_once(benchmark, lambda: ablation_skew(fidelity))
    print()
    for label, makespan in series:
        print(f"[A5] ratings skew={label:8s} HAMR makespan={makespan:9.1f}s")
    benchmark.extra_info.update({label: round(m, 1) for label, m in series})
    by_label = dict(series)
    # §5.2: performance degrades as the key space gets more uneven
    assert by_label["extreme"] > by_label["uniform"]


def test_a6_locality_refs(benchmark, fidelity):
    workload = make_kmeans(fidelity)
    result = _report(benchmark, run_once(benchmark, lambda: ablation_locality(workload)))
    # shipping bulk movie data instead of refs must hurt
    assert result.factor > 1.0


def test_a7_combiner(benchmark, fidelity):
    workload = make_histogram_ratings(fidelity)
    result = _report(benchmark, run_once(benchmark, lambda: ablation_combiner(workload)))
    # Table 3: the combiner helps HistogramRatings (flow-control relief)
    if fidelity != "tiny":
        assert result.factor >= 1.0


def test_a8_cluster_scaling(benchmark, fidelity):
    """Extra study: HAMR makespan as the cluster widens (4 -> 8 -> 15 workers)."""
    from repro.evaluation.ablations import scaling_study
    from repro.evaluation.workloads import make_kmeans

    workload = make_kmeans(fidelity)
    series = run_once(benchmark, lambda: scaling_study(workload))
    print()
    for workers, makespan, speedup in series:
        print(f"[A8] {workers:2d} workers: HAMR K-Means {makespan:9.1f}s  (x{speedup:.2f} vs 4)")
    benchmark.extra_info.update({f"workers_{w}": round(m, 1) for w, m, _s in series})
    # more workers must not slow the job down; at reference fidelity it
    # should speed it up measurably
    assert series[-1][1] <= series[0][1]
    if fidelity != "tiny":
        assert series[-1][2] > 1.5
