"""Shared fixtures for the benchmark harnesses.

Fidelity (real data size per workload) comes from ``REPRO_FIDELITY``
(``tiny`` / ``small`` / ``medium``; default ``small`` — the reference
fidelity the shape bands are calibrated at; see DESIGN.md §7).

Each harness runs a workload's *simulation* once and reports the paper's
metric — virtual-clock seconds — through ``benchmark.extra_info`` while
pytest-benchmark records the harness wall time.
"""

import os

import pytest


_PROFILE_SINK: dict[str, dict] = {}  # workload -> engine -> {"hostprof": snapshot}


def pytest_addoption(parser):
    parser.addoption(
        "--workloads",
        default="",
        help="comma-separated workload subset for bench_obs (default: all)",
    )
    parser.addoption(
        "--engines",
        default="",
        choices=["", "both", "hamr", "hadoop"],
        help="engine filter for bench_obs (default: both)",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        help="run with the dual-clock host profiler on and write the "
        "hostprof snapshots next to the results "
        "(REPRO_BENCH_HOSTPROF_PATH, default bench.hostprof.json)",
    )


def pytest_sessionfinish(session, exitstatus):
    """Emit the accumulated hostprof snapshots when ``--profile`` was on."""
    if not session.config.getoption("--profile", default=False) or not _PROFILE_SINK:
        return
    import json
    import pathlib

    from repro.evaluation.profilereport import profile_payload

    path = pathlib.Path(
        os.environ.get("REPRO_BENCH_HOSTPROF_PATH", "bench.hostprof.json")
    )
    payload = profile_payload(
        os.environ.get("REPRO_FIDELITY", "small"), dict(sorted(_PROFILE_SINK.items()))
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")


@pytest.fixture(scope="session")
def fidelity() -> str:
    return os.environ.get("REPRO_FIDELITY", "small")


@pytest.fixture(scope="session")
def workloads_filter(request) -> frozenset:
    from repro.evaluation.workloads import TABLE2_ORDER

    raw = request.config.getoption("--workloads")
    selected = frozenset(w for w in raw.split(",") if w)
    unknown = sorted(selected - set(TABLE2_ORDER))
    if unknown:
        raise pytest.UsageError(
            f"unknown --workloads {unknown}; pick from {list(TABLE2_ORDER)}"
        )
    return selected


@pytest.fixture(scope="session")
def engines_filter(request) -> str:
    return request.config.getoption("--engines")


@pytest.fixture(scope="session")
def profile_enabled(request) -> bool:
    return bool(request.config.getoption("--profile"))


@pytest.fixture(scope="session")
def hostprof_sink() -> dict:
    """Session-wide collector: workload -> engine -> {"hostprof": snapshot}."""
    return _PROFILE_SINK


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
