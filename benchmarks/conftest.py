"""Shared fixtures for the benchmark harnesses.

Fidelity (real data size per workload) comes from ``REPRO_FIDELITY``
(``tiny`` / ``small`` / ``medium``; default ``small`` — the reference
fidelity the shape bands are calibrated at; see DESIGN.md §7).

Each harness runs a workload's *simulation* once and reports the paper's
metric — virtual-clock seconds — through ``benchmark.extra_info`` while
pytest-benchmark records the harness wall time.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workloads",
        default="",
        help="comma-separated workload subset for bench_obs (default: all)",
    )
    parser.addoption(
        "--engines",
        default="",
        choices=["", "both", "hamr", "hadoop"],
        help="engine filter for bench_obs (default: both)",
    )


@pytest.fixture(scope="session")
def fidelity() -> str:
    return os.environ.get("REPRO_FIDELITY", "small")


@pytest.fixture(scope="session")
def workloads_filter(request) -> frozenset:
    raw = request.config.getoption("--workloads")
    return frozenset(w for w in raw.split(",") if w)


@pytest.fixture(scope="session")
def engines_filter(request) -> str:
    return request.config.getoption("--engines")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
