"""The ``obs-analytics`` workload: fleet SQL on both engines -> ``BENCH_analytics.json``.

Builds a small journal fleet (each selected Table 2 workload x engine,
plus one seeded disk regression so blame/seeded columns are non-trivial),
ingests it into a corpus index, and runs every canned fleet-analytics
query (:data:`repro.obs.analytics.CANNED_QUERIES`) through the HAMR
flowlet compiler **and** the MapReduce executor on fresh simulated
clusters::

    python benchmarks/bench_analytics.py --fidelity tiny --out BENCH_analytics.json
    python benchmarks/bench_analytics.py --workloads wordcount --engines hamr

The artifact records the paired virtual makespans per query (SQL-on-
telemetry as a dual-engine comparison, the BigBench direction the paper
sketches in §7) and the reference-check verdict. Exit code 1 when any
query's result rows diverge across engines — the same gate CI runs
(``corpus-doctor-gate``).

``REPRO_GIT_COMMIT`` is pinned so journal headers — and therefore the
corpus ``commit`` column and every query result over it — are
byte-deterministic across checkouts.
"""

import argparse
import json
import os
import pathlib
import sys
import tempfile

from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs.analytics import ANALYTICS_SCHEMA, run_analytics
from repro.obs.corpus import CORPUS_SCHEMA, ingest, save_corpus
from repro.obs.journal import encode_record, seed_bucket_slowdown

BENCH_ANALYTICS_SCHEMA = "repro.obs.bench_analytics/v1"

#: the injected regression that keeps the seeded/blame columns honest
SEEDED_BUCKET, SEEDED_FACTOR = "disk", 2.0


def build_fleet(root: str, workloads, engines, fidelity: str) -> dict:
    """Journal every workload x engine into ``root``; returns ingest stats."""
    first_hamr = None
    for name in workloads:
        for engine in engines:
            print(f"  journaling {name}:{engine} ({fidelity}) ...",
                  file=sys.stderr, flush=True)
            run = run_workload(
                workload_by_name(name, fidelity), engines=engine, journal=True
            )
            writer = run.hamr_journal if engine == "hamr" else run.hadoop_journal
            writer.save(os.path.join(root, f"{name}.{engine}.journal.jsonl"))
            if first_hamr is None and engine == "hamr":
                first_hamr = (name, writer)
    if first_hamr is not None:
        name, writer = first_hamr
        seeded = seed_bucket_slowdown(writer.records, SEEDED_BUCKET, SEEDED_FACTOR)
        with open(os.path.join(root, f"{name}.seeded.journal.jsonl"), "w") as fh:
            for record in seeded:
                fh.write(encode_record(record) + "\n")
    index = os.path.join(root, "corpus.jsonl")
    rows, stats = ingest([root], exclude=[index])
    save_corpus(rows, index)
    return {"rows": rows, "stats": stats}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fidelity", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--workloads", default="wordcount,kcliques",
                        help="comma-separated Table 2 subset")
    parser.add_argument("--engines", default="both",
                        choices=["both", "hamr", "hadoop"])
    parser.add_argument("--workers", type=int, default=3,
                        help="simulated workers per analytics engine")
    parser.add_argument("--out", default="BENCH_analytics.json")
    parser.add_argument("--no-gate", action="store_true",
                        help="always exit 0 (measurement only)")
    args = parser.parse_args(argv)

    selected = [w for w in args.workloads.split(",") if w]
    unknown = sorted(set(selected) - set(TABLE2_ORDER))
    if unknown:
        parser.error(f"unknown workloads {unknown}; pick from {TABLE2_ORDER}")
    engines = ["hamr", "hadoop"] if args.engines == "both" else [args.engines]

    os.environ.setdefault("REPRO_GIT_COMMIT", "bench")
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as root:
        fleet = build_fleet(root, selected, engines, args.fidelity)
        print(
            f"  corpus: {fleet['stats']['added']} run(s) indexed, "
            "running canned queries on both engines ...",
            file=sys.stderr, flush=True,
        )
        report = run_analytics(fleet["rows"], num_workers=args.workers)

    payload = {
        "schema": BENCH_ANALYTICS_SCHEMA,
        "analytics_schema": ANALYTICS_SCHEMA,
        "corpus_schema": CORPUS_SCHEMA,
        "fidelity": args.fidelity,
        "workloads": selected,
        "engines": engines,
        "seeded": {"bucket": SEEDED_BUCKET, "factor": SEEDED_FACTOR},
        "report": report,
    }
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    mismatched = [q["name"] for q in report["queries"] if not q["match"]]
    for name in mismatched:
        print(f"FAIL {name}: engine results diverged", file=sys.stderr)
    if mismatched and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
