"""Wall-clock performance of the reproduction itself.

Unlike the table/figure benches (which report *virtual* seconds), these
measure real time: how fast the discrete-event kernel turns over events
and how much real time a full dual-engine benchmark costs. Useful as a
regression guard when hacking on the kernel or the engines.
"""

from repro.cluster import Cluster, small_cluster_spec
from repro.core import CollectionSource, FlowletGraph, HamrEngine, Loader, Map, PartialReduce
from repro.sim import Resource, Simulator, SimQueue


def test_kernel_event_throughput(benchmark):
    """Raw timeout events through the kernel."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield 0.001

        for _ in range(10):
            sim.spawn(ticker(sim, 2_000))
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0


def test_resource_contention_throughput(benchmark):
    """Acquire/release churn on a FIFO pool."""

    def run():
        sim = Simulator()
        pool = Resource(sim, capacity=8)

        def worker(sim):
            for _ in range(500):
                yield pool.acquire()
                yield 0.01
                pool.release()

        for _ in range(32):
            sim.spawn(worker(sim))
        sim.run()
        return pool.total_acquired

    assert benchmark(run) == 32 * 500


def test_queue_throughput(benchmark):
    """Bounded-queue put/get pairs (the flow-control hot path)."""

    def run():
        sim = Simulator()
        queue = SimQueue(sim, capacity=64)
        N = 5_000

        def producer(sim):
            for i in range(N):
                yield queue.put(i)
            queue.close()

        def consumer(sim):
            from repro.sim import QueueClosed

            count = 0
            try:
                while True:
                    yield queue.get()
                    count += 1
            except QueueClosed:
                return count

        sim.spawn(producer(sim))
        consumer_proc = sim.spawn(consumer(sim))
        sim.run()
        return consumer_proc.completion.value

    assert benchmark(run) == 5_000


def test_engine_wordcount_wall_time(benchmark):
    """End-to-end flowlet WordCount (fixed input) in real seconds."""

    lines = [(i, f"alpha beta gamma w{i % 97}") for i in range(2_000)]

    def run():
        engine = HamrEngine(Cluster(small_cluster_spec(num_workers=4)))
        g = FlowletGraph("wc")
        loader = g.add(Loader("load", CollectionSource(lines, splits_per_worker=4)))
        tok = g.add(
            Map("tok", fn=lambda ctx, _k, line: [ctx.emit(w, 1) for w in line.split()] and None)
        )
        count = g.add(
            PartialReduce("count", initial=lambda _w: 0, combine=lambda a, v: a + v)
        )
        g.connect(loader, tok)
        g.connect(tok, count)
        return engine.run(g)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert dict(result.output("count"))["alpha"] == 2_000
