"""E2 — regenerate Table 2: all eight benchmarks, IDH 3.0 vs HAMR.

Run::

    pytest benchmarks/bench_table2.py --benchmark-only -s

Each case reports the paper's metric (virtual-clock seconds for both
engines and the speedup) via ``extra_info`` and asserts the row lands in
its shape band. The final case prints the whole regenerated table next to
the published numbers.
"""

import pytest

from conftest import run_once
from repro.evaluation.paper import PAPER_TABLE2, SHAPE_BANDS
from repro.evaluation.runner import run_workload
from repro.evaluation.tables import table2
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_table2_row(benchmark, fidelity, name, profile_enabled, hostprof_sink):
    workload = workload_by_name(name, fidelity)

    row = run_once(
        benchmark, lambda: run_workload(workload, profile=profile_enabled)
    )
    if profile_enabled:
        for engine, snap in (
            ("hamr", row.hamr_hostprof),
            ("hadoop", row.hadoop_hostprof),
        ):
            if snap is not None:
                hostprof_sink.setdefault(name, {})[engine] = {"hostprof": snap}

    paper = PAPER_TABLE2[name]
    benchmark.extra_info.update(
        {
            "data_size": workload.data_size,
            "idh_seconds": round(row.idh_seconds, 3),
            "hamr_seconds": round(row.hamr_seconds, 3),
            "speedup": round(row.speedup, 2),
            "paper_idh": paper.idh_seconds,
            "paper_hamr": paper.hamr_seconds,
            "paper_speedup": round(paper.speedup, 2),
        }
    )
    if fidelity != "tiny":  # bands are calibrated at the reference fidelity
        lo, hi = SHAPE_BANDS[name]
        assert lo <= row.speedup <= hi, (
            f"{name}: measured speedup {row.speedup:.2f} outside shape band [{lo}, {hi}]"
        )


def test_table2_full(benchmark, fidelity):
    result = run_once(benchmark, lambda: table2(fidelity))
    print()
    print(result.rendered)
    assert len(result.rows) == 8
