"""E1 — echo Table 1 (the cluster configuration) and sanity-check the
simulated substrate's raw capabilities against the hardware numbers."""

import pytest

from conftest import run_once
from repro.cluster import Cluster, PAPER_CLUSTER
from repro.common.units import GB, MB
from repro.evaluation.tables import table1


def test_table1_render(benchmark):
    text = run_once(benchmark, table1)
    print()
    print(text)
    assert "Table 1" in text


def test_disk_substrate_bandwidth(benchmark):
    """A node's 5 striped SATA disks sustain ~750 MB/s aggregate."""

    def measure():
        cluster = Cluster(PAPER_CLUSTER)
        node = cluster.worker(0)

        def proc(sim):
            yield node.disk_read(3 * GB)

        cluster.sim.spawn(proc(cluster.sim))
        return cluster.run()

    elapsed = run_once(benchmark, measure)
    effective = 3 * GB / elapsed
    benchmark.extra_info["effective_MBps"] = round(effective / MB, 1)
    assert effective == pytest.approx(5 * 150 * MB, rel=0.05)


def test_network_substrate_bandwidth(benchmark):
    """Node-to-node transfers run at the effective FDR-IB rate."""

    def measure():
        cluster = Cluster(PAPER_CLUSTER)
        a, b = cluster.worker(0), cluster.worker(1)

        def proc(sim):
            yield cluster.network.send(a, b, 3 * GB)

        cluster.sim.spawn(proc(cluster.sim))
        return cluster.run()

    elapsed = run_once(benchmark, measure)
    # two NIC serializations (egress + ingress)
    assert elapsed == pytest.approx(2 * 3 * GB / (1.5 * GB), rel=0.05)
