"""What-if validation sweep: predicted vs executed -> ``BENCH_whatif.json``.

The counterfactual engine (:mod:`repro.obs.whatif`) claims three
tolerance tiers — bucket scenarios exact, fabric swaps within 5%, node
rescales within 60% — and this harness measures them: for each selected
workload x engine it records a journaled baseline run, predicts every
scenario of the executable validation matrix, re-runs each scenario for
real, and writes the per-scenario prediction errors (plus a full
predicted-vs-actual node capacity curve) to one artifact::

    python benchmarks/bench_whatif.py --fidelity tiny --out BENCH_whatif.json
    python benchmarks/bench_whatif.py --workloads wordcount,kcliques \
        --engines hamr --sweep nodes=4..32

Exit code 1 when any scenario family exceeds its documented tolerance —
the same gate CI runs (``whatif-gate``), kept here as a standalone
script so tolerance drift is measurable locally before it fails a PR.
"""

import argparse
import json
import pathlib
import sys

from repro.evaluation.runner import run_workload
from repro.evaluation.workloads import TABLE2_ORDER, workload_by_name
from repro.obs.whatif import (
    WHATIF_SCHEMA,
    WhatIfModel,
    parse_scenario,
    parse_sweep,
    validate,
)

BENCH_WHATIF_SCHEMA = "repro.obs.bench_whatif/v1"

#: documented per-family |error| tolerances (README: what-if planning)
TOLERANCES = {"identity": 0.0, "dilation": 1e-9, "fabric": 0.05, "nodes": 0.60}


def _family(scenario) -> str:
    if scenario.is_identity:
        return "identity"
    if scenario.bucket_only:
        return "dilation"
    if scenario.fabric is not None or scenario.racks is not None:
        return "fabric"
    return "nodes"


def _executor(name: str, engine: str, fidelity: str, model: WhatIfModel):
    """Real re-runs for the validation matrix (one fresh env per scenario)."""

    def run(scenario):
        print(
            f"    executing {scenario.describe()} ...", file=sys.stderr, flush=True
        )
        workload = workload_by_name(name, fidelity)
        if scenario.bucket_only:
            fresh = run_workload(workload, engines=engine, journal=True)
            writer = (
                fresh.hamr_journal if engine == "hamr" else fresh.hadoop_journal
            )
            dilated = WhatIfModel(writer.records).scenario_journal(scenario)
            return dilated[-1].get("makespan")
        if scenario.nodes is not None:
            workload.num_workers = scenario.nodes - 1
        rack_size = None
        if scenario.racks is not None:
            rack_size = max(1, workload.spec().num_workers // scenario.racks)
        fresh = run_workload(
            workload, engines=engine, fabric=scenario.fabric, rack_size=rack_size
        )
        return fresh.hamr_seconds if engine == "hamr" else fresh.idh_seconds

    return run


def run_pair(name: str, engine: str, fidelity: str, sweep: str) -> dict:
    """Validation matrix + predicted-vs-actual capacity curve for one run."""
    baseline = run_workload(workload_by_name(name, fidelity), engines=engine,
                            journal=True)
    writer = baseline.hamr_journal if engine == "hamr" else baseline.hadoop_journal
    model = WhatIfModel(writer.records)
    rows = validate(model, _executor(name, engine, fidelity, model))
    key, values = parse_sweep(sweep)
    curve = []
    for value in values:
        scenario = parse_scenario(f"{key}={value}")
        prediction = model.predict(scenario)
        actual = _executor(name, engine, fidelity, model)(scenario)
        curve.append(
            {
                key: value,
                "predicted": prediction.predicted,
                "optimistic": prediction.optimistic,
                "pessimistic": prediction.pessimistic,
                "actual": actual,
                "error": (
                    (prediction.predicted - actual) / actual if actual else None
                ),
            }
        )
    return {
        "base_makespan": model.makespan,
        "validation": [
            dict(row.to_dict(), family=_family(row.prediction.scenario))
            for row in rows
        ],
        "sweep": {"key": key, "points": curve},
    }


def worst_errors(rows: dict) -> dict:
    """Per-family worst |prediction error| across every validated row."""
    worst: dict[str, float] = {}
    for per_engine in rows.values():
        for entry in per_engine.values():
            for row in entry["validation"]:
                if row["error"] is None:
                    continue
                family = row["family"]
                worst[family] = max(worst.get(family, 0.0), abs(row["error"]))
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fidelity", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--workloads", default="wordcount,kcliques",
                        help="comma-separated Table 2 subset")
    parser.add_argument("--engines", default="both",
                        choices=["both", "hamr", "hadoop"])
    parser.add_argument("--sweep", default="nodes=4..32",
                        help="capacity-curve sweep spec (default nodes=4..32)")
    parser.add_argument("--out", default="BENCH_whatif.json")
    parser.add_argument("--no-gate", action="store_true",
                        help="always exit 0 (measurement only)")
    args = parser.parse_args(argv)

    selected = [w for w in args.workloads.split(",") if w]
    unknown = sorted(set(selected) - set(TABLE2_ORDER))
    if unknown:
        parser.error(f"unknown workloads {unknown}; pick from {TABLE2_ORDER}")
    engines = ["hamr", "hadoop"] if args.engines == "both" else [args.engines]

    rows: dict[str, dict] = {}
    for name in selected:
        for engine in engines:
            print(f"  validating {name}:{engine} ({args.fidelity}) ...",
                  file=sys.stderr, flush=True)
            rows.setdefault(name, {})[engine] = run_pair(
                name, engine, args.fidelity, args.sweep
            )
    worst = worst_errors(rows)
    payload = {
        "schema": BENCH_WHATIF_SCHEMA,
        "whatif_schema": WHATIF_SCHEMA,
        "fidelity": args.fidelity,
        "tolerances": TOLERANCES,
        "worst_errors": {k: worst[k] for k in sorted(worst)},
        "rows": rows,
    }
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    failures = [
        f"{family}: worst |error| {error:.1%} > {TOLERANCES[family]:.1%}"
        for family, error in sorted(worst.items())
        if error > TOLERANCES[family]
    ]
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    if failures and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
