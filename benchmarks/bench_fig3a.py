"""E4 — regenerate Figure 3(a): speedups of the feature-friendly benchmarks.

K-Means, Classification, PageRank and KCliques all exploit HAMR's
in-memory, asynchronous, locality-aware execution; §5.2: "the performance
of the four benchmarks boosts at least 6x by our engine".
"""

from conftest import run_once
from repro.evaluation.figures import figure3a


def test_figure3a(benchmark, fidelity):
    figure = run_once(benchmark, lambda: figure3a(fidelity))
    print()
    print(figure.rendered)
    assert len(figure.series) == 4
    benchmark.extra_info.update({label: round(s, 2) for label, s in figure.series})
    if fidelity != "tiny":
        assert all(speedup >= 6.0 for _label, speedup in figure.series), figure.series
