"""Legacy setup shim: this environment lacks the `wheel` package and network
access, so editable installs must use `pip install -e . --no-use-pep517
--no-build-isolation`, which requires a setup.py. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
