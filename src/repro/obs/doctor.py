"""Regression doctor: one verdict from the whole observability chain.

Diagnosing a regression by hand is a four-tool chain: ``trend`` flags
the shift, someone hunts down the right pair of journals, ``explain``
attributes the makespan delta, and the fidelity/skew/traffic views get
cross-checked one by one. The doctor automates the chain end to end:

1. **Locate** — resolve two run specs (journal paths, corpus
   fingerprint prefixes, or ``workload:engine[@fabric][+partitioner]``
   selectors) against the corpus index (:mod:`repro.obs.corpus`); or,
   in ``--shift`` mode, consume a ``trend`` SHIFT verdict and pick the
   baseline/regressed journals out of the corpus by producing commit
   (falling back to makespan proximity against the trend band).
2. **Diagnose** — replay both journals and chain the differential
   explain (:mod:`repro.obs.explain`), a journal-integrity audit
   (partial footers, trace drops, span balance, critical-path
   coverage), the per-node straggler skew statistics, and the traffic
   totals drift into one report.
3. **Rank** — every blame bucket that moved becomes a root-cause
   candidate, ranked by absolute makespan-delta contribution and
   tagged with a confidence tier (HIGH/MEDIUM/LOW) derived from its
   delta share, corroborating evidence (traffic drift for network,
   skew shifts, a seeded-slowdown marker in the journal footer) and
   the integrity audit. The top candidate gets a ready-to-run
   ``whatif`` counter-scenario: the bucket slowdown that, applied to
   the baseline journal, reproduces the regression.

Everything is derived from the two journals alone, so reports are
byte-deterministic — the seeded ``REPRO_OBS_SLOWDOWN`` self-test in CI
asserts the injected bucket ranks #1 with the injected delta.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.blame import BUCKETS, NETWORK
from repro.obs.corpus import filter_rows, find_by_fingerprint
from repro.obs.explain import ExplainResult, explain, side_from_tracer
from repro.obs.replay import ReplayedRun
from repro.obs.telemetry import build_skew_report

DOCTOR_SCHEMA = "repro.obs.doctor/v1"

#: confidence tiers, strongest first
HIGH, MEDIUM, LOW = "HIGH", "MEDIUM", "LOW"

#: |delta share| thresholds for the base confidence tier
HIGH_SHARE = 0.6
MEDIUM_SHARE = 0.25

#: relative traffic-volume drift that corroborates a network verdict
TRAFFIC_DRIFT = 0.02

#: relative straggler-CV growth that flags a skew shift
CV_DRIFT = 0.2

#: verdicts listed per report
MAX_VERDICTS = 5


class DoctorError(ValueError):
    """A run spec cannot be resolved against the corpus index."""


# -- spec resolution ----------------------------------------------------------------


def _is_hex(text: str) -> bool:
    return len(text) >= 8 and all(c in "0123456789abcdef" for c in text)


def parse_series_spec(spec: str) -> dict:
    """``workload:engine[@fabric][+partitioner]`` → corpus filter dict."""
    partitioner = "hash"
    if "+" in spec:
        spec, partitioner = spec.rsplit("+", 1)
    fabric = "direct"
    if "@" in spec:
        spec, fabric = spec.rsplit("@", 1)
    workload, sep, engine = spec.partition(":")
    if not sep or not workload or engine not in ("hamr", "hadoop"):
        raise DoctorError(
            f"bad run selector {spec!r} (expected "
            "workload:engine[@fabric][+partitioner])"
        )
    return {
        "workload": workload,
        "engine": engine,
        "fabric": fabric,
        "partitioner": partitioner,
    }


def resolve_spec(rows: list[dict], spec: str, index_path: str) -> str:
    """One journal path for a doctor run spec.

    Accepts a journal path on disk, a corpus fingerprint prefix (>= 8
    hex chars), or a ``workload:engine[@fabric][+partitioner]`` selector
    that matches exactly one indexed run.
    """
    if os.path.exists(spec) or spec.endswith((".jsonl", ".jsonl.gz")):
        return spec
    if _is_hex(spec):
        matched = find_by_fingerprint(rows, spec)
        if not matched:
            raise DoctorError(f"no corpus row matches fingerprint {spec!r}")
        if len(matched) > 1:
            listing = ", ".join(row["fingerprint"][:12] for row in matched)
            raise DoctorError(
                f"fingerprint prefix {spec!r} is ambiguous ({listing})"
            )
        return locate_journal(matched[0], index_path)
    matched = filter_rows(rows, parse_series_spec(spec))
    if not matched:
        raise DoctorError(f"no corpus row matches {spec!r}")
    if len(matched) > 1:
        listing = ", ".join(row["fingerprint"][:12] for row in matched)
        raise DoctorError(
            f"{spec!r} matches {len(matched)} corpus rows ({listing}) — "
            "pick one by fingerprint prefix"
        )
    return locate_journal(matched[0], index_path)


def locate_journal(row: dict, index_path: str) -> str:
    """The journal file behind a corpus row.

    Paths are stored as ingested; when the cwd has moved, retry relative
    to the index file's own directory.
    """
    path = row["path"]
    if os.path.exists(path):
        return path
    rebased = os.path.join(os.path.dirname(os.path.abspath(index_path)), path)
    if os.path.exists(rebased):
        return rebased
    raise DoctorError(
        f"journal {path!r} for corpus row {row['fingerprint'][:12]} not found "
        "(re-ingest from the journal directory?)"
    )


def resolve_shift(
    history: list[dict],
    corpus_rows: list[dict],
    spec: str,
    metric: str = "virtual_seconds",
    index_path: str = "",
    **detect_kwargs,
) -> tuple[str, str, dict]:
    """Turn a ``trend`` SHIFT verdict into a (baseline, regressed) pair.

    Runs the same detector ``trend`` uses over the selected series, then
    locates the two journals in the corpus: preferring rows whose
    ``commit`` matches the last in-band history row (baseline) and the
    latest history row (regressed), falling back to the rows whose
    makespans sit closest to the reference median / the latest value.
    Returns ``(path_a, path_b, shift_verdict)``.
    """
    from repro.obs.history import detect_shift, entry_matches

    where = parse_series_spec(spec)
    entries: list[tuple[float, Optional[str]]] = []
    for row in history:
        entry = (
            row.get("rows", {}).get(where["workload"], {}).get(where["engine"])
        )
        if entry is None or metric not in entry:
            continue
        if not entry_matches(entry, where["fabric"], where["partitioner"]):
            continue
        entries.append((float(entry[metric]), row.get("commit")))
    verdict = detect_shift([value for value, _commit in entries], **detect_kwargs)
    if verdict.get("status") != "SHIFT":
        raise DoctorError(
            f"no sustained shift in the {spec!r} series "
            f"(status {verdict.get('status')!r}) — nothing to diagnose"
        )
    candidates = filter_rows(corpus_rows, where)
    if not candidates:
        raise DoctorError(f"no corpus rows match the shifted series {spec!r}")
    baseline_commit = entries[verdict["index"] - 1][1] if verdict["index"] else None
    regressed_commit = entries[-1][1]

    def pick(commit: Optional[str], target: float, exclude: Optional[str]) -> dict:
        pool = [row for row in candidates if row["fingerprint"] != exclude]
        if not pool:
            raise DoctorError(
                f"the corpus holds only one {spec!r} run — need a baseline "
                "and a regressed journal to compare"
            )
        if commit is not None:
            by_commit = [row for row in pool if row.get("commit") == commit]
            if by_commit:
                pool = by_commit
        return min(
            pool,
            key=lambda row: (abs(row.get("makespan", 0.0) - target), row["fingerprint"]),
        )

    row_b = pick(regressed_commit, verdict["latest"], exclude=None)
    row_a = pick(baseline_commit, verdict["median"], exclude=row_b["fingerprint"])
    verdict = dict(verdict)
    verdict.update(
        {
            "series": spec,
            "metric": metric,
            "baseline_commit": baseline_commit,
            "regressed_commit": regressed_commit,
        }
    )
    return (
        locate_journal(row_a, index_path),
        locate_journal(row_b, index_path),
        verdict,
    )


# -- diagnosis ----------------------------------------------------------------------


def _audit(run: ReplayedRun, critpath_total: float) -> dict:
    """Journal-integrity verdict for one side: can the numbers be trusted?"""
    footer = run.footer
    opened = footer.get("spans_opened", 0)
    closed = footer.get("spans_closed", 0)
    coverage = critpath_total / run.makespan if run.makespan > 0 else 0.0
    warnings = []
    if run.partial:
        warnings.append("partial journal (synthesized footer)")
    if run.trace_dropped:
        warnings.append(f"{run.trace_dropped} sim-trace records dropped")
    if opened != closed:
        warnings.append(f"{opened - closed} span(s) never closed")
    return {
        "verdict": "WARN" if warnings else "OK",
        "warnings": warnings,
        "partial": run.partial,
        "trace_dropped": run.trace_dropped,
        "spans_opened": opened,
        "spans_closed": closed,
        "critpath_coverage": round(coverage, 6),
    }


def _skew(run: ReplayedRun) -> dict:
    report = build_skew_report(run.tracer.timeline, run.tracer.traffic_matrices())
    stats = report.sections.get("cpu_busy_seconds", {}).get("stats", {})
    return {
        "cv": round(stats.get("cv", 0.0), 6),
        "max_mean_ratio": round(stats.get("max_mean_ratio", 0.0), 6),
        "stragglers": [int(node) for node in report.stragglers],
    }


def _traffic_drift(a: dict, b: dict) -> list[dict]:
    rows = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0.0), b.get(key, 0.0)
        rows.append(
            {
                "key": key,
                "a": va,
                "b": vb,
                "delta": round(vb - va, 6),
                "rel": round((vb - va) / va, 6) if va else None,
            }
        )
    return rows


def _identity(run: ReplayedRun) -> dict:
    return {
        "workload": run.workload,
        "engine": run.engine,
        "fabric": run.fabric,
        "partitioner": run.partitioner,
        "nodes": run.num_nodes,
        "commit": run.header.get("commit"),
        "fidelity": run.fidelity,
        "makespan": round(run.makespan, 6),
        "seeded_slowdown": run.footer.get("seeded_slowdown"),
    }


def _seeded_buckets(run: ReplayedRun) -> set:
    marker = run.footer.get("seeded_slowdown") or {}
    if "bucket" in marker:
        return {marker["bucket"]}
    return set(marker.get("buckets", {}))


def _blame_totals(run: ReplayedRun) -> dict:
    """Bucket seconds summed over every job's blame ledger."""
    ledger = run.tracer.blame
    totals = {bucket: 0.0 for bucket in BUCKETS}
    for job in ledger.jobs():
        summary = ledger.job_summary(job)
        for bucket in BUCKETS:
            totals[bucket] += summary.get(bucket, 0.0)
    return totals


@dataclass
class DoctorReport:
    """The chained diagnosis: explain + audit + skew + traffic → verdicts."""

    name_a: str
    name_b: str
    run_a: dict
    run_b: dict
    explain: ExplainResult
    audit_a: dict
    audit_b: dict
    skew_a: dict
    skew_b: dict
    traffic: list[dict]
    verdicts: list[dict]
    whatif: Optional[str] = None
    shift: Optional[dict] = None
    meta: dict = field(default_factory=dict)

    @property
    def makespan_delta(self) -> float:
        return self.explain.makespan_delta

    def to_dict(self) -> dict:
        return {
            "schema": DOCTOR_SCHEMA,
            "a": {"name": self.name_a, **self.run_a, "audit": self.audit_a,
                  "skew": self.skew_a},
            "b": {"name": self.name_b, **self.run_b, "audit": self.audit_b,
                  "skew": self.skew_b},
            "makespan_delta": round(self.makespan_delta, 6),
            "explain": self.explain.to_dict(),
            "traffic_drift": self.traffic,
            "verdicts": self.verdicts,
            "whatif": self.whatif,
            "shift": self.shift,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def diagnose(
    run_a: ReplayedRun,
    run_b: ReplayedRun,
    name_a: str,
    name_b: str,
    shift: Optional[dict] = None,
) -> DoctorReport:
    """Chain every diagnostic view over two replayed runs."""
    side_a = side_from_tracer(run_a.tracer, name_a)
    side_b = side_from_tracer(run_b.tracer, name_b)
    result = explain(side_a, side_b)
    audit_a = _audit(run_a, sum(side_a.buckets.values()) - side_a.buckets.get("tail", 0.0))
    audit_b = _audit(run_b, sum(side_b.buckets.values()) - side_b.buckets.get("tail", 0.0))
    skew_a, skew_b = _skew(run_a), _skew(run_b)
    traffic = _traffic_drift(
        run_a.tracer.traffic_totals(), run_b.tracer.traffic_totals()
    )
    verdicts = _rank_verdicts(
        result, run_a, run_b, audit_a, audit_b, skew_a, skew_b, traffic
    )
    whatif = _suggest_whatif(
        verdicts, name_a, _blame_totals(run_a), _blame_totals(run_b)
    )
    return DoctorReport(
        name_a=name_a,
        name_b=name_b,
        run_a=_identity(run_a),
        run_b=_identity(run_b),
        explain=result,
        audit_a=audit_a,
        audit_b=audit_b,
        skew_a=skew_a,
        skew_b=skew_b,
        traffic=traffic,
        verdicts=verdicts,
        whatif=whatif,
        shift=shift,
    )


def _rank_verdicts(
    result: ExplainResult,
    run_a: ReplayedRun,
    run_b: ReplayedRun,
    audit_a: dict,
    audit_b: dict,
    skew_a: dict,
    skew_b: dict,
    traffic: list[dict],
) -> list[dict]:
    """Confidence-tiered root-cause candidates from the bucket dimension."""
    mk_delta = result.makespan_delta
    seeded = _seeded_buckets(run_a) | _seeded_buckets(run_b)
    total_drift = next(
        (row for row in traffic if row["key"] == "total_bytes"), None
    )
    cv_a, cv_b = skew_a["cv"], skew_b["cv"]
    cv_shifted = abs(cv_b - cv_a) > CV_DRIFT * max(cv_a, 0.05)
    integrity_warn = audit_a["verdict"] != "OK" or audit_b["verdict"] != "OK"

    verdicts = []
    for key, a_sec, b_sec, delta, share in result.rows.get("buckets", []):
        if abs(delta) <= 1e-9:
            continue
        notes = []
        tier = LOW
        if abs(share) >= HIGH_SHARE:
            tier = HIGH
        elif abs(share) >= MEDIUM_SHARE:
            tier = MEDIUM
        if mk_delta != 0.0 and delta * mk_delta < 0:
            tier = LOW
            notes.append("moves against the overall makespan shift")
        if key in seeded:
            tier = HIGH
            notes.append("matches the journal's seeded-slowdown marker")
        if key == NETWORK and total_drift is not None:
            rel = total_drift["rel"]
            if rel is not None and abs(rel) >= TRAFFIC_DRIFT:
                notes.append(
                    f"corroborated by traffic volume ({100.0 * rel:+.1f}% bytes)"
                )
            else:
                notes.append(
                    "traffic volume flat — cost-per-byte change, not more bytes"
                )
        if key in BUCKETS and cv_shifted:
            notes.append(
                f"straggler CV moved {cv_a:.3f} -> {cv_b:.3f}"
            )
        if integrity_warn and tier == HIGH:
            tier = MEDIUM
            notes.append("demoted: integrity audit raised warnings")
        verdicts.append(
            {
                "bucket": key,
                "a_seconds": round(a_sec, 6),
                "b_seconds": round(b_sec, 6),
                "delta": round(delta, 6),
                "share": round(share, 6),
                "confidence": tier,
                "notes": notes,
            }
        )
        if len(verdicts) >= MAX_VERDICTS:
            break
    return verdicts


def _suggest_whatif(
    verdicts: list[dict], name_a: str, blame_a: dict, blame_b: dict
) -> Optional[str]:
    """The counter-scenario confirming the top verdict, as a whatif command.

    A bucket slowed by factor ``F`` inserts ``(F - 1) x`` the baseline's
    charged seconds into the timeline, so the observed makespan-delta
    contribution solves to ``F = 1 + delta / blame_a[bucket]`` — for a
    seeded ``REPRO_OBS_SLOWDOWN`` dilation this recovers the injected
    factor exactly. ``whatif`` bucket values are *speed* multipliers
    and record dilation is only exact in the slow-down direction
    (inserted time always fits the timeline; removed time can exceed
    the critical-path overlap), so the emitted command runs the
    *baseline* journal with the bucket at ``1/F`` speed: if the verdict
    is right it reproduces the regressed makespan, and ``--emit-journal``
    makes the claim byte-checkable against the regressed run.
    """
    for verdict in verdicts:
        bucket = verdict["bucket"]
        if bucket not in BUCKETS:
            continue
        base = blame_a.get(bucket, 0.0)
        if base <= 0.0:
            continue
        factor = 1.0 + verdict["delta"] / base
        if factor <= 1.0:
            continue
        return (
            f"python -m repro.evaluation whatif {name_a} "
            f"--scenario {bucket}={1.0 / factor:.4f}"
        )
    return None


# -- rendering ----------------------------------------------------------------------


def _render_side(tag: str, name: str, run: dict, audit: dict, skew: dict) -> list[str]:
    seeded = run.get("seeded_slowdown")
    lines = [
        f"{tag}: {name}",
        f"   run {run.get('workload')}:{run.get('engine')}"
        f"@{run.get('fabric')}+{run.get('partitioner')} "
        f"nodes={run.get('nodes')} commit={run.get('commit') or '-'} "
        f"makespan={run.get('makespan', 0.0):.3f}s"
        + (f" seeded={json.dumps(seeded, sort_keys=True)}" if seeded else ""),
        f"   audit {audit['verdict']}"
        + (f" ({'; '.join(audit['warnings'])})" if audit["warnings"] else "")
        + f", critpath coverage {100.0 * audit['critpath_coverage']:.1f}%",
        f"   skew cv={skew['cv']:.4f} max/mean={skew['max_mean_ratio']:.4f} "
        f"stragglers={skew['stragglers']}",
    ]
    return lines


def render_doctor(report: DoctorReport, max_traffic_rows: int = 6) -> str:
    """Deterministic ASCII diagnosis report."""
    delta = report.makespan_delta
    mk_a = report.run_a.get("makespan", 0.0)
    rel = f" ({100.0 * delta / mk_a:+.2f}%)" if mk_a > 0 else ""
    lines = [f"== doctor: A={report.name_a} vs B={report.name_b} =="]
    if report.shift:
        lines.append(
            f"shift: {report.shift.get('series')} {report.shift.get('metric')} "
            f"row {report.shift.get('index')} "
            f"({report.shift.get('delta_pct'):+.1f}% vs median "
            f"{report.shift.get('median'):.3f})"
        )
    lines.extend(
        _render_side("A", report.name_a, report.run_a, report.audit_a, report.skew_a)
    )
    lines.extend(
        _render_side("B", report.name_b, report.run_b, report.audit_b, report.skew_b)
    )
    lines.append(f"makespan delta {delta:+.3f}s{rel}")
    lines.append("")
    lines.append("-- traffic drift --")
    moved = [row for row in report.traffic if abs(row["delta"]) > 1e-9]
    for row in moved[:max_traffic_rows]:
        rel_s = f"{100.0 * row['rel']:+.1f}%" if row["rel"] is not None else "new"
        lines.append(
            f"  {row['key']:<18} {row['a']:>14.1f} -> {row['b']:>14.1f}  ({rel_s})"
        )
    if not moved:
        lines.append("  (no traffic movement)")
    lines.append("")
    lines.append("-- ranked root-cause verdicts --")
    if report.verdicts:
        for i, verdict in enumerate(report.verdicts, start=1):
            lines.append(
                f"  {i}. {verdict['bucket']:<8} {verdict['delta']:+10.3f}s  "
                f"share {100.0 * verdict['share']:+7.1f}%  "
                f"confidence {verdict['confidence']}"
            )
            for note in verdict["notes"]:
                lines.append(f"       - {note}")
    else:
        lines.append("  (no bucket moved — identical runs?)")
    if report.whatif:
        lines.append("")
        lines.append(f"counter-scenario: {report.whatif}")
    return "\n".join(lines)
