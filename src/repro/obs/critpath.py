"""Critical-path analysis over the span DAG.

A traced run yields spans (attributed intervals of virtual time) plus
causal edges (:class:`~repro.obs.spans.SpanEdge`): shuffle producer →
consumer, spill write → read-back, barrier inputs → gated work, stall
wait-for. This module extracts the **weighted critical path** — the chain
of dependent activities with no slack that ends at the last finished span
— rolls it up by blame bucket, and answers Amdahl-style *what-if* queries
("zero the disk cost along the path") that bound the speedup obtainable
by eliminating one cost source.

The walk is *backward*: start from the terminal span; at each span find
the causal predecessor whose completion (clipped to the current horizon)
is latest — that predecessor explains why the span could not have
delivered earlier — take the span's segment after that cut onto the path,
and recurse into the predecessor. Gaps between consecutive segments are
scheduling slack ("wait"); the lead-in before the first segment is job
startup. Everything is deterministic: identical traces produce identical
paths, rollups and renderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.obs.blame import BUCKETS
from repro.obs.spans import SpanEdge, Tracer

#: synthetic rollup keys alongside the blame buckets
WAIT = "wait"  # inter-segment scheduling slack on the path
OTHER = "other"  # on-path span time not charged to any bucket

ROLLUP_KEYS = BUCKETS + (WAIT, OTHER)

#: tolerance for float comparisons on the virtual clock
_EPS = 1e-12


@dataclass(frozen=True)
class PathNode:
    """A span projected into the critical-path graph."""

    span_id: int
    name: str
    cat: str
    node: Optional[int]
    job: Optional[str]
    start: float
    end: float
    charges: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PathSegment:
    """The slice ``[t0, t1]`` of one span that lies on the critical path."""

    span: PathNode
    t0: float
    t1: float
    #: kind of the causal edge that ends this segment on the walk
    #: (None for the terminal segment)
    via: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def charges_share(self) -> dict[str, float]:
        """The span's bucket charges scaled to this segment's share.

        Charges are attributed proportionally to the on-path fraction of
        the span; if recorded charges exceed the span duration (rounding),
        they are normalized down so a segment never explains more time
        than it covers.
        """
        span = self.span
        if span.duration <= 0.0 or self.duration <= 0.0:
            return {}
        fraction = self.duration / span.duration
        charged = sum(span.charges.values())
        scale = fraction
        if charged > span.duration:
            scale = fraction * (span.duration / charged)
        return {bucket: sec * scale for bucket, sec in span.charges.items()}


@dataclass
class WhatIf:
    """The Amdahl-style bound for zeroing some buckets along the path."""

    buckets: tuple[str, ...]
    removed: float  # path seconds attributed to the zeroed buckets
    bound_makespan: float  # makespan lower bound after removal
    bound_speedup: float  # upper bound on the achievable speedup


@dataclass
class ScaledWhatIf:
    """Amdahl bound for scaling on-path bucket costs by arbitrary factors.

    Generalizes :class:`WhatIf` from single-bucket *zeroing* to composed
    scenarios: each rollup key's on-path seconds are multiplied by its
    factor (0.0 reproduces the zeroing bound, 2.0 doubles that cost,
    0.5 halves it). Off-path time is held fixed, so for pure speedups
    the result is a lower bound on the new makespan (another path may
    become critical) and for pure slowdowns it is the serialized upper
    bound's on-path component.
    """

    factors: dict[str, float]
    delta: float  # signed path-seconds change across all scaled buckets
    bound_makespan: float
    bound_speedup: float  # old / new (values < 1 mean a slowdown)


@dataclass
class CriticalPath:
    """The extracted path plus its blame decomposition."""

    segments: list[PathSegment]
    makespan: float  # full virtual makespan (job start .. terminal end)
    job_start: float
    lead_in: float  # job start .. first segment (charged to startup)
    rollup: dict[str, float]  # ROLLUP_KEYS -> on-path seconds

    @property
    def path_seconds(self) -> float:
        return sum(seg.duration for seg in self.segments)

    def share(self, key: str) -> float:
        """Fraction of the makespan attributed to one rollup key."""
        if self.makespan <= 0.0:
            return 0.0
        return self.rollup.get(key, 0.0) / self.makespan

    def what_if(self, buckets: Union[str, Sequence[str]]) -> WhatIf:
        """Bound the speedup from zeroing ``buckets`` along the path.

        Removing those seconds from the critical path lower-bounds the new
        makespan (another path may become critical), so the returned
        speedup is an **upper bound** on what eliminating that cost could
        achieve — the Amdahl-style number the paper's §5 explanations
        quote (e.g. "HAMR wins by eliminating disk-bound shuffle").
        """
        if isinstance(buckets, str):
            buckets = (buckets,)
        unknown = [b for b in buckets if b not in ROLLUP_KEYS]
        if unknown:
            raise ValueError(f"unknown rollup keys {unknown}; pick from {ROLLUP_KEYS}")
        removed = sum(self.rollup.get(b, 0.0) for b in buckets)
        removed = min(removed, self.makespan)
        bound = max(self.makespan - removed, _EPS)
        return WhatIf(
            buckets=tuple(buckets),
            removed=removed,
            bound_makespan=bound,
            bound_speedup=self.makespan / bound,
        )

    def scaled(self, factors: dict[str, float]) -> ScaledWhatIf:
        """Bound the makespan change from scaling bucket costs on the path.

        ``factors`` maps rollup keys to time multipliers (``2.0`` = that
        cost takes twice as long, ``0.5`` = twice as fast, ``0.0`` =
        eliminated — which reproduces :meth:`what_if`'s bound). Factors
        compose: the deltas of independent buckets add, so an arbitrary
        scenario is one call rather than a sequence of single-bucket
        queries. The on-path attribution is exact; whether the result is
        an upper or lower bound depends on the scenario's direction (see
        :class:`ScaledWhatIf`).
        """
        unknown = [b for b in factors if b not in ROLLUP_KEYS]
        if unknown:
            raise ValueError(f"unknown rollup keys {unknown}; pick from {ROLLUP_KEYS}")
        for bucket, factor in factors.items():
            if factor < 0.0:
                raise ValueError(f"scale factor must be >= 0: {bucket}={factor}")
        delta = sum(
            self.rollup.get(bucket, 0.0) * (factor - 1.0)
            for bucket, factor in factors.items()
        )
        delta = max(delta, -self.makespan)
        bound = max(self.makespan + delta, _EPS)
        return ScaledWhatIf(
            factors=dict(factors),
            delta=delta,
            bound_makespan=bound,
            bound_speedup=self.makespan / bound,
        )

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable summary."""
        return {
            "schema": "repro.obs.critpath/v1",
            "makespan": self.makespan,
            "path_seconds": self.path_seconds,
            "lead_in": self.lead_in,
            "rollup": {k: self.rollup.get(k, 0.0) for k in sorted(ROLLUP_KEYS)},
            "segments": [
                {
                    "span": seg.span.span_id,
                    "name": seg.span.name,
                    "cat": seg.span.cat,
                    "node": seg.span.node,
                    "t0": seg.t0,
                    "t1": seg.t1,
                    "via": seg.via,
                }
                for seg in self.segments
            ],
        }


# -- graph construction ---------------------------------------------------------


def _nodes_from_span_dicts(spans: Sequence[dict]) -> dict[int, PathNode]:
    nodes = {}
    for s in spans:
        if s.get("end") is None:
            continue
        nodes[s["id"]] = PathNode(
            span_id=s["id"],
            name=s["name"],
            cat=s["cat"],
            node=s.get("node"),
            job=s.get("job"),
            start=s["start"],
            end=s["end"],
            charges=dict(s.get("charges") or {}),
        )
    return nodes


def _nodes_from_tracer(tracer: Tracer) -> dict[int, PathNode]:
    nodes = {}
    for s in tracer.finished_spans():
        nodes[s.span_id] = PathNode(
            span_id=s.span_id,
            name=s.name,
            cat=s.cat,
            node=s.node,
            job=s.job,
            start=s.start,
            end=s.end,
            charges=dict(s.charges),
        )
    return nodes


def from_tracer(tracer: Tracer, job: Optional[str] = None) -> "CriticalPath":
    """Extract the critical path from a live tracer."""
    return critical_path(
        _nodes_from_tracer(tracer),
        [(e.src, e.dst, e.kind) for e in tracer.edges],
        job=job,
    )


def from_trace_dict(trace: dict, job: Optional[str] = None) -> "CriticalPath":
    """Extract the critical path from a serialized trace
    (``repro.obs.trace/v2``, as embedded in report artifacts)."""
    return critical_path(
        _nodes_from_span_dicts(trace.get("spans", ())),
        [tuple(e) for e in trace.get("edges", ())],
        job=job,
    )


def critical_path(
    nodes: dict[int, PathNode],
    edges: Sequence[tuple],
    job: Optional[str] = None,
) -> CriticalPath:
    """Walk the span DAG backward from the last finished work span.

    ``nodes`` maps span id -> :class:`PathNode`; ``edges`` is a sequence of
    ``(src_id, dst_id, kind)``. Job-level spans frame the makespan but are
    not path nodes themselves (the path runs through the work they
    contain); ``job`` restricts the analysis to one job's spans when a
    trace holds several.
    """
    if job is not None:
        nodes = {i: n for i, n in nodes.items() if n.job == job or n.cat == "job"}
    job_spans = [n for n in nodes.values() if n.cat == "job"]
    if job is not None:
        job_spans = [n for n in job_spans if n.job == job]
    work = {i: n for i, n in nodes.items() if n.cat != "job"}
    if not work:
        return CriticalPath(
            segments=[], makespan=0.0, job_start=0.0, lead_in=0.0,
            rollup={k: 0.0 for k in ROLLUP_KEYS},
        )

    preds: dict[int, list[tuple[PathNode, str]]] = {}
    for src, dst, kind in edges:
        src_node = work.get(src)
        if src_node is None or dst not in work:
            continue
        preds.setdefault(dst, []).append((src_node, kind))

    terminal = max(work.values(), key=lambda n: (n.end, n.span_id))
    job_start = min(j.start for j in job_spans) if job_spans else min(
        n.start for n in work.values()
    )
    makespan = (
        max(j.end for j in job_spans) if job_spans else terminal.end
    ) - job_start

    # Backward walk. `horizon` is the time by which the current span's
    # completion mattered; each step moves the horizon to the chosen
    # predecessor's cut, so the walk strictly regresses (the visited set
    # guards the degenerate zero-length cycle).
    segments: list[PathSegment] = []
    current: Optional[PathNode] = terminal
    via: Optional[str] = None
    horizon = terminal.end
    visited: set[tuple[int, float]] = set()
    budget = 8 * len(work)  # hard stop well beyond any legitimate path
    while current is not None and budget > 0:
        budget -= 1
        key = (current.span_id, round(horizon, 9))
        if key in visited:
            break
        visited.add(key)
        best: Optional[tuple[PathNode, str]] = None
        best_cut = float("-inf")
        for pred, kind in preds.get(current.span_id, ()):
            cut = min(pred.end, horizon)
            if best is None or (cut, pred.span_id) > (best_cut, best[0].span_id):
                best = (pred, kind)
                best_cut = cut
        # A dependency ending inside the span gates its tail (stall
        # wait-for); one ending at or before the start explains the whole
        # segment, any gap to it being scheduling slack.
        seg_start = current.start if best is None else max(current.start, best_cut)
        seg_start = min(seg_start, horizon)
        segments.append(
            PathSegment(span=current, t0=seg_start, t1=horizon, via=via)
        )
        if best is None:
            break
        current, via = best[0], best[1]
        horizon = min(best_cut, current.end)
    segments.reverse()

    lead_in = max(segments[0].t0 - job_start, 0.0) if segments else 0.0
    rollup = {k: 0.0 for k in ROLLUP_KEYS}
    # Job startup is what precedes the first schedulable work in both
    # engines (the job-level STARTUP charge carries no span), so the
    # lead-in gap is startup time by construction.
    rollup["startup"] += lead_in
    prev_end: Optional[float] = None
    for seg in segments:
        if prev_end is not None and seg.t0 > prev_end + _EPS:
            rollup[WAIT] += seg.t0 - prev_end
        prev_end = seg.t1
        shares = seg.charges_share()
        explained = 0.0
        for bucket, sec in shares.items():
            rollup[bucket] = rollup.get(bucket, 0.0) + sec
            explained += sec
        rollup[OTHER] += max(seg.duration - explained, 0.0)
    return CriticalPath(
        segments=segments,
        makespan=makespan,
        job_start=job_start,
        lead_in=lead_in,
        rollup=rollup,
    )


# -- rendering ------------------------------------------------------------------


def render_critpath(
    cp: CriticalPath,
    title: str = "Critical path",
    max_segments: int = 12,
    what_ifs: Sequence[Sequence[str]] = (("disk", "startup"), ("atomic", "stall")),
) -> str:
    """ASCII summary: rollup, the dominant segments, and what-if bounds."""
    from repro.evaluation.report import render_table

    if not cp.segments:
        return f"{title}: (no work spans recorded — was the run traced?)"
    lines = [
        f"{title}: {len(cp.segments)} segment(s), "
        f"{cp.path_seconds:.3f}s on-path of {cp.makespan:.3f}s makespan "
        f"(lead-in {cp.lead_in:.3f}s)"
    ]
    rows = [
        [key, cp.rollup.get(key, 0.0), 100.0 * cp.share(key)]
        for key in ROLLUP_KEYS
        if cp.rollup.get(key, 0.0) > 0.0
    ]
    lines.append(
        render_table(["bucket", "path seconds", "share %"], rows, title="Path rollup")
    )
    ordered = sorted(
        cp.segments, key=lambda s: (-s.duration, s.span.span_id)
    )[:max_segments]
    seg_rows = [
        [
            seg.span.name,
            f"n{seg.span.node}" if seg.span.node is not None else "-",
            seg.t0,
            seg.t1,
            seg.duration,
            seg.via or "-",
        ]
        for seg in ordered
    ]
    lines.append(
        render_table(
            ["segment", "node", "t0", "t1", "seconds", "via"],
            seg_rows,
            title=f"Dominant segments (top {len(seg_rows)} of {len(cp.segments)})",
        )
    )
    wi_rows = []
    for buckets in what_ifs:
        wi = cp.what_if(buckets)
        wi_rows.append(
            [
                "zero " + "+".join(wi.buckets),
                wi.removed,
                wi.bound_makespan,
                f"{wi.bound_speedup:.2f}x",
            ]
        )
    lines.append(
        render_table(
            ["what-if", "removed s", "bound makespan", "bound speedup"],
            wi_rows,
            title="What-if bounds (upper bounds: other paths may become critical)",
        )
    )
    return "\n\n".join(lines)
