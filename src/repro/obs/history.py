"""Perf history: append-only bench rows plus change-point detection.

``BENCH_history.jsonl`` holds one JSON row per bench run — the schema-v5
totals (virtual seconds, stall share, traffic bytes), the host-time
shares, and the git commit that produced them — so the perf trajectory
is a first-class artifact instead of a single committed snapshot.

The ``trend`` CLI runs robust regression detection over each
workload × engine series: a reference median and MAD band over the
history prefix, and a *sustained shift* verdict when the last
``sustain`` rows all sit outside the band on the same side. Median + MAD
(not mean + stddev) keeps a single outlier run from moving the
reference, matching the run-to-run variance observed on virtualized
Hadoop clusters (arXiv 1411.3811); the sustain requirement keeps one
noisy row from paging anyone. A flagged shift points at ``explain`` for
attribution against the last good run's journal.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, Optional

from repro.obs.slo import stall_share

HISTORY_SCHEMA = "repro.obs.history/v1"
TREND_SCHEMA = "repro.obs.trend/v1"

#: default history file, relative to the repo root / cwd
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: metrics a history row records per workload × engine
ROW_METRICS = ("virtual_seconds", "stall_share", "traffic_bytes", "wall_seconds")

#: minimum reference rows before the detector renders a verdict
DEFAULT_MIN_HISTORY = 4
#: band half-width in robust sigmas (1.4826 × MAD)
DEFAULT_THRESHOLD = 4.0
#: relative band floor — |v - median| below this fraction of the median
#: never flags, so near-zero MAD (byte-identical reruns) stays sane
DEFAULT_REL_FLOOR = 0.02
#: consecutive same-side outliers required to call a shift sustained
DEFAULT_SUSTAIN = 2


def resolve_commit() -> Optional[str]:
    """The current git commit (short), or None outside a checkout.

    ``REPRO_GIT_COMMIT`` overrides — CI sets it so history rows written
    in detached worktrees still attribute correctly.
    """
    env = os.environ.get("REPRO_GIT_COMMIT")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def history_row(payload: dict, commit: Optional[str] = None) -> dict:
    """One history row from a ``repro.obs.bench/v5`` payload."""
    schema = payload.get("schema", "")
    if not schema.startswith("repro.obs.bench/"):
        raise ValueError(f"not a bench payload (schema {schema!r})")
    rows: dict[str, dict[str, dict]] = {}
    for workload in sorted(payload.get("rows", {})):
        per_engine = payload["rows"][workload]
        for engine in ("hamr", "hadoop"):
            entry = per_engine.get(engine)
            if not entry:
                continue
            traffic = entry.get("telemetry", {}).get("traffic", {})
            hostprof = entry.get("hostprof") or {}
            rows.setdefault(workload, {})[engine] = {
                "virtual_seconds": entry.get("virtual_seconds", 0.0),
                "wall_seconds": entry.get("wall_seconds", 0.0),
                "stall_share": round(
                    stall_share(
                        entry.get("blame", {}), entry.get("blame_total", 0.0)
                    ),
                    6,
                ),
                "traffic_bytes": traffic.get("total_bytes", 0.0),
                "host_shares": hostprof.get("shares"),
                # the run's exchange configuration: trend series are keyed
                # on it, so a twolevel sweep never pollutes the direct
                # baseline's shift band
                "fabric": entry.get("fabric", "direct"),
                "partitioner": entry.get("partitioner", "hash"),
            }
    return {
        "schema": HISTORY_SCHEMA,
        "bench_schema": schema,
        "fidelity": payload.get("fidelity"),
        "commit": commit,
        "rows": rows,
    }


def encode_row(row: dict) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def append_history(row: dict, path: str) -> None:
    """Append one row; the file is never rewritten."""
    with open(path, "a") as fh:
        fh.write(encode_row(row) + "\n")


def load_history(path: str) -> list[dict]:
    """All rows, oldest first; blank lines skipped, schema validated."""
    rows = []
    with open(path) as fh:
        for i, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{i}: malformed history row") from exc
            if row.get("schema") != HISTORY_SCHEMA:
                raise ValueError(
                    f"{path}:{i}: unsupported history schema {row.get('schema')!r}"
                )
            rows.append(row)
    return rows


def entry_matches(entry: dict, fabric: str, partitioner: str) -> bool:
    """Does a history entry belong to this exchange-configuration series?

    Rows written before fabrics were recorded default to the legacy
    direct/hash configuration, so old history files keep trending.
    """
    return (
        entry.get("fabric", "direct") == fabric
        and entry.get("partitioner", "hash") == partitioner
    )


def series(
    history: list[dict],
    workload: str,
    engine: str,
    metric: str,
    fabric: str = "direct",
    partitioner: str = "hash",
) -> list[float]:
    """One metric's value per history row (rows missing the series skipped).

    A series is a full run configuration — workload × engine × fabric ×
    partitioner — so cross-fabric runs never mix into one band.
    """
    values = []
    for row in history:
        entry = row.get("rows", {}).get(workload, {}).get(engine)
        if entry is not None and metric in entry and entry_matches(
            entry, fabric, partitioner
        ):
            values.append(float(entry[metric]))
    return values


def series_label(
    workload: str, engine: str, fabric: str = "direct", partitioner: str = "hash"
) -> str:
    """The canonical series selector: ``workload:engine[@fabric][+part]``.

    Exactly the spec ``python -m repro.evaluation doctor --shift``
    accepts, so trend output can print ready-to-run doctor commands.
    """
    label = f"{workload}:{engine}"
    if fabric != "direct":
        label += f"@{fabric}"
    if partitioner != "hash":
        label += f"+{partitioner}"
    return label


# -- change-point detection ---------------------------------------------------------


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_shift(
    values: list[float],
    min_history: int = DEFAULT_MIN_HISTORY,
    threshold: float = DEFAULT_THRESHOLD,
    rel_floor: float = DEFAULT_REL_FLOOR,
    sustain: int = DEFAULT_SUSTAIN,
) -> dict:
    """Sustained-shift detection over one value series.

    Walks the series left to right keeping a clean reference prefix
    (everything before the first outlier of the eventual shift): a value
    is an outlier when it leaves the band ``median ± max(threshold ×
    1.4826 × MAD, rel_floor × |median|)`` computed over the reference. A
    shift is confirmed once ``sustain`` consecutive rows sit outside on
    the same side; the verdict reports the first shifted index.

    Returns ``{"status": "SHORT" | "STABLE" | "SHIFT", ...}`` with the
    reference median/MAD, and for SHIFT the shift index, direction
    (+1 = regression for cost metrics), latest value and delta vs median.
    """
    n = len(values)
    if n < max(min_history + 1, sustain + 1):
        return {"status": "SHORT", "n": n}

    def band(reference: list[float]) -> tuple[float, float]:
        med = _median(reference)
        mad = _median([abs(v - med) for v in reference])
        width = max(threshold * 1.4826 * mad, rel_floor * abs(med))
        return med, width

    streak_start: Optional[int] = None
    streak_side = 0
    med = width = 0.0
    for i in range(min_history, n):
        reference = values[: i if streak_start is None else streak_start]
        med, width = band(reference)
        value = values[i]
        side = 0
        if value > med + width:
            side = 1
        elif value < med - width:
            side = -1
        if side == 0 or (streak_side and side != streak_side):
            streak_start, streak_side = None, 0
            if side:
                streak_start, streak_side = i, side
        elif streak_start is None:
            streak_start, streak_side = i, side
        if streak_start is not None and i - streak_start + 1 >= sustain:
            delta = values[-1] - med
            return {
                "status": "SHIFT",
                "n": n,
                "index": streak_start,
                "direction": streak_side,
                "median": round(med, 6),
                "band": round(width, 6),
                "latest": values[-1],
                "delta_pct": round(100.0 * delta / med, 3) if med else None,
            }
    reference = values[: streak_start if streak_start is not None else n]
    med, width = band(reference)
    return {
        "status": "STABLE",
        "n": n,
        "median": round(med, 6),
        "band": round(width, 6),
        "latest": values[-1],
    }


def trend_report(
    history: list[dict],
    metric: str = "virtual_seconds",
    workloads: Optional[list[str]] = None,
    engines: Optional[list[str]] = None,
    **detect_kwargs: Any,
) -> dict:
    """Shift verdicts for every workload × engine × fabric × partitioner
    series in the history."""
    pairs: set[tuple[str, str, str, str]] = set()
    for row in history:
        for workload, per_engine in row.get("rows", {}).items():
            for engine, entry in per_engine.items():
                pairs.add(
                    (
                        workload,
                        engine,
                        entry.get("fabric", "direct"),
                        entry.get("partitioner", "hash"),
                    )
                )
    results = []
    for workload, engine, fabric, partitioner in sorted(pairs):
        if workloads is not None and workload not in workloads:
            continue
        if engines is not None and engine not in engines:
            continue
        values = series(history, workload, engine, metric, fabric, partitioner)
        verdict = detect_shift(values, **detect_kwargs)
        verdict.update(
            {
                "workload": workload,
                "engine": engine,
                "fabric": fabric,
                "partitioner": partitioner,
            }
        )
        results.append(verdict)
    return {
        "schema": TREND_SCHEMA,
        "metric": metric,
        "rows_total": len(history),
        "results": results,
        "shifts": sum(1 for r in results if r["status"] == "SHIFT"),
    }


def render_trend(report: dict, history_path: Optional[str] = None) -> str:
    """One line per series; every SHIFT row prints the exact ready-to-run
    ``doctor`` command that diagnoses it against the journal corpus."""
    history_path = history_path or DEFAULT_HISTORY_PATH
    lines = [
        f"trend over {report['rows_total']} history rows, metric {report['metric']}",
        f"{'series':<32} {'status':<8} "
        f"{'median':>14} {'latest':>14} shift",
        "-" * 76,
    ]
    doctor_commands = []
    for r in report["results"]:
        label = series_label(
            r["workload"], r["engine"],
            r.get("fabric", "direct"), r.get("partitioner", "hash"),
        )
        if r["status"] == "SHORT":
            detail = f"(only {r['n']} rows)"
            lines.append(
                f"{label:<32} {r['status']:<8} {'-':>14} {'-':>14} {detail}"
            )
            continue
        shift = "-"
        if r["status"] == "SHIFT":
            arrow = "+" if r["direction"] > 0 else "-"
            pct = f"{abs(r['delta_pct']):.1f}%" if r.get("delta_pct") is not None else "?"
            shift = f"row {r['index']} ({arrow}{pct})"
            doctor_commands.append(
                f"python -m repro.evaluation doctor --shift {label} "
                f"--history {history_path} --metric {report['metric']}"
            )
        lines.append(
            f"{label:<32} {r['status']:<8} "
            f"{r['median']:>14.3f} {r['latest']:>14.3f} {shift}"
        )
    lines.append("-" * 76)
    if report["shifts"]:
        lines.append(
            f"{report['shifts']} sustained shift(s) detected — diagnose with:"
        )
        for command in doctor_commands:
            lines.append(f"  {command}")
    else:
        lines.append("no sustained shifts")
    return "\n".join(lines)
