"""The metrics registry: counters, gauges, virtual-time histograms, series.

Both engines and the substrate report into one :class:`MetricsRegistry`
(held by the tracer). Metrics are identified by a name plus a sorted label
set, e.g. ``registry.counter("dfs.local_reads", node=3)``. Everything is
deterministic: snapshots iterate metrics and labels in sorted order, so two
identical runs serialize to byte-identical JSON.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Optional, Sequence, Tuple

#: default virtual-seconds histogram bucket upper bounds
DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 1800.0)

LabelKey = Tuple[Tuple[str, Any], ...]


class Counter:
    """A monotonically increasing count (events, bytes, records).

    ``_j`` is the optional journal emit hook (None unless the registry was
    built with a :class:`~repro.obs.journal.JournalWriter`); when set,
    every state change is recorded as it happens.
    """

    __slots__ = ("value", "_j")

    def __init__(self) -> None:
        self.value = 0.0
        self._j = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative: {amount}")
        self.value += amount
        if self._j is not None:
            self._j(amount)

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (queue depth, resident bytes)."""

    __slots__ = ("value", "_j")

    def __init__(self) -> None:
        self.value = 0.0
        self._j = None

    def set(self, value: float) -> None:
        self.value = value
        if self._j is not None:
            self._j("set", value)

    def add(self, delta: float) -> None:
        self.value += delta
        if self._j is not None:
            self._j("add", delta)

    def snapshot(self) -> float:
        return self.value


#: percentile summaries reported by histogram snapshots, in report order
PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """Fixed-bucket histogram of observations (virtual-time durations).

    ``bounds`` are inclusive upper edges; observations above the last bound
    land in an implicit overflow bucket. Raw observations are retained so
    percentile summaries (p50/p95/p99) are exact, not bucket-interpolated.
    """

    __slots__ = ("bounds", "counts", "count", "total", "values", "_j")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.values: list[float] = []
        self._j = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.values.append(value)
        if self._j is not None:
            self._j(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile of the observations (0 when empty)."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100]: {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def percentiles(self) -> dict[str, float]:
        """The standard summary: ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {f"p{q:g}": self.percentile(q) for q in PERCENTILES}

    def snapshot(self) -> dict:
        snap = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }
        snap.update(self.percentiles())
        return snap


class TimeSeries:
    """(virtual time, value) samples, e.g. a node's busy-thread count."""

    __slots__ = ("points", "_j")

    def __init__(self) -> None:
        self.points: list[tuple[float, float]] = []
        self._j = None

    def append(self, time: float, value: float) -> None:
        if self._j is not None:
            self._j(time, value)
        # Collapse same-instant updates: keep the latest value per time.
        if self.points and self.points[-1][0] == time:
            self.points[-1] = (time, value)
        else:
            self.points.append((time, value))

    def value_at(self, time: float) -> float:
        """The most recent sample at or before ``time`` (0.0 before any)."""
        value = 0.0
        for t, v in self.points:
            if t > time:
                break
            value = v
        return value

    def snapshot(self) -> list[list[float]]:
        return [[t, v] for t, v in self.points]


class MetricsRegistry:
    """A flat namespace of labelled metrics.

    Accessors create on first use, so reporting sites never pre-register.
    With a ``journal`` attached, each creation is declared and each
    metric object gets a per-metric emit hook — call sites that captured
    the object in a closure still journal every mutation.
    """

    def __init__(self, journal=None) -> None:
        self._counters: dict[str, dict[LabelKey, Counter]] = {}
        self._gauges: dict[str, dict[LabelKey, Gauge]] = {}
        self._histograms: dict[str, dict[LabelKey, Histogram]] = {}
        self._series: dict[str, dict[LabelKey, TimeSeries]] = {}
        self._journal = journal

    @staticmethod
    def _key(labels: dict) -> LabelKey:
        return tuple(sorted(labels.items()))

    def counter(self, name: str, **labels: Any) -> Counter:
        family = self._counters.setdefault(name, {})
        key = self._key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Counter()
            if self._journal is not None:
                self._journal.declare_metric("c", name, key)
                metric._j = self._journal.metric_hook("c", name, key)
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = self._key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Gauge()
            if self._journal is not None:
                self._journal.declare_metric("g", name, key)
                metric._j = self._journal.metric_hook("g", name, key)
        return metric

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        family = self._histograms.setdefault(name, {})
        key = self._key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = Histogram(bounds or DEFAULT_BOUNDS)
            if self._journal is not None:
                self._journal.declare_metric(
                    "h", name, key,
                    bounds=None if metric.bounds == DEFAULT_BOUNDS else metric.bounds,
                )
                metric._j = self._journal.metric_hook("h", name, key)
        return metric

    def series(self, name: str, **labels: Any) -> TimeSeries:
        family = self._series.setdefault(name, {})
        key = self._key(labels)
        metric = family.get(key)
        if metric is None:
            metric = family[key] = TimeSeries()
            if self._journal is not None:
                self._journal.declare_metric("s", name, key)
                metric._j = self._journal.metric_hook("s", name, key)
        return metric

    # -- aggregation -----------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of a counter family over all label sets."""
        return sum(c.value for c in self._counters.get(name, {}).values())

    def counter_values(self, name: str) -> dict[LabelKey, float]:
        """Counter family as ``{label_key: value}`` in deterministic order."""
        family = self._counters.get(name, {})
        return {
            key: c.value
            for key, c in sorted(family.items(), key=lambda kv: repr(kv[0]))
        }

    def gauge_values(self, name: str) -> dict[LabelKey, float]:
        """Gauge family as ``{label_key: value}`` in deterministic order."""
        family = self._gauges.get(name, {})
        return {
            key: g.value
            for key, g in sorted(family.items(), key=lambda kv: repr(kv[0]))
        }

    def counter_by(self, name: str, label: str) -> dict[Any, float]:
        """Counter family aggregated by one label (missing label -> None)."""
        out: dict[Any, float] = {}
        for key, counter in self._counters.get(name, {}).items():
            value = dict(key).get(label)
            out[value] = out.get(value, 0.0) + counter.value
        return out

    def histogram_families(self) -> dict[str, list[tuple[dict, "Histogram"]]]:
        """Histograms grouped by name, label sets in deterministic order."""
        return {
            name: [
                (dict(key), metric)
                for key, metric in sorted(family.items(), key=lambda kv: repr(kv[0]))
            ]
            for name, family in sorted(self._histograms.items())
        }

    def names(self) -> list[str]:
        return sorted(
            set(self._counters) | set(self._gauges)
            | set(self._histograms) | set(self._series)
        )

    def snapshot(self) -> dict:
        """A deterministic, JSON-serializable dump of every metric."""

        def family(metrics: dict[str, dict[LabelKey, Any]]) -> dict:
            return {
                name: [
                    {"labels": dict(key), "value": metric.snapshot()}
                    for key, metric in sorted(values.items(), key=lambda kv: repr(kv[0]))
                ]
                for name, values in sorted(metrics.items())
            }

        return {
            "counters": family(self._counters),
            "gauges": family(self._gauges),
            "histograms": family(self._histograms),
            "series": family(self._series),
        }
