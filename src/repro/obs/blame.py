"""Blame attribution: where did a job's virtual seconds go?

Every charged wait in the engines is attributed to one bucket, so a job's
makespan can be *explained* instead of merely reported: the §5.2
HistogramRatings inversion shows up as flow-control-stall plus
atomic-contention time dominating the HAMR run, and Table 3's combiner
effect as a shrinking stall bucket.

Buckets decompose **task-seconds** (time tasks spent waiting on each
activity, summed over all concurrent tasks), not wall-clock: on a busy
cluster the per-job total exceeds the makespan by roughly the achieved
parallelism. The invariant tests rely on: for every job, the per-bucket
sums equal the ledger's recorded total exactly.
"""

from __future__ import annotations

#: the blame buckets, in report order
COMPUTE = "compute"
DISK = "disk"
NETWORK = "network"
STALL = "stall"  # flow-control stalls (full inbox, loader throttling)
ATOMIC = "atomic"  # serialized accumulator-cell updates
STARTUP = "startup"  # job/task/JVM startup charges

BUCKETS = (COMPUTE, DISK, NETWORK, STALL, ATOMIC, STARTUP)


class BlameLedger:
    """Accumulates (job, node, bucket) -> virtual seconds."""

    def __init__(self) -> None:
        self._charges: dict[tuple[str, int | None, str], float] = {}
        self._job_totals: dict[str, float] = {}

    def charge(self, job: str, bucket: str, seconds: float, node: int | None = None) -> None:
        if bucket not in BUCKETS:
            raise ValueError(f"unknown blame bucket {bucket!r}; pick from {BUCKETS}")
        if seconds < 0:
            raise ValueError(f"negative blame charge: {seconds}")
        if seconds == 0.0:
            return
        key = (job, node, bucket)
        self._charges[key] = self._charges.get(key, 0.0) + seconds
        self._job_totals[job] = self._job_totals.get(job, 0.0) + seconds

    # -- queries ---------------------------------------------------------------

    def jobs(self) -> list[str]:
        return sorted(self._job_totals)

    def job_total(self, job: str) -> float:
        return self._job_totals.get(job, 0.0)

    def grand_total(self) -> float:
        """Task-seconds charged across every job and bucket."""
        return sum(self._job_totals.values())

    def bucket_total(self, bucket: str) -> float:
        """One bucket's task-seconds summed over every job and node."""
        return sum(
            seconds
            for (_job, _node, b), seconds in self._charges.items()
            if b == bucket
        )

    def job_summary(self, job: str) -> dict[str, float]:
        """Bucket -> task-seconds for one job (every bucket present)."""
        summary = {bucket: 0.0 for bucket in BUCKETS}
        for (j, _node, bucket), seconds in self._charges.items():
            if j == job:
                summary[bucket] += seconds
        return summary

    def node_summary(self, job: str) -> dict[int | None, dict[str, float]]:
        """Node -> bucket -> task-seconds for one job."""
        out: dict[int | None, dict[str, float]] = {}
        for (j, node, bucket), seconds in sorted(
            self._charges.items(), key=lambda kv: repr(kv[0])
        ):
            if j != job:
                continue
            row = out.setdefault(node, {bucket_: 0.0 for bucket_ in BUCKETS})
            row[bucket] += seconds
        return out

    def snapshot(self) -> dict:
        """Deterministic JSON-serializable dump: job -> buckets + per-node."""
        return {
            job: {
                "total": self.job_total(job),
                "buckets": self.job_summary(job),
                "nodes": {
                    str(node): buckets
                    for node, buckets in self.node_summary(job).items()
                },
            }
            for job in self.jobs()
        }
