"""Journal corpus: a deterministic warehouse over a fleet of run journals.

Every tool below this layer (``replay``, ``explain``, ``whatif``) takes
one or two journal files by path; at fleet scale (hundreds of runs a
day) the missing tier is an *index* — which journals exist, what run
each one describes, and the headline numbers that let you pick the two
worth comparing without replaying everything.

``ingest`` scans a directory (or explicit paths) for ``*.jsonl`` /
``*.jsonl.gz`` journals, replays each one once, and distills a compact
summary row: run identity (workload, engine, fabric, partitioner,
cluster shape, producing commit), the makespan and footer counters,
blame-bucket seconds summed over every job, the critical-path rollup,
the drift-gated traffic totals, and the per-node CPU straggler
statistics. Rows are deduplicated by **run fingerprint** — the SHA-256
of the journal's canonical record encoding — so re-ingesting the same
directory (or the same journal under two names) is idempotent, and the
index file is byte-identical across reruns (schema
:data:`CORPUS_SCHEMA`, canonical JSONL, deterministic sort order).

The index is the substrate for two consumers: the ``doctor`` verb
(:mod:`repro.obs.doctor`) resolves run specs against it to auto-locate
regression/baseline journal pairs, and the fleet-analytics layer
(:mod:`repro.obs.analytics`) exports it as SQL tables for aggregate
queries over the whole fleet.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Optional

from repro.obs.blame import BUCKETS
from repro.obs.critpath import from_tracer
from repro.obs.journal import JournalError, encode_record, load_journal
from repro.obs.replay import ReplayedRun, replay_records
from repro.obs.telemetry import build_skew_report

CORPUS_SCHEMA = "repro.obs.corpus/v1"

#: default index file, relative to the repo root / cwd
DEFAULT_INDEX_PATH = "corpus.jsonl"

#: journal filename suffixes ``scan_journals`` picks up
JOURNAL_SUFFIXES = (".jsonl", ".jsonl.gz")


def journal_fingerprint(records: list[dict]) -> str:
    """SHA-256 over the canonical record encoding: the run's identity.

    Canonical encoding (sorted keys, compact separators) means the
    fingerprint is invariant under gzip, renames and re-serialization —
    two files holding the same run always collide into one corpus row.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(encode_record(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _straggler_section(run: ReplayedRun) -> dict:
    """Per-node CPU skew distilled from the replayed telemetry."""
    report = build_skew_report(run.tracer.timeline, run.tracer.traffic_matrices())
    section = report.sections.get("cpu_busy_seconds", {})
    stats = section.get("stats", {})
    return {
        "straggler_cv": round(stats.get("cv", 0.0), 6),
        "straggler_max_mean_ratio": round(stats.get("max_mean_ratio", 0.0), 6),
        "stragglers": [int(node) for node in report.stragglers],
    }


def summarize_records(
    records: list[dict], path: str, fingerprint: Optional[str] = None
) -> dict:
    """One corpus row from validated journal records."""
    run = replay_records(records)
    tracer = run.tracer
    jobs = tracer.blame.jobs()
    blame = {bucket: 0.0 for bucket in BUCKETS}
    blame_total = 0.0
    for job in jobs:
        summary = tracer.blame.job_summary(job)
        for bucket in BUCKETS:
            blame[bucket] += summary.get(bucket, 0.0)
        blame_total += tracer.blame.job_total(job)
    rollup = from_tracer(tracer).rollup
    traffic = tracer.traffic_totals()
    row = {
        "schema": CORPUS_SCHEMA,
        "fingerprint": fingerprint or journal_fingerprint(records),
        "path": path,
        "workload": run.workload,
        "label": run.label,
        "data_size": run.data_size,
        "engine": run.engine,
        "fidelity": run.fidelity,
        "fabric": run.fabric,
        "partitioner": run.partitioner,
        "nodes": run.num_nodes,
        "rack_size": run.rack_size,
        "commit": run.header.get("commit"),
        "partial": run.partial,
        "seeded_slowdown": run.footer.get("seeded_slowdown"),
        "makespan": round(run.makespan, 6),
        "virtual_end": round(run.virtual_end, 6),
        "events": run.footer.get("events", 0),
        "trace_dropped": run.trace_dropped,
        # blame summed over every traced job: the fleet view wants the
        # whole run's composition, not just the first job's
        "blame": {bucket: round(blame[bucket], 6) for bucket in sorted(blame)},
        "blame_total": round(blame_total, 6),
        "critpath": {key: round(sec, 6) for key, sec in sorted(rollup.items())},
        "traffic": {key: traffic[key] for key in sorted(traffic)},
        # journals carry no host-clock data; shares stay None unless a
        # future schema embeds them in the header/footer
        "host_shares": run.header.get("host_shares"),
    }
    row.update(_straggler_section(run))
    return row


def summarize_journal(path: str, *, allow_partial: bool = False) -> dict:
    """Load, replay and summarize one journal file into a corpus row."""
    records = load_journal(path, allow_partial=allow_partial)
    return summarize_records(records, path)


# -- the index file -----------------------------------------------------------------


def encode_row(row: dict) -> str:
    """Canonical one-line encoding — same contract as journal records:
    encode→decode→re-encode is byte-identical."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def decode_row(line: str) -> dict:
    try:
        row = json.loads(line)
    except ValueError as exc:
        raise JournalError(f"malformed corpus row: {line[:80]!r}") from exc
    if not isinstance(row, dict) or row.get("schema") != CORPUS_SCHEMA:
        raise JournalError(
            f"not a corpus row (expected schema {CORPUS_SCHEMA!r}): {line[:80]!r}"
        )
    return row


def row_sort_key(row: dict) -> tuple:
    """Deterministic index order: run identity first, fingerprint last."""
    return (
        row.get("workload") or "",
        row.get("engine") or "",
        row.get("fabric") or "",
        row.get("partitioner") or "",
        row.get("fingerprint") or "",
    )


def merge_rows(existing: list[dict], new: list[dict]) -> list[dict]:
    """Dedup by fingerprint (first occurrence wins) and sort canonically.

    ``existing`` rows take precedence, so re-ingesting never rewrites a
    row that is already indexed — the property that makes two
    independent ingests of the same journal set byte-identical.
    """
    seen: dict[str, dict] = {}
    for row in list(existing) + list(new):
        seen.setdefault(row["fingerprint"], row)
    return sorted(seen.values(), key=row_sort_key)


def load_corpus(path: str) -> list[dict]:
    """All index rows; blank lines skipped, schema validated per line."""
    rows = []
    with open(path) as fh:
        for i, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                rows.append(decode_row(line))
            except JournalError as exc:
                raise JournalError(f"{path}:{i}: {exc}") from None
    return rows


def save_corpus(rows: list[dict], path: str) -> None:
    """Rewrite the index canonically (sorted, deduped, one row per line)."""
    with open(path, "w") as fh:
        for row in merge_rows(rows, []):
            fh.write(encode_row(row) + "\n")


def scan_journals(target: str) -> list[str]:
    """Journal paths under a directory (recursive), or the path itself.

    Sorted for deterministic ingest order; the corpus index never
    depends on filesystem enumeration order.
    """
    if os.path.isdir(target):
        found = []
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(JOURNAL_SUFFIXES):
                    found.append(os.path.join(dirpath, filename))
        return sorted(found)
    return [target]


def ingest(
    targets: Iterable[str],
    existing: Optional[list[dict]] = None,
    *,
    allow_partial: bool = False,
    exclude: Iterable[str] = (),
) -> tuple[list[dict], dict]:
    """Scan targets, summarize every journal, merge into the index rows.

    Returns ``(rows, stats)`` where stats counts scanned/added/duplicate/
    skipped files. Unreadable or non-journal files raise unless
    ``allow_partial`` — partial tolerance extends to *files*: a journal
    that cannot be decoded at all is skipped (and counted) instead of
    aborting the whole ingest. ``exclude`` paths are never scanned (the
    CLI passes the index file itself, which shares the ``.jsonl``
    suffix and may sit inside the scanned directory).
    """
    existing = list(existing or [])
    known = {row["fingerprint"] for row in existing}
    excluded = {os.path.abspath(path) for path in exclude}
    new: list[dict] = []
    stats = {"scanned": 0, "added": 0, "duplicates": 0, "skipped": 0}
    for target in targets:
        for path in scan_journals(target):
            if os.path.abspath(path) in excluded:
                continue
            stats["scanned"] += 1
            try:
                records = load_journal(path, allow_partial=allow_partial)
            except (OSError, JournalError):
                if not allow_partial:
                    raise
                stats["skipped"] += 1
                continue
            fingerprint = journal_fingerprint(records)
            if fingerprint in known:
                stats["duplicates"] += 1
                continue
            known.add(fingerprint)
            new.append(summarize_records(records, path, fingerprint=fingerprint))
            stats["added"] += 1
    return merge_rows(existing, new), stats


# -- queries over the index ---------------------------------------------------------


def filter_rows(rows: list[dict], where: Optional[dict] = None) -> list[dict]:
    """Rows matching every ``column == value`` constraint in ``where``."""
    if not where:
        return list(rows)
    out = []
    for row in rows:
        if all(row.get(key) == value for key, value in where.items()):
            out.append(row)
    return out


def find_by_fingerprint(rows: list[dict], prefix: str) -> list[dict]:
    """Rows whose fingerprint starts with ``prefix`` (hex, any length)."""
    return [row for row in rows if row["fingerprint"].startswith(prefix)]


def parse_where(spec: str) -> dict:
    """Parse ``--where workload=wordcount,engine=hamr,...`` filters."""
    where: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not key:
            raise ValueError(
                f"bad --where clause {part!r} (expected column=value)"
            )
        if value == "":
            parsed: object = None
        else:
            try:
                parsed = json.loads(value)
            except ValueError:
                parsed = value
        where[key] = parsed
    return where


# -- rendering ----------------------------------------------------------------------


def render_corpus(rows: list[dict]) -> str:
    """The ``corpus ls`` table: one line per indexed run."""
    lines = [
        f"{'fingerprint':<12} {'workload':<20} {'engine':<8} {'fabric':<9} "
        f"{'part':<6} {'commit':<10} {'makespan':>12} flags",
        "-" * 88,
    ]
    for row in rows:
        flags = []
        if row.get("partial"):
            flags.append("partial")
        if row.get("seeded_slowdown"):
            flags.append("seeded")
        if row.get("trace_dropped"):
            flags.append(f"dropped={row['trace_dropped']}")
        lines.append(
            f"{row['fingerprint'][:12]:<12} {(row.get('workload') or '-'):<20} "
            f"{(row.get('engine') or '-'):<8} {(row.get('fabric') or '-'):<9} "
            f"{(row.get('partitioner') or '-'):<6} "
            f"{(row.get('commit') or '-'):<10} "
            f"{row.get('makespan', 0.0):>12.3f} {','.join(flags) or '-'}"
        )
    lines.append("-" * 88)
    lines.append(f"{len(rows)} run(s) indexed")
    return "\n".join(lines)


def render_row(row: dict) -> str:
    """The ``corpus show`` detail view for one indexed run."""
    lines = [
        f"== corpus row {row['fingerprint'][:12]} ==",
        f"path        {row.get('path')}",
        f"run         {row.get('workload')}:{row.get('engine')} "
        f"fabric={row.get('fabric')} partitioner={row.get('partitioner')} "
        f"nodes={row.get('nodes')} rack_size={row.get('rack_size')}",
        f"provenance  commit={row.get('commit') or '-'} "
        f"fidelity={row.get('fidelity') or '-'} "
        f"partial={bool(row.get('partial'))} "
        f"trace_dropped={row.get('trace_dropped', 0)}",
        f"makespan    {row.get('makespan', 0.0):.3f}s "
        f"(virtual end {row.get('virtual_end', 0.0):.3f}s, "
        f"{row.get('events', 0)} events)",
    ]
    if row.get("seeded_slowdown"):
        lines.append(f"seeded      {json.dumps(row['seeded_slowdown'], sort_keys=True)}")
    blame = row.get("blame", {})
    total = row.get("blame_total", 0.0)
    parts = [
        f"{bucket}={blame[bucket]:.3f}s"
        for bucket in sorted(blame)
        if blame[bucket] > 0.0
    ]
    lines.append(f"blame       {' '.join(parts) or '-'} (total {total:.3f}s)")
    critpath = row.get("critpath", {})
    parts = [
        f"{key}={critpath[key]:.3f}s"
        for key in sorted(critpath)
        if critpath[key] > 0.0
    ]
    lines.append(f"critpath    {' '.join(parts) or '-'}")
    traffic = row.get("traffic", {})
    lines.append(
        f"traffic     total={traffic.get('total_bytes', 0.0):.0f}B "
        f"remote={traffic.get('remote_bytes', 0.0):.0f}B "
        f"shuffle={traffic.get('shuffle_bytes', 0.0):.0f}B "
        f"records={traffic.get('records', 0.0):.0f}"
    )
    lines.append(
        f"skew        cv={row.get('straggler_cv', 0.0):.4f} "
        f"max/mean={row.get('straggler_max_mean_ratio', 0.0):.4f} "
        f"stragglers={row.get('stragglers', [])}"
    )
    return "\n".join(lines)
