"""Live run monitoring: virtual-time progress, ETA, flow gauges, watchdog.

:class:`LiveMonitor` attaches to the sim kernel as the duck-typed
``sim.progress`` observer (mirroring ``sim.hostprof`` — the kernel never
imports this module). After every dispatched event the kernel calls
``tick(now)``; when the virtual clock crosses the next frame boundary the
monitor captures a dashboard frame: per-stage completion fractions from
the engines' ``progress.total`` / ``progress.done`` metrics, an ETA
projection, flow-control gauges (stall events, stall blame, inbox depth)
and a watchdog verdict.

The monitor is strictly **read-only** against the run: it never schedules
events, never touches the virtual clock, and only *reads* tracer state —
a run with monitoring on is virtual-clock byte-identical to one with it
off. Frames are journaled as ``fr`` records (config as ``wcfg``), so
``replay --view watch`` re-renders the dashboard byte-identically, and
:func:`repro.obs.journal.seed_bucket_slowdown` can dilate frame times and
recompute watchdog verdicts on the slowed timeline.

The watchdog flags a frame STALLED when no tracked progress counter
(spans opened/closed, stage work declared/completed) has advanced for at
least ``window`` virtual seconds. With an SLO spec attached (see
:mod:`repro.obs.slo`) frames escalate to SLO_BREACH as soon as a live
objective (makespan budget, stall share, traffic ceiling) is violated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.obs.blame import STALL
from repro.obs.telemetry import QUEUE

#: schema tag for the ``watch`` CLI's JSON payload
LIVE_SCHEMA = "repro.obs.live/v1"

#: watchdog / escalation statuses, in increasing terminal-ness
STATUS_RUNNING = "RUNNING"
STATUS_BREACH = "SLO_BREACH"
STATUS_STALLED = "STALLED"
STATUS_DONE = "DONE"

#: default frame spacing (virtual seconds)
DEFAULT_INTERVAL = 25.0
#: default watchdog stall window (virtual seconds); must comfortably
#: exceed the longest quiet gap of any clean tier-1 workload
DEFAULT_WINDOW = 300.0


@dataclass(frozen=True)
class WatchConfig:
    """Live-monitoring knobs (all in virtual seconds)."""

    interval: float = DEFAULT_INTERVAL
    window: float = DEFAULT_WINDOW


def watchdog_statuses(frames: list[dict], window: float) -> list[dict]:
    """(Re)compute each frame's watchdog ``status`` in place.

    A pure fold over ``(tm, adv, br, fin)``: a frame is STALLED when at
    least ``window`` virtual seconds passed since the last frame whose
    progress vector advanced (run start counts as an advance). This is
    exactly the live monitor's verdict, so it can re-run after
    ``seed_bucket_slowdown`` remaps frame times.
    """
    last_advance = 0.0
    for frame in frames:
        stalled = window > 0 and (frame["tm"] - last_advance) >= window
        if frame.get("adv"):
            last_advance = frame["tm"]
        if stalled:
            frame["status"] = STATUS_STALLED
        elif frame.get("br"):
            frame["status"] = STATUS_BREACH
        elif frame.get("fin"):
            frame["status"] = STATUS_DONE
        else:
            frame["status"] = STATUS_RUNNING
    return frames


def refresh_frame_projections(frames: list[dict], window: float) -> list[dict]:
    """Recompute the time-derived frame fields (``eta``, ``status``)
    after frame times were remapped onto a dilated timeline."""
    for frame in frames:
        frac = frame.get("frac", 0.0)
        if frac > 0:
            frame["eta"] = round(frame["tm"] / frac, 6)
        else:
            frame.pop("eta", None)
    return watchdog_statuses(frames, window)


class LiveMonitor:
    """Virtual-time progress engine for one engine run.

    Attach with ``env.cluster.sim.progress = monitor`` *before* the run
    and call :meth:`finish` when it completes (before the journal footer,
    so the final frame lands inside the journal body).
    """

    def __init__(self, tracer, config: Optional[WatchConfig] = None, slo=None):
        if not tracer.enabled:
            raise ValueError("live monitoring requires an enabled tracer")
        config = config or WatchConfig()
        if config.interval <= 0:
            raise ValueError(f"watch interval must be positive: {config.interval}")
        self.tracer = tracer
        self.config = config
        #: optional :class:`repro.obs.slo.SLOSpec` for live escalation
        self.slo = slo
        self.frames: list[dict] = []
        self._next_due = config.interval
        self._last_advance = 0.0
        self._last_vector = self._vector()
        self._finished = False
        if tracer.journal is not None:
            tracer.journal.emit(
                {"t": "wcfg", "iv": config.interval, "win": config.window}
            )

    # -- kernel hook -------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Called by the sim kernel after every dispatched event."""
        if now < self._next_due:
            return
        self._next_due = math.floor(now / self.config.interval + 1.0) * self.config.interval
        self._capture(now, final=False)

    def finish(self, makespan: Optional[float] = None) -> None:
        """Capture the terminal frame (call once, before the journal footer)."""
        if self._finished:
            return
        self._finished = True
        self._capture(self.tracer.sim.now, final=True)

    # -- frame capture -----------------------------------------------------------

    def _vector(self) -> tuple:
        """The tracked progress counters; any change counts as an advance."""
        tracer = self.tracer
        done = sum(tracer.metrics.counter_values("progress.done").values())
        total = sum(tracer.metrics.gauge_values("progress.total").values())
        return (len(tracer.spans), tracer.closed_spans, done, total)

    def _capture(self, now: float, final: bool) -> None:
        tracer = self.tracer
        totals = tracer.metrics.gauge_values("progress.total")
        dones = tracer.metrics.counter_values("progress.done")
        stages: dict[str, list[float]] = {}
        done_sum = total_sum = 0.0
        for key, total in totals.items():
            labels = dict(key)
            name = f"{labels.get('job', '?')}/{labels.get('stage', '?')}"
            done = dones.get(key, 0.0)
            stages[name] = [done, total]
            done_sum += done
            total_sum += total
        frac = done_sum / total_sum if total_sum > 0 else 0.0

        vector = (len(tracer.spans), tracer.closed_spans, done_sum, total_sum)
        adv = vector != self._last_vector
        self._last_vector = vector

        stall_seconds = tracer.blame.bucket_total(STALL)
        blame_total = tracer.blame.grand_total()
        frame: dict = {
            "tm": now,
            "frac": round(frac, 6),
            "stages": stages,
            "spans": [len(tracer.spans), tracer.closed_spans],
            "stalls": tracer.metrics.counter_total("flow.stalls"),
            "stall_s": round(stall_seconds, 6),
            "inbox": round(tracer.timeline.level_total(QUEUE), 6),
            "adv": adv,
        }
        if frac > 0:
            frame["eta"] = round(now / frac, 6)
        if final:
            frame["fin"] = True
        breaches = self._breaches(now, stall_seconds, blame_total, final)
        if breaches:
            frame["br"] = breaches

        stalled = self.config.window > 0 and (now - self._last_advance) >= self.config.window
        if adv:
            self._last_advance = now
        if stalled:
            frame["status"] = STATUS_STALLED
        elif breaches:
            frame["status"] = STATUS_BREACH
        elif final:
            frame["status"] = STATUS_DONE
        else:
            frame["status"] = STATUS_RUNNING

        self.frames.append(frame)
        if tracer.journal is not None:
            tracer.journal.emit(dict(frame, t="fr"))

    def _breaches(
        self, now: float, stall_seconds: float, blame_total: float, final: bool
    ) -> list[str]:
        spec = self.slo
        if spec is None:
            return []
        breaches = []
        if spec.makespan_budget is not None and now > spec.makespan_budget:
            breaches.append("makespan")
        if (
            spec.max_stall_share is not None
            and blame_total > 0
            and stall_seconds / blame_total > spec.max_stall_share
        ):
            breaches.append("stall_share")
        if (
            spec.traffic_ceiling is not None
            and self.tracer.traffic_totals().get("total_bytes", 0.0)
            > spec.traffic_ceiling
        ):
            breaches.append("traffic_bytes")
        if final and spec.max_straggler_cv is not None:
            if self.straggler_cv() > spec.max_straggler_cv:
                breaches.append("straggler_cv")
        return breaches

    def straggler_cv(self) -> float:
        """Coefficient of variation of per-node CPU busy-seconds."""
        from repro.obs.telemetry import build_skew_report

        report = build_skew_report(
            self.tracer.timeline, self.tracer.traffic_matrices()
        )
        stats = report.sections.get("cpu_busy_seconds", {}).get("stats")
        return stats["cv"] if stats else 0.0

    @property
    def status(self) -> str:
        """The last captured frame's status (RUNNING before any frame)."""
        return self.frames[-1]["status"] if self.frames else STATUS_RUNNING

    def stalled_frames(self) -> int:
        return sum(1 for f in self.frames if f["status"] == STATUS_STALLED)

    def to_dict(self) -> dict:
        """Deterministic per-engine watch payload (part of ``LIVE_SCHEMA``)."""
        return {
            "interval": self.config.interval,
            "window": self.config.window,
            "frames": self.frames,
            "status": self.status,
            "stalled_frames": self.stalled_frames(),
        }


# -- rendering ----------------------------------------------------------------------


def _bar(frac: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, frac)) * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024.0
    return f"{value:.1f}TB"


def render_frame(frame: dict) -> str:
    """One ASCII dashboard frame (multi-line, deterministic)."""
    eta = f"{frame['eta']:10.1f}s" if "eta" in frame else "       n/a"
    lines = [
        f"t={frame['tm']:10.2f}s {_bar(frame['frac'])} "
        f"{frame['frac'] * 100.0:5.1f}%  eta {eta}  {frame['status']}"
    ]
    if frame.get("br"):
        lines.append(f"    slo breach: {', '.join(frame['br'])}")
    for stage in sorted(frame["stages"]):
        done, total = frame["stages"][stage]
        pct = 100.0 * done / total if total else 0.0
        lines.append(f"    {stage:<30} {done:7.0f}/{total:<7.0f} {pct:5.1f}%")
    opened, closed = frame["spans"]
    lines.append(
        f"    flow: stalls={frame['stalls']:.0f} stall_s={frame['stall_s']:.2f}s"
        f" inbox={_fmt_bytes(frame['inbox'])} spans={closed}/{opened}"
    )
    return "\n".join(lines)


def render_watch(title: str, config_or_frames, frames: Optional[list] = None) -> str:
    """The full watch dashboard for one engine run.

    ``render_watch(title, monitor)`` or
    ``render_watch(title, (interval, window), frames)``.
    """
    if frames is None:
        interval, window = config_or_frames.config.interval, config_or_frames.config.window
        frames = config_or_frames.frames
    else:
        interval, window = config_or_frames
    lines = [
        f"== {title} — watch ==",
        f"interval {interval:g}s, stall window {window:g}s, {len(frames)} frames",
        "",
    ]
    for frame in frames:
        lines.append(render_frame(frame))
        lines.append("")
    stalled = sum(1 for f in frames if f["status"] == STATUS_STALLED)
    final = frames[-1]["status"] if frames else "(no frames)"
    lines.append(f"final: {final}, stalled frames: {stalled}/{len(frames)}")
    return "\n".join(lines)
