"""Fleet analytics: the journal corpus as SQL tables, on both engines.

The corpus index (:mod:`repro.obs.corpus`) is one summary row per run;
fleet questions — which fabric actually saves inter-rack bytes, how the
blame composition drifts across commits, which workload straggles worst
— are *aggregations* over that index. This module exports the index as
relational tables (``runs``, ``blame``, ``traffic``, ``critpath``,
``stragglers``) and ships a set of canned SELECTs answering exactly
those questions.

Because the simulator has two engines, the canned queries are also a
workload: every query runs through the HAMR flowlet compiler
(:class:`repro.sql.SQLSession`) **and** the MapReduce executor
(:class:`repro.sql.mr.MRSQLSession`) on fresh simulated clusters, the
result rows are reference-checked against each other, and the paired
virtual makespans land in a BENCH row — SQL-on-telemetry as a Table 2
style dual-engine comparison (the BigBench direction §7 sketches).

Float caveat: the two engines fold aggregate sums in different orders
(HAMR combines per-worker partials; MR folds the shuffle stream), so
result equality is checked on canonically rounded values (6 decimals)
with a last-bit tolerance, and reported rows are the rounded HAMR side.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

from repro.obs.blame import BUCKETS

ANALYTICS_SCHEMA = "repro.obs.analytics/v1"

#: exported table name → column tuple (declared schemas: a table like
#: ``stragglers`` may legitimately be empty for a well-balanced fleet)
TABLE_COLUMNS = {
    "runs": (
        "fingerprint", "workload", "engine", "fabric", "partitioner",
        "nodes", "rack_size", "commit", "data_size", "fidelity",
        "partial", "seeded", "makespan", "virtual_end", "events",
        "blame_total", "straggler_cv", "straggler_max_mean_ratio",
        "straggler_count",
    ),
    "blame": (
        "fingerprint", "workload", "engine", "fabric", "commit",
        "bucket", "seconds", "share",
    ),
    "traffic": (
        "fingerprint", "workload", "engine", "fabric", "partitioner",
        "total_bytes", "remote_bytes", "inter_rack_bytes",
        "shuffle_bytes", "local_bytes", "broadcast_bytes",
        "records", "payloads",
    ),
    "critpath": (
        "fingerprint", "workload", "engine", "bucket", "seconds",
    ),
    "stragglers": (
        "fingerprint", "workload", "engine", "node",
    ),
}


def _text(value: Optional[str]) -> str:
    """SQL-safe string cell: comparisons/sorts need no-None columns."""
    return value if value is not None else "-"


def corpus_tables(rows: Iterable[dict]) -> dict[str, list[dict]]:
    """The corpus index exploded into the relational tables above.

    Row order follows the (already canonical) index order, so the
    tables — and every deterministic query over them — are stable
    across re-exports.
    """
    tables: dict[str, list[dict]] = {name: [] for name in TABLE_COLUMNS}
    for row in rows:
        ident = {
            "fingerprint": row["fingerprint"],
            "workload": _text(row.get("workload")),
            "engine": _text(row.get("engine")),
        }
        fabric = _text(row.get("fabric"))
        partitioner = _text(row.get("partitioner"))
        commit = _text(row.get("commit"))
        tables["runs"].append(
            {
                **ident,
                "fabric": fabric,
                "partitioner": partitioner,
                "nodes": row.get("nodes") or 0,
                "rack_size": row.get("rack_size") or 0,
                "commit": commit,
                "data_size": _text(row.get("data_size")),
                "fidelity": _text(row.get("fidelity")),
                "partial": int(bool(row.get("partial"))),
                "seeded": int(bool(row.get("seeded_slowdown"))),
                "makespan": row.get("makespan", 0.0),
                "virtual_end": row.get("virtual_end", 0.0),
                "events": row.get("events", 0),
                "blame_total": row.get("blame_total", 0.0),
                "straggler_cv": row.get("straggler_cv", 0.0),
                "straggler_max_mean_ratio": row.get(
                    "straggler_max_mean_ratio", 0.0
                ),
                "straggler_count": len(row.get("stragglers") or []),
            }
        )
        blame = row.get("blame", {})
        blame_total = row.get("blame_total", 0.0)
        for bucket in BUCKETS:
            seconds = blame.get(bucket, 0.0)
            tables["blame"].append(
                {
                    **ident,
                    "fabric": fabric,
                    "commit": commit,
                    "bucket": bucket,
                    "seconds": seconds,
                    "share": round(seconds / blame_total, 6) if blame_total else 0.0,
                }
            )
        traffic = row.get("traffic", {})
        tables["traffic"].append(
            {
                **ident,
                "fabric": fabric,
                "partitioner": partitioner,
                "total_bytes": traffic.get("total_bytes", 0.0),
                "remote_bytes": traffic.get("remote_bytes", 0.0),
                "inter_rack_bytes": traffic.get("inter_rack_bytes", 0.0),
                "shuffle_bytes": traffic.get("shuffle_bytes", 0.0),
                "local_bytes": traffic.get("local_bytes", 0.0),
                "broadcast_bytes": traffic.get("broadcast_bytes", 0.0),
                "records": traffic.get("records", 0.0),
                "payloads": traffic.get("payloads", 0.0),
            }
        )
        for bucket, seconds in sorted(row.get("critpath", {}).items()):
            tables["critpath"].append(
                {**ident, "bucket": bucket, "seconds": seconds}
            )
        for node in row.get("stragglers") or []:
            tables["stragglers"].append({**ident, "node": int(node)})
    # every row must carry the full declared column set, in order
    for name, table in tables.items():
        columns = TABLE_COLUMNS[name]
        tables[name] = [{col: row[col] for col in columns} for row in table]
    return tables


#: (name, description, sql) — order is the report/render order
CANNED_QUERIES = (
    (
        "fabric_traffic",
        "per-fabric exchange volume: does rack-awareness cut inter-rack bytes?",
        "SELECT fabric, COUNT(*) AS runs, SUM(remote_bytes) AS remote_bytes, "
        "SUM(inter_rack_bytes) AS inter_rack_bytes "
        "FROM traffic GROUP BY fabric ORDER BY fabric",
    ),
    (
        "blame_share_by_commit",
        "blame composition per commit: which bucket grew across history?",
        "SELECT commit, bucket, SUM(seconds) AS seconds, AVG(share) AS avg_share "
        "FROM blame GROUP BY commit, bucket "
        "HAVING seconds > 0 ORDER BY commit, bucket",
    ),
    (
        "straggler_leaderboard",
        "worst per-node CPU skew by workload x engine",
        "SELECT workload, engine, MAX(straggler_cv) AS worst_cv, "
        "COUNT(*) AS runs FROM runs GROUP BY workload, engine "
        "ORDER BY worst_cv DESC, workload, engine",
    ),
    (
        "makespan_by_engine",
        "mean virtual makespan by workload x engine (the fleet's Table 2)",
        "SELECT workload, engine, AVG(makespan) AS mean_makespan, "
        "COUNT(*) AS runs FROM runs GROUP BY workload, engine "
        "ORDER BY workload, engine",
    ),
    (
        "critpath_profile",
        "fleet-wide critical-path composition, dominant buckets first",
        "SELECT bucket, SUM(seconds) AS seconds FROM critpath "
        "GROUP BY bucket HAVING seconds > 0 ORDER BY seconds DESC, bucket",
    ),
    (
        "slowest_runs",
        "the fleet's slowest complete runs (map-only projection query)",
        "SELECT workload, engine, fabric, makespan FROM runs "
        "WHERE partial = 0 ORDER BY makespan DESC, workload, engine, fabric "
        "LIMIT 10",
    ),
)


def canonical_rows(rows: list[dict]) -> list[dict]:
    """Floats rounded to 6 decimals — the cross-engine comparison domain."""
    out = []
    for row in rows:
        out.append(
            {
                key: round(value, 6) if isinstance(value, float) else value
                for key, value in row.items()
            }
        )
    return out


def rows_match(a: list[dict], b: list[dict]) -> bool:
    """Ordered row-set equality with last-bit float tolerance."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif va != vb:
                return False
    return True


def run_analytics(
    corpus_rows: list[dict],
    *,
    num_workers: int = 3,
    queries: Optional[Iterable[str]] = None,
) -> dict:
    """Run the canned queries on both engines over fresh clusters.

    One :class:`AppEnv` per engine (so neither engine's jobs perturb the
    other's virtual clock), the same exported tables registered into
    each, every query executed twice and reference-checked. Returns the
    report dict (schema :data:`ANALYTICS_SCHEMA`) with per-query rows,
    paired makespans and the match verdict.
    """
    from repro.apps.base import AppEnv
    from repro.cluster import small_cluster_spec
    from repro.sql import Catalog, SQLSession
    from repro.sql.mr import MRSQLSession

    tables = corpus_tables(corpus_rows)
    wanted = set(queries) if queries is not None else None
    selected = [q for q in CANNED_QUERIES if wanted is None or q[0] in wanted]
    if wanted is not None:
        unknown = wanted - {name for name, _desc, _sql in CANNED_QUERIES}
        if unknown:
            raise ValueError(f"unknown analytics queries: {sorted(unknown)}")

    hamr_env = AppEnv(small_cluster_spec(num_workers=num_workers))
    catalog = Catalog()
    for name, table in tables.items():
        catalog.register(name, table, columns=TABLE_COLUMNS[name])
    hamr = SQLSession(hamr_env.hamr, catalog)

    hadoop_env = AppEnv(small_cluster_spec(num_workers=num_workers))
    hadoop = MRSQLSession(hadoop_env)
    for name, table in tables.items():
        hadoop.register(name, table, columns=TABLE_COLUMNS[name])

    results = []
    for name, description, sql in selected:
        res_a = hamr.run(sql)
        res_b = hadoop.run(sql)
        rows_a = canonical_rows(res_a.rows)
        rows_b = canonical_rows(res_b.rows)
        results.append(
            {
                "name": name,
                "description": description,
                "sql": sql,
                "names": res_a.names,
                "rows": rows_a,
                "row_count": len(rows_a),
                "hamr_seconds": round(res_a.makespan, 6),
                "hadoop_seconds": round(res_b.makespan, 6),
                "match": rows_match(rows_a, rows_b),
            }
        )
    return {
        "schema": ANALYTICS_SCHEMA,
        "corpus_runs": len(list(corpus_rows)),
        "tables": {name: len(table) for name, table in sorted(tables.items())},
        "num_workers": num_workers,
        "queries": results,
        "all_match": all(r["match"] for r in results),
    }


def render_analytics(report: dict, *, max_rows: int = 12) -> str:
    """Deterministic ASCII report: per-query result table + engine check."""
    tables = " ".join(
        f"{name}={count}" for name, count in sorted(report["tables"].items())
    )
    lines = [
        f"== obs-analytics over {report['corpus_runs']} corpus run(s) "
        f"({report['num_workers']} workers/engine) ==",
        f"tables      {tables}",
    ]
    for query in report["queries"]:
        verdict = "ok" if query["match"] else "ENGINE MISMATCH"
        lines.append("")
        lines.append(f"-- {query['name']}: {query['description']}")
        lines.append(f"   {query['sql']}")
        lines.append(
            f"   hamr {query['hamr_seconds']:.3f}s  "
            f"hadoop {query['hadoop_seconds']:.3f}s  "
            f"rows {query['row_count']}  engines {verdict}"
        )
        header = "  ".join(f"{name:>18s}" for name in query["names"])
        lines.append(f"   {header}")
        for row in query["rows"][:max_rows]:
            cells = "  ".join(f"{str(row[name]):>18s}" for name in query["names"])
            lines.append(f"   {cells}")
        if query["row_count"] > max_rows:
            lines.append(f"   ... {query['row_count'] - max_rows} more row(s)")
    lines.append("")
    status = "identical" if report["all_match"] else "DIVERGED"
    lines.append(
        f"{len(report['queries'])} quer(ies) run on both engines — results {status}"
    )
    return "\n".join(lines)
