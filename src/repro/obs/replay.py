"""Journal replay: rebuild a run's tracer byte-identically, no re-execution.

:func:`replay_records` folds a journal's events, in order, back into a
real :class:`~repro.obs.spans.Tracer` over a frozen virtual clock (the
footer's ``virtual_end``). Every event re-applies the *same primitive
mutation* the live run performed — the same ``Counter.inc``, the same
``BlameLedger.charge``, the same list appends — with the same operands in
the same order, so every float accumulation reproduces bit-for-bit and
the downstream views (``report_dict``, ``telemetry_dict``, the
critical-path extraction, the Chrome trace) serialize **byte-identically**
to the live run's.

The only deliberate difference: replayed spans are closed by assigning
``end``/``args`` directly instead of calling ``finish()`` — the
``span.seconds`` histogram observation that ``finish()`` would trigger is
itself a journal event (``h``) and replays separately, so going through
``finish()`` would double-apply it.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.journal import JournalError, load_journal, read_journal
from repro.obs.spans import Span, SpanEdge, Tracer


class FrozenClock:
    """Stands in for the :class:`~repro.sim.core.Simulator` during replay:
    the only kernel surface the reporting layer touches is ``now``."""

    __slots__ = ("now",)

    def __init__(self, now: float):
        self.now = now


class ReplayedRun:
    """A journal folded back into a tracer, plus the run's metadata."""

    def __init__(
        self,
        header: dict,
        footer: dict,
        tracer: Tracer,
        frames: Optional[list[dict]] = None,
        watch_config: Optional[dict] = None,
    ):
        self.header = header
        self.footer = footer
        self.tracer = tracer
        #: live-dashboard frames (``fr`` records, ``t`` key stripped) in
        #: emission order — empty unless the run was watched
        self.frames = frames or []
        #: the run's ``wcfg`` record (interval/window), if watched
        self.watch_config = watch_config

    @property
    def workload(self) -> Optional[str]:
        return self.header.get("workload")

    @property
    def label(self) -> Optional[str]:
        return self.header.get("label")

    @property
    def data_size(self) -> Optional[str]:
        return self.header.get("data_size")

    @property
    def engine(self) -> Optional[str]:
        return self.header.get("engine")

    @property
    def fidelity(self) -> Optional[str]:
        return self.header.get("fidelity")

    @property
    def fabric(self) -> str:
        """The run's exchange fabric (v1 journals predate fabrics: direct)."""
        return self.header.get("fabric", "direct")

    @property
    def partitioner(self) -> str:
        return self.header.get("partitioner", "hash")

    @property
    def num_nodes(self) -> Optional[int]:
        """Cluster size the run executed on (v3 headers; None before)."""
        return self.header.get("nodes")

    @property
    def rack_size(self) -> Optional[int]:
        """Workers per rack for rack-aware fabrics (v3 headers)."""
        return self.header.get("rack_size")

    @property
    def partial(self) -> bool:
        """True when the footer was synthesized for a truncated journal."""
        return bool(self.footer.get("partial"))

    @property
    def makespan(self) -> float:
        return self.footer.get("makespan", 0.0)

    @property
    def virtual_end(self) -> float:
        return self.footer.get("virtual_end", 0.0)

    @property
    def trace_dropped(self) -> int:
        return self.footer.get("trace_dropped", 0)

    @property
    def trace_max_records(self) -> Optional[int]:
        return self.footer.get("trace_max_records")

    def title(self) -> str:
        """The live CLI's report/timeline heading for this run."""
        engine = self.engine
        if self.fabric != "direct":
            engine = f"{engine}@{self.fabric}"
        return (
            f"== {self.label} ({self.data_size}) on {engine} — "
            f"makespan {self.makespan:.3f}s =="
        )


def replay_records(records: list[dict]) -> ReplayedRun:
    """Fold validated journal records into a fresh tracer."""
    header, events, footer = records[0], records[1:-1], records[-1]
    tracer = Tracer(FrozenClock(footer.get("virtual_end", 0.0)), enabled=True)
    metrics = tracer.metrics
    spans: dict[int, Span] = {}
    frames: list[dict] = []
    watch_config: Optional[dict] = None
    next_id = 0
    for rec in events:
        t = rec["t"]
        if t == "so":
            span = Span(
                tracer,
                rec["id"],
                rec["n"],
                rec["c"],
                rec["st"],
                node=rec.get("nd"),
                job=rec.get("j"),
                flowlet=rec.get("f"),
                parent_id=rec.get("p"),
                args=rec.get("a"),
            )
            tracer.spans.append(span)
            spans[rec["id"]] = span
            next_id = max(next_id, rec["id"])
        elif t == "sc":
            span = spans.get(rec["id"])
            if span is None:
                raise JournalError(f"span close for unknown span id {rec['id']}")
            if span.end is not None:
                raise JournalError(f"duplicate close for span id {rec['id']}")
            span.end = rec["end"]
            args = rec.get("a")
            if args:
                span.args = args
        elif t == "e":
            tracer.edges.append(SpanEdge(rec["s"], rec["d"], rec["k"]))
        elif t == "b":
            tracer.charge(
                rec["j"], rec["bk"], rec["v"],
                node=rec.get("nd"), span=spans.get(rec.get("sp")),
            )
        elif t == "m":
            kind, name, labels = rec["k"], rec["n"], dict(rec["l"])
            if kind == "c":
                metrics.counter(name, **labels)
            elif kind == "g":
                metrics.gauge(name, **labels)
            elif kind == "h":
                metrics.histogram(name, bounds=rec.get("b"), **labels)
            elif kind == "s":
                metrics.series(name, **labels)
            else:
                raise JournalError(f"unknown metric kind {kind!r}")
        elif t == "c":
            metrics.counter(rec["n"], **dict(rec["l"])).inc(rec["v"])
        elif t == "g":
            gauge = metrics.gauge(rec["n"], **dict(rec["l"]))
            if rec["op"] == "set":
                gauge.set(rec["v"])
            elif rec["op"] == "add":
                gauge.add(rec["v"])
            else:
                raise JournalError(f"unknown gauge op {rec['op']!r}")
        elif t == "h":
            metrics.histogram(rec["n"], **dict(rec["l"])).observe(rec["v"])
        elif t == "s":
            metrics.series(rec["n"], **dict(rec["l"])).append(rec["tm"], rec["v"])
        elif t == "tls":
            tracer.timeline.record_step(rec["tr"], rec["nd"], rec["tm"], rec["v"])
        elif t == "tli":
            tracer.timeline.record_interval(
                rec["tr"], rec["nd"], rec["t0"], rec["t1"], rec["w"]
            )
        elif t == "tlc":
            if rec["op"] == "set":
                tracer.timeline.set_capacity(rec["tr"], rec["nd"], rec["v"])
            elif rec["op"] == "add":
                tracer.timeline.add_capacity(rec["tr"], rec["nd"], rec["v"])
            else:
                raise JournalError(f"unknown capacity op {rec['op']!r}")
        elif t == "tm":
            rk = rec.get("rk")
            tracer.racks = (
                {int(node): rack for node, rack in rk.items()} if rk else None
            )
            tracer.traffic(rec["j"])
        elif t == "x":
            tracer.traffic(rec["j"]).charge(
                rec["s"], rec["d"], rec["v"],
                records=rec.get("r", 0), mode=rec["m"], partition=rec.get("p"),
            )
        elif t == "fr":
            frame = dict(rec)
            frame.pop("t")
            frames.append(frame)
        elif t == "wcfg":
            watch_config = {"interval": rec["iv"], "window": rec["win"]}
        else:
            raise JournalError(f"unexpected record type {t!r} mid-journal")
    tracer._next_id = next_id
    return ReplayedRun(header, footer, tracer, frames=frames, watch_config=watch_config)


def replay_lines(lines, *, allow_partial: bool = False) -> ReplayedRun:
    return replay_records(read_journal(lines, allow_partial=allow_partial))


def replay_file(path: str, *, allow_partial: bool = False) -> ReplayedRun:
    """Replay a journal file (``.jsonl`` or ``.jsonl.gz``).

    With ``allow_partial`` a footer-less (truncated) journal replays
    best-effort up to the last complete event: spans without a close
    record stay open and the synthesized footer carries
    ``partial: true`` plus the last observed timestamp as the makespan
    floor.
    """
    return replay_records(load_journal(path, allow_partial=allow_partial))
