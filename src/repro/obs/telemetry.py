"""Cluster telemetry: per-node resource timelines, traffic matrix, skew.

The paper's §5 explanations are resource-timeline arguments — HAMR wins
where Hadoop is disk-bound during startup/shuffle and loses
HistogramRatings to atomic contention. This module provides the
measurement substrate for those arguments:

* :class:`TimelineSampler` — per-node counter tracks over *virtual* time
  (CPU-slot occupancy, disk busy, NIC tx/rx bytes, memory used/pressure
  watermarks, flow-control queue depth), fed by observer hooks on the sim
  resources and binned into deterministic node × time heatmaps;
* :class:`TrafficMatrix` — N×N per-job exchange accounting (bytes and
  payload counts per src-node → dst-node edge, split by
  shuffle/local/broadcast mode), charged where the dataplane resolves
  ``exchange_targets``;
* :class:`SkewReport` — per-partition / per-node imbalance statistics
  (max/mean ratio, coefficient of variation, straggler identification)
  computed from the timelines and the matrix.

Everything is deterministic: identical runs serialize to byte-identical
JSON, which is what lets the bench drift gate cover shuffle volume.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.common.units import format_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

TELEMETRY_SCHEMA = "repro.obs.telemetry/v1"

#: exchange modes (string values match ``repro.dataplane.exchange``)
MODE_SHUFFLE = "shuffle"
MODE_LOCAL = "local"
MODE_BROADCAST = "broadcast"
MODES = (MODE_SHUFFLE, MODE_LOCAL, MODE_BROADCAST)

# -- timeline tracks ---------------------------------------------------------------

CPU = "cpu"  # busy worker-thread slots (step; heat = time-weighted mean)
DISK = "disk"  # striped-disk busy seconds (rate; heat = busy fraction)
NIC_TX = "nic_tx"  # NIC egress bytes (rate; heat = bytes per bin)
NIC_RX = "nic_rx"  # NIC ingress bytes (rate; heat = bytes per bin)
MEM_USED = "mem_used"  # memory-account resident bytes (step; heat = watermark)
MEM_PRESSURE = "mem_pressure"  # used/budget fraction (step; heat = watermark)
QUEUE = "queue"  # flow-control inbox depth, logical bytes (step; watermark)

#: track -> binning kind: "mean" integrates the step function over each
#: bin; "max" takes the bin's watermark (carry-in value included); "rate"
#: spreads each interval's weight proportionally over the bins it covers.
TRACK_KINDS = {
    CPU: "mean",
    DISK: "rate",
    NIC_TX: "rate",
    NIC_RX: "rate",
    MEM_USED: "max",
    MEM_PRESSURE: "max",
    QUEUE: "max",
}

#: render / export order
TRACK_ORDER = (CPU, DISK, NIC_TX, NIC_RX, MEM_USED, MEM_PRESSURE, QUEUE)

TRACK_TITLES = {
    CPU: "CPU slot occupancy (mean busy slots per bin)",
    DISK: "disk busy (busy-seconds per bin, all stripes)",
    NIC_TX: "NIC egress (bytes per bin)",
    NIC_RX: "NIC ingress (bytes per bin)",
    MEM_USED: "memory resident watermark (bytes)",
    MEM_PRESSURE: "memory pressure watermark (fraction of budget)",
    QUEUE: "flow-control inbox depth watermark (logical bytes)",
}

#: default number of time bins for heatmaps and JSON export
DEFAULT_BINS = 60

#: glyph ramp for heat cells, cold to hot (index 0 = exactly idle)
HEAT_RAMP = " .:-=+*#%@"


def heat_glyph(value: float, peak: float) -> str:
    """Map a bin value onto the heat ramp (deterministic, peak-normalized)."""
    if value <= 0.0 or peak <= 0.0:
        return HEAT_RAMP[0]
    frac = min(1.0, value / peak)
    return HEAT_RAMP[1 + min(len(HEAT_RAMP) - 2, int(frac * (len(HEAT_RAMP) - 1)))]


class TimelineSampler:
    """Per-node counter tracks over virtual time.

    Step tracks record ``(time, level)`` samples via observer hooks on the
    sim resources (thread pools, memory accounts, inboxes); rate tracks
    record ``(start, finish, weight)`` intervals from bandwidth devices
    (disks, NICs). ``binned``/``to_dict`` turn either into fixed-width
    time bins for heatmaps and byte-deterministic JSON export.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False, journal=None):
        self.sim = sim
        self.enabled = enabled
        #: optional journal writer: every sample is recorded as emitted
        self._journal = journal
        #: (track, node) -> [(time, level)] — collapsed per instant
        self._steps: dict[tuple[str, int], list[tuple[float, float]]] = {}
        #: (track, node) -> [(start, finish, weight)]
        self._intervals: dict[tuple[str, int], list[tuple[float, float, float]]] = {}
        #: (track, node) -> running level for delta-fed step tracks
        self._levels: dict[tuple[str, int], float] = {}
        #: (track, node) -> capacity used to normalize heat (threads, budget, ndisks)
        self._capacity: dict[tuple[str, int], float] = {}

    # -- recording ---------------------------------------------------------------

    def record_step(self, track: str, node: int, time: float, value: float) -> None:
        if not self.enabled:
            return
        if self._journal is not None:
            self._journal.emit(
                {"t": "tls", "tr": track, "nd": node, "tm": time, "v": value}
            )
        samples = self._steps.setdefault((track, node), [])
        if samples and samples[-1][0] == time:
            samples[-1] = (time, value)
        else:
            samples.append((time, value))

    def record_interval(
        self, track: str, node: int, start: float, finish: float, weight: float
    ) -> None:
        if not self.enabled:
            return
        if self._journal is not None:
            self._journal.emit(
                {"t": "tli", "tr": track, "nd": node, "t0": start, "t1": finish,
                 "w": weight}
            )
        self._intervals.setdefault((track, node), []).append((start, finish, weight))

    def set_capacity(self, track: str, node: int, capacity: float) -> None:
        if self._journal is not None:
            self._journal.emit(
                {"t": "tlc", "tr": track, "nd": node, "op": "set", "v": capacity}
            )
        self._capacity[(track, node)] = capacity

    def add_capacity(self, track: str, node: int, capacity: float) -> None:
        if self._journal is not None:
            self._journal.emit(
                {"t": "tlc", "tr": track, "nd": node, "op": "add", "v": capacity}
            )
        key = (track, node)
        self._capacity[key] = self._capacity.get(key, 0.0) + capacity

    # -- observer factories (what the cluster wires onto resources) ---------------

    def step_observer(self, track: str, node: int) -> Callable[[float, float], None]:
        """For hooks reporting ``(now, level)`` (e.g. ``Resource.observer``)."""

        def observe(now: float, level: float) -> None:
            self.record_step(track, node, now, level)

        return observe

    def depth_observer(self, track: str, node: int) -> Callable[[float, float], None]:
        """For hooks reporting ``(now, delta)`` — aggregates several queues
        on one node into a single running depth track."""
        key = (track, node)

        def observe(now: float, delta: float) -> None:
            level = self._levels.get(key, 0.0) + delta
            self._levels[key] = level
            self.record_step(track, node, now, level)

        return observe

    def busy_observer(self, track: str, node: int):
        """For ``BandwidthResource.observer`` hooks: weight = busy seconds."""

        def observe(start: float, finish: float, _nbytes: float) -> None:
            self.record_interval(track, node, start, finish, finish - start)

        return observe

    def bytes_observer(self, track: str, node: int):
        """For ``BandwidthResource.observer`` hooks: weight = bytes moved."""

        def observe(start: float, finish: float, nbytes: float) -> None:
            self.record_interval(track, node, start, finish, nbytes)

        return observe

    # -- queries -----------------------------------------------------------------

    def tracks(self) -> list[str]:
        """Recorded track names in canonical render order."""
        seen = {t for t, _n in self._steps} | {t for t, _n in self._intervals}
        ordered = [t for t in TRACK_ORDER if t in seen]
        return ordered + sorted(seen - set(TRACK_ORDER))

    def nodes(self, track: Optional[str] = None) -> list[int]:
        keys = list(self._steps) + list(self._intervals)
        return sorted({n for t, n in keys if track is None or t == track})

    def capacity(self, track: str, node: int) -> Optional[float]:
        return self._capacity.get((track, node))

    def level_total(self, track: str) -> float:
        """Sum of a step track's *current* running levels over all nodes
        (e.g. total flow-control inbox bytes right now)."""
        return sum(
            level for (t, _node), level in self._levels.items() if t == track
        )

    def busy_seconds(self, track: str, node: int, t_end: Optional[float] = None) -> float:
        """Exact time-integral of a step track (e.g. CPU busy-slot seconds)."""
        end = self.sim.now if t_end is None else t_end
        total = 0.0
        prev_t, prev_v = 0.0, 0.0
        for t, v in self._steps.get((track, node), []):
            if t >= end:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (end - prev_t)
        return total

    # -- binning -----------------------------------------------------------------

    def binned(
        self, track: str, node: int, bins: int = DEFAULT_BINS, t_end: Optional[float] = None
    ) -> list[float]:
        """One node's track as ``bins`` fixed-width time-bin values."""
        if bins <= 0:
            raise ValueError(f"bins must be positive: {bins}")
        end = self.sim.now if t_end is None else t_end
        if end <= 0:
            return [0.0] * bins
        kind = TRACK_KINDS.get(track, "max")
        if kind == "rate":
            return self._bin_intervals(
                self._intervals.get((track, node), []), bins, end
            )
        return self._bin_steps(self._steps.get((track, node), []), bins, end, kind)

    @staticmethod
    def _bin_steps(
        samples: list[tuple[float, float]], bins: int, t_end: float, kind: str
    ) -> list[float]:
        width = t_end / bins
        out = [0.0] * bins
        prev_t, prev_v = 0.0, 0.0
        segments = [(t, v) for t, v in samples] + [(t_end, 0.0)]
        for t, v in segments:
            a, b = prev_t, min(t, t_end)
            if b > a and prev_v != 0.0:
                first = min(bins - 1, int(a / width))
                last = min(bins - 1, int(b / width) if b % width or b == 0 else int(b / width) - 1)
                for i in range(first, last + 1):
                    if kind == "mean":
                        lo, hi = max(a, i * width), min(b, (i + 1) * width)
                        if hi > lo:
                            out[i] += prev_v * (hi - lo) / width
                    else:  # watermark
                        out[i] = max(out[i], prev_v)
            prev_t, prev_v = t, v
            if prev_t >= t_end:
                break
        return out

    @staticmethod
    def _bin_intervals(
        intervals: list[tuple[float, float, float]], bins: int, t_end: float
    ) -> list[float]:
        width = t_end / bins
        out = [0.0] * bins
        for start, finish, weight in intervals:
            a, b = max(0.0, start), min(finish, t_end)
            if weight <= 0.0 or a >= t_end:
                continue
            if b <= a:  # instantaneous (or fully clipped): charge one bin
                out[min(bins - 1, int(a / width))] += weight
                continue
            span = finish - start if finish > start else b - a
            first = min(bins - 1, int(a / width))
            last = min(bins - 1, int(b / width))
            for i in range(first, last + 1):
                lo, hi = max(a, i * width), min(b, (i + 1) * width)
                if hi > lo:
                    out[i] += weight * (hi - lo) / span
        return out

    # -- export ------------------------------------------------------------------

    def to_dict(self, bins: int = DEFAULT_BINS, t_end: Optional[float] = None) -> dict:
        """Deterministic JSON-serializable dump of every recorded track."""
        end = self.sim.now if t_end is None else t_end
        tracks = {}
        for track in self.tracks():
            nodes = {}
            for node in self.nodes(track):
                nodes[str(node)] = self.binned(track, node, bins=bins, t_end=end)
            tracks[track] = {"kind": TRACK_KINDS.get(track, "max"), "nodes": nodes}
        return {
            "bins": bins,
            "t_end": end,
            "tracks": tracks,
            "capacity": {
                f"{track}/{node}": cap
                for (track, node), cap in sorted(self._capacity.items())
            },
        }


class TrafficMatrix:
    """N×N per-job exchange accounting, split by exchange mode.

    Charged where the dataplane resolves ``exchange_targets`` (and at the
    Hadoop engine's pull-based fetch, which plays the same role): every
    sealed payload adds its modeled wire bytes and one payload count to
    the ``src_node -> dst_node`` edge. Shuffle charges also record
    per-partition bytes/records for skew analysis.
    """

    def __init__(self, job: Optional[str] = None, journal=None, racks=None):
        self.job = job or ""
        self._journal = journal
        #: optional node-id → rack map: with rack structure configured,
        #: ``totals()`` additionally gates ``inter_rack_bytes`` (the
        #: number rack-aware fabrics exist to shrink). None — the
        #: default — keeps the drift-gated key set exactly as before.
        self.racks = racks
        #: (src, dst) -> [bytes, payloads, records]
        self._edges: dict[tuple[int, int], list[float]] = {}
        #: mode -> [bytes, payloads]
        self._modes: dict[str, list[float]] = {}
        #: partition -> [bytes, records] (shuffle payloads only)
        self._partitions: dict[int, list[float]] = {}

    def charge(
        self,
        src_node: int,
        dst_node: int,
        nbytes: float,
        *,
        records: int = 0,
        mode: str = MODE_SHUFFLE,
        partition: Optional[int] = None,
    ) -> None:
        if nbytes < 0:
            raise ValueError(f"negative traffic charge: {nbytes}")
        if mode not in MODES:
            raise ValueError(f"unknown exchange mode {mode!r}; pick from {MODES}")
        if self._journal is not None:
            record = {
                "t": "x", "j": self.job, "s": src_node, "d": dst_node,
                "v": nbytes, "r": records, "m": mode,
            }
            if partition is not None:
                record["p"] = partition
            self._journal.emit(record)
        edge = self._edges.setdefault((src_node, dst_node), [0.0, 0, 0])
        edge[0] += nbytes
        edge[1] += 1
        edge[2] += records
        by_mode = self._modes.setdefault(mode, [0.0, 0])
        by_mode[0] += nbytes
        by_mode[1] += 1
        if partition is not None and mode == MODE_SHUFFLE:
            part = self._partitions.setdefault(partition, [0.0, 0])
            part[0] += nbytes
            part[1] += records

    # -- queries -----------------------------------------------------------------

    def nodes(self) -> list[int]:
        return sorted({n for edge in self._edges for n in edge})

    def edge_bytes(self, src: int, dst: int) -> float:
        return self._edges.get((src, dst), [0.0, 0, 0])[0]

    def tx_bytes(self, node: int) -> float:
        return sum(e[0] for (s, _d), e in self._edges.items() if s == node)

    def rx_bytes(self, node: int) -> float:
        return sum(e[0] for (_s, d), e in self._edges.items() if d == node)

    @property
    def total_bytes(self) -> float:
        return sum(e[0] for e in self._edges.values())

    @property
    def remote_bytes(self) -> float:
        return sum(e[0] for (s, d), e in self._edges.items() if s != d)

    @property
    def inter_rack_bytes(self) -> float:
        """Bytes that crossed a rack boundary (0.0 without rack structure)."""
        racks = self.racks
        if not racks:
            return 0.0
        return sum(
            e[0]
            for (s, d), e in self._edges.items()
            if s != d and racks.get(s) != racks.get(d)
        )

    @property
    def payloads(self) -> int:
        return int(sum(e[1] for e in self._edges.values()))

    @property
    def records(self) -> int:
        return int(sum(e[2] for e in self._edges.values()))

    def mode_bytes(self, mode: str) -> float:
        return self._modes.get(mode, [0.0, 0])[0]

    def partition_records(self) -> dict[int, float]:
        return {p: v[1] for p, v in sorted(self._partitions.items())}

    def partition_bytes(self) -> dict[int, float]:
        return {p: v[0] for p, v in sorted(self._partitions.items())}

    def totals(self) -> dict[str, float]:
        """The drift-gated summary (every key gates in the bench diff)."""
        out = {
            "total_bytes": self.total_bytes,
            "remote_bytes": self.remote_bytes,
            "payloads": float(self.payloads),
            "records": float(self.records),
        }
        for mode in MODES:
            out[f"{mode}_bytes"] = self.mode_bytes(mode)
        if self.racks:
            # Only under a configured rack topology: the default key set
            # (and hence the committed bench artifacts) is unchanged.
            out["inter_rack_bytes"] = self.inter_rack_bytes
        return {key: round(value, 6) for key, value in out.items()}

    def to_dict(self) -> dict:
        return {
            "job": self.job,
            "nodes": self.nodes(),
            "edges": [
                [src, dst, round(e[0], 6), int(e[1]), int(e[2])]
                for (src, dst), e in sorted(self._edges.items())
            ],
            "modes": {
                mode: {"bytes": round(v[0], 6), "payloads": int(v[1])}
                for mode, v in sorted(self._modes.items())
            },
            "partitions": {
                str(p): {"bytes": round(v[0], 6), "records": int(v[1])}
                for p, v in sorted(self._partitions.items())
            },
            "totals": self.totals(),
        }


def merge_traffic_totals(matrices: list[TrafficMatrix]) -> dict[str, float]:
    """Sum the drift-gated totals over a run's per-job matrices."""
    keys = ["total_bytes", "remote_bytes", "payloads", "records"] + [
        f"{mode}_bytes" for mode in MODES
    ]
    merged = {key: 0.0 for key in keys}
    for matrix in matrices:
        for key, value in matrix.totals().items():
            merged[key] = merged.get(key, 0.0) + value
    return {key: round(value, 6) for key, value in merged.items()}


# -- skew ---------------------------------------------------------------------------


def skew_stats(values: dict[Any, float]) -> dict:
    """Imbalance statistics over a labelled value set.

    ``max_mean_ratio`` is the classic straggler indicator (1.0 = perfectly
    balanced); ``cv`` is the population coefficient of variation.
    """
    if not values:
        return {"n": 0, "mean": 0.0, "max": 0.0, "max_mean_ratio": 0.0, "cv": 0.0,
                "argmax": None}
    ordered = sorted(values.items(), key=lambda kv: (repr(kv[0])))
    vals = [v for _k, v in ordered]
    mean = sum(vals) / len(vals)
    peak = max(vals)
    argmax = min((k for k, v in ordered if v == peak), key=repr)
    if mean > 0:
        variance = sum((v - mean) ** 2 for v in vals) / len(vals)
        cv = math.sqrt(variance) / mean
        ratio = peak / mean
    else:
        cv = 0.0
        ratio = 0.0
    return {
        "n": len(vals),
        "mean": mean,
        "max": peak,
        "max_mean_ratio": ratio,
        "cv": cv,
        "argmax": argmax,
    }


#: a node whose busy-time exceeds the mean by this factor is a straggler
STRAGGLER_THRESHOLD = 1.2


class SkewReport:
    """Per-node / per-partition imbalance computed from timelines + matrix."""

    def __init__(
        self,
        sections: dict[str, dict],
        stragglers: list[int],
        threshold: float = STRAGGLER_THRESHOLD,
    ):
        self.sections = sections  # metric name -> {"per": {...}, "stats": {...}}
        self.stragglers = stragglers
        self.threshold = threshold

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "stragglers": list(self.stragglers),
            "sections": {
                name: {
                    "per": {str(k): v for k, v in sorted(
                        section["per"].items(), key=lambda kv: repr(kv[0])
                    )},
                    "stats": {
                        k: (str(v) if k == "argmax" and v is not None else v)
                        for k, v in section["stats"].items()
                    },
                }
                for name, section in sorted(self.sections.items())
            },
        }


def build_skew_report(
    timeline: TimelineSampler,
    matrices: list[TrafficMatrix],
    threshold: float = STRAGGLER_THRESHOLD,
) -> SkewReport:
    """Assemble the skew view of one traced run.

    Sections: per-node CPU busy-seconds (from the timeline), per-node
    tx/rx exchange bytes (matrix row/column sums over every job) and
    per-partition shuffle records (matrix partition ledger).
    """
    sections: dict[str, dict] = {}
    cpu = {
        node: timeline.busy_seconds(CPU, node) for node in timeline.nodes(CPU)
    }
    if cpu:
        sections["cpu_busy_seconds"] = {"per": cpu, "stats": skew_stats(cpu)}
    tx: dict[int, float] = {}
    rx: dict[int, float] = {}
    partitions: dict[int, float] = {}
    for matrix in matrices:
        for node in matrix.nodes():
            tx[node] = tx.get(node, 0.0) + matrix.tx_bytes(node)
            rx[node] = rx.get(node, 0.0) + matrix.rx_bytes(node)
        for part, recs in matrix.partition_records().items():
            partitions[part] = partitions.get(part, 0.0) + recs
    if tx:
        sections["exchange_tx_bytes"] = {"per": tx, "stats": skew_stats(tx)}
        sections["exchange_rx_bytes"] = {"per": rx, "stats": skew_stats(rx)}
    if partitions:
        sections["shuffle_partition_records"] = {
            "per": partitions,
            "stats": skew_stats(partitions),
        }
    stragglers: list[int] = []
    stats = sections.get("cpu_busy_seconds", {}).get("stats")
    if stats and stats["mean"] > 0:
        stragglers = sorted(
            node for node, busy in cpu.items() if busy > threshold * stats["mean"]
        )
    return SkewReport(sections, stragglers, threshold)


# -- rendering ----------------------------------------------------------------------


def render_timeline_heatmap(
    sampler: TimelineSampler,
    bins: int = DEFAULT_BINS,
    t_end: Optional[float] = None,
    tracks: Optional[tuple[str, ...]] = None,
) -> str:
    """ASCII node × time resource heat, one block per track.

    Peak normalization is per track: capacity-bounded tracks (CPU slots,
    memory budget, disk stripes) normalize to capacity so the ramp reads
    as utilization; unbounded tracks (NIC bytes, queue depth) normalize
    to the observed peak.
    """
    end = sampler.sim.now if t_end is None else t_end
    selected = [t for t in (tracks or sampler.tracks())]
    if not selected or end <= 0:
        return "(no telemetry tracks recorded — was the run traced?)"
    sections = []
    width = end / bins
    for track in selected:
        nodes = sampler.nodes(track)
        if not nodes:
            continue
        rows = {node: sampler.binned(track, node, bins=bins, t_end=end) for node in nodes}
        peaks = {}
        for node in nodes:
            cap = sampler.capacity(track, node)
            if cap is not None and TRACK_KINDS.get(track) != "rate":
                peaks[node] = cap
            elif cap is not None and track == DISK:
                peaks[node] = cap * width  # busy-seconds capacity per bin
            else:
                peaks[node] = 0.0
        global_peak = max((max(vals) for vals in rows.values()), default=0.0)
        lines = [
            f"-- {TRACK_TITLES.get(track, track)} — "
            f"t 0.000s .. {end:.3f}s, {bins} bins, peak {global_peak:.6g} --"
        ]
        for node in nodes:
            peak = peaks[node] if peaks[node] > 0 else global_peak
            cells = "".join(heat_glyph(v, peak) for v in rows[node])
            lines.append(f"  n{node:<3}|{cells}|")
        sections.append("\n".join(lines))
    return "\n\n".join(sections) if sections else (
        "(no telemetry tracks recorded — was the run traced?)"
    )


def render_traffic_matrix(matrix: TrafficMatrix) -> str:
    """ASCII N×N src → dst traffic grid plus mode/locality totals."""
    nodes = matrix.nodes()
    title = f"-- traffic matrix — job {matrix.job!r} (src row -> dst col, bytes) --"
    if not nodes:
        return f"{title}\n  (no exchange traffic recorded)"
    peak = max(
        (matrix.edge_bytes(s, d) for s in nodes for d in nodes), default=0.0
    )
    header = "       " + " ".join(f"n{d:<4}" for d in nodes)
    lines = [title, header]
    for src in nodes:
        cells = " ".join(
            f"  {heat_glyph(matrix.edge_bytes(src, dst), peak)}  " for dst in nodes
        )
        lines.append(f"  n{src:<3}|{cells}| tx {format_bytes(matrix.tx_bytes(src))}")
    total = matrix.total_bytes
    remote = matrix.remote_bytes
    remote_pct = 100.0 * remote / total if total else 0.0
    lines.append(
        f"  totals: {format_bytes(total)} in {matrix.payloads} payloads, "
        f"{format_bytes(remote)} remote ({remote_pct:.1f}%)"
    )
    lines.append(
        "  by mode: "
        + ", ".join(
            f"{mode} {format_bytes(matrix.mode_bytes(mode))}" for mode in MODES
        )
    )
    return "\n".join(lines)


def render_skew(report: SkewReport) -> str:
    """Imbalance table: one row per skew section, plus straggler verdict."""
    from repro.evaluation.report import render_table

    if not report.sections:
        return "(no skew statistics — no telemetry recorded)"
    rows = []
    for name, section in sorted(report.sections.items()):
        stats = section["stats"]
        rows.append(
            [
                name,
                stats["n"],
                f"{stats['mean']:.6g}",
                f"{stats['max']:.6g}",
                f"{stats['max_mean_ratio']:.3f}",
                f"{stats['cv']:.3f}",
                str(stats["argmax"]),
            ]
        )
    table = render_table(
        ["metric", "n", "mean", "max", "max/mean", "cv", "argmax"],
        rows,
        title="Skew",
    )
    if report.stragglers:
        verdict = (
            "stragglers (busy > "
            f"{report.threshold:g}x mean): "
            + ", ".join(f"n{n}" for n in report.stragglers)
        )
    else:
        verdict = f"stragglers: none (threshold {report.threshold:g}x mean)"
    return f"{table}\n  {verdict}"
