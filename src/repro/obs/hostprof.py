"""Host-time profiler: where the *real* nanoseconds go.

Everything else in ``repro.obs`` reads the virtual clock; this module is
the second clock of the dual-clock design. A :class:`HostProfiler`
attributes ``time.perf_counter_ns`` cost to the same identifiers the
virtual stack already uses — subsystem bucket (``sim-kernel`` /
``engine`` / ``dataplane`` / ``storage``), sim-process label, operator
label matching the span names (``map:words``, ``reduce``, ...) — so host
and modeled cost can be joined per operator (see
:mod:`repro.obs.fidelity`).

Design constraints, in order:

1. **Non-perturbing.** The profiler only ever *reads* the host clock and
   mutates its own counters; it never touches simulation state. Virtual
   results are byte-identical with profiling on or off (asserted by the
   determinism suites). Instrumentation sites therefore only wrap
   *synchronous* code — a scope must never contain a generator ``yield``,
   or suspended host time would be mis-attributed to the frame.
2. **Off by default, near-zero when off.** Hooks are guarded by a single
   ``is None`` check (``Simulator.hostprof`` / :func:`current`).
3. **Exact accounting.** Self/total times use integer nanoseconds and
   telescope: the per-bucket self-times sum *exactly* to the measured
   root total (``sum(buckets.values()) == total_ns``).

The profiler is handed out two ways: the sim kernel reads the
``Simulator.hostprof`` attribute (plain attribute, no import of this
package from ``repro.sim``), while dataplane/storage/engine hot paths
use the module-global :func:`current` (activated around a run by the
evaluation runner). Identifiers with unbounded cardinality (per-task
process names like ``wc.map12``) are collapsed via
:func:`normalize_label` (digit runs become ``*``).
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Optional

__all__ = [
    "HOSTPROF_SCHEMA",
    "HOST_BUCKETS",
    "SIM_KERNEL",
    "ENGINE",
    "DATAPLANE",
    "STORAGE",
    "HostProfiler",
    "normalize_label",
    "current",
    "activate",
    "deactivate",
    "merge_snapshots",
]

HOSTPROF_SCHEMA = "repro.obs.hostprof/v1"

SIM_KERNEL = "sim-kernel"
ENGINE = "engine"
DATAPLANE = "dataplane"
STORAGE = "storage"

#: subsystem buckets, in display order
HOST_BUCKETS = (SIM_KERNEL, ENGINE, DATAPLANE, STORAGE)

_DIGIT_RUN = re.compile(r"\d+")

#: default clock-track sampling stride: one sample per ms of host time
_SAMPLE_INTERVAL_NS = 1_000_000
#: samples are thinned 2x whenever they exceed this cap (bounded memory)
_SAMPLE_CAP = 4096


def normalize_label(name: str) -> str:
    """Collapse digit runs so per-task names don't explode cardinality.

    ``wordcount.map12`` and ``wordcount.map3`` both become
    ``wordcount.map*`` — one aggregation row per process *kind*.
    """
    return _DIGIT_RUN.sub("*", name)


class HostProfiler:
    """Scoped host-nanosecond accounting with exact self/total telescoping.

    A frame is pushed per instrumented scope; on pop the elapsed host
    nanoseconds are split into *self* (elapsed minus child time) and
    rolled up into a flat view keyed ``(bucket, label)`` and a top-down
    tree keyed by the full frame path. ``clock`` is injectable (tests use
    a fake deterministic timer).
    """

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        sample_interval_ns: int = _SAMPLE_INTERVAL_NS,
    ):
        self._clock = clock
        # frame: [bucket, label, start_ns, child_ns, path]
        self._stack: list[list[Any]] = []
        # (bucket, label) -> [calls, self_ns, total_ns, records, nbytes]
        self._flat: dict[tuple[str, str], list[int]] = {}
        # path tuple of (bucket, label) -> [calls, self_ns, total_ns]
        self._tree: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._bucket_self: dict[str, int] = {}
        #: total measured host ns (sum over root frames; buckets sum to this)
        self.total_ns = 0
        # second-clock track: (virtual_time, cumulative_host_ns) samples
        self._samples: list[tuple[float, int]] = []
        self._sample_interval_ns = sample_interval_ns
        self._last_sample_ns = -sample_interval_ns

    # -- hot path -----------------------------------------------------------------

    def push(self, bucket: str, label: str) -> None:
        stack = self._stack
        path = (stack[-1][4] if stack else ()) + ((bucket, label),)
        stack.append([bucket, label, self._clock(), 0, path])

    def pop(self) -> None:
        bucket, label, start, child, path = self._stack.pop()
        elapsed = self._clock() - start
        if elapsed < 0:  # non-monotonic fake clocks in tests
            elapsed = 0
        self_ns = elapsed - child
        if self_ns < 0:
            self_ns = 0
        if self._stack:
            self._stack[-1][3] += elapsed
        else:
            self.total_ns += elapsed
        entry = self._flat.get((bucket, label))
        if entry is None:
            self._flat[(bucket, label)] = [1, self_ns, elapsed, 0, 0]
        else:
            entry[0] += 1
            entry[1] += self_ns
            entry[2] += elapsed
        node = self._tree.get(path)
        if node is None:
            self._tree[path] = [1, self_ns, elapsed]
        else:
            node[0] += 1
            node[1] += self_ns
            node[2] += elapsed
        self._bucket_self[bucket] = self._bucket_self.get(bucket, 0) + self_ns

    class _Scope:
        __slots__ = ("_prof", "_bucket", "_label")

        def __init__(self, prof: "HostProfiler", bucket: str, label: str):
            self._prof = prof
            self._bucket = bucket
            self._label = label

        def __enter__(self):
            self._prof.push(self._bucket, self._label)
            return self._prof

        def __exit__(self, *exc):
            self._prof.pop()
            return False

    def scope(self, bucket: str, label: str) -> "HostProfiler._Scope":
        """Context manager measuring one synchronous section."""
        return HostProfiler._Scope(self, bucket, label)

    def units(self, records: int = 0, nbytes: int = 0) -> None:
        """Attribute work units (real records/bytes) to the current frame.

        The calibration fitter (:mod:`repro.obs.fidelity`) regresses
        host self-ns against these to re-derive cost-model constants.
        """
        if not self._stack:
            return
        bucket, label = self._stack[-1][0], self._stack[-1][1]
        entry = self._flat.get((bucket, label))
        if entry is None:
            entry = self._flat[(bucket, label)] = [0, 0, 0, 0, 0]
        entry[3] += int(records)
        entry[4] += int(nbytes)

    def tick(self, virtual_time: float) -> None:
        """Record a (virtual time, cumulative host ns) clock sample.

        Called by the sim kernel after each event dispatch; strided so a
        long run keeps a bounded, deterministic-size sample track for the
        Chrome/Perfetto second-clock counter.
        """
        if self.total_ns - self._last_sample_ns < self._sample_interval_ns:
            return
        self._last_sample_ns = self.total_ns
        samples = self._samples
        samples.append((virtual_time, self.total_ns))
        if len(samples) > _SAMPLE_CAP:
            del samples[1::2]  # thin 2x, keep endpoints-ish; double stride
            self._sample_interval_ns *= 2

    # -- views --------------------------------------------------------------------

    def bucket_self_ns(self) -> dict[str, int]:
        """Self host-ns per subsystem bucket; sums exactly to total_ns."""
        out = {bucket: self._bucket_self.get(bucket, 0) for bucket in HOST_BUCKETS}
        for bucket in sorted(self._bucket_self):
            if bucket not in out:  # ad-hoc buckets from custom scopes
                out[bucket] = self._bucket_self[bucket]
        return out

    def clock_samples(self) -> list[tuple[float, int]]:
        return list(self._samples)

    def snapshot(self) -> dict:
        """Deterministic JSON-ready aggregate (schema ``repro.obs.hostprof/v1``).

        Determinism caveat: *which* rows exist and all call/record counts
        are run-deterministic; the nanosecond values are host noise unless
        a fake clock is injected. Consumers that gate must gate on shares
        or counts, never raw ns.
        """
        buckets = self.bucket_self_ns()
        flat = [
            {
                "bucket": bucket,
                "label": label,
                "calls": entry[0],
                "self_ns": entry[1],
                "total_ns": entry[2],
                "records": entry[3],
                "nbytes": entry[4],
            }
            for (bucket, label), entry in sorted(self._flat.items())
        ]
        tree = [
            {
                "path": ["/".join(frame) for frame in path],
                "depth": len(path),
                "calls": node[0],
                "self_ns": node[1],
                "total_ns": node[2],
            }
            for path, node in sorted(self._tree.items())
        ]
        total = self.total_ns
        return {
            "schema": HOSTPROF_SCHEMA,
            "total_ns": total,
            "buckets": buckets,
            "shares": {
                bucket: (round(ns / total, 6) if total else 0.0)
                for bucket, ns in buckets.items()
            },
            "flat": flat,
            "tree": tree,
            "clock": [[t, ns] for t, ns in self._samples],
        }

    def activation(self) -> "_Activation":
        """Context manager installing this profiler as :func:`current`."""
        return _Activation(self)


# -- module-global active profiler ------------------------------------------------
#
# Dataplane and storage hot paths have no tracer handle threaded through;
# they ask for the active profiler here. ``None`` (the default) keeps the
# guard to a single global read + identity check.

_ACTIVE: Optional[HostProfiler] = None


def current() -> Optional[HostProfiler]:
    """The active profiler, or None when profiling is off (the default)."""
    return _ACTIVE


def activate(prof: Optional[HostProfiler]) -> None:
    global _ACTIVE
    _ACTIVE = prof


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


class _Activation:
    __slots__ = ("_prof", "_previous")

    def __init__(self, prof: HostProfiler):
        self._prof = prof
        self._previous: Optional[HostProfiler] = None

    def __enter__(self) -> HostProfiler:
        self._previous = current()
        activate(self._prof)
        return self._prof

    def __exit__(self, *exc):
        activate(self._previous)
        return False


# -- snapshot arithmetic -----------------------------------------------------------


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Pool several v1 snapshots (e.g. across workloads) into one.

    Flat rows merge by (bucket, label); the tree and clock track are
    dropped (they are per-run views). Used by ``calibrate`` to fit over
    a whole fleet of measured runs.
    """
    flat: dict[tuple[str, str], list[int]] = {}
    buckets: dict[str, int] = {bucket: 0 for bucket in HOST_BUCKETS}
    total = 0
    for snap in snapshots:
        if snap.get("schema") != HOSTPROF_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snap.get('schema')!r}"
            )
        total += snap["total_ns"]
        for bucket, ns in snap["buckets"].items():
            buckets[bucket] = buckets.get(bucket, 0) + ns
        for row in snap["flat"]:
            key = (row["bucket"], row["label"])
            entry = flat.setdefault(key, [0, 0, 0, 0, 0])
            entry[0] += row["calls"]
            entry[1] += row["self_ns"]
            entry[2] += row["total_ns"]
            entry[3] += row["records"]
            entry[4] += row["nbytes"]
    return {
        "schema": HOSTPROF_SCHEMA,
        "total_ns": total,
        "buckets": buckets,
        "shares": {
            bucket: (round(ns / total, 6) if total else 0.0)
            for bucket, ns in buckets.items()
        },
        "flat": [
            {
                "bucket": bucket,
                "label": label,
                "calls": entry[0],
                "self_ns": entry[1],
                "total_ns": entry[2],
                "records": entry[3],
                "nbytes": entry[4],
            }
            for (bucket, label), entry in sorted(flat.items())
        ],
        "tree": [],
        "clock": [],
    }
