"""Span-based tracing over virtual time.

A :class:`Span` brackets one activity on the virtual clock — a loader /
map / partial-reduce / reduce task, a spill, a shuffle transfer, a
flow-control stall — with node / flowlet / job attribution and
parent-child links. The :class:`Tracer` is the single observability
handle threaded through the stack: it owns the spans, the
:class:`~repro.obs.metrics.MetricsRegistry` and the
:class:`~repro.obs.blame.BlameLedger`.

Tracing is opt-out cheap: a disabled tracer records no spans, no metrics
and no blame — every entry point returns immediately (``span()`` hands
back a shared no-op span), so the benchmark harnesses pay no measurable
overhead.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TYPE_CHECKING

from repro.obs.blame import BlameLedger
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Span:
    """One attributed interval of virtual time.

    Usable as a context manager inside simulation generator-processes:
    the body's ``yield``s advance the virtual clock, and ``__exit__``
    reads the clock again — no wall time is involved anywhere.
    """

    __slots__ = (
        "tracer", "span_id", "name", "cat", "start", "end",
        "node", "job", "flowlet", "parent_id", "args",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        cat: str,
        start: float,
        node: Optional[int] = None,
        job: Optional[str] = None,
        flowlet: Optional[str] = None,
        parent_id: Optional[int] = None,
        args: Optional[dict] = None,
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.node = node
        self.job = job
        self.flowlet = flowlet
        self.parent_id = parent_id
        self.args = args or {}

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def child(self, name: str, cat: Optional[str] = None, **args: Any) -> "Span":
        """Open a child span inheriting this span's attribution."""
        return self.tracer.span(
            name,
            cat if cat is not None else self.cat,
            node=self.node,
            job=self.job,
            flowlet=self.flowlet,
            parent=self,
            **args,
        )

    def finish(self, **args: Any) -> "Span":
        if self.end is not None:
            raise ValueError(f"span {self.name!r} finished twice")
        self.end = self.tracer.sim.now
        if args:
            self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self.end is None:
            self.finish()
            if exc_type is not None:
                self.args["error"] = exc_type.__name__

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "job": self.job,
            "flowlet": self.flowlet,
            "parent": self.parent_id,
            "args": {k: self.args[k] for k in sorted(self.args)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:g}" if self.end is not None else "..."
        return f"<Span {self.cat}:{self.name} [{self.start:g}, {end}]>"


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (a shared singleton)."""

    __slots__ = ()

    name = ""
    cat = ""
    node = None
    job = None
    flowlet = None
    open = False

    def child(self, _name: str, _cat: Optional[str] = None, **_args: Any) -> "_NullSpan":
        return self

    def finish(self, **_args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """The unified observability handle: spans + metrics + blame.

    One tracer per cluster; both engines and the substrate report into it.
    ``enabled=False`` (the default) turns every recording call into an
    immediate no-op.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self.sim = sim
        self.enabled = enabled
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self.blame = BlameLedger()
        self._next_id = 0

    # -- spans -----------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        node: Optional[int] = None,
        job: Optional[str] = None,
        flowlet: Optional[str] = None,
        parent: Optional[Span] = None,
        **args: Any,
    ):
        """Open a span at the current virtual time; close via ``with`` or
        ``finish()``."""
        if not self.enabled:
            return NULL_SPAN
        self._next_id += 1
        span = Span(
            self,
            self._next_id,
            name,
            cat,
            self.sim.now,
            node=node,
            job=job,
            flowlet=flowlet,
            parent_id=parent.span_id if isinstance(parent, Span) else None,
            args=args or None,
        )
        self.spans.append(span)
        return span

    def finished_spans(self, cat: Optional[str] = None) -> list[Span]:
        return [
            s for s in self.spans
            if s.end is not None and (cat is None or s.cat == cat)
        ]

    # -- blame -----------------------------------------------------------------

    def charge(
        self, job: str, bucket: str, seconds: float, node: Optional[int] = None
    ) -> None:
        """Attribute ``seconds`` of a task's waiting to a blame bucket."""
        if not self.enabled:
            return
        self.blame.charge(job, bucket, seconds, node=node)

    # -- metrics convenience (no-ops when disabled) ------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if self.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    def sample(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.series(name, **labels).append(self.sim.now, value)

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable dump of the whole trace."""
        return {
            "schema": "repro.obs.trace/v1",
            "spans": [s.to_dict() for s in self.spans],
            "metrics": self.metrics.snapshot(),
            "blame": self.blame.snapshot(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def to_chrome_trace(self, time_unit: float = 1e6) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto trace-event JSON.

        Finished spans become complete ``"X"`` events sorted by timestamp
        (``ts`` monotone). ``pid`` is the node id, ``tid`` a per-node lane
        such that overlapping spans never share a row. Virtual seconds map
        to trace microseconds via ``time_unit``.
        """
        spans = sorted(
            self.finished_spans(), key=lambda s: (s.start, s.span_id)
        )
        lanes = assign_lanes(spans)
        events = []
        for span in spans:
            # pid -1 for node-less spans matches assign_lanes' keying, so
            # they can never collide with a real node's lanes.
            pid = span.node if span.node is not None else -1
            args = {"job": span.job, "flowlet": span.flowlet}
            args.update({k: span.args[k] for k in sorted(span.args)})
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    # integer microseconds, dur from the rounded endpoints:
                    # rounding is monotone and the arithmetic exact, so spans
                    # that don't overlap in virtual time can't overlap here
                    # (float scaling is off by an ulp exactly often enough).
                    "ts": round(span.start * time_unit),
                    "dur": round(span.end * time_unit) - round(span.start * time_unit),
                    "pid": pid,
                    "tid": lanes[span.span_id],
                    "args": {k: v for k, v in args.items() if v is not None},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def assign_lanes(spans: list[Span]) -> dict[int, int]:
    """Greedy per-node lane assignment: span id -> first free lane index.

    Two spans on the same node overlap iff they share a lane's time range;
    the greedy first-fit over start-ordered spans guarantees overlapping
    spans get distinct lanes (used for both Chrome ``tid``s and the ASCII
    Gantt rows).
    """
    lanes: dict[int, int] = {}
    busy_until: dict[int, list[float]] = {}  # node -> per-lane last end time
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        node = span.node if span.node is not None else -1
        node_lanes = busy_until.setdefault(node, [])
        for index, end in enumerate(node_lanes):
            if end <= span.start:
                node_lanes[index] = span.end
                lanes[span.span_id] = index
                break
        else:
            node_lanes.append(span.end)
            lanes[span.span_id] = len(node_lanes) - 1
    return lanes
