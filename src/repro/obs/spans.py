"""Span-based tracing over virtual time.

A :class:`Span` brackets one activity on the virtual clock — a loader /
map / partial-reduce / reduce task, a spill, a shuffle transfer, a
flow-control stall — with node / flowlet / job attribution and
parent-child links. The :class:`Tracer` is the single observability
handle threaded through the stack: it owns the spans, the
:class:`~repro.obs.metrics.MetricsRegistry` and the
:class:`~repro.obs.blame.BlameLedger`.

Tracing is opt-out cheap: a disabled tracer records no spans, no metrics
and no blame — every entry point returns immediately (``span()`` hands
back a shared no-op span), so the benchmark harnesses pay no measurable
overhead.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TYPE_CHECKING

from repro.obs.blame import BlameLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TimelineSampler, TrafficMatrix, merge_traffic_totals

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Span:
    """One attributed interval of virtual time.

    Usable as a context manager inside simulation generator-processes:
    the body's ``yield``s advance the virtual clock, and ``__exit__``
    reads the clock again — no wall time is involved anywhere.
    """

    __slots__ = (
        "tracer", "span_id", "name", "cat", "start", "end",
        "node", "job", "flowlet", "parent_id", "args", "charges",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        cat: str,
        start: float,
        node: Optional[int] = None,
        job: Optional[str] = None,
        flowlet: Optional[str] = None,
        parent_id: Optional[int] = None,
        args: Optional[dict] = None,
    ):
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.node = node
        self.job = job
        self.flowlet = flowlet
        self.parent_id = parent_id
        self.args = args or {}
        #: blame bucket -> virtual seconds charged against this span
        self.charges: dict[str, float] = {}

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def child(self, name: str, cat: Optional[str] = None, **args: Any) -> "Span":
        """Open a child span inheriting this span's attribution."""
        return self.tracer.span(
            name,
            cat if cat is not None else self.cat,
            node=self.node,
            job=self.job,
            flowlet=self.flowlet,
            parent=self,
            **args,
        )

    def finish(self, **args: Any) -> "Span":
        if self.end is not None:
            raise ValueError(f"span {self.name!r} finished twice")
        self.end = self.tracer.sim.now
        if args:
            self.args.update(args)
        self.tracer._span_finished(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self.end is None:
            self.finish()
            if exc_type is not None:
                self.args["error"] = exc_type.__name__

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "job": self.job,
            "flowlet": self.flowlet,
            "parent": self.parent_id,
            "args": {k: self.args[k] for k in sorted(self.args)},
            "charges": {k: self.charges[k] for k in sorted(self.charges)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:g}" if self.end is not None else "..."
        return f"<Span {self.cat}:{self.name} [{self.start:g}, {end}]>"


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (a shared singleton)."""

    __slots__ = ()

    name = ""
    cat = ""
    node = None
    job = None
    flowlet = None
    open = False
    span_id = 0

    def child(self, _name: str, _cat: Optional[str] = None, **_args: Any) -> "_NullSpan":
        return self

    def finish(self, **_args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


NULL_SPAN = _NullSpan()

#: causal edge kinds — how one span's completion enabled another span
EDGE_PRODUCE = "produce"  # producer task -> the ship/spill it fed
EDGE_SHUFFLE = "shuffle"  # ship/fetch transfer -> the task consuming the data
EDGE_SPILL = "spill"  # spill write -> its read-back
EDGE_BARRIER = "barrier"  # barrier input (collect/fetch/read-back) -> gated work
EDGE_STALL = "stall"  # consumer task freeing inbox space -> the stalled producer

EDGE_KINDS = (EDGE_PRODUCE, EDGE_SHUFFLE, EDGE_SPILL, EDGE_BARRIER, EDGE_STALL)


class SpanEdge:
    """One causal dependency between two spans (by span id)."""

    __slots__ = ("src", "dst", "kind")

    def __init__(self, src: int, dst: int, kind: str):
        self.src = src
        self.dst = dst
        self.kind = kind

    def to_list(self) -> list:
        return [self.src, self.dst, self.kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanEdge {self.src} -{self.kind}-> {self.dst}>"


class Tracer:
    """The unified observability handle: spans + metrics + blame.

    One tracer per cluster; both engines and the substrate report into it.
    ``enabled=False`` (the default) turns every recording call into an
    immediate no-op.

    ``journal`` (a :class:`~repro.obs.journal.JournalWriter`) records
    every event — span open/close, edge, charge, metric mutation,
    telemetry sample, traffic charge — as it is emitted, in order, so
    :mod:`repro.obs.replay` can rebuild this tracer byte-identically.
    It must be attached here, at construction, because cluster wiring
    captures metric handles in closures immediately afterwards.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False, journal=None):
        if journal is not None and not enabled:
            raise ValueError("a journal requires an enabled tracer")
        self.sim = sim
        self.enabled = enabled
        self.journal = journal
        self.spans: list[Span] = []
        self.edges: list[SpanEdge] = []
        self.metrics = MetricsRegistry(journal=journal)
        self.blame = BlameLedger()
        #: per-node resource timelines (counter tracks over virtual time)
        self.timeline = TimelineSampler(sim, enabled, journal=journal)
        #: per-job N×N exchange traffic matrices
        self._traffic: dict[str, TrafficMatrix] = {}
        #: optional node-id → rack map (set by the cluster when a rack
        #: topology is configured); matrices created after this is set
        #: gate inter-rack bytes in their totals
        self.racks: Optional[dict[int, int]] = None
        self._next_id = 0
        #: spans closed so far (cheap progress signal for the watchdog)
        self.closed_spans = 0

    # -- spans -----------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str,
        node: Optional[int] = None,
        job: Optional[str] = None,
        flowlet: Optional[str] = None,
        parent: Optional[Span] = None,
        **args: Any,
    ):
        """Open a span at the current virtual time; close via ``with`` or
        ``finish()``."""
        if not self.enabled:
            return NULL_SPAN
        self._next_id += 1
        span = Span(
            self,
            self._next_id,
            name,
            cat,
            self.sim.now,
            node=node,
            job=job,
            flowlet=flowlet,
            parent_id=parent.span_id if isinstance(parent, Span) else None,
            args=args or None,
        )
        self.spans.append(span)
        if self.journal is not None:
            record = {
                "t": "so", "id": span.span_id, "n": name, "c": cat,
                "st": span.start,
            }
            if node is not None:
                record["nd"] = node
            if job is not None:
                record["j"] = job
            if flowlet is not None:
                record["f"] = flowlet
            if span.parent_id is not None:
                record["p"] = span.parent_id
            if args:
                record["a"] = args
            self.journal.emit(record)
        return span

    def finished_spans(self, cat: Optional[str] = None) -> list[Span]:
        return [
            s for s in self.spans
            if s.end is not None and (cat is None or s.cat == cat)
        ]

    def _span_finished(self, span: Span) -> None:
        """Bookkeeping hook at span close: per-category duration histogram."""
        if self.journal is not None:
            # The close record carries the *final* args dict, so mutations
            # between open and finish are captured; the histogram observe
            # below journals itself via the metric hook.
            record: dict = {"t": "sc", "id": span.span_id, "end": span.end}
            if span.args:
                record["a"] = span.args
            self.journal.emit(record)
        self.closed_spans += 1
        self.metrics.histogram("span.seconds", cat=span.cat).observe(span.duration)

    # -- causal edges ------------------------------------------------------------

    def edge(self, src, dst, kind: str) -> None:
        """Record a causal dependency ``src -> dst`` between two spans.

        ``src``/``dst`` may be :class:`Span` objects or raw span ids (ints,
        as carried on bins and spill runs). Null spans, ``None`` and id 0
        are silently dropped so call sites need no enabled-checks.
        """
        if not self.enabled:
            return
        src_id = src.span_id if isinstance(src, Span) else src
        dst_id = dst.span_id if isinstance(dst, Span) else dst
        if not src_id or not dst_id or not isinstance(src_id, int) or not isinstance(dst_id, int):
            return
        if kind not in EDGE_KINDS:
            raise ValueError(f"unknown edge kind {kind!r}; pick from {EDGE_KINDS}")
        if self.journal is not None:
            self.journal.emit({"t": "e", "s": src_id, "d": dst_id, "k": kind})
        self.edges.append(SpanEdge(src_id, dst_id, kind))

    # -- blame -----------------------------------------------------------------

    def charge(
        self,
        job: str,
        bucket: str,
        seconds: float,
        node: Optional[int] = None,
        span: Optional[Span] = None,
    ) -> None:
        """Attribute ``seconds`` of a task's waiting to a blame bucket.

        With ``span`` the charge is additionally attributed to that span,
        giving the critical-path analysis a per-span bucket decomposition.
        """
        if not self.enabled:
            return
        self.blame.charge(job, bucket, seconds, node=node)
        if self.journal is not None and seconds > 0.0:
            # Zero charges are state no-ops (the ledger drops them), so
            # only state-changing charges are journaled; validation above
            # keeps invalid charges out of the journal.
            record: dict = {"t": "b", "j": job, "bk": bucket, "v": seconds}
            if node is not None:
                record["nd"] = node
            if isinstance(span, Span):
                record["sp"] = span.span_id
            self.journal.emit(record)
        if isinstance(span, Span) and seconds > 0.0:
            span.charges[bucket] = span.charges.get(bucket, 0.0) + seconds

    # -- telemetry ---------------------------------------------------------------

    def traffic(self, job: str) -> TrafficMatrix:
        """The (get-or-create) exchange traffic matrix for one job."""
        matrix = self._traffic.get(job)
        if matrix is None:
            if self.journal is not None:
                # Declare creation: a matrix that is never charged still
                # appears (empty) in live exports, so replay must create
                # it at the same point. The rack map rides along so a
                # replayed matrix gates the same inter-rack totals.
                record: dict[str, Any] = {"t": "tm", "j": job}
                if self.racks:
                    record["rk"] = {
                        str(node): rack for node, rack in sorted(self.racks.items())
                    }
                self.journal.emit(record)
            matrix = self._traffic[job] = TrafficMatrix(
                job, journal=self.journal, racks=self.racks
            )
        return matrix

    def traffic_matrices(self) -> list[TrafficMatrix]:
        """All per-job matrices, in deterministic job-name order."""
        return [self._traffic[job] for job in sorted(self._traffic)]

    def traffic_totals(self) -> dict[str, float]:
        """Drift-gated traffic summary merged over every traced job."""
        return merge_traffic_totals(self.traffic_matrices())

    # -- metrics convenience (no-ops when disabled) ------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if self.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    def sample(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.metrics.series(name, **labels).append(self.sim.now, value)

    # -- stage progress (live monitoring) ----------------------------------------

    def progress_total(self, job: str, stage: str, amount: float = 1.0) -> None:
        """Declare ``amount`` more units of work for ``job``/``stage``.

        Engines call this when work becomes known (map splits planned,
        flowlet instances dispatched); :mod:`repro.obs.live` divides the
        matching ``progress.done`` counter by this gauge for per-stage
        completion fractions.
        """
        if self.enabled:
            self.metrics.gauge("progress.total", job=job, stage=stage).add(amount)

    def progress_done(self, job: str, stage: str, amount: float = 1.0) -> None:
        """Mark ``amount`` units of ``job``/``stage`` work complete."""
        if self.enabled:
            self.metrics.counter("progress.done", job=job, stage=stage).inc(amount)

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-serializable dump of the whole trace."""
        return {
            "schema": "repro.obs.trace/v2",
            "spans": [s.to_dict() for s in self.spans],
            "edges": sorted(
                (e.to_list() for e in self.edges),
                key=lambda e: (e[0], e[1], e[2]),
            ),
            "metrics": self.metrics.snapshot(),
            "blame": self.blame.snapshot(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def to_chrome_trace(
        self, time_unit: float = 1e6, hostprof: Optional[dict] = None
    ) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto trace-event JSON.

        Finished spans become complete ``"X"`` events sorted by timestamp
        (``ts`` monotone). ``pid`` is the node id, ``tid`` a per-node lane
        such that overlapping spans never share a row. Causal span edges
        become flow events (``"s"``/``"f"`` pairs), so producer→consumer
        arrows render in the Perfetto UI. Virtual seconds map to trace
        microseconds via ``time_unit``.

        ``hostprof`` (a ``repro.obs.hostprof/v1`` snapshot from the same
        run) adds the second clock as a counter track: cumulative host
        milliseconds sampled against virtual time, so model-time and
        real-time progress render side by side.
        """
        spans = sorted(
            self.finished_spans(), key=lambda s: (s.start, s.span_id)
        )
        lanes = assign_lanes(spans)
        by_id = {s.span_id: s for s in spans}
        events = []
        for span in spans:
            # pid -1 for node-less spans matches assign_lanes' keying, so
            # they can never collide with a real node's lanes.
            pid = span.node if span.node is not None else -1
            args = {"job": span.job, "flowlet": span.flowlet}
            args.update({k: span.args[k] for k in sorted(span.args)})
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    # integer microseconds, dur from the rounded endpoints:
                    # rounding is monotone and the arithmetic exact, so spans
                    # that don't overlap in virtual time can't overlap here
                    # (float scaling is off by an ulp exactly often enough).
                    "ts": round(span.start * time_unit),
                    "dur": round(span.end * time_unit) - round(span.start * time_unit),
                    "pid": pid,
                    "tid": lanes[span.span_id],
                    "args": {k: v for k, v in args.items() if v is not None},
                }
            )
        # Flow events: one s/f pair per causal edge between finished spans.
        # The start binds to the end of the source slice ("bp": "e" on the
        # finish re-binds to the enclosing slice at the destination's start).
        flow_id = 0
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst, e.kind)):
            src, dst = by_id.get(edge.src), by_id.get(edge.dst)
            if src is None or dst is None:
                continue
            flow_id += 1
            common = {"name": edge.kind, "cat": f"flow.{edge.kind}", "id": flow_id}
            events.append(
                {
                    **common,
                    "ph": "s",
                    "ts": round(src.end * time_unit),
                    "pid": src.node if src.node is not None else -1,
                    "tid": lanes[src.span_id],
                }
            )
            # The arrow lands where the dependency resolved: the destination
            # span's start, or the source's end for edges that resolve
            # mid-span (stall wait-for edges).
            f_ts = min(max(dst.start, src.end), dst.end)
            events.append(
                {
                    **common,
                    "ph": "f",
                    "bp": "e",
                    "ts": round(f_ts * time_unit),
                    "pid": dst.node if dst.node is not None else -1,
                    "tid": lanes[dst.span_id],
                }
            )
        # Counter tracks ("C" events): per-node resource timelines render as
        # Perfetto counter lanes alongside the span rows. Step tracks emit
        # one sample per recorded level change; rate tracks emit the running
        # cumulative weight at each transfer's finish time.
        for (track, node), samples in sorted(self.timeline._steps.items()):
            for t, value in samples:
                events.append(
                    {
                        "name": f"telemetry.{track}",
                        "ph": "C",
                        "ts": round(t * time_unit),
                        "pid": node,
                        "tid": 0,
                        "args": {track: round(value, 6)},
                    }
                )
        for (track, node), intervals in sorted(self.timeline._intervals.items()):
            cumulative = 0.0
            for _start, finish, weight in sorted(intervals):
                cumulative += weight
                events.append(
                    {
                        "name": f"telemetry.{track}",
                        "ph": "C",
                        "ts": round(finish * time_unit),
                        "pid": node,
                        "tid": 0,
                        "args": {track: round(cumulative, 6)},
                    }
                )
        # Second clock track: cumulative host ms against virtual time (the
        # dual-clock view — a steep segment is a virtual interval that cost
        # disproportionate real compute). pid -1 keeps it off node lanes.
        if hostprof is not None:
            for t, ns in hostprof.get("clock", []):
                events.append(
                    {
                        "name": "hostclock.cumulative_ms",
                        "ph": "C",
                        "ts": round(t * time_unit),
                        "pid": -1,
                        "tid": 0,
                        "args": {"host_ms": round(ns / 1e6, 3)},
                    }
                )
        # Global ts order (required by the format); stable tiebreak keeps the
        # output byte-identical across runs.
        events.sort(
            key=lambda e: (
                e["ts"], e["ph"] != "X", e.get("id", 0), e["pid"], e["tid"],
                e["name"],
            )
        )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def assign_lanes(spans: list[Span]) -> dict[int, int]:
    """Greedy per-node lane assignment: span id -> first free lane index.

    Two spans on the same node overlap iff they share a lane's time range;
    the greedy first-fit over start-ordered spans guarantees overlapping
    spans get distinct lanes (used for both Chrome ``tid``s and the ASCII
    Gantt rows).
    """
    lanes: dict[int, int] = {}
    busy_until: dict[int, list[float]] = {}  # node -> per-lane last end time
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        node = span.node if span.node is not None else -1
        node_lanes = busy_until.setdefault(node, [])
        for index, end in enumerate(node_lanes):
            if end <= span.start:
                node_lanes[index] = span.end
                lanes[span.span_id] = index
                break
        else:
            node_lanes.append(span.end)
            lanes[span.span_id] = len(node_lanes) - 1
    return lanes
