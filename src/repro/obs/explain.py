"""Differential explain: root-cause attribution for makespan deltas.

:mod:`repro.obs.diff` tells you *that* a run drifted (the CI gate);
this module tells you *why*. Given two traced runs — journals replayed
via :mod:`repro.obs.replay`, or live tracers — it extracts each side's
weighted critical path (:mod:`repro.obs.critpath`), aligns the two span
DAGs by normalized operator label, and attributes the makespan delta
along three dimensions:

* **buckets** — the path rollup (blame buckets + ``wait``/``other``)
  plus ``tail``, the off-path remainder ``makespan - Σrollup``;
* **operators** — on-path seconds per :func:`normalize_label`'d span
  name (``hamr.map12`` and ``hamr.map3`` align as ``hamr.map*``), so a
  regression localizes to the operator kind that slowed down;
* **nodes** — on-path seconds per executing node, exposing skew and
  placement shifts.

Each dimension ranks its keys by absolute contribution to the makespan
delta; the top-ranked bucket/operator/node is the differential's root
cause candidate. Summing a dimension's deltas recovers the makespan
delta up to scheduling overlap (the critical path is a lower bound on
explained time), so shares are quoted against the makespan delta, not
forced to 100%.

Everything is deterministic: identical journals produce identical
explains, byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.critpath import ROLLUP_KEYS, CriticalPath, from_tracer
from repro.obs.hostprof import normalize_label
from repro.obs.spans import Tracer

EXPLAIN_SCHEMA = "repro.obs.explain/v1"

#: synthetic bucket for makespan time the path rollup does not cover
TAIL = "tail"


@dataclass
class ExplainSide:
    """One run's attribution profiles, extracted from its critical path."""

    name: str  # display label, e.g. a journal path or "wordcount:hamr"
    makespan: float
    buckets: dict[str, float] = field(default_factory=dict)
    operators: dict[str, float] = field(default_factory=dict)
    nodes: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)  # workload/engine/... if known

    @property
    def profiles(self) -> dict[str, dict[str, float]]:
        return {
            "buckets": self.buckets,
            "operators": self.operators,
            "nodes": self.nodes,
        }


def side_from_critpath(
    cp: CriticalPath, name: str, meta: Optional[dict] = None
) -> ExplainSide:
    """Project a critical path into the three attribution profiles."""
    buckets = {key: cp.rollup.get(key, 0.0) for key in ROLLUP_KEYS}
    buckets[TAIL] = max(cp.makespan - sum(buckets.values()), 0.0)
    operators: dict[str, float] = {}
    nodes: dict[str, float] = {}
    for seg in cp.segments:
        op = normalize_label(seg.span.name)
        operators[op] = operators.get(op, 0.0) + seg.duration
        node = f"n{seg.span.node}" if seg.span.node is not None else "-"
        nodes[node] = nodes.get(node, 0.0) + seg.duration
    return ExplainSide(
        name=name,
        makespan=cp.makespan,
        buckets=buckets,
        operators=operators,
        nodes=nodes,
        meta=dict(meta or {}),
    )


def side_from_tracer(
    tracer: Tracer, name: str, meta: Optional[dict] = None
) -> ExplainSide:
    return side_from_critpath(from_tracer(tracer), name, meta=meta)


@dataclass
class ExplainResult:
    """The aligned differential: ranked per-dimension delta attribution."""

    a: ExplainSide
    b: ExplainSide
    #: dimension -> ranked rows [key, a_seconds, b_seconds, delta, share]
    rows: dict[str, list[list]] = field(default_factory=dict)
    #: dimension -> top-ranked key (the root-cause candidate), or None
    top: dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def makespan_delta(self) -> float:
        return self.b.makespan - self.a.makespan

    def to_dict(self) -> dict:
        return {
            "schema": EXPLAIN_SCHEMA,
            "a": {"name": self.a.name, "makespan": self.a.makespan, **self.a.meta},
            "b": {"name": self.b.name, "makespan": self.b.makespan, **self.b.meta},
            "makespan_delta": self.makespan_delta,
            "dimensions": {
                dim: {
                    "top": self.top.get(dim),
                    "rows": [
                        {
                            "key": key,
                            "a_seconds": a_sec,
                            "b_seconds": b_sec,
                            "delta": delta,
                            "share": share,
                        }
                        for key, a_sec, b_sec, delta, share in rows
                    ],
                }
                for dim, rows in sorted(self.rows.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def explain(a: ExplainSide, b: ExplainSide) -> ExplainResult:
    """Align two sides' profiles and rank each dimension's deltas.

    ``share`` is each key's delta over the makespan delta (signed; keys
    moving against the overall shift get negative shares). With a zero
    makespan delta shares are reported as 0 — the ranking by absolute
    delta still localizes composition shifts.
    """
    result = ExplainResult(a=a, b=b)
    mk_delta = result.makespan_delta
    for dim in ("buckets", "operators", "nodes"):
        prof_a, prof_b = a.profiles[dim], b.profiles[dim]
        rows = []
        for key in sorted(set(prof_a) | set(prof_b)):
            a_sec = prof_a.get(key, 0.0)
            b_sec = prof_b.get(key, 0.0)
            delta = b_sec - a_sec
            share = delta / mk_delta if mk_delta != 0.0 else 0.0
            rows.append([key, a_sec, b_sec, delta, share])
        rows.sort(key=lambda r: (-abs(r[3]), r[0]))
        result.rows[dim] = rows
        top = next((r[0] for r in rows if abs(r[3]) > 1e-12), None)
        result.top[dim] = top
    return result


def render_explain(result: ExplainResult, max_rows: int = 12) -> str:
    """Deterministic ASCII differential-attribution report."""
    from repro.evaluation.report import render_table

    a, b = result.a, result.b
    delta = result.makespan_delta
    rel = f" ({100.0 * delta / a.makespan:+.2f}%)" if a.makespan > 0 else ""
    lines = [
        f"== explain: A={a.name} -> B={b.name} ==\n"
        f"makespan {a.makespan:.3f}s -> {b.makespan:.3f}s, "
        f"delta {delta:+.3f}s{rel}",
    ]
    titles = {
        "buckets": "Blame buckets on the differential critical path",
        "operators": "Operators (normalized span names) on-path",
        "nodes": "Node placement on-path",
    }
    for dim in ("buckets", "operators", "nodes"):
        rows = result.rows.get(dim, [])
        shown = [
            [key, a_sec, b_sec, f"{d:+.3f}", f"{100.0 * share:+.1f}%"]
            for key, a_sec, b_sec, d, share in rows[:max_rows]
            if abs(d) > 1e-12 or a_sec > 0.0 or b_sec > 0.0
        ]
        top = result.top.get(dim)
        title = titles[dim] + (f" — top: {top}" if top else " — (no shift)")
        lines.append(
            render_table(
                [dim[:-1], "A seconds", "B seconds", "delta s", "share"],
                shown,
                title=title,
            )
        )
    verdict = []
    for dim in ("buckets", "operators", "nodes"):
        top = result.top.get(dim)
        if top is not None:
            row = result.rows[dim][0]
            verdict.append(f"{dim[:-1]} {top} ({row[3]:+.3f}s)")
    lines.append(
        "root cause candidates: " + ("; ".join(verdict) if verdict else "(none — identical runs)")
    )
    return "\n\n".join(lines)
