"""Unified observability: span tracing, metrics, and blame attribution.

The :class:`Tracer` is the single handle threaded through the stack
(``cluster.obs``). See ``spans.py`` for tracing, ``metrics.py`` for the
registry, and ``blame.py`` for the virtual-seconds decomposition that
explains each job's makespan.
"""

from repro.obs.blame import (
    ATOMIC,
    BUCKETS,
    COMPUTE,
    DISK,
    NETWORK,
    STALL,
    STARTUP,
    BlameLedger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.spans import (
    EDGE_BARRIER,
    EDGE_KINDS,
    EDGE_PRODUCE,
    EDGE_SHUFFLE,
    EDGE_SPILL,
    EDGE_STALL,
    NULL_SPAN,
    Span,
    SpanEdge,
    Tracer,
    assign_lanes,
)
from repro.obs.hostprof import (
    HOST_BUCKETS,
    HOSTPROF_SCHEMA,
    HostProfiler,
)
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    bucket_slowdown_from_env,
    load_journal,
    read_journal,
    seed_bucket_slowdown,
)
from repro.obs.replay import ReplayedRun, replay_file, replay_lines, replay_records
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    ExplainResult,
    ExplainSide,
    explain,
    render_explain,
    side_from_critpath,
    side_from_tracer,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    SkewReport,
    TimelineSampler,
    TrafficMatrix,
    build_skew_report,
    merge_traffic_totals,
    render_skew,
    render_timeline_heatmap,
    render_traffic_matrix,
    skew_stats,
)

__all__ = [
    "Tracer",
    "Span",
    "SpanEdge",
    "NULL_SPAN",
    "assign_lanes",
    "EDGE_KINDS",
    "EDGE_PRODUCE",
    "EDGE_SHUFFLE",
    "EDGE_SPILL",
    "EDGE_BARRIER",
    "EDGE_STALL",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "BlameLedger",
    "BUCKETS",
    "COMPUTE",
    "DISK",
    "NETWORK",
    "STALL",
    "ATOMIC",
    "STARTUP",
    "HOSTPROF_SCHEMA",
    "HOST_BUCKETS",
    "HostProfiler",
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalWriter",
    "bucket_slowdown_from_env",
    "load_journal",
    "read_journal",
    "seed_bucket_slowdown",
    "ReplayedRun",
    "replay_file",
    "replay_lines",
    "replay_records",
    "EXPLAIN_SCHEMA",
    "ExplainResult",
    "ExplainSide",
    "explain",
    "render_explain",
    "side_from_critpath",
    "side_from_tracer",
    "TELEMETRY_SCHEMA",
    "TimelineSampler",
    "TrafficMatrix",
    "SkewReport",
    "build_skew_report",
    "merge_traffic_totals",
    "skew_stats",
    "render_timeline_heatmap",
    "render_traffic_matrix",
    "render_skew",
]
