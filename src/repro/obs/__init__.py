"""Unified observability: span tracing, metrics, and blame attribution.

The :class:`Tracer` is the single handle threaded through the stack
(``cluster.obs``). See ``spans.py`` for tracing, ``metrics.py`` for the
registry, and ``blame.py`` for the virtual-seconds decomposition that
explains each job's makespan.
"""

from repro.obs.blame import (
    ATOMIC,
    BUCKETS,
    COMPUTE,
    DISK,
    NETWORK,
    STALL,
    STARTUP,
    BlameLedger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.spans import NULL_SPAN, Span, Tracer, assign_lanes

__all__ = [
    "Tracer",
    "Span",
    "NULL_SPAN",
    "assign_lanes",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "BlameLedger",
    "BUCKETS",
    "COMPUTE",
    "DISK",
    "NETWORK",
    "STALL",
    "ATOMIC",
    "STARTUP",
]
