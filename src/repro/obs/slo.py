"""Declarative per-workload SLOs: what "healthy" means, checked by machine.

An :class:`SLOSpec` states four objectives for one workload × engine run:

- ``makespan_budget`` — the run must finish within this many virtual
  seconds;
- ``max_stall_share`` — flow-control stall blame may take at most this
  share of the run's total blame (task-seconds, so the share is in
  ``[0, 1]`` regardless of parallelism);
- ``traffic_ceiling`` — total exchanged bytes (the drift-gated traffic
  totals) must stay under this ceiling;
- ``max_straggler_cv`` — the coefficient of variation of per-node CPU
  busy-seconds must stay under this bound (live runs only: the committed
  BENCH artifact does not carry per-node timelines).

Any objective may be None (unbounded). :data:`DEFAULT_SLOS` encodes the
committed ``BENCH_obs.json`` baseline (small fidelity) with headroom —
1.25× on makespan and traffic, +0.10 on stall share — so the committed
run passes and a seeded ``REPRO_OBS_SLOWDOWN`` regression breaches.

Specs are evaluated post-run (``slo`` CLI verdict table, exit 1 on any
FAIL) and live (:class:`repro.obs.live.LiveMonitor` escalates a frame to
SLO_BREACH the moment an objective is violated mid-run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.obs.blame import STALL

SLO_SCHEMA = "repro.obs.slo/v1"

#: objective names, in verdict-table order
OBJECTIVES = ("makespan", "stall_share", "traffic_bytes", "straggler_cv")

#: default straggler bound: per-node CPU busy-seconds CV (population).
#: Clean runs measure up to ~1.56 (tiny naive_bayes on HAMR — sparse
#: stages concentrate on few nodes), so a CV past 2.0 means genuinely
#: skewed placement, not fidelity-induced sparseness.
DEFAULT_MAX_CV = 2.0


@dataclass(frozen=True)
class SLOSpec:
    """Objective bounds for one workload × engine (None = unbounded)."""

    makespan_budget: Optional[float] = None
    max_stall_share: Optional[float] = None
    traffic_ceiling: Optional[float] = None
    max_straggler_cv: Optional[float] = None

    def merged(self, overrides: dict) -> "SLOSpec":
        """A copy with any of the four fields replaced from a dict."""
        known = {f for f in self.__dataclass_fields__}
        bad = set(overrides) - known
        if bad:
            raise ValueError(
                f"unknown SLO fields {sorted(bad)}; pick from {sorted(known)}"
            )
        return replace(self, **overrides)


#: committed-baseline SLOs: BENCH_obs.json (small fidelity) plus headroom
#: (makespan ×1.25, stall share +0.10, traffic ×1.25)
DEFAULT_SLOS: dict[tuple[str, str], SLOSpec] = {
    ("classification", "hamr"): SLOSpec(136.851, 0.1, 470869810213.454, DEFAULT_MAX_CV),
    ("classification", "hadoop"): SLOSpec(1757.786, 0.1, 402653184000.0, DEFAULT_MAX_CV),
    ("histogram_movies", "hamr"): SLOSpec(38.0, 0.1, 47021201798.385, DEFAULT_MAX_CV),
    ("histogram_movies", "hadoop"): SLOSpec(61.31, 0.1, 22550.0, DEFAULT_MAX_CV),
    ("histogram_ratings", "hamr"): SLOSpec(318.285, 0.9, 158589549210.159, DEFAULT_MAX_CV),
    ("histogram_ratings", "hadoop"): SLOSpec(108.46, 0.1, 29750.0, DEFAULT_MAX_CV),
    ("kcliques", "hamr"): SLOSpec(69.35, 0.339, 31338325046.831, DEFAULT_MAX_CV),
    ("kcliques", "hadoop"): SLOSpec(1250.77, 0.1, 35490814043.878, DEFAULT_MAX_CV),
    ("kmeans", "hamr"): SLOSpec(141.37, 0.1, 654918268697.354, DEFAULT_MAX_CV),
    ("kmeans", "hadoop"): SLOSpec(2067.306, 0.1, 402653184000.0, DEFAULT_MAX_CV),
    ("naive_bayes", "hamr"): SLOSpec(56.499, 0.324, 29945692013.333, DEFAULT_MAX_CV),
    ("naive_bayes", "hadoop"): SLOSpec(226.869, 0.1, 16523919213.333, DEFAULT_MAX_CV),
    ("pagerank", "hamr"): SLOSpec(273.849, 0.1, 187904819200.0, DEFAULT_MAX_CV),
    ("pagerank", "hadoop"): SLOSpec(2347.734, 0.1, 363730042880.0, DEFAULT_MAX_CV),
    ("wordcount", "hamr"): SLOSpec(51.53, 0.734, 68405086495.703, DEFAULT_MAX_CV),
    ("wordcount", "hadoop"): SLOSpec(64.463, 0.1, 2903796.25, DEFAULT_MAX_CV),
}


def load_slo_file(path: str) -> dict[str, dict]:
    """Load a spec-override file: ``{"workload:engine": {field: value},
    "*": {field: value}}`` (the wildcard applies to every pair first)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"SLO spec file {path} must hold a JSON object")
    for key, fields in data.items():
        if not isinstance(fields, dict):
            raise ValueError(f"SLO spec for {key!r} must be an object")
    return data


def spec_for(
    workload: str, engine: str, overrides: Optional[dict[str, dict]] = None
) -> SLOSpec:
    """The effective spec: defaults, then ``*`` overrides, then exact."""
    spec = DEFAULT_SLOS.get((workload, engine), SLOSpec())
    if overrides:
        if "*" in overrides:
            spec = spec.merged(overrides["*"])
        exact = overrides.get(f"{workload}:{engine}")
        if exact:
            spec = spec.merged(exact)
    return spec


# -- evaluation ---------------------------------------------------------------------


def stall_share(blame: dict[str, float], blame_total: float) -> float:
    """Stall blame as a share of total blame (0.0 for an idle ledger)."""
    return blame.get(STALL, 0.0) / blame_total if blame_total > 0 else 0.0


def evaluate_measures(spec: SLOSpec, measures: dict[str, Optional[float]]) -> list[dict]:
    """Verdict rows for one run's measures against one spec.

    ``measures`` maps objective name to measured value; None means the
    measure is unavailable in this mode (verdict ``n/a``). Unbounded
    objectives also report ``n/a``. A row FAILs when value > bound.
    """
    bounds = {
        "makespan": spec.makespan_budget,
        "stall_share": spec.max_stall_share,
        "traffic_bytes": spec.traffic_ceiling,
        "straggler_cv": spec.max_straggler_cv,
    }
    rows = []
    for objective in OBJECTIVES:
        bound = bounds[objective]
        value = measures.get(objective)
        if bound is None or value is None:
            verdict = "n/a"
        elif value > bound:
            verdict = "FAIL"
        else:
            verdict = "PASS"
        rows.append(
            {"objective": objective, "value": value, "bound": bound, "verdict": verdict}
        )
    return rows


def evaluate_entry(
    workload: str, engine: str, entry: dict, overrides: Optional[dict] = None
) -> dict:
    """Evaluate one BENCH artifact entry (a ``rows[workload][engine]``
    dict of the ``repro.obs.bench/v5`` schema) against its spec."""
    spec = spec_for(workload, engine, overrides)
    blame_total = entry.get("blame_total", 0.0)
    traffic = entry.get("telemetry", {}).get("traffic", {})
    measures = {
        "makespan": entry.get("virtual_seconds"),
        "stall_share": round(stall_share(entry.get("blame", {}), blame_total), 6),
        "traffic_bytes": traffic.get("total_bytes"),
        "straggler_cv": None,  # artifacts carry no per-node timelines
    }
    checks = evaluate_measures(spec, measures)
    return {
        "workload": workload,
        "engine": engine,
        "checks": checks,
        "ok": all(c["verdict"] != "FAIL" for c in checks),
    }


def evaluate_tracer(
    workload: str,
    engine: str,
    tracer,
    makespan: float,
    overrides: Optional[dict] = None,
) -> dict:
    """Evaluate a live (or replayed) run's tracer against its spec —
    here the straggler CV objective is measurable."""
    from repro.obs.telemetry import build_skew_report

    spec = spec_for(workload, engine, overrides)
    blame_total = tracer.blame.grand_total()
    skew = build_skew_report(tracer.timeline, tracer.traffic_matrices())
    stats = skew.sections.get("cpu_busy_seconds", {}).get("stats")
    measures = {
        "makespan": makespan,
        "stall_share": round(
            stall_share({STALL: tracer.blame.bucket_total(STALL)}, blame_total), 6
        ),
        "traffic_bytes": tracer.traffic_totals().get("total_bytes", 0.0),
        "straggler_cv": round(stats["cv"], 6) if stats else None,
    }
    checks = evaluate_measures(spec, measures)
    return {
        "workload": workload,
        "engine": engine,
        "checks": checks,
        "ok": all(c["verdict"] != "FAIL" for c in checks),
    }


def slo_dict(results: list[dict], source: str) -> dict:
    """The ``slo`` CLI's deterministic JSON payload."""
    return {
        "schema": SLO_SCHEMA,
        "source": source,
        "results": results,
        "ok": all(r["ok"] for r in results),
    }


# -- rendering ----------------------------------------------------------------------


def _fmt_value(objective: str, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if objective == "traffic_bytes":
        return f"{value:.0f}"
    return f"{value:.3f}"


def render_slo(results: list[dict]) -> str:
    """The verdict table: one line per workload × engine × objective."""
    lines = [
        f"{'workload':<20} {'engine':<8} {'objective':<14} "
        f"{'value':>16} {'bound':>16} verdict",
        "-" * 84,
    ]
    for result in results:
        for check in result["checks"]:
            lines.append(
                f"{result['workload']:<20} {result['engine']:<8} "
                f"{check['objective']:<14} "
                f"{_fmt_value(check['objective'], check['value']):>16} "
                f"{_fmt_value(check['objective'], check['bound']):>16} "
                f"{check['verdict']}"
            )
    breached = [r for r in results if not r["ok"]]
    lines.append("-" * 84)
    if breached:
        pairs = ", ".join(f"{r['workload']}/{r['engine']}" for r in breached)
        lines.append(f"SLO BREACH: {pairs}")
    else:
        lines.append("all SLOs met")
    return "\n".join(lines)
