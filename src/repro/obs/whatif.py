"""Counterfactual what-if engine: journal-driven capacity planning.

A run journal (:mod:`repro.obs.journal`) carries the complete span DAG,
blame ledger and traffic matrix of a finished run. This module answers
"what would the makespan have been if ..." questions **offline** — no
re-execution — by applying a declarative :class:`Scenario` transform to
that evidence and recomputing the predicted makespan with optimistic /
pessimistic bounds:

``disk=0.5`` (bucket speeds)
    Per-bucket cost scaling. A speed multiplier ``s`` means the resource
    runs ``s``× as fast, so charged seconds dilate by ``1/s``. For
    scenarios composed *only* of bucket speeds the prediction is computed
    by literally running :func:`~repro.obs.journal.dilate_bucket_charges`
    — the same transform ``REPRO_OBS_SLOWDOWN`` seeding uses — so the
    predicted makespan is **bit-exact** against the executable ground
    truth (the self-auditing half of the tool).
``nodes=16`` (cluster rescaling)
    Node-count rescaling of parallel stages via the partition-ownership
    model: each job's per-node parallel work is split across the
    partitions that node owned (weighted by the per-partition bytes the
    traffic matrix recorded), re-binned to the owners a ``W'``-worker
    cluster would hash them to, and the busiest-worker ratio becomes the
    job's parallel time factor along the critical path.
``fabric=twolevel,racks=4`` (fabric swaps)
    Fabric byte-model re-pricing: every payload in the traffic matrix is
    re-routed through the candidate fabric's
    :func:`~repro.dataplane.fabrics.reroute_payload` plan and the wire-
    byte ratio scales the path's network time (plus the zero-copy serde
    rebate for ``rdma`` on HAMR).

Scenarios compose (``net=2.0,disk=0.5,nodes=16``): bucket dilations are
applied serially (exactly like the executable transform), structural
factors adjust the critical-path shares on top, and the optimistic /
pessimistic envelope is the component-wise min/max over the model's
variant set — extending :meth:`~repro.obs.critpath.CriticalPath.scaled`'s
Amdahl machinery from single-bucket zeroing to arbitrary composed
scenarios. An empty scenario predicts the journal's own makespan
*exactly* (identity invariant, asserted for all 8 workloads × 2 engines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.blame import ATOMIC, BUCKETS, COMPUTE, DISK, NETWORK, STALL
from repro.obs.critpath import CriticalPath, from_tracer
from repro.obs.journal import dilate_bucket_charges
from repro.obs.replay import ReplayedRun, replay_records

WHATIF_SCHEMA = "repro.obs.whatif/v1"

#: buckets carried by node-attributed task work — they shrink (or grow)
#: when the worker count changes; startup is the serialized lead-in and
#: stays fixed
PARALLEL_BUCKETS = (COMPUTE, DISK, NETWORK, STALL, ATOMIC)

#: scenario-key shorthands
_ALIASES = {"net": "network", "cpu": "compute", "io": "disk"}

_EPS = 1e-12


class ScenarioError(ValueError):
    """A scenario expression is malformed or names an unknown knob."""


@dataclass(frozen=True)
class Scenario:
    """One declarative counterfactual, parsed from ``k=v,k=v`` text.

    ``bucket_speeds`` are *speed* multipliers (2.0 = twice as fast, 0.5 =
    half speed); they invert into time factors internally. ``nodes`` is
    the total cluster size (master + workers), matching ``--nodes``
    everywhere else in the harness. ``fabric``/``racks`` name the
    candidate exchange fabric and rack count.
    """

    bucket_speeds: tuple = ()  # sorted ((bucket, speed), ...)
    serde_speed: Optional[float] = None
    nodes: Optional[int] = None
    fabric: Optional[str] = None
    racks: Optional[int] = None

    @property
    def is_identity(self) -> bool:
        return (
            not self.bucket_speeds
            and self.serde_speed is None
            and self.nodes is None
            and self.fabric is None
            and self.racks is None
        )

    @property
    def bucket_only(self) -> bool:
        """True when the scenario is purely bucket speeds — i.e. exactly
        executable via the seeded-slowdown dilation transform."""
        return (
            bool(self.bucket_speeds)
            and self.serde_speed is None
            and self.nodes is None
            and self.fabric is None
            and self.racks is None
        )

    @property
    def speeds(self) -> dict[str, float]:
        return dict(self.bucket_speeds)

    @property
    def time_factors(self) -> dict[str, float]:
        """Bucket -> time dilation factor (the transform's input)."""
        return {b: 1.0 / s for b, s in self.bucket_speeds if s != 1.0}

    def describe(self) -> str:
        """Canonical scenario text (parse → describe is a fixpoint)."""
        parts = [f"{b}={s:g}" for b, s in self.bucket_speeds]
        if self.serde_speed is not None:
            parts.append(f"serde={self.serde_speed:g}")
        if self.nodes is not None:
            parts.append(f"nodes={self.nodes}")
        if self.fabric is not None:
            parts.append(f"fabric={self.fabric}")
        if self.racks is not None:
            parts.append(f"racks={self.racks}")
        return ",".join(parts) if parts else "identity"

    def with_knob(self, key: str, value) -> "Scenario":
        """The scenario with one knob replaced (sweep points)."""
        merged = parse_scenario(
            ",".join(p for p in (self.describe(), f"{key}={value}") if p != "identity")
        )
        return merged


def parse_scenario(text: Optional[str]) -> Scenario:
    """Parse ``net=2.0,disk=0.5,nodes=16`` into a :class:`Scenario`.

    Keys: the blame buckets (aliases ``net``/``cpu``/``io``), ``serde``,
    ``nodes``, ``fabric``, ``racks``. A later assignment to the same key
    wins. Empty / ``identity`` / ``none`` parse to the identity scenario.
    """
    from repro.dataplane.fabrics import FABRICS

    text = (text or "").strip()
    if not text or text in ("identity", "none"):
        return Scenario()
    speeds: dict[str, float] = {}
    serde: Optional[float] = None
    nodes: Optional[int] = None
    fabric: Optional[str] = None
    racks: Optional[int] = None
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = _ALIASES.get(key.strip().lower(), key.strip().lower())
        value = value.strip()
        if not sep or not value:
            raise ScenarioError(f"scenario term {part!r} is not key=value")
        if key == "nodes":
            nodes = _parse_int(key, value)
            if nodes < 2:
                raise ScenarioError(f"nodes must be >= 2 (master + worker): {value}")
        elif key == "racks":
            racks = _parse_int(key, value)
            if racks < 1:
                raise ScenarioError(f"racks must be >= 1: {value}")
        elif key == "fabric":
            if value not in FABRICS:
                raise ScenarioError(
                    f"unknown fabric {value!r}; pick from {FABRICS}"
                )
            fabric = value
        elif key == "serde":
            serde = _parse_speed(key, value)
        elif key in BUCKETS:
            speeds[key] = _parse_speed(key, value)
        else:
            raise ScenarioError(
                f"unknown scenario key {key!r}; pick from "
                f"{BUCKETS + ('serde', 'nodes', 'fabric', 'racks')}"
            )
    return Scenario(
        bucket_speeds=tuple(sorted(speeds.items())),
        serde_speed=serde,
        nodes=nodes,
        fabric=fabric,
        racks=racks,
    )


def _parse_speed(key: str, value: str) -> float:
    try:
        speed = float(value)
    except ValueError:
        raise ScenarioError(f"{key}: not a number: {value!r}") from None
    if speed <= 0.0:
        raise ScenarioError(f"{key}: speed multiplier must be positive: {value}")
    return speed


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ScenarioError(f"{key}: not an integer: {value!r}") from None


def parse_sweep(text: str) -> tuple[str, list]:
    """Parse a sweep spec into ``(key, values)``.

    Forms: ``nodes=4..32`` (geometric doubling when the upper end is at
    least twice the lower — the shape of the paper's scaling figures),
    ``nodes=4..32:4`` (linear, inclusive, step 4), ``disk=0.25,0.5,2``
    (explicit list). ``key`` accepts the same names as scenarios.
    """
    key, sep, spec = text.partition("=")
    key = _ALIASES.get(key.strip().lower(), key.strip().lower())
    spec = spec.strip()
    if not sep or not spec:
        raise ScenarioError(f"sweep spec {text!r} is not key=range")
    if key not in BUCKETS + ("serde", "nodes", "racks"):
        raise ScenarioError(f"cannot sweep {key!r}")
    integral = key in ("nodes", "racks")
    conv = (lambda v: _parse_int(key, v)) if integral else (lambda v: _parse_speed(key, v))
    if ".." in spec:
        lo_text, _, rest = spec.partition("..")
        hi_text, _, step_text = rest.partition(":")
        lo, hi = conv(lo_text.strip()), conv(hi_text.strip())
        if hi < lo:
            raise ScenarioError(f"sweep range is empty: {spec!r}")
        values = []
        if step_text.strip():
            step = conv(step_text.strip())
            if step <= 0:
                raise ScenarioError(f"sweep step must be positive: {spec!r}")
            v = lo
            while v <= hi + (_EPS if not integral else 0):
                values.append(v)
                v += step
        elif hi >= 2 * lo:
            v = lo
            while v <= hi + (_EPS if not integral else 0):
                values.append(v)
                v *= 2
        else:
            raise ScenarioError(
                f"sweep range {spec!r} needs an explicit step "
                "(upper end below 2x lower: doubling would be a single point)"
            )
        return key, values
    return key, [conv(v.strip()) for v in spec.split(",") if v.strip()]


# -- the model ----------------------------------------------------------------------


@dataclass
class Prediction:
    """One scenario's predicted makespan with its bound envelope."""

    scenario: Scenario
    base_makespan: float
    predicted: float
    optimistic: float
    pessimistic: float
    #: central per-component makespan deltas (seconds)
    components: dict[str, float] = field(default_factory=dict)
    #: model internals worth surfacing (per-job parallel factors, wire
    #: ratios, serde fraction)
    details: dict = field(default_factory=dict)
    #: bit-exact vs the executable transform (identity / bucket-only)
    exact: bool = False
    method: str = "model"  # identity | dilation | model

    @property
    def speedup(self) -> float:
        return self.base_makespan / max(self.predicted, _EPS)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.describe(),
            "predicted": self.predicted,
            "optimistic": self.optimistic,
            "pessimistic": self.pessimistic,
            "speedup": self.speedup,
            "exact": self.exact,
            "method": self.method,
            "components": {k: self.components[k] for k in sorted(self.components)},
            "details": _sorted_tree(self.details),
        }


def _sorted_tree(value):
    if isinstance(value, dict):
        return {k: _sorted_tree(value[k]) for k in sorted(value)}
    return value


class WhatIfModel:
    """Everything the scenario engine extracts from one run journal.

    Construction replays the journal (byte-identical fold) and
    precomputes: the critical path and its per-segment bucket shares, the
    per-job per-node parallel loads and partition-byte weights feeding
    the node-rescaling model, the payload groups feeding fabric
    re-pricing, and the serde estimate for the zero-copy rebate.
    """

    def __init__(self, records: list[dict]):
        self.records = records
        self.run: ReplayedRun = replay_records(records)
        self.makespan = self.run.makespan
        self.engine = self.run.engine or "hamr"
        tracer = self.run.tracer
        self.cp: CriticalPath = from_tracer(tracer)

        spans = tracer.finished_spans()
        max_node = max((s.node for s in spans if s.node is not None), default=0)

        # Per-bucket totals over *closed* spans: the exact seconds the
        # dilation transform would insert per unit factor.
        self.span_bucket_totals: dict[str, float] = {}
        # Per-job per-worker-node parallel loads (task-seconds of
        # node-attributed parallel-bucket work).
        self.node_loads: dict[str, dict[int, float]] = {}
        for span in spans:
            for bucket in sorted(span.charges):
                sec = span.charges[bucket]
                self.span_bucket_totals[bucket] = (
                    self.span_bucket_totals.get(bucket, 0.0) + sec
                )
            if span.cat == "job" or span.job is None or not span.node:
                continue
            load = sum(span.charges.get(b, 0.0) for b in PARALLEL_BUCKETS)
            if load > 0.0:
                per = self.node_loads.setdefault(span.job, {})
                per[span.node] = per.get(span.node, 0.0) + load

        # Path shares: (job, node, bucket->on-path seconds) per segment.
        self.path_shares: list[tuple[Optional[str], Optional[int], dict]] = [
            (seg.span.job, seg.span.node, seg.charges_share())
            for seg in self.cp.segments
        ]

        # Traffic evidence from the x records: partition byte weights and
        # owners per job (the ownership model's input), per-node tx/rx,
        # payload groups for fabric re-pricing, and the serde estimate.
        self.part_bytes: dict[str, dict[int, float]] = {}
        self.part_owner: dict[str, dict[int, int]] = {}
        self.node_tx_rx: dict[int, float] = {}
        self.payloads: list[tuple[str, int, list[int], float, int]] = []
        self.traffic_bytes = 0.0
        pending: Optional[tuple[str, int, list[int], float, int]] = None
        for rec in records:
            if rec.get("t") != "x":
                continue
            src, dst, nbytes = rec["s"], rec["d"], rec["v"]
            mode = rec["m"]
            self.traffic_bytes += nbytes
            self.node_tx_rx[src] = self.node_tx_rx.get(src, 0.0) + nbytes
            self.node_tx_rx[dst] = self.node_tx_rx.get(dst, 0.0) + nbytes
            if mode == "shuffle" and rec.get("p") is not None:
                job, part = rec["j"], rec["p"]
                per = self.part_bytes.setdefault(job, {})
                per[part] = per.get(part, 0.0) + nbytes
                self.part_owner.setdefault(job, {})[part] = dst
            if mode == "broadcast":
                if (
                    pending is not None
                    and pending[0] == "broadcast"
                    and pending[1] == src
                    and pending[3] == nbytes
                ):
                    pending[2].append(dst)
                    continue
                if pending is not None:
                    self.payloads.append(pending)
                pending = ("broadcast", src, [dst], nbytes, 0)
                continue
            if pending is not None:
                self.payloads.append(pending)
                pending = None
            self.payloads.append((mode, src, [dst], nbytes, rec.get("p") or 0))
        if pending is not None:
            self.payloads.append(pending)

        header_nodes = self.run.num_nodes
        nodes_seen = max(max_node, max(self.node_tx_rx, default=0))
        self.num_workers = (
            header_nodes - 1 if header_nodes else max(nodes_seen, 1)
        )
        self.rack_size = self.run.rack_size or 0

        from repro.cluster.spec import CostModel

        #: modeled serde seconds implied by the traffic the run moved —
        #: x-record bytes are already scale-adjusted, so the cost model's
        #: per-byte constant applies directly
        self.serde_seconds = self.traffic_bytes * CostModel().serde_per_byte
        compute_total = self.span_bucket_totals.get(COMPUTE, 0.0)
        self.serde_fraction = (
            min(1.0, self.serde_seconds / compute_total) if compute_total > 0 else 0.0
        )

    # -- node rescaling ---------------------------------------------------------

    def parallel_factors(self, new_workers: int) -> dict[str, dict[str, float]]:
        """Per-job parallel time factors for a ``new_workers`` cluster.

        ``own`` (the central estimate) re-bins each node's load onto the
        partitions it owned, weighted by received bytes, and takes the
        busiest-worker ratio; ``raw`` is the ideal ``W/W'``; ``mean``
        interpolates by the run's observed load skew (a straggler-bound
        job barely moves). All are *time* factors (> 1 = slower).
        """
        old = self.num_workers
        ratio = old / new_workers if new_workers > 0 else 1.0
        out: dict[str, dict[str, float]] = {}
        for job in sorted(self.node_loads):
            loads = self.node_loads[job]
            busiest = max(loads.values())
            mean = sum(loads.values()) / len(loads)
            skew = mean / busiest if busiest > 0 else 1.0
            bins: dict[int, float] = {}
            owners = self.part_owner.get(job, {})
            weights = self.part_bytes.get(job, {})
            by_node: dict[int, list[int]] = {}
            for part in sorted(owners):
                by_node.setdefault(owners[part], []).append(part)
            for node in sorted(loads):
                load = loads[node]
                parts = by_node.get(node, ())
                total = sum(weights.get(p, 0.0) for p in parts)
                if parts and total > 0:
                    for part in parts:
                        dst = part % new_workers
                        bins[dst] = bins.get(dst, 0.0) + load * (
                            weights.get(part, 0.0) / total
                        )
                else:
                    dst = (node - 1) % new_workers
                    bins[dst] = bins.get(dst, 0.0) + load
            own = (
                max(bins.values()) / busiest if bins and busiest > 0 else ratio
            )
            if new_workers <= old:
                mean_factor = 1.0 + (ratio - 1.0) * skew
            else:
                mean_factor = ratio * skew + (1.0 - skew)
            out[job] = {"own": own, "raw": ratio, "mean": mean_factor}
        return out

    # -- fabric re-pricing ------------------------------------------------------

    def reprice_fabric(
        self, fabric_name: str, racks: Optional[int]
    ) -> dict[str, float]:
        """Wire-byte ratios under a candidate fabric.

        Re-routes every recorded payload through the candidate fabric's
        plan (master-touching payloads are kept as-is: exchanges are
        worker-to-worker) and returns ``total`` (new/old total wire
        bytes) and ``busiest`` (new/old busiest-node tx+rx bytes).
        """
        from repro.dataplane.fabrics import Topology, make_fabric, reroute_payload

        workers = self.num_workers
        rack_size = 0
        if racks is not None:
            rack_size = max(1, workers // racks)
        elif fabric_name == "twolevel":
            rack_size = self.rack_size or max(1, workers // 4)
        fabric = make_fabric(fabric_name, Topology(workers, rack_size))
        old_total = 0.0
        new_total = 0.0
        new_tx_rx: dict[int, float] = {}

        def book(node: int, nbytes: float) -> None:
            new_tx_rx[node] = new_tx_rx.get(node, 0.0) + nbytes

        for mode, src, targets, nbytes, partition in self.payloads:
            group_old = nbytes * len(targets)
            old_total += group_old
            if src == 0 or any(d == 0 for d in targets):
                new_total += group_old
                for dst in targets:
                    book(src, nbytes)
                    book(dst, nbytes)
                continue
            if mode == "broadcast":
                # One plan per full fan-out; a consecutive group longer
                # than the worker count is several payloads back to back.
                chunks, rest = divmod(len(targets), workers)
                for _ in range(max(chunks, 0)):
                    plan = reroute_payload(
                        fabric,
                        mode=mode,
                        src=src - 1,
                        num_workers=workers,
                        nbytes=nbytes,
                    )
                    new_total += plan.wire_bytes
                    for delivery in plan.deliveries:
                        for hop in delivery.hops:
                            book(hop.src + 1, hop.nbytes)
                            book(hop.dst + 1, hop.nbytes)
                if rest:
                    # Partial fan-out (mixed grouping): price unchanged.
                    new_total += nbytes * rest
                    for dst in targets[-rest:]:
                        book(src, nbytes)
                        book(dst, nbytes)
                continue
            plan = reroute_payload(
                fabric,
                mode=mode,
                src=src - 1,
                num_workers=workers,
                nbytes=nbytes,
                partition=partition,
                target=targets[0] - 1,
            )
            new_total += plan.wire_bytes
            for delivery in plan.deliveries:
                for hop in delivery.hops:
                    book(hop.src + 1, hop.nbytes)
                    book(hop.dst + 1, hop.nbytes)
        old_busiest = max(self.node_tx_rx.values(), default=0.0)
        new_busiest = max(new_tx_rx.values(), default=0.0)
        return {
            "total": new_total / old_total if old_total > 0 else 1.0,
            "busiest": new_busiest / old_busiest if old_busiest > 0 else 1.0,
        }

    # -- prediction -------------------------------------------------------------

    def _path_delta(
        self,
        g: dict[str, float],
        par_by_job: Optional[dict[str, float]],
        rho: Optional[float],
        serde_mult: float,
    ) -> float:
        """On-path makespan adjustment beyond the serialized dilation.

        For each path segment's bucket share the *effective* time factor
        is the dilation factor times the structural factors that apply
        (parallel rescale for node-attributed work, wire ratio for
        network, serde rebate inside compute); the serialized dilation
        ``g`` is already charged journal-wide, so only ``eff - g``
        remains to be added along the path.
        """
        sf = self.serde_fraction
        delta = 0.0
        for job, node, shares in self.path_shares:
            for bucket in sorted(shares):
                sec = shares[bucket]
                gb = g.get(bucket, 1.0)
                eff = gb
                if (
                    par_by_job is not None
                    and node
                    and job is not None
                    and bucket in PARALLEL_BUCKETS
                ):
                    eff *= par_by_job.get(job, 1.0)
                if rho is not None and bucket == NETWORK:
                    eff *= rho
                if bucket == COMPUTE and serde_mult != 1.0:
                    eff *= (1.0 - sf) + sf * serde_mult
                delta += sec * (eff - gb)
        return delta

    def predict(self, scenario: Scenario) -> Prediction:
        makespan = self.makespan
        if scenario.is_identity:
            return Prediction(
                scenario, makespan, makespan, makespan, makespan,
                exact=True, method="identity",
            )
        if scenario.bucket_only:
            # Executable scenario: run the real transform, byte-exact
            # against a REPRO_OBS_SLOWDOWN-seeded run of the same journal.
            dilated = dilate_bucket_charges(self.records, scenario.time_factors)
            predicted = dilated[-1].get("makespan", makespan)
            return Prediction(
                scenario, makespan, predicted, predicted, predicted,
                components={"buckets": predicted - makespan},
                exact=True, method="dilation",
            )

        g = scenario.time_factors
        components: dict[str, float] = {}
        details: dict = {}
        d_buckets = sum(
            (factor - 1.0) * self.span_bucket_totals.get(bucket, 0.0)
            for bucket, factor in sorted(g.items())
        )
        if g:
            components["buckets"] = d_buckets

        # Structural variant sets (central estimate first).
        par_sets: list[Optional[dict[str, float]]] = [None]
        par_central: Optional[dict[str, float]] = None
        anchors: list[float] = []
        if scenario.nodes is not None:
            new_workers = scenario.nodes - 1
            factors = self.parallel_factors(new_workers)
            par_central = {job: f["own"] for job, f in factors.items()}
            # The flat variant (None) stays in the set: a straggler-bound
            # job barely moves when the cluster shrinks, so "unchanged"
            # is a legitimate optimistic outcome of a scale-down.
            par_sets = [
                par_central,
                {job: f["raw"] for job, f in factors.items()},
                {job: f["mean"] for job, f in factors.items()},
                None,
            ]
            ratio = self.num_workers / new_workers if new_workers else 1.0
            if new_workers < self.num_workers:
                # Scale-down can at worst serialize onto the ideal ratio.
                anchors.append(makespan * ratio - makespan)
            elif new_workers > self.num_workers:
                # Scale-up is at best ideal, at worst flat (stragglers).
                anchors.append(makespan * ratio - makespan)
                anchors.append(0.0)
            details["parallel_factors"] = factors
            details["workers"] = {"old": self.num_workers, "new": new_workers}

        rho_variants: list[Optional[float]] = [None]
        rho_central: Optional[float] = None
        serde_central = 1.0
        serde_variants = [1.0]
        fabric_changed = scenario.fabric is not None and (
            scenario.fabric != self.run.fabric or scenario.racks is not None
        )
        if fabric_changed or (scenario.racks is not None and scenario.fabric is None):
            fabric_name = scenario.fabric or self.run.fabric
            ratios = self.reprice_fabric(fabric_name, scenario.racks)
            rho_central = ratios["total"]
            rho_variants = [rho_central, ratios["busiest"], 1.0]
            details["wire_ratio"] = ratios
            from repro.dataplane.fabrics import make_fabric

            target_serde = make_fabric(fabric_name).serde_factor
            if self.engine == "hamr" and target_serde != 1.0:
                # HAMR gates the per-payload serialization charge on the
                # fabric; Hadoop's serde sits off the exchange path.
                serde_central = target_serde
        if scenario.serde_speed is not None:
            serde_central *= 1.0 / scenario.serde_speed
        if serde_central != 1.0:
            serde_variants = [serde_central, 1.0]
            details["serde"] = {
                "fraction_of_compute": self.serde_fraction,
                "multiplier": serde_central,
            }

        central = self._path_delta(g, par_central, rho_central, serde_central)
        components["path"] = central
        candidates = [
            self._path_delta(g, par, rho, serde)
            for par in par_sets
            for rho in rho_variants
            for serde in serde_variants
        ]
        candidates.extend(anchors)
        # Serialized envelopes: at the extreme, *every* charged second of
        # the affected resource sat on the critical path — the widest
        # honest bound for the structural factors.
        if serde_central != 1.0:
            candidates.append(
                self._path_delta(g, par_central, rho_central, 1.0)
                + self.span_bucket_totals.get(COMPUTE, 0.0)
                * self.serde_fraction
                * (serde_central - 1.0)
                * g.get(COMPUTE, 1.0)
            )
        if rho_central is not None and rho_central != 1.0:
            candidates.append(
                self._path_delta(g, par_central, None, serde_central)
                + self.span_bucket_totals.get(NETWORK, 0.0)
                * (rho_central - 1.0)
                * g.get(NETWORK, 1.0)
            )
        predicted = makespan + d_buckets + central
        optimistic = makespan + d_buckets + min(candidates)
        pessimistic = makespan + d_buckets + max(candidates)
        optimistic = min(optimistic, predicted)
        pessimistic = max(pessimistic, predicted)
        predicted = max(predicted, _EPS)
        optimistic = max(optimistic, _EPS)
        pessimistic = max(pessimistic, predicted)
        return Prediction(
            scenario, makespan, predicted, optimistic, pessimistic,
            components=components, details=details, method="model",
        )

    def sweep(self, key: str, values: list, base: Scenario) -> list[Prediction]:
        """Predict the capacity curve over one swept knob."""
        return [self.predict(base.with_knob(key, value)) for value in values]

    def scenario_journal(self, scenario: Scenario) -> list[dict]:
        """The dilated journal a bucket-only scenario predicts.

        Byte-identical to what a ``REPRO_OBS_SLOWDOWN``-seeded re-run of
        the same journal would write — the CI gate ``cmp``s the two.
        """
        if not scenario.bucket_only:
            raise ScenarioError(
                "only bucket-speed scenarios are executable as journals "
                f"(got {scenario.describe()!r})"
            )
        return dilate_bucket_charges(self.records, scenario.time_factors)


# -- validation harness -------------------------------------------------------------


@dataclass
class ValidationRow:
    """predicted-vs-actual for one scenario of the validation matrix."""

    prediction: Prediction
    actual: Optional[float]
    method: str  # identity | dilation | run | skipped

    @property
    def error(self) -> Optional[float]:
        if self.actual is None or self.actual <= 0:
            return None
        return (self.prediction.predicted - self.actual) / self.actual

    @property
    def within_bounds(self) -> Optional[bool]:
        if self.actual is None:
            return None
        # 0.1% of the base makespan of slack absorbs model noise the
        # envelope does not claim to capture (e.g. two-level gateway
        # combining, which is unmodelable offline).
        slack = max(1e-9, 1e-3 * self.prediction.base_makespan)
        lo = self.prediction.optimistic - slack
        hi = self.prediction.pessimistic + slack
        return lo <= self.actual <= hi

    def to_dict(self) -> dict:
        return {
            "scenario": self.prediction.scenario.describe(),
            "predicted": self.prediction.predicted,
            "optimistic": self.prediction.optimistic,
            "pessimistic": self.prediction.pessimistic,
            "actual": self.actual,
            "error": self.error,
            "within_bounds": self.within_bounds,
            "method": self.method,
        }


def validation_matrix(model: WhatIfModel) -> list[Scenario]:
    """The executable scenarios the tool self-audits against.

    Bucket dilations (exactly executable via the seeding transform), two
    node-count changes (half and quarter cluster), and two fabric swaps —
    each one the harness can actually run.
    """
    workers = model.num_workers
    half = max(2, round(workers / 2))
    quarter = max(2, round(workers / 4))
    scenarios = [
        Scenario(),
        parse_scenario("disk=0.5"),
        parse_scenario("network=0.25"),
        parse_scenario("compute=0.5"),
        parse_scenario(f"nodes={half + 1}"),
        parse_scenario(f"nodes={quarter + 1}"),
        parse_scenario("fabric=rdma"),
        parse_scenario(f"fabric=twolevel,racks={min(4, workers)}"),
    ]
    return scenarios


def validate(
    model: WhatIfModel,
    executor: Optional[Callable[[Scenario], Optional[float]]] = None,
    scenarios: Optional[list[Scenario]] = None,
) -> list[ValidationRow]:
    """Run the validation matrix: predict, execute, report the error.

    ``executor`` actually runs one scenario and returns the measured
    makespan (None = cannot execute); without one, only the identity and
    dilation rows carry actuals. The identity row's invariant — the
    empty scenario predicts the journal's own makespan *exactly* — is
    checked against the journal itself, no execution needed.
    """
    rows: list[ValidationRow] = []
    for scenario in scenarios if scenarios is not None else validation_matrix(model):
        prediction = model.predict(scenario)
        if scenario.is_identity:
            rows.append(ValidationRow(prediction, model.makespan, "identity"))
            continue
        actual = executor(scenario) if executor is not None else None
        rows.append(
            ValidationRow(
                prediction,
                actual,
                ("dilation" if scenario.bucket_only else "run")
                if actual is not None
                else "skipped",
            )
        )
    return rows


# -- serialization / rendering ------------------------------------------------------


def whatif_dict(
    model: WhatIfModel,
    predictions: list[Prediction],
    sweep: Optional[tuple[str, list[Prediction]]] = None,
    validation: Optional[list[ValidationRow]] = None,
) -> dict:
    """Deterministic JSON payload (schema ``repro.obs.whatif/v1``)."""
    run = model.run
    payload: dict = {
        "schema": WHATIF_SCHEMA,
        "workload": run.workload,
        "engine": run.engine,
        "fabric": run.fabric,
        "data_size": run.data_size,
        "fidelity": run.fidelity,
        "nodes": model.num_workers + 1,
        "rack_size": model.rack_size,
        "base_makespan": model.makespan,
        "partial": run.partial,
        "scenarios": [p.to_dict() for p in predictions],
    }
    if sweep is not None:
        key, points = sweep
        payload["sweep"] = {
            "key": key,
            "points": [p.to_dict() for p in points],
        }
    if validation is not None:
        payload["validation"] = [row.to_dict() for row in validation]
    return payload


def render_whatif(model: WhatIfModel, predictions: list[Prediction]) -> str:
    """ASCII scenario table."""
    from repro.evaluation.report import render_table

    run = model.run
    title = (
        f"== What-if — {run.label} ({run.data_size}) on {run.engine} — "
        f"base makespan {model.makespan:.3f}s, "
        f"{model.num_workers + 1} nodes =="
    )
    rows = []
    for p in predictions:
        rows.append(
            [
                p.scenario.describe(),
                f"{p.predicted:.3f}",
                f"{p.optimistic:.3f}",
                f"{p.pessimistic:.3f}",
                f"{p.speedup:.2f}x",
                "exact" if p.exact else "model",
            ]
        )
    table = render_table(
        ["scenario", "predicted s", "optimistic", "pessimistic", "speedup", "basis"],
        rows,
        title="Scenarios",
    )
    return f"{title}\n\n{table}"


def render_sweep(
    model: WhatIfModel, key: str, points: list[Prediction], width: int = 40
) -> str:
    """Capacity curve: one row per swept value, with an ASCII bar scaled
    to the largest pessimistic makespan (the shape of fig3a/fig3b)."""
    from repro.evaluation.report import render_table

    top = max((p.pessimistic for p in points), default=0.0)
    rows = []
    for p in points:
        value = dict(
            [term.split("=") for term in p.scenario.describe().split(",")]
        ).get(key, "?")
        bar = "#" * max(1, round(width * p.predicted / top)) if top > 0 else ""
        rows.append(
            [
                f"{key}={value}",
                f"{p.predicted:.3f}",
                f"{p.optimistic:.3f}",
                f"{p.pessimistic:.3f}",
                bar,
            ]
        )
    return render_table(
        [key, "predicted s", "optimistic", "pessimistic", "makespan"],
        rows,
        title=f"Capacity curve — sweep {key}",
    )


def render_validation(rows: list[ValidationRow]) -> str:
    """Predicted-vs-actual table with the per-scenario error."""
    from repro.evaluation.report import render_table

    table_rows = []
    for row in rows:
        error = row.error
        table_rows.append(
            [
                row.prediction.scenario.describe(),
                f"{row.prediction.predicted:.3f}",
                f"{row.actual:.3f}" if row.actual is not None else "-",
                f"{100.0 * error:+.1f}%" if error is not None else "-",
                {True: "yes", False: "NO", None: "-"}[row.within_bounds],
                row.method,
            ]
        )
    return render_table(
        ["scenario", "predicted s", "actual s", "error", "in bounds", "method"],
        table_rows,
        title="Validation (predicted vs executed)",
    )
