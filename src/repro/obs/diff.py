"""Differential profiling: compare two observability artifacts.

Credible Hadoop-class evaluation needs run-over-run comparison with
explicit variance/regression criteria, not one-shot numbers. This module
diffs two artifacts — bench baselines (``repro.obs.bench/*``, e.g.
the committed ``BENCH_obs.json``) or report exports
(``repro.obs.report/*``) — per workload × engine: virtual seconds,
blame-bucket deltas, critical-path composition, (bench v4+)
telemetry traffic-matrix totals, and (bench v5+) hostprof bucket shares
under a separate absolute tolerance band. The result renders as
a deterministic ASCII table plus a JSON delta report, and carries a drift
verdict against a configurable relative tolerance — the CI perf-regression
gate is exactly this diff with ``--fail-on-drift``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.blame import BUCKETS

DIFF_SCHEMA = "repro.obs.diff/v1"

#: artifact schema prefixes this module understands
_BENCH_PREFIX = "repro.obs.bench/"
_REPORT_PREFIX = "repro.obs.report/"


class ArtifactError(ValueError):
    """The input file is not a comparable observability artifact."""


@dataclass
class EngineRecord:
    """One workload × engine measurement normalized out of an artifact."""

    virtual_seconds: float
    blame: dict[str, float] = field(default_factory=dict)
    critpath: Optional[dict[str, float]] = None  # rollup key -> path seconds
    traffic: Optional[dict[str, float]] = None  # telemetry traffic totals (v4+)
    host_shares: Optional[dict[str, float]] = None  # hostprof bucket shares (v5+)


def _blame_from_report(engine_report: dict) -> dict[str, float]:
    """Collapse a report's per-job blame into one bucket map (jobs sum)."""
    merged = {bucket: 0.0 for bucket in BUCKETS}
    for job_entry in engine_report.get("blame", {}).values():
        for bucket, seconds in job_entry.get("buckets", {}).items():
            merged[bucket] = merged.get(bucket, 0.0) + seconds
    return merged


def normalize(artifact: dict, source: str = "<artifact>") -> dict:
    """Normalize an artifact to ``{workload: {engine: EngineRecord}}``."""
    schema = artifact.get("schema", "")
    rows: dict[str, dict[str, EngineRecord]] = {}
    if schema.startswith(_BENCH_PREFIX):
        for workload, row in artifact.get("rows", {}).items():
            engines = {}
            for engine in ("hamr", "hadoop"):
                entry = row.get(engine)
                if entry is None:
                    continue
                # Non-direct runs are keyed engine@fabric so a fabric
                # sweep never gates against a direct baseline row.
                fabric = entry.get("fabric")
                key = f"{engine}@{fabric}" if fabric and fabric != "direct" else engine
                traffic = entry.get("telemetry", {}).get("traffic")
                host_shares = entry.get("hostprof", {}).get("shares")
                engines[key] = EngineRecord(
                    virtual_seconds=entry["virtual_seconds"],
                    blame=dict(entry.get("blame", {})),
                    critpath=dict(entry["critpath"])
                    if entry.get("critpath") is not None
                    else None,
                    traffic=dict(traffic) if traffic is not None else None,
                    host_shares=dict(host_shares)
                    if host_shares is not None
                    else None,
                )
            rows[workload] = engines
    elif schema.startswith(_REPORT_PREFIX):
        workload = artifact.get("workload", "unknown")
        engines = {}
        for engine, engine_report in artifact.get("engines", {}).items():
            critpath = engine_report.get("critpath")
            engines[engine] = EngineRecord(
                virtual_seconds=engine_report["virtual_end"],
                blame=_blame_from_report(engine_report),
                critpath=dict(critpath["rollup"]) if critpath else None,
            )
        rows[workload] = engines
    else:
        raise ArtifactError(
            f"{source}: unrecognized schema {schema!r} (expected "
            f"{_BENCH_PREFIX}* or {_REPORT_PREFIX}*)"
        )
    return rows


def load_artifact(path: str) -> dict:
    """Read and normalize one artifact file."""
    with open(path) as fh:
        return normalize(json.load(fh), source=path)


def _rel_delta(a: float, b: float) -> float:
    if a == b:
        return 0.0
    if a == 0.0:
        return float("inf")
    return (b - a) / a


@dataclass
class DiffResult:
    """The full comparison, renderable as ASCII and as JSON."""

    rows: dict  # workload -> engine -> comparison dict
    only_a: list[str]
    only_b: list[str]
    tolerance: float
    drift: list[str] = field(default_factory=list)  # "workload/engine" keys
    host_tolerance: float = 0.15  # absolute hostprof bucket-share band

    @property
    def ok(self) -> bool:
        return not self.drift

    def to_dict(self) -> dict:
        return {
            "schema": DIFF_SCHEMA,
            "tolerance": self.tolerance,
            "host_tolerance": self.host_tolerance,
            "ok": self.ok,
            "drift": sorted(self.drift),
            "only_a": sorted(self.only_a),
            "only_b": sorted(self.only_b),
            "rows": {
                workload: {
                    engine: self.rows[workload][engine]
                    for engine in sorted(self.rows[workload])
                }
                for workload in sorted(self.rows)
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def diff_artifacts(
    a: dict, b: dict, tolerance: float = 0.01, host_tolerance: float = 0.15
) -> DiffResult:
    """Compare two normalized artifacts (see :func:`normalize`).

    A workload × engine drifts when its virtual seconds moved by more than
    ``tolerance`` (relative) between A and B — or, when both sides carry
    telemetry traffic totals (bench schema v4+), when any traffic-matrix
    total (total/remote/per-mode bytes, payloads, records) drifts beyond
    the same tolerance. Shuffle-volume regressions therefore gate exactly
    like makespan regressions. Blame buckets and critical-path composition
    are reported per row for explanation only.

    When both sides carry hostprof bucket shares (bench schema v5+), a
    row also drifts if any bucket's share moved by more than
    ``host_tolerance`` in absolute share points. Raw host nanoseconds are
    machine noise and never gate; shares are composition and do.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance}")
    if host_tolerance < 0:
        raise ValueError(f"host_tolerance must be non-negative: {host_tolerance}")
    shared = sorted(set(a) & set(b))
    result = DiffResult(
        rows={},
        only_a=sorted(set(a) - set(b)),
        only_b=sorted(set(b) - set(a)),
        tolerance=tolerance,
        host_tolerance=host_tolerance,
    )
    for workload in shared:
        engines_a, engines_b = a[workload], b[workload]
        row: dict = {}
        for engine in sorted(set(engines_a) & set(engines_b)):
            rec_a, rec_b = engines_a[engine], engines_b[engine]
            rel = _rel_delta(rec_a.virtual_seconds, rec_b.virtual_seconds)
            drifted = abs(rel) > tolerance
            blame_delta = {
                bucket: rec_b.blame.get(bucket, 0.0) - rec_a.blame.get(bucket, 0.0)
                for bucket in sorted(set(rec_a.blame) | set(rec_b.blame))
            }
            comparison = {
                "virtual_seconds_a": rec_a.virtual_seconds,
                "virtual_seconds_b": rec_b.virtual_seconds,
                "rel_delta": rel,
                "drift": drifted,
                "blame_delta": blame_delta,
            }
            if rec_a.critpath is not None and rec_b.critpath is not None:
                comparison["critpath_delta"] = {
                    key: rec_b.critpath.get(key, 0.0) - rec_a.critpath.get(key, 0.0)
                    for key in sorted(set(rec_a.critpath) | set(rec_b.critpath))
                }
            if rec_a.traffic is not None and rec_b.traffic is not None:
                traffic_delta = {}
                traffic_drift = []
                for key in sorted(set(rec_a.traffic) | set(rec_b.traffic)):
                    t_rel = _rel_delta(
                        rec_a.traffic.get(key, 0.0), rec_b.traffic.get(key, 0.0)
                    )
                    traffic_delta[key] = t_rel
                    if abs(t_rel) > tolerance:
                        traffic_drift.append(key)
                comparison["traffic_delta"] = traffic_delta
                comparison["traffic_drift"] = traffic_drift
                if traffic_drift:
                    drifted = True
                    comparison["drift"] = True
            if rec_a.host_shares is not None and rec_b.host_shares is not None:
                host_delta = {}
                host_drift = []
                for bucket in sorted(set(rec_a.host_shares) | set(rec_b.host_shares)):
                    delta = rec_b.host_shares.get(bucket, 0.0) - rec_a.host_shares.get(
                        bucket, 0.0
                    )
                    host_delta[bucket] = round(delta, 6)
                    if abs(delta) > host_tolerance:
                        host_drift.append(bucket)
                comparison["host_share_delta"] = host_delta
                comparison["host_drift"] = host_drift
                if host_drift:
                    drifted = True
                    comparison["drift"] = True
            row[engine] = comparison
            if drifted:
                result.drift.append(f"{workload}/{engine}")
        result.rows[workload] = row
    return result


def render_diff(result: DiffResult, label_a: str = "A", label_b: str = "B") -> str:
    """Deterministic ASCII delta report."""
    from repro.evaluation.report import render_table

    lines = []
    rows = []
    for workload in sorted(result.rows):
        for engine in sorted(result.rows[workload]):
            c = result.rows[workload][engine]
            rel = c["rel_delta"]
            rel_text = "inf" if rel == float("inf") else f"{100.0 * rel:+.3f}%"
            dominant = _dominant_blame_shift(c["blame_delta"])
            rows.append(
                [
                    workload,
                    engine,
                    f"{c['virtual_seconds_a']:.3f}",
                    f"{c['virtual_seconds_b']:.3f}",
                    rel_text,
                    "DRIFT" if c["drift"] else "ok",
                    dominant,
                ]
            )
    lines.append(
        render_table(
            ["workload", "engine", label_a, label_b, "delta", "verdict", "top blame shift"],
            rows,
            title=f"Differential profile ({label_a} -> {label_b}, "
            f"tolerance {100.0 * result.tolerance:g}%)",
        )
    )
    crit_rows = []
    for workload in sorted(result.rows):
        for engine in sorted(result.rows[workload]):
            c = result.rows[workload][engine]
            delta = c.get("critpath_delta")
            if not delta:
                continue
            moved = [
                f"{key} {sec:+.3f}s"
                for key, sec in sorted(delta.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
                if abs(sec) > 1e-9
            ][:3]
            crit_rows.append([workload, engine, ", ".join(moved) or "(unchanged)"])
    if crit_rows:
        lines.append(
            render_table(
                ["workload", "engine", "critical-path composition shift"],
                crit_rows,
                title="Critical-path deltas",
            )
        )
    traffic_rows = []
    for workload in sorted(result.rows):
        for engine in sorted(result.rows[workload]):
            c = result.rows[workload][engine]
            delta = c.get("traffic_delta")
            if delta is None:
                continue
            moved = [
                f"{key} {'inf' if rel == float('inf') else f'{100.0 * rel:+.3f}%'}"
                for key, rel in sorted(
                    delta.items(), key=lambda kv: (-abs(kv[1]), kv[0])
                )
                if abs(rel) > 1e-12
            ][:3]
            traffic_rows.append(
                [
                    workload,
                    engine,
                    "DRIFT" if c.get("traffic_drift") else "ok",
                    ", ".join(moved) or "(unchanged)",
                ]
            )
    if traffic_rows:
        lines.append(
            render_table(
                ["workload", "engine", "verdict", "traffic-matrix total shift"],
                traffic_rows,
                title="Traffic deltas",
            )
        )
    host_rows = []
    for workload in sorted(result.rows):
        for engine in sorted(result.rows[workload]):
            c = result.rows[workload][engine]
            delta = c.get("host_share_delta")
            if delta is None:
                continue
            moved = [
                f"{bucket} {100.0 * share:+.1f}pp"
                for bucket, share in sorted(
                    delta.items(), key=lambda kv: (-abs(kv[1]), kv[0])
                )
                if abs(share) > 1e-9
            ][:3]
            host_rows.append(
                [
                    workload,
                    engine,
                    "DRIFT" if c.get("host_drift") else "ok",
                    ", ".join(moved) or "(unchanged)",
                ]
            )
    if host_rows:
        lines.append(
            render_table(
                ["workload", "engine", "verdict", "host-share shift"],
                host_rows,
                title=f"Host-share deltas (band ±{100.0 * result.host_tolerance:g}pp)",
            )
        )
    for label, missing in (("only in A", result.only_a), ("only in B", result.only_b)):
        if missing:
            lines.append(f"workloads {label}: {', '.join(missing)}")
    lines.append(
        "verdict: "
        + ("OK — within tolerance" if result.ok else f"DRIFT in {', '.join(sorted(result.drift))}")
    )
    if not result.ok:
        lines.append(
            "hint: run `python -m repro.evaluation explain <journal-A> <journal-B>` "
            "on the drifted rows' run journals for per-operator root-cause "
            "attribution (see `... journal --help`)."
        )
    return "\n\n".join(lines)


def _dominant_blame_shift(blame_delta: dict[str, float]) -> str:
    if not blame_delta:
        return "-"
    bucket, sec = max(blame_delta.items(), key=lambda kv: (abs(kv[1]), kv[0]))
    if abs(sec) < 1e-9:
        return "-"
    return f"{bucket} {sec:+.3f}s"
