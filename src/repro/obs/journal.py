"""Durable run journals: every observability event, as it is emitted.

A :class:`JournalWriter` is attached at :class:`~repro.obs.spans.Tracer`
construction (``Tracer(sim, enabled=True, journal=writer)``) and records
one JSON object per line — a span open/close, a causal edge, a blame
charge, a metric mutation, a telemetry sample, a traffic-matrix charge —
in exactly the order the live run emitted it. Because the journal stores
the *primitive mutations* rather than derived aggregates, replaying them
in order (:mod:`repro.obs.replay`) rebuilds a tracer whose float
accumulations happen in the same order with the same operands, so the
``report`` / ``timeline`` / critical-path outputs are **byte-identical**
to the live run's — with no re-execution.

Design constraints mirror :mod:`repro.obs.hostprof`:

1. **Non-perturbing.** Journal hooks only read already-computed values
   and append to the journal's own buffers; simulation state is never
   touched. Virtual outputs are byte-identical with journaling on or off
   (asserted by the determinism suites).
2. **Off by default, near-zero when off.** Every hook is guarded by a
   single ``is None`` check on a ``__slots__`` attribute.
3. **Append-only, schema-versioned.** The first line is a ``header``
   record carrying :data:`JOURNAL_SCHEMA`; the last is a ``footer`` with
   the run's makespan, virtual end time and the sim-trace drop counter.
   Records in between are never rewritten.

Record types (compact keys keep journals small):

======  =====================================================
``t``   meaning
======  =====================================================
header  schema + run metadata (workload, engine, fidelity...)
m       metric declared (registry accessor created it)
c       counter increment
g       gauge ``set``/``add``
h       histogram observation
s       time-series append
so      span opened
sc      span closed (carries the final args)
e       causal span edge
b       blame charge (job/bucket/seconds/node/span)
tls     timeline step sample
tli     timeline interval sample
tlc     timeline capacity ``set``/``add``
tm      traffic matrix declared for a job
x       traffic-matrix charge
wcfg    live-monitoring config (frame interval, stall window)
fr      live dashboard frame (progress, ETA, watchdog verdict)
footer  event/span counts, makespan, trace-drop counter
======  =====================================================

``REPRO_OBS_SLOWDOWN=<bucket>=<factor>`` (with a *blame bucket* on the
left-hand side, e.g. ``disk=2.0``) turns the ``journal`` CLI verb into a
seeded-regression generator: :func:`seed_bucket_slowdown` dilates the
journal's virtual timeline so every span charged to that bucket takes
``factor``× longer — the synthetic root cause the ``explain`` self-test
must rank first.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Callable, Iterable, Optional, TextIO

from repro.obs.blame import BUCKETS

#: current schema: v3 headers carry the cluster shape (``nodes``,
#: ``rack_size``) so counterfactual what-if scenarios can rescale the
#: partition-ownership model without guessing the worker count
JOURNAL_SCHEMA = "repro.obs.journal/v3"

#: schemas this reader accepts (v1 journals predate exchange fabrics and
#: replay under the implicit fabric="direct" / partitioner="hash"; v2
#: predates the cluster-shape header fields)
JOURNAL_SCHEMAS = (
    "repro.obs.journal/v1", "repro.obs.journal/v2", JOURNAL_SCHEMA,
)

#: record types, for validation
RECORD_TYPES = (
    "header", "m", "c", "g", "h", "s", "so", "sc", "e", "b",
    "tls", "tli", "tlc", "tm", "x", "wcfg", "fr", "footer",
)


class JournalError(ValueError):
    """A journal file is malformed, truncated, or schema-incompatible."""


def encode_record(record: dict) -> str:
    """Canonical one-line encoding: compact separators, sorted keys.

    The encoding round-trips exactly (Python ``json`` serializes floats
    via ``repr`` and parses them back to the same bits), so
    encode→decode→re-encode is byte-identical — the hypothesis suite
    asserts this property.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode_record(line: str) -> dict:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise JournalError(f"malformed journal line: {line[:80]!r}") from exc
    if not isinstance(record, dict) or "t" not in record:
        raise JournalError(f"journal line is not a typed record: {line[:80]!r}")
    if record["t"] not in RECORD_TYPES:
        raise JournalError(f"unknown journal record type {record['t']!r}")
    return record


class JournalWriter:
    """Appends observability events as JSONL, optionally streaming to a sink.

    Lines are always retained in memory (``lines``) so tests and the
    seeded-slowdown transform can inspect them; with ``sink`` set each
    line is additionally written (and flushed at the footer) as it is
    emitted, which is what makes journals durable across a crash.
    """

    def __init__(self, sink: Optional[TextIO] = None, meta: Optional[dict] = None):
        self.sink = sink
        #: extra header metadata merged by :meth:`write_header` (the CLI
        #: presets ``fidelity`` here before handing the writer to the runner)
        self.meta: dict[str, Any] = dict(meta or {})
        self.lines: list[str] = []
        self.events = 0
        self.spans_opened = 0
        self.spans_closed = 0
        self._header_written = False
        self._footer_written = False

    # -- emission -----------------------------------------------------------------

    def emit(self, record: dict) -> None:
        if self._footer_written:
            raise JournalError("journal footer already written; journal is sealed")
        line = encode_record(record)
        self.lines.append(line)
        self.events += 1
        t = record.get("t")
        if t == "so":
            self.spans_opened += 1
        elif t == "sc":
            self.spans_closed += 1
        if self.sink is not None:
            self.sink.write(line + "\n")

    def write_header(self, **meta: Any) -> None:
        if self._header_written:
            raise JournalError("journal header already written")
        record = {"t": "header", "schema": JOURNAL_SCHEMA}
        record.update(self.meta)
        record.update(meta)
        self.emit(record)
        self._header_written = True

    def write_footer(self, **meta: Any) -> None:
        if not self._header_written:
            raise JournalError("journal footer before header")
        record = {
            "t": "footer",
            # the footer itself is not counted in `events`
            "events": self.events,
            "spans_opened": self.spans_opened,
            "spans_closed": self.spans_closed,
        }
        record.update(meta)
        self.emit(record)
        self._footer_written = True
        self.events -= 1
        if self.sink is not None:
            self.sink.flush()

    # -- hook factories (captured in closures by the instrumented primitives) ------

    def metric_hook(self, kind: str, name: str, labelkey: tuple) -> Callable:
        """The per-metric emit hook installed on a registry primitive.

        ``labelkey`` is the registry's sorted label tuple; it is rendered
        once into the closure so the hot path only appends.
        """
        labels = [[k, v] for k, v in labelkey]

        if kind == "c":
            def hook(amount: float) -> None:
                self.emit({"t": "c", "n": name, "l": labels, "v": amount})
        elif kind == "g":
            def hook(op: str, value: float) -> None:
                self.emit({"t": "g", "n": name, "l": labels, "op": op, "v": value})
        elif kind == "h":
            def hook(value: float) -> None:
                self.emit({"t": "h", "n": name, "l": labels, "v": value})
        elif kind == "s":
            def hook(time: float, value: float) -> None:
                self.emit({"t": "s", "n": name, "l": labels, "tm": time, "v": value})
        else:  # pragma: no cover - registry only knows four kinds
            raise ValueError(f"unknown metric kind {kind!r}")
        return hook

    def declare_metric(
        self, kind: str, name: str, labelkey: tuple,
        bounds: Optional[tuple] = None,
    ) -> None:
        """Record that the registry *created* a metric (even if it is never
        mutated) — empty metrics still appear in live snapshots, so replay
        must create them in the same order."""
        record: dict[str, Any] = {
            "t": "m", "k": kind, "n": name, "l": [[k, v] for k, v in labelkey],
        }
        if bounds is not None:
            record["b"] = list(bounds)
        self.emit(record)

    # -- persistence ----------------------------------------------------------------

    def getvalue(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def save(self, path: str) -> None:
        with journal_open(path, "w") as fh:
            fh.write(self.getvalue())

    @property
    def records(self) -> list[dict]:
        return [decode_record(line) for line in self.lines]


# -- file I/O -----------------------------------------------------------------------


class _GzipJournalFile(io.TextIOWrapper):
    """Deterministic gzip text writer: the member header carries no
    filename and ``mtime=0``, so identical records always produce
    byte-identical ``.jsonl.gz`` files (the replay/whatif determinism
    gates ``cmp`` compressed journals directly)."""

    def __init__(self, path: str):
        import gzip

        self._raw = open(path, "wb")
        try:
            self._gz = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0
            )
        except Exception:
            self._raw.close()
            raise
        super().__init__(self._gz, encoding="utf-8", newline="")

    def close(self) -> None:
        try:
            super().close()  # flushes + writes the gzip trailer
        finally:
            # GzipFile.close() leaves the underlying fileobj open
            if not self._raw.closed:
                self._raw.close()


def journal_open(path: str, mode: str = "r"):
    """Open a journal path for text I/O; ``.gz`` paths are transparently
    gzip-compressed (canonical line encoding unchanged, so replay stays
    byte-identical after a round trip)."""
    if not path.endswith(".gz"):
        return open(path, mode)
    if mode.startswith("r"):
        import gzip

        return gzip.open(path, "rt", encoding="utf-8")
    if mode.startswith("w"):
        return _GzipJournalFile(path)
    raise ValueError(f"unsupported journal open mode {mode!r}")


# -- reading ------------------------------------------------------------------------


def synthesize_partial_footer(records: list[dict]) -> dict:
    """Best-effort footer for a truncated journal (no footer record).

    ``virtual_end``/``makespan`` are the latest timestamp any surviving
    event carries — a lower bound on the real run's, which is the honest
    reconstruction for a crashed or in-flight run. ``partial: true``
    marks every downstream view as reconstructed.
    """
    opened = closed = 0
    last = 0.0
    for rec in records[1:]:
        t = rec.get("t")
        if t == "so":
            opened += 1
            last = max(last, rec.get("st", 0.0))
        elif t == "sc":
            closed += 1
            last = max(last, rec.get("end", 0.0))
        elif t in ("s", "tls", "fr"):
            last = max(last, rec.get("tm", 0.0))
        elif t == "tli":
            last = max(last, rec.get("t1", 0.0))
    return {
        "t": "footer",
        "partial": True,
        "events": len(records) - 1,
        "spans_opened": opened,
        "spans_closed": closed,
        "virtual_end": last,
        "makespan": last,
        "trace_records": 0,
        "trace_dropped": 0,
        "trace_max_records": None,
    }


def read_journal(lines: Iterable[str], *, allow_partial: bool = False) -> list[dict]:
    """Decode + validate a journal: header first, known schema, footer last.

    ``allow_partial=True`` accepts a truncated journal (crashed or
    in-flight run): decoding stops at the first torn line, and a
    synthesized ``partial: true`` footer closes the record stream at the
    last complete event. The header is always validated strictly.
    """
    records = []
    for line in lines:
        if not line.strip():
            continue
        try:
            records.append(decode_record(line))
        except JournalError:
            if allow_partial:
                break  # torn trailing write: keep everything before it
            raise
    if not records:
        raise JournalError("empty journal")
    header = records[0]
    if header.get("t") != "header":
        raise JournalError("journal does not start with a header record")
    schema = header.get("schema", "")
    if schema not in JOURNAL_SCHEMAS:
        raise JournalError(
            f"unsupported journal schema {schema!r} (expected one of {JOURNAL_SCHEMAS})"
        )
    if records[-1].get("t") != "footer":
        if not allow_partial:
            raise JournalError(
                "journal has no footer record (truncated run?); pass "
                "--allow-partial for a best-effort reconstruction up to "
                "the last complete event"
            )
        records.append(synthesize_partial_footer(records))
    return records


def load_journal(path: str, *, allow_partial: bool = False) -> list[dict]:
    with journal_open(path) as fh:
        return read_journal(fh, allow_partial=allow_partial)


# -- seeded synthetic regression -----------------------------------------------------


def bucket_slowdown_from_env() -> Optional[tuple[str, float]]:
    """Parse ``REPRO_OBS_SLOWDOWN=<blame-bucket>=<factor>``.

    Returns None when the variable is unset *or* names something that is
    not a blame bucket (the workload-name form belongs to
    ``benchmarks/bench_obs.py`` and must not trigger here).
    """
    raw = os.environ.get("REPRO_OBS_SLOWDOWN", "")
    if not raw:
        return None
    bucket, _, factor = raw.partition("=")
    if bucket not in BUCKETS:
        return None
    try:
        return bucket, float(factor)
    except ValueError:
        raise SystemExit(
            f"REPRO_OBS_SLOWDOWN must be 'bucket=factor', got {raw!r}"
        ) from None


def seed_bucket_slowdown(records: list[dict], bucket: str, factor: float) -> list[dict]:
    """Dilate a journal's virtual timeline: ``bucket`` work takes ``factor``×.

    Thin wrapper over :func:`dilate_bucket_charges` for the historical
    single-bucket form — byte-for-byte identical output to the original
    seeded-regression generator (the ``explain`` self-test and the
    ``whatif`` prediction-error gate both depend on that).
    """
    return dilate_bucket_charges(records, {bucket: factor})


def dilate_bucket_charges(records: list[dict], factors: dict[str, float]) -> list[dict]:
    """Dilate a journal's virtual timeline: bucket ``b`` work takes
    ``factors[b]``× longer, for any set of blame buckets at once.

    For every closed span with ``seconds`` charged to a factored bucket,
    an extra ``(factor - 1) * seconds`` of virtual time is inserted at the
    span's original end. All timestamps are then remapped through the
    monotone ``T(t) = t + sum(inserted_i for end_i <= t)`` —
    order-preserving, so the journal stays causally valid — and each
    factored bucket's blame charges are scaled to match. The footer's
    ``virtual_end`` and ``makespan`` grow by the total inserted time:
    exactly the signature the real regressions would leave, which the
    ``explain`` self-test must attribute back to those buckets and the
    ``whatif`` engine uses as the executable ground truth for composed
    bucket scenarios. (Factors below 1.0 shrink the timeline instead —
    the counterfactual for *faster* hardware.)
    """
    for bucket in factors:
        if bucket not in BUCKETS:
            raise ValueError(f"unknown blame bucket {bucket!r}; pick from {BUCKETS}")
    for bucket, factor in factors.items():
        if factor <= 0.0:
            raise ValueError(f"slowdown factor must be positive: {bucket}={factor}")

    # Pass 1: span intervals, attribution, and per-span factored charges.
    starts: dict[int, float] = {}
    ends: dict[int, float] = {}
    jobs: dict[int, str] = {}
    nodes: dict[int, int] = {}
    charged: dict[int, dict[str, float]] = {}
    for rec in records:
        if rec["t"] == "so":
            starts[rec["id"]] = rec["st"]
            if "j" in rec:
                jobs[rec["id"]] = rec["j"]
            if "nd" in rec:
                nodes[rec["id"]] = rec["nd"]
        elif rec["t"] == "sc":
            ends[rec["id"]] = rec["end"]
        elif rec["t"] == "b" and rec["bk"] in factors and rec.get("sp") is not None:
            per = charged.setdefault(rec["sp"], {})
            per[rec["bk"]] = per.get(rec["bk"], 0.0) + rec["v"]

    # Insertion points: (end_time, extra_seconds), merged per end time.
    # Per-span extras are also kept per bucket so straddler compensation
    # below can attribute absorbed waiting proportionally.
    inserted: dict[float, float] = {}
    own_extra: dict[int, float] = {}
    own_by_bucket: dict[int, dict[str, float]] = {}
    total_by_bucket: dict[str, float] = {}
    for span_id, per in charged.items():
        end = ends.get(span_id)
        if end is None:
            continue
        extra = 0.0
        by_bucket: dict[str, float] = {}
        for bucket, seconds in per.items():
            if seconds <= 0.0:
                continue
            part = (factors[bucket] - 1.0) * seconds
            by_bucket[bucket] = part
            total_by_bucket[bucket] = total_by_bucket.get(bucket, 0.0) + part
            extra += part
        if not by_bucket:
            continue
        own_extra[span_id] = extra
        own_by_bucket[span_id] = by_bucket
        inserted[end] = inserted.get(end, 0.0) + extra
    points = sorted(inserted.items())

    def remap(t: float) -> float:
        shift = 0.0
        for end, extra in points:
            if end <= t:
                shift += extra
            else:
                break
        return t + shift

    # A span *straddling* another span's insertion point absorbs that
    # pause: its dilated duration grows beyond its own scaled charge. A
    # real bucket slowdown would charge that absorbed waiting to the
    # bucket too (the span was gated on the slowed resource), so emit a
    # compensating charge per straddling span — the critical-path rollup
    # then attributes the whole dilation to the seeded buckets instead of
    # leaking it into "other".
    residual: dict[int, float] = {}
    for span_id, start in starts.items():
        end = ends.get(span_id)
        if end is None:
            continue
        growth = (remap(end) - remap(start)) - (end - start)
        extra = growth - own_extra.get(span_id, 0.0)
        if extra > 1e-12 and span_id in jobs:
            residual[span_id] = extra

    def residual_shares(span_id: int) -> list[tuple[str, float]]:
        """Bucket attribution for one straddler's absorbed waiting:
        proportional to the span's own extras, falling back to the
        journal-wide inserted totals (deterministic BUCKETS order)."""
        weights = own_by_bucket.get(span_id) or total_by_bucket
        total = sum(weights.values())
        if total == 0.0:
            weights = {bucket: 1.0 for bucket in factors}
            total = float(len(weights))
        return [
            (bucket, weights[bucket] / total)
            for bucket in BUCKETS
            if weights.get(bucket)
        ]

    out: list[dict] = []
    new_starts: dict[int, float] = {}
    new_ends: dict[int, float] = {}
    added = 0
    last_closed: Optional[int] = None
    frames: list[dict] = []
    watch_window: Optional[float] = None
    for rec in records:
        rec = dict(rec)
        t = rec["t"]
        if t == "so":
            rec["st"] = new_starts[rec["id"]] = remap(rec["st"])
        elif t == "sc":
            rec["end"] = new_ends[rec["id"]] = remap(rec["end"])
            last_closed = rec["id"]
        elif t == "b":
            if rec["bk"] in factors:
                rec["v"] = rec["v"] * factors[rec["bk"]]
        elif t == "h":
            # The span.seconds observation emitted by _span_finished
            # immediately follows its "sc" record; keep it consistent
            # with the dilated span interval.
            if rec["n"] == "span.seconds" and last_closed is not None:
                sid = last_closed
                if sid in new_starts and sid in new_ends:
                    rec["v"] = new_ends[sid] - new_starts[sid]
        elif t == "s":
            rec["tm"] = remap(rec["tm"])
        elif t == "tls":
            rec["tm"] = remap(rec["tm"])
        elif t == "tli":
            rec["t0"] = remap(rec["t0"])
            rec["t1"] = remap(rec["t1"])
        elif t == "fr":
            rec["tm"] = remap(rec["tm"])
            frames.append(rec)
        elif t == "wcfg":
            watch_window = rec.get("win")
        elif t == "footer":
            if "virtual_end" in rec:
                rec["virtual_end"] = remap(rec["virtual_end"])
            if "makespan" in rec:
                rec["makespan"] = remap(rec["makespan"])
            if "events" in rec:
                rec["events"] = rec["events"] + added
            if len(factors) == 1:
                ((bucket, factor),) = factors.items()
                rec["seeded_slowdown"] = {"bucket": bucket, "factor": factor}
            else:
                rec["seeded_slowdown"] = {
                    "buckets": {b: factors[b] for b in sorted(factors)}
                }
        out.append(rec)
        if t == "sc" and rec["id"] in residual:
            sid = rec["id"]
            for bucket, share in residual_shares(sid):
                charge: dict = {
                    "t": "b", "j": jobs[sid], "bk": bucket,
                    "v": residual[sid] * share, "sp": sid,
                }
                if sid in nodes:
                    charge["nd"] = nodes[sid]
                out.append(charge)
                added += 1
    if frames:
        # Live-dashboard frames sit on the dilated timeline now: the
        # watchdog verdicts and ETA projections must be recomputed, so a
        # slowed journal trips STALLED exactly as a genuinely slow run
        # would. (Frame dicts are shared with `out` — updated in place.)
        from repro.obs.live import DEFAULT_WINDOW, refresh_frame_projections

        window = DEFAULT_WINDOW if watch_window is None else watch_window
        refresh_frame_projections(frames, window)
    return out
