"""Model-fidelity audit: does modeled virtual cost track real host cost?

The cost model charges virtual seconds per record/byte
(:class:`repro.cluster.spec.CostModel`); the host profiler
(:mod:`repro.obs.hostprof`) measures real nanoseconds for the same
operators. This module joins the two clocks:

* :func:`fidelity_dict` / :func:`render_fidelity` — per-operator ratio
  tables (host ns per modeled virtual second). The labels of the
  engine-bucket host frames are chosen to match span names
  (``map:words``, ``reduce``, ...), so the join needs no extra mapping.
  An operator whose ratio deviates from the run median by more than a
  tolerance *factor* gets a DRIFT verdict — the loud failure mode for a
  cost constant that no longer tracks real compute (cf. Ivanov et al.,
  PAPERS.md: modeled substrate costs silently diverging from measured).
* :func:`fit_cost_constants` / :func:`calibration_dict` — a least-squares
  re-fit of the per-record/per-byte compute constants from measured
  ``(records, bytes, self_ns)`` samples. The proposal preserves the
  total modeled compute over the measured fleet (the virtual unit is the
  paper's calibration, not ours to move), so calibration corrects the
  record:byte *composition*, never the absolute scale. It is emitted as
  a proposed-constants diff and **never applied**.

Ratios compare host self-ns of an operator's frames against the summed
virtual *durations* of the same-named spans. Span durations include
modeled waits (disk, network, contention), so the interesting signal is
an operator whose ratio is far from its peers', not the absolute value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.obs.hostprof import DATAPLANE, ENGINE, HOSTPROF_SCHEMA, STORAGE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.spec import CostModel
    from repro.obs.spans import Tracer

FIDELITY_SCHEMA = "repro.obs.fidelity/v1"
CALIBRATION_SCHEMA = "repro.obs.calibration/v1"

#: default drift tolerance: a factor (not a share) — an operator whose
#: host-per-virtual ratio is >4x or <1/4x the run median draws DRIFT
DEFAULT_RATIO_TOLERANCE = 4.0


# -- fidelity audit ----------------------------------------------------------------


def _virtual_by_operator(tracer: "Tracer") -> dict[str, list[float]]:
    """Sum finished span durations by span name -> [seconds, count]."""
    out: dict[str, list[float]] = {}
    for span in tracer.finished_spans():
        entry = out.setdefault(span.name, [0.0, 0])
        entry[0] += span.duration
        entry[1] += 1
    return out


def fidelity_dict(
    tracer: "Tracer",
    snapshot: dict,
    workload: str,
    engine: str,
    tolerance: float = DEFAULT_RATIO_TOLERANCE,
) -> dict:
    """Join host ns against modeled virtual seconds per operator/bucket."""
    if snapshot.get("schema") != HOSTPROF_SCHEMA:
        raise ValueError(f"not a hostprof snapshot: {snapshot.get('schema')!r}")
    if tolerance <= 1.0:
        raise ValueError(f"ratio tolerance must be > 1 (a factor): {tolerance}")
    virtual = _virtual_by_operator(tracer)
    host_rows = [
        row
        for row in snapshot["flat"]
        if row["bucket"] in (ENGINE, STORAGE, DATAPLANE)
        and not row["label"].startswith("process:")
    ]
    operators = []
    ratios = []
    for row in host_rows:
        vsec, vcount = virtual.get(row["label"], (0.0, 0))
        ratio = (row["self_ns"] / vsec) if vsec > 0 else None
        if ratio is not None and ratio > 0:
            ratios.append(ratio)
        operators.append(
            {
                "operator": row["label"],
                "bucket": row["bucket"],
                "host_ns": row["self_ns"],
                "calls": row["calls"],
                "records": row["records"],
                "virtual_seconds": round(vsec, 6),
                "virtual_spans": vcount,
                "ns_per_virtual_second": round(ratio, 3) if ratio is not None else None,
            }
        )
    ratios.sort()
    median = ratios[len(ratios) // 2] if ratios else 0.0
    drifting = []
    for op in operators:
        ratio = op["ns_per_virtual_second"]
        if ratio is None or median <= 0:
            op["verdict"] = "host-only" if ratio is None else "ok"
            continue
        off = ratio / median if ratio >= median else median / ratio
        op["verdict"] = "DRIFT" if off > tolerance else "ok"
        if op["verdict"] == "DRIFT":
            drifting.append(op["operator"])
    operators.sort(key=lambda op: (-op["host_ns"], op["operator"]))

    # Bucket-level join: virtual compute vs the host buckets that run user
    # + framework code, virtual disk vs host storage staging.
    jobs = tracer.blame.jobs()
    blame = tracer.blame.job_summary(jobs[0]) if jobs else {}
    host_buckets = snapshot["buckets"]
    compute_like_ns = host_buckets.get(ENGINE, 0) + host_buckets.get(DATAPLANE, 0)
    buckets = {
        "virtual_compute_seconds": round(
            blame.get("compute", 0.0) + blame.get("atomic", 0.0), 6
        ),
        "host_engine_dataplane_ns": compute_like_ns,
        "virtual_disk_seconds": round(blame.get("disk", 0.0), 6),
        "host_storage_ns": host_buckets.get(STORAGE, 0),
    }
    return {
        "schema": FIDELITY_SCHEMA,
        "workload": workload,
        "engine": engine,
        "tolerance_factor": tolerance,
        "virtual_makespan": round(tracer.sim.now, 6),
        "host_total_ns": snapshot["total_ns"],
        "median_ns_per_virtual_second": round(median, 3),
        "drift": sorted(drifting),
        "operators": operators,
        "buckets": buckets,
    }


def render_fidelity(fid: dict) -> str:
    """Deterministic-layout ASCII ratio table (values are host noise)."""
    from repro.evaluation.report import render_table

    rows = []
    for op in fid["operators"]:
        ratio = op["ns_per_virtual_second"]
        rows.append(
            [
                op["operator"],
                op["bucket"],
                str(op["calls"]),
                f"{op['host_ns'] / 1e6:.2f}",
                f"{op['virtual_seconds']:.3f}",
                f"{ratio:,.0f}" if ratio is not None else "-",
                op["verdict"],
            ]
        )
    table = render_table(
        ["operator", "bucket", "calls", "host ms", "virtual s", "ns/vs", "verdict"],
        rows,
        title=(
            f"Model fidelity — {fid['workload']} on {fid['engine']} "
            f"(median {fid['median_ns_per_virtual_second']:,.0f} ns per "
            f"virtual second, drift beyond {fid['tolerance_factor']:g}x)"
        ),
    )
    verdict = (
        "fidelity OK — every joined operator within the tolerance band"
        if not fid["drift"]
        else "DRIFT in " + ", ".join(fid["drift"])
    )
    return f"{table}\n{verdict}"


# -- calibration fitter ------------------------------------------------------------


@dataclass
class CostFit:
    """Measured per-record/per-byte host cost and the proposed constants."""

    ns_per_record: float  # fitted A (host ns per real record)
    ns_per_byte: float  # fitted B (host ns per real logical byte)
    r_squared: float
    samples: int
    records: int
    nbytes: int
    current_cpu_per_record: float
    current_cpu_per_byte: float
    proposed_cpu_per_record: float
    proposed_cpu_per_byte: float
    degenerate: bool = False  # collinear units: ratio kept, only scale fit


def _engine_samples(snapshot: dict) -> list[tuple[int, int, int, str]]:
    """(records, nbytes, self_ns, label) rows usable for the fit."""
    return [
        (row["records"], row["nbytes"], row["self_ns"], row["label"])
        for row in snapshot["flat"]
        if row["bucket"] == ENGINE
        and not row["label"].startswith("process:")
        and (row["records"] > 0 or row["nbytes"] > 0)
    ]


def fit_cost_constants(
    samples: list[tuple[int, int, int, str]], cost: "CostModel"
) -> Optional[CostFit]:
    """Least-squares fit ``self_ns ~ A*records + B*nbytes`` -> proposal.

    Returns None when there is nothing to fit. The proposed constants are
    the fitted (A, B) rescaled by one common factor so the total modeled
    compute over the fitted samples is unchanged — see the module
    docstring for why absolute scale is pinned.
    """
    rows = [(n, b, ns) for n, b, ns, _ in samples if ns > 0 and (n > 0 or b > 0)]
    if not rows:
        return None
    snn = sum(n * n for n, _, _ in rows)
    snb = sum(n * b for n, b, _ in rows)
    sbb = sum(b * b for _, b, _ in rows)
    sny = sum(n * ns for n, _, ns in rows)
    sby = sum(b * ns for _, b, ns in rows)
    det = snn * sbb - snb * snb
    degenerate = det <= 1e-9 * max(snn * sbb, 1.0)
    if not degenerate:
        a = (sbb * sny - snb * sby) / det
        b = (snn * sby - snb * sny) / det
        if a < 0 or b < 0:
            degenerate = True  # collinear-noise artifact: keep the ratio
    if degenerate:
        # Fit a single scalar along the current record:byte composition.
        byte_weight = (
            cost.cpu_per_byte / cost.cpu_per_record if cost.cpu_per_record else 0.0
        )
        x2 = sum((n + b * byte_weight) ** 2 for n, b, _ in rows)
        xy = sum((n + b * byte_weight) * ns for n, b, ns in rows)
        a = xy / x2 if x2 else 0.0
        b = a * byte_weight
    predicted = [a * n + b * bb for n, bb, _ in rows]
    mean = sum(ns for _, _, ns in rows) / len(rows)
    ss_tot = sum((ns - mean) ** 2 for _, _, ns in rows)
    ss_res = sum((ns - p) ** 2 for (_, _, ns), p in zip(rows, predicted))
    r2 = 1.0 - (ss_res / ss_tot) if ss_tot > 0 else 1.0
    # Normalize: keep the total modeled compute over the fitted samples.
    v_cur = sum(
        n * cost.cpu_per_record + bb * cost.cpu_per_byte for n, bb, _ in rows
    )
    v_fit = sum(predicted)
    scale = v_cur / v_fit if v_fit > 0 else 0.0
    return CostFit(
        ns_per_record=a,
        ns_per_byte=b,
        r_squared=r2,
        samples=len(rows),
        records=sum(n for n, _, _ in rows),
        nbytes=sum(bb for _, bb, _ in rows),
        current_cpu_per_record=cost.cpu_per_record,
        current_cpu_per_byte=cost.cpu_per_byte,
        proposed_cpu_per_record=a * scale,
        proposed_cpu_per_byte=b * scale,
        degenerate=degenerate,
    )


def calibration_dict(fit: CostFit, sources: list[str]) -> dict:
    def _rel(cur: float, new: float) -> Optional[float]:
        return round((new - cur) / cur, 6) if cur else None

    return {
        "schema": CALIBRATION_SCHEMA,
        "sources": sorted(sources),
        "samples": fit.samples,
        "records": fit.records,
        "nbytes": fit.nbytes,
        "degenerate": fit.degenerate,
        "r_squared": round(fit.r_squared, 6),
        "measured": {
            "ns_per_record": round(fit.ns_per_record, 6),
            "ns_per_byte": round(fit.ns_per_byte, 9),
        },
        "current": {
            "cpu_per_record": fit.current_cpu_per_record,
            "cpu_per_byte": fit.current_cpu_per_byte,
        },
        "proposed": {
            "cpu_per_record": fit.proposed_cpu_per_record,
            "cpu_per_byte": fit.proposed_cpu_per_byte,
        },
        "rel_change": {
            "cpu_per_record": _rel(
                fit.current_cpu_per_record, fit.proposed_cpu_per_record
            ),
            "cpu_per_byte": _rel(fit.current_cpu_per_byte, fit.proposed_cpu_per_byte),
        },
    }


def render_calibration(cal: dict) -> str:
    """The proposed-constants diff (display only — never applied)."""
    lines = [
        f"calibration over {cal['samples']} operator rows "
        f"({cal['records']:,} records, {cal['nbytes']:,} logical bytes) "
        f"from {len(cal['sources'])} run(s); fit R^2 = {cal['r_squared']:.4f}"
        + (" [degenerate: record/byte units collinear, ratio kept]"
           if cal["degenerate"] else ""),
        f"measured host cost: {cal['measured']['ns_per_record']:.1f} ns/record, "
        f"{cal['measured']['ns_per_byte']:.3f} ns/byte",
        "",
        "proposed CostModel constants "
        "(normalized to preserve total modeled compute — NOT applied):",
        "--- repro/cluster/spec.py CostModel (current)",
        "+++ proposed (measured composition)",
    ]
    for key in ("cpu_per_record", "cpu_per_byte"):
        cur = cal["current"][key]
        new = cal["proposed"][key]
        rel = cal["rel_change"][key]
        rel_text = f"{100.0 * rel:+.1f}%" if rel is not None else "n/a"
        lines.append(f"-    {key}: float = {cur:.6e}")
        lines.append(f"+    {key}: float = {new:.6e}   # {rel_text}")
    return "\n".join(lines)
