"""Node-local files and location references.

HAMR's locality-awareness (§3.3): any flowlet may write data to its node's
local disk and pass a small :class:`LocationRef` downstream instead of the
bulk data; a later flowlet routes back to the owning node (by partitioning
on the reference) and reads the data locally. K-Means (Alg. 1) and
Classification use exactly this pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.errors import StorageError
from repro.common.sizeof import logical_sizeof
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node


@dataclass
class LocalFile:
    """A named file on one node's local disks."""

    node_id: int
    name: str
    records: list[Any]
    nbytes: int  # pre-scale logical bytes

    @property
    def nrecords(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class LocationRef:
    """A small handle naming data at rest on a node (file + slice).

    This is the paper's "small data e.g. index or identifier" passed
    between flowlets in place of the real payload. Its logical size is a
    fixed handful of bytes regardless of what it points to.
    """

    node_id: int
    file_name: str
    offset: int = 0
    length: int = -1  # -1 means "to end of file"

    #: logical wire size of a reference (two ints + a short name)
    logical_size = 24


class LocalFS:
    """Per-node local file namespace with charged read/write processes."""

    def __init__(self, cluster: Cluster, record_size_fn=logical_sizeof):
        self.cluster = cluster
        self.cost = cluster.cost
        self._files: dict[tuple[int, str], LocalFile] = {}
        self._record_size = record_size_fn

    # -- namespace ---------------------------------------------------------------

    def exists(self, node: Node, name: str) -> bool:
        return (node.node_id, name) in self._files

    def get_file(self, node_id: int, name: str) -> LocalFile:
        try:
            return self._files[(node_id, name)]
        except KeyError:
            raise StorageError(f"LocalFS: no file {name!r} on node {node_id}") from None

    def files_on(self, node: Node) -> list[str]:
        return sorted(name for (nid, name) in self._files if nid == node.node_id)

    def delete(self, node: Node, name: str) -> None:
        self._files.pop((node.node_id, name), None)

    # -- ingest (free) -------------------------------------------------------------

    def ingest(self, node: Node, name: str, records: Iterable[Any]) -> LocalFile:
        """Place records on ``node`` without charging time (pre-run state)."""
        key = (node.node_id, name)
        if key in self._files:
            raise StorageError(f"LocalFS: file {name!r} exists on node {node.node_id}")
        recs = list(records)
        nbytes = sum(self._record_size(r) for r in recs)
        file = LocalFile(node.node_id, name, recs, nbytes)
        self._files[key] = file
        return file

    # -- synchronous placement (costs charged by the caller) ---------------------

    def place(self, node: Node, name: str, records: Iterable[Any]) -> tuple["LocationRef", int]:
        """Write/append synchronously; returns ``(ref, nbytes)``.

        Used by :class:`~repro.core.context.TaskContext`, which defers the
        disk-time charge to the surrounding engine task. ``nbytes`` is the
        pre-scale logical size the caller must charge.
        """
        recs = list(records)
        nbytes = sum(self._record_size(r) for r in recs)
        key = (node.node_id, name)
        file = self._files.get(key)
        if file is None:
            file = LocalFile(node.node_id, name, [], 0)
            self._files[key] = file
        offset = len(file.records)
        file.records.extend(recs)
        file.nbytes += nbytes
        return LocationRef(node.node_id, name, offset=offset, length=len(recs)), nbytes

    def resolve(self, node: Node, ref: LocationRef) -> tuple[list[Any], int]:
        """Resolve a ref synchronously; returns ``(records, nbytes)`` for the
        caller to charge as a deferred disk read."""
        if ref.node_id != node.node_id:
            raise StorageError(
                f"LocationRef for node {ref.node_id} resolved on node {node.node_id}; "
                "route the reference back to its owner first"
            )
        file = self.get_file(ref.node_id, ref.file_name)
        if ref.length < 0:
            records = file.records[ref.offset :]
        else:
            records = file.records[ref.offset : ref.offset + ref.length]
        nbytes = sum(self._record_size(r) for r in records)
        return list(records), nbytes

    # -- charged processes -----------------------------------------------------------

    def write(self, node: Node, name: str, records: Iterable[Any]):
        """Process: write (or append to) a local file, charging disk time.

        Returns a :class:`LocationRef` spanning the newly written records.
        """
        recs = list(records)
        nbytes = sum(self._record_size(r) for r in recs)
        key = (node.node_id, name)
        file = self._files.get(key)
        if file is None:
            file = LocalFile(node.node_id, name, [], 0)
            self._files[key] = file
        offset = len(file.records)
        file.records.extend(recs)
        file.nbytes += nbytes
        yield node.disk_write(nbytes)
        return LocationRef(node.node_id, name, offset=offset, length=len(recs))

    def read(self, node: Node, name: str):
        """Process: read a whole local file on its owning node."""
        file = self.get_file(node.node_id, name)
        yield node.disk_read(file.nbytes)
        return list(file.records)

    def read_ref(self, node: Node, ref: LocationRef):
        """Process: resolve a :class:`LocationRef` (must run on the owning node)."""
        if ref.node_id != node.node_id:
            raise StorageError(
                f"LocationRef for node {ref.node_id} resolved on node {node.node_id}; "
                "route the reference back to its owner first"
            )
        file = self.get_file(ref.node_id, ref.file_name)
        if ref.length < 0:
            records = file.records[ref.offset :]
        else:
            records = file.records[ref.offset : ref.offset + ref.length]
        nbytes = sum(self._record_size(r) for r in records)
        yield node.disk_read(nbytes)
        return list(records)
