"""A per-node in-memory key-value store.

§5.2/§7 of the paper: HAMR builds graphs "into memory distributedly (one
JVM per node ... all tasks can share memory)" and plans a *key-value
store* component. This module is that component: each node hosts a shard;
keys are routed to shards by the cluster's partitioner; values survive
across flowlets and across iterations (PageRank's adjacency lists,
KCliques' relationship structures live here).

Memory is accounted against the owning node; a put that cannot fit raises
:class:`MemoryBudgetExceeded` — which is exactly how the paper describes
Hadoop dying on large KCliques graphs while HAMR, sharing one store per
node, survives.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.common.errors import StorageError
from repro.common.partitioner import Partitioner
from repro.common.sizeof import pair_size
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node


class KVStore:
    """A distributed in-memory store sharded over the cluster's workers."""

    def __init__(self, cluster: Cluster, name: str = "kvstore", record_size_fn=pair_size):
        self.cluster = cluster
        self.name = name
        self._shards: dict[int, dict[Any, Any]] = {
            node.node_id: {} for node in cluster.workers
        }
        # Pre-scale bytes charged per key (entries may use different size
        # divisors, so the exact charge must be remembered for release).
        self._charged: dict[int, dict[Any, float]] = {
            node.node_id: {} for node in cluster.workers
        }
        self._pair_size = record_size_fn

    # -- shard access (engine code runs these on the owning node) -------------

    def shard(self, node: Node) -> dict[Any, Any]:
        try:
            return self._shards[node.node_id]
        except KeyError:
            raise StorageError(f"{self.name}: node {node.node_id} hosts no shard") from None

    def put(self, node: Node, key: Any, value: Any, size_divisor: float = 1.0) -> None:
        """Store ``key -> value`` in ``node``'s shard, accounting memory.

        Replacing an existing key first releases the old entry's bytes.
        ``size_divisor`` discounts key-space-bounded entries under the
        scale model (a centroid is one object no matter the data size).
        Raises :class:`MemoryBudgetExceeded` when the node is out of budget.
        """
        shard = self.shard(node)
        charged = self._charged[node.node_id]
        if key in shard:
            node.free(charged.pop(key))
        nbytes = self._pair_size(key, value) / size_divisor
        node.memory.force_allocate(node.cost.scaled_bytes(nbytes))
        charged[key] = nbytes
        shard[key] = value

    def get(self, node: Node, key: Any, default: Any = None) -> Any:
        return self.shard(node).get(key, default)

    def contains(self, node: Node, key: Any) -> bool:
        return key in self.shard(node)

    def delete(self, node: Node, key: Any) -> None:
        shard = self.shard(node)
        if key in shard:
            shard.pop(key)
            node.free(self._charged[node.node_id].pop(key))

    def items(self, node: Node) -> Iterator[tuple[Any, Any]]:
        # Sorted iteration keeps downstream processing deterministic.
        shard = self.shard(node)
        return iter(sorted(shard.items(), key=lambda kv: repr(kv[0])))

    def local_size(self, node: Node) -> int:
        return len(self.shard(node))

    def local_bytes(self, node: Node) -> float:
        """Pre-scale logical bytes charged for ``node``'s shard."""
        return sum(self._charged[node.node_id].values())

    # -- cluster-wide views ------------------------------------------------------

    def owner(self, key: Any, partitioner: Partitioner) -> Node:
        """The worker whose shard owns ``key`` under ``partitioner``."""
        partition = partitioner.partition(key)
        return self.cluster.owner_of_partition(partition, partitioner.num_partitions)

    def total_entries(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def all_items(self) -> Iterator[tuple[Any, Any]]:
        """Every (key, value) across shards — verification/reporting only."""
        for node_id in sorted(self._shards):
            yield from sorted(self._shards[node_id].items(), key=lambda kv: repr(kv[0]))

    def clear(self) -> None:
        """Drop everything, releasing all accounted memory."""
        for node in self.cluster.workers:
            shard = self._shards[node.node_id]
            if shard:
                node.free(sum(self._charged[node.node_id].values()))
                self._charged[node.node_id].clear()
                shard.clear()

    # -- checkpointing (§7's "performance optimization" on the store) -----------

    def checkpoint(self, localfs, name: str):
        """Process: persist every shard to its node's local disk.

        Charges one serialized disk write per node; the store stays
        resident. Lets iterative drivers (PageRank) snapshot state between
        iterations and recover without replaying the build phase.
        """
        for node in self.cluster.workers:
            items = list(self.items(node))
            if localfs.exists(node, name):
                localfs.delete(node, name)
            ref, nbytes = localfs.place(node, name, items)
            yield node.compute(node.cost.serde_cost(nbytes))
            yield node.disk_write(nbytes)

    def restore(self, localfs, name: str):
        """Process: reload shards from a checkpoint (inverse of
        :meth:`checkpoint`), replacing current contents."""
        self.clear()
        for node in self.cluster.workers:
            if not localfs.exists(node, name):
                continue
            items = yield from localfs.read(node, name)
            for key, value in items:
                self.put(node, key, value)
