"""An HDFS-like distributed file system.

Files are sequences of records chunked into blocks; each block is
replicated on ``cost.hdfs_replication`` workers, placed round-robin with
distinct replicas per block. Readers get per-block :class:`InputSplit`
objects carrying the preferred (replica-holding) nodes, which is what both
engines use for data-local task placement — Hadoop's "assign computation to
the node closest to the data" (§3.3).

Block boundaries are computed in *scaled* bytes, so the number of splits —
and hence Hadoop's map-task count — matches the modeled data volume, not
the (smaller) real volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import StorageError
from repro.common.sizeof import logical_sizeof
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.dataplane.batch import BatchBuilder, RecordBatch
from repro.obs import DISK, NETWORK
from repro.obs import hostprof as _hostprof


@dataclass
class Block:
    """One DFS block: real records plus logical size and replica placement."""

    block_id: int
    records: list[Any]
    nbytes: int  # pre-scale logical bytes
    replica_nodes: list[int]  # node ids holding a replica

    @property
    def nrecords(self) -> int:
        return len(self.records)


@dataclass
class DistributedFile:
    """A named DFS file: an ordered list of blocks."""

    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    @property
    def nrecords(self) -> int:
        return sum(block.nrecords for block in self.blocks)

    def records(self) -> Iterator[Any]:
        for block in self.blocks:
            yield from block.records


@dataclass(frozen=True)
class InputSplit:
    """The unit of loader/map parallelism: one block plus locality hints."""

    file_name: str
    block: Block

    @property
    def preferred_nodes(self) -> list[int]:
        return self.block.replica_nodes

    @property
    def nbytes(self) -> int:
        return self.block.nbytes

    @property
    def nrecords(self) -> int:
        return self.block.nrecords


class DFS:
    """The cluster-wide block store."""

    def __init__(self, cluster: Cluster, record_size_fn=logical_sizeof):
        self.cluster = cluster
        self.cost = cluster.cost
        self._files: dict[str, DistributedFile] = {}
        self._next_block_id = 0
        self._placement_cursor = 0
        self._record_size = record_size_fn
        # Metrics
        self.bytes_written = 0  # scaled
        self.bytes_read = 0  # scaled

    # -- namespace -------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def get_file(self, name: str) -> DistributedFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"DFS: no such file {name!r}") from None

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # -- ingest (free, pre-run data placement) ----------------------------------

    def ingest(self, name: str, records: Iterable[Any]) -> DistributedFile:
        """Place ``records`` as a new file without charging any time.

        Models data already resident in HDFS before the measured job starts.
        """
        if name in self._files:
            raise StorageError(f"DFS: file {name!r} already exists")
        prof = _hostprof.current()
        if prof is not None:
            prof.push(_hostprof.STORAGE, "dfs.ingest")
        file = DistributedFile(name)
        self._files[name] = file
        builder = BatchBuilder(
            self.cost.hdfs_block_size,
            scale_fn=self.cost.scaled_bytes,
            sizer=self._record_size,
        )
        for record in records:
            sealed = builder.add(record)
            if sealed is not None:
                self._seal_block(file, sealed.records, sealed.nbytes)
        last = builder.drain()
        if last is not None:
            self._seal_block(file, last.records, last.nbytes)
        elif not file.blocks:
            self._seal_block(file, [], 0)
        if prof is not None:
            prof.units(builder.records_added, sum(b.nbytes for b in file.blocks))
            prof.pop()
        return file

    def _seal_block(self, file: DistributedFile, records: list[Any], nbytes: int) -> None:
        replicas = self._place_replicas()
        block = Block(self._next_block_id, records, nbytes, replicas)
        self._next_block_id += 1
        file.blocks.append(block)

    def _place_replicas(self) -> list[int]:
        workers = self.cluster.workers
        replication = min(self.cost.hdfs_replication, len(workers))
        start = self._placement_cursor
        self._placement_cursor = (self._placement_cursor + 1) % len(workers)
        return [workers[(start + i) % len(workers)].node_id for i in range(replication)]

    # -- charged operations (simulation processes: spawn or yield them) ---------

    def read_block(
        self,
        block: Block,
        reader: Node,
        cost_divisor: float = 1.0,
        job: str | None = None,
        span=None,
    ):
        """Process: read one block at ``reader``, local if it holds a replica.

        Returns the block's records. A remote read charges the replica
        holder's disk plus a network transfer; a local read only the disk.
        ``cost_divisor`` discounts charges for aggregated (key-space-
        bounded) files under the scale model. ``span`` attributes the
        charges to the calling task's span. The records come back as a
        :class:`~repro.dataplane.RecordBatch` carrying the block's cached
        size, so consumers never re-size them.
        """
        nbytes = block.nbytes / cost_divisor
        self.bytes_read += int(self.cost.scaled_bytes(nbytes))
        obs, sim = reader.obs, reader.sim
        if reader.node_id in block.replica_nodes:
            obs.count("dfs.local_reads", node=reader.node_id)
            t0 = sim.now
            yield reader.disk_read(nbytes)
            if obs.enabled and job is not None:
                obs.charge(job, DISK, sim.now - t0, node=reader.node_id, span=span)
        else:
            obs.count("dfs.remote_reads", node=reader.node_id)
            holder = self._node_by_id(block.replica_nodes[0])
            t0 = sim.now
            yield holder.disk_read(nbytes)
            t1 = sim.now
            yield self.cluster.network.send(holder, reader, nbytes)
            if obs.enabled and job is not None:
                obs.charge(job, DISK, t1 - t0, node=reader.node_id, span=span)
                obs.charge(job, NETWORK, sim.now - t1, node=reader.node_id, span=span)
        return RecordBatch(block.records, nbytes=block.nbytes)

    def write(
        self,
        name: str,
        records: Sequence[Any],
        writer: Node,
        cost_divisor: float = 1.0,
        job: str | None = None,
        span=None,
    ):
        """Process: write a new file from ``writer``, with pipelined replication.

        Charges: local disk write for the first replica, plus a network send
        and remote disk write per additional replica (HDFS write pipeline).
        ``cost_divisor`` discounts charges for aggregated output files.
        ``records`` may be any sequence, including a
        :class:`~repro.dataplane.RecordBatch`. Returns the created
        :class:`DistributedFile`.
        """
        if name in self._files:
            raise StorageError(f"DFS: file {name!r} already exists")
        file = DistributedFile(name)
        self._files[name] = file

        builder = BatchBuilder(
            self.cost.hdfs_block_size,
            scale_fn=lambda nbytes: self.cost.scaled_bytes(nbytes / cost_divisor),
            sizer=self._record_size,
        )
        for record in records:
            sealed = builder.add(record)
            if sealed is not None:
                yield from self._write_block(
                    file, sealed.records, sealed.nbytes, writer, cost_divisor, job, span
                )
        last = builder.drain()
        if last is not None:
            yield from self._write_block(
                file, last.records, last.nbytes, writer, cost_divisor, job, span
            )
        elif not file.blocks:
            yield from self._write_block(file, [], 0, writer, cost_divisor, job, span)
        return file

    def _write_block(
        self,
        file: DistributedFile,
        records: list[Any],
        nbytes: int,
        writer: Node,
        cost_divisor: float = 1.0,
        job: str | None = None,
        span=None,
    ):
        charge_bytes = nbytes / cost_divisor
        replicas = self._place_replicas()
        # Prefer the writer itself as first replica (HDFS local-write rule).
        if writer.node_id in [w.node_id for w in self.cluster.workers]:
            if writer.node_id in replicas:
                replicas.remove(writer.node_id)
            else:
                replicas.pop()
            replicas.insert(0, writer.node_id)
        block = Block(self._next_block_id, list(records), nbytes, replicas)
        self._next_block_id += 1
        self.bytes_written += int(self.cost.scaled_bytes(charge_bytes)) * len(replicas)

        first = self._node_by_id(replicas[0])
        obs, sim = writer.obs, self.cluster.sim
        t0 = sim.now
        events = [first.disk_write(charge_bytes)]
        previous = first
        for node_id in replicas[1:]:
            node = self._node_by_id(node_id)
            events.append(self.cluster.network.send(previous, node, charge_bytes))
            events.append(node.disk_write(charge_bytes))
            previous = node
        yield self.cluster.sim.all_of(events)
        if obs.enabled:
            obs.count("dfs.blocks_written", node=writer.node_id)
            obs.count("dfs.replica_bytes", int(charge_bytes) * len(replicas), node=writer.node_id)
            if job is not None:
                # The write pipeline overlaps replica disk writes with the
                # inter-replica sends; the critical path is disk-bound, so
                # the elapsed wait is blamed to DISK.
                obs.charge(job, DISK, sim.now - t0, node=writer.node_id, span=span)
        file.blocks.append(block)

    def concat(self, name: str, part_names: Sequence[str]) -> DistributedFile:
        """Create a file aliasing the blocks of existing files, in order.

        Free of charge — it is a namespace operation, like exposing a
        directory of reducer part files as one logical output.
        """
        if name in self._files:
            raise StorageError(f"DFS: file {name!r} already exists")
        file = DistributedFile(name)
        for part in part_names:
            file.blocks.extend(self.get_file(part).blocks)
        self._files[name] = file
        return file

    # -- splits ------------------------------------------------------------------

    def splits(self, name: str) -> list[InputSplit]:
        file = self.get_file(name)
        return [InputSplit(name, block) for block in file.blocks]

    def _node_by_id(self, node_id: int) -> Node:
        return self.cluster.nodes[node_id]
