"""Spill-run management.

Both engines spill in-memory collections to local disk when they outgrow
the memory budget: HAMR's reduce flowlet "will be spilled to local disks"
(§2), Hadoop's map output always stages through sorted on-disk runs. A
:class:`SpillRun` is one such on-disk run; the manager charges disk plus
serialization time and adjusts the node's memory account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.common.errors import StorageError
from repro.common.sizeof import logical_sizeof
from repro.cluster.node import Node
from repro.obs import COMPUTE, DISK, EDGE_PRODUCE, EDGE_SPILL, Span
from repro.obs import hostprof as _hostprof


@dataclass
class SpillRun:
    """One on-disk run of records belonging to a node."""

    run_id: int
    node_id: int
    records: list[Any]
    nbytes: int  # pre-scale logical bytes
    sorted_by_key: bool = False
    freed: bool = False
    #: id of the span that wrote this run (0 when untraced); read-backs
    #: emit a write -> read-back causal edge from it
    trace_span: int = 0

    @property
    def nrecords(self) -> int:
        return len(self.records)


class SpillManager:
    """Creates, reads back and frees spill runs on one node's disks."""

    def __init__(self, node: Node, record_size_fn=logical_sizeof, job: str | None = None):
        self.node = node
        self.cost = node.cost
        self._next_id = 0
        self._live: dict[int, SpillRun] = {}
        self._record_size = record_size_fn
        #: blame/span attribution for charges this manager makes
        self.job = job
        #: span id of the last spill/read-back this manager performed
        #: (0 when untraced) — callers use it to emit barrier edges
        self.last_span_id = 0
        # Metrics (scaled bytes)
        self.bytes_spilled = 0
        self.bytes_read_back = 0
        self.runs_created = 0

    def spill(
        self,
        records: Sequence[Any],
        sorted_by_key: bool = False,
        free_memory: bool = True,
        parent: Optional[Span] = None,
        nbytes: Optional[int] = None,
    ):
        """Process: write ``records`` to a new run, charging serde + disk.

        If ``free_memory`` is set, releases the records' logical size from
        the node's memory account (they were resident before the spill).
        ``parent`` is the task span whose data is being spilled (emits a
        produce edge). ``nbytes`` is the records' logical size when the
        producer already accounted it (the dataplane's batch-spill path —
        must equal the per-record sum, which is re-derived otherwise).
        Returns the new :class:`SpillRun`.
        """
        prof = _hostprof.current()
        if prof is None:
            recs = list(records)
            if nbytes is None:
                nbytes = sum(map(self._record_size, recs))
        else:
            # host-clock frame around the synchronous staging part only
            # (the charged disk/serde below are virtual-clock yields)
            with prof.scope(_hostprof.STORAGE, "spill"):
                recs = list(records)
                if nbytes is None:
                    nbytes = sum(map(self._record_size, recs))
                prof.units(len(recs), nbytes)
        run = SpillRun(self._next_id, self.node.node_id, recs, nbytes, sorted_by_key)
        self._next_id += 1
        self._live[run.run_id] = run
        self.runs_created += 1
        self.bytes_spilled += int(self.cost.scaled_bytes(nbytes))
        obs, sim, node_id = self.node.obs, self.node.sim, self.node.node_id
        with obs.span(
            "spill", "spill", node=node_id, job=self.job, parent=parent, nbytes=nbytes
        ) as span:
            t0 = sim.now
            yield self.node.compute(self.cost.serde_cost(nbytes))
            t1 = sim.now
            yield self.node.disk_write(nbytes)
            if obs.enabled and self.job is not None:
                obs.charge(self.job, COMPUTE, t1 - t0, node=node_id, span=span)
                obs.charge(self.job, DISK, sim.now - t1, node=node_id, span=span)
        run.trace_span = span.span_id
        self.last_span_id = span.span_id
        obs.edge(parent, span, EDGE_PRODUCE)
        obs.count("spill.runs", node=node_id)
        obs.count("spill.bytes", nbytes, node=node_id)
        if free_memory:
            self.node.free(nbytes)
        self.node.record_trace("spill", nbytes=nbytes, run_id=run.run_id)
        return run

    def read_back(self, run: SpillRun, reacquire_memory: bool = False):
        """Process: read a run back, charging disk + serde.

        Returns its records. With ``reacquire_memory`` the logical size is
        re-charged to the memory account (caller must have headroom).
        """
        if run.freed:
            raise StorageError(f"spill run {run.run_id} already freed")
        if run.node_id != self.node.node_id:
            raise StorageError(
                f"run {run.run_id} lives on node {run.node_id}, not {self.node.node_id}"
            )
        self.bytes_read_back += int(self.cost.scaled_bytes(run.nbytes))
        obs, sim, node_id = self.node.obs, self.node.sim, self.node.node_id
        with obs.span(
            "spill.read_back", "spill", node=node_id, job=self.job, nbytes=run.nbytes
        ) as span:
            t0 = sim.now
            yield self.node.disk_read(run.nbytes)
            t1 = sim.now
            yield self.node.compute(self.cost.serde_cost(run.nbytes))
            if obs.enabled and self.job is not None:
                obs.charge(self.job, DISK, t1 - t0, node=node_id, span=span)
                obs.charge(self.job, COMPUTE, sim.now - t1, node=node_id, span=span)
        self.last_span_id = span.span_id
        obs.edge(run.trace_span, span, EDGE_SPILL)
        obs.count("spill.bytes_read_back", run.nbytes, node=node_id)
        if reacquire_memory:
            self.node.alloc(run.nbytes)
        prof = _hostprof.current()
        if prof is None:
            return list(run.records)
        with prof.scope(_hostprof.STORAGE, "spill.read_back"):
            prof.units(run.nrecords, run.nbytes)
            return list(run.records)

    def free(self, run: SpillRun) -> None:
        if run.freed:
            return
        run.freed = True
        self._live.pop(run.run_id, None)

    @property
    def live_runs(self) -> int:
        return len(self._live)
