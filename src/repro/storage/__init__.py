"""Storage substrates: a block-based DFS, node-local files, spill runs, and
an in-memory key-value store.

All stores hold *real records* (so benchmark outputs are verifiable) while
charging modeled disk/network time through the cluster's cost model. Sizes
are tracked in logical bytes (see :mod:`repro.common.sizeof`); the scale
model multiplies them when charging hardware.

Data-loading convention: ``ingest*`` methods place data instantly and free
of charge — they model the state *before* the measured run (the paper's
inputs are already resident in HDFS / local disks when the clock starts).
Everything else (``write``/``read``/``spill``) is a simulation process that
charges disk and network time.
"""

from repro.storage.dfs import DFS, Block, DistributedFile, InputSplit
from repro.storage.localfs import LocalFS, LocalFile, LocationRef
from repro.storage.spill import SpillManager, SpillRun
from repro.storage.kvstore import KVStore

__all__ = [
    "DFS",
    "Block",
    "DistributedFile",
    "InputSplit",
    "LocalFS",
    "LocalFile",
    "LocationRef",
    "SpillManager",
    "SpillRun",
    "KVStore",
]
