"""HAMR reproduction: a dataflow-based in-memory big data engine.

This package reproduces *"Design and Evaluation of a Novel DataFlow based
BigData Solution"* (Wu, Zheng, Heilig, Gao - PMAM/PPoPP 2015): the HAMR
flowlet engine, a Hadoop-style MapReduce baseline, the eight evaluation
benchmarks, and the harness regenerating the paper's tables and figures -
all running real data on a deterministic discrete-event cluster simulator.

See README.md for the full tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"
