"""A small discrete-event simulation kernel.

This is the substrate the whole reproduction stands on: a deterministic
virtual clock, generator-coroutine processes, capacity resources (thread
pools), bandwidth resources (disks, NICs), bounded queues (the basis of
HAMR's flow control) and serialized cells (the atomic-variable contention
model of §5.2). It is written from scratch — in the spirit of SimPy but
specialized and dependency-free — so that both the HAMR engine and the
Hadoop-style baseline execute *real data* while charging modeled costs to
the virtual clock.

Processes are plain generator functions. They interact with the kernel by
yielding:

* a ``SimEvent`` — suspend until the event triggers, receive its value;
* another ``Process`` — join it, receive its return value (exceptions
  propagate);
* a ``float``/``int`` — sleep that many virtual seconds;
* request objects returned by :class:`Resource`, :class:`SimQueue`, etc.

Example::

    sim = Simulator()

    def worker(sim):
        yield 1.5                      # compute for 1.5 virtual seconds
        return "done"

    def main(sim):
        result = yield sim.spawn(worker(sim))
        assert result == "done"

    sim.spawn(main(sim))
    sim.run()
    assert sim.now == 1.5
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Process,
    SimEvent,
    Simulator,
)
from repro.sim.resources import (
    BandwidthResource,
    Resource,
    SerializedCell,
)
from repro.sim.queues import QueueClosed, SimQueue
from repro.sim.monitor import Trace, UtilizationMeter

__all__ = [
    "Simulator",
    "SimEvent",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "BandwidthResource",
    "SerializedCell",
    "SimQueue",
    "QueueClosed",
    "Trace",
    "UtilizationMeter",
]
