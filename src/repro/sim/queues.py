"""Bounded simulated queues — the substrate of HAMR's flow control.

A :class:`SimQueue` carries items between producer and consumer processes.
Capacity is measured in *weight units* (we use logical bytes for bin
buffers, item counts elsewhere). When the queue is full:

* ``put`` blocks the producer until space frees — used where a producer may
  simply wait;
* ``try_put`` fails fast and the caller can suspend itself and retry via
  ``when_space()`` — this is exactly the paper's flow-control rule: "when
  the output bin buffer of a flowlet is full ... the flowlet stops the
  current execution immediately and will be scheduled in a later time".

``close()`` marks the end of the stream: remaining items drain normally and
then pending/future ``get`` calls fail with :class:`QueueClosed`, which is
how completion propagates through pipelines.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.core import SimEvent, Simulator


class QueueClosed(Exception):
    """Raised into getters when a queue is closed and fully drained."""


class SimQueue:
    """A FIFO queue with weighted capacity, blocking put/get, and close().

    ``capacity=None`` means unbounded. Weights default to 1 per item.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[float] = None,
        name: str = "queue",
    ):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Tuple[Any, float]] = deque()
        self._weight = 0.0
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[Tuple[SimEvent, Any, float]] = deque()
        self._space_waiters: list[SimEvent] = []
        self._closed = False
        # Metrics
        self.total_put = 0
        self.total_got = 0
        self.put_blocked = 0
        self.max_weight = 0.0
        #: optional observability hook, called as ``observer(now, delta)``
        #: when queued weight actually changes — items handed straight to a
        #: waiting getter never reside in the queue and are not reported
        self.observer = None

    # -- producer side -------------------------------------------------------

    def put(self, item: Any, weight: float = 1.0) -> SimEvent:
        """Enqueue; the returned event fires once the item is accepted."""
        self._check_weight(weight)
        if self._closed:
            raise SimulationError(f"{self.name}: put on closed queue")
        event = SimEvent(self.sim, name=f"{self.name}.put")
        if self._fits(weight) and not self._putters:
            self._accept(item, weight)
            event.trigger()
        else:
            self.put_blocked += 1
            self._putters.append((event, item, weight))
        return event

    def try_put(self, item: Any, weight: float = 1.0) -> bool:
        """Enqueue if it fits *and* no blocked producers are ahead; else False."""
        self._check_weight(weight)
        if self._closed:
            raise SimulationError(f"{self.name}: put on closed queue")
        if self._putters or not self._fits(weight):
            return False
        self._accept(item, weight)
        return True

    def when_space(self) -> SimEvent:
        """An event firing when space might be available (no reservation).

        The waiter must re-check with ``try_put``; multiple waiters may race
        for the same slot, which mirrors rescheduled flowlet tasks racing
        for buffer space.
        """
        event = SimEvent(self.sim, name=f"{self.name}.space")
        if self.capacity is None or self._weight < self.capacity:
            event.trigger()
        else:
            self._space_waiters.append(event)
        return event

    def close(self) -> None:
        """No more puts; getters drain remaining items then see QueueClosed."""
        if self._closed:
            return
        if self._putters:
            raise SimulationError(f"{self.name}: close with blocked producers")
        self._closed = True
        self._fail_surplus_getters()

    # -- consumer side -------------------------------------------------------

    def get(self) -> SimEvent:
        """Dequeue; the event fires with the item, or fails with QueueClosed."""
        event = SimEvent(self.sim, name=f"{self.name}.get")
        if self._items:
            item = self._pop_item()
            event.trigger(item)
            self._admit_blocked_putters()
        elif self._closed:
            event.fail(QueueClosed(self.name))
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._pop_item()
            self._admit_blocked_putters()
            return True, item
        return False, None

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def full(self) -> bool:
        return self.capacity is not None and self._weight >= self.capacity

    # -- internals -------------------------------------------------------------

    def _check_weight(self, weight: float) -> None:
        if weight < 0:
            raise SimulationError(f"{self.name}: negative weight")
        if self.capacity is not None and weight > self.capacity:
            raise SimulationError(
                f"{self.name}: item weight {weight} exceeds capacity {self.capacity}"
            )

    def _fits(self, weight: float) -> bool:
        return self.capacity is None or self._weight + weight <= self.capacity

    def _accept(self, item: Any, weight: float) -> None:
        self.total_put += 1
        if self._getters:
            # Hand straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            self.total_got += 1
            getter.trigger(item)
            return
        self._items.append((item, weight))
        self._weight += weight
        if self._weight > self.max_weight:
            self.max_weight = self._weight
        if self.observer is not None:
            self.observer(self.sim.now, weight)

    def _pop_item(self) -> Any:
        item, weight = self._items.popleft()
        self._weight -= weight
        self.total_got += 1
        if not self._items:
            self._weight = 0.0  # guard against float drift
        if self.observer is not None:
            self.observer(self.sim.now, -weight)
        return item

    def _admit_blocked_putters(self) -> None:
        while self._putters:
            event, item, weight = self._putters[0]
            if not self._fits(weight):
                break
            self._putters.popleft()
            self._accept(item, weight)
            event.trigger()
        self._wake_space_waiters()
        if self._closed:
            self._fail_surplus_getters()

    def _wake_space_waiters(self) -> None:
        if self.capacity is not None and self._weight >= self.capacity:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for event in waiters:
            event.trigger()

    def _fail_surplus_getters(self) -> None:
        if self._items:
            return
        getters, self._getters = self._getters, deque()
        for event in getters:
            event.fail(QueueClosed(self.name))
