"""The discrete-event kernel: virtual clock, events, processes.

Design notes
------------
* The event queue is a binary heap of ``(time, sequence, event)``; the
  sequence number makes ordering total and the whole simulation
  deterministic — two runs of the same program produce identical schedules.
* ``SimEvent`` is the single synchronization primitive. Everything else
  (timeouts, resource grants, queue slots, process completion) is expressed
  as an event that triggers with a value or an exception.
* Processes are generators resumed by the kernel. A process that raises
  propagates the exception to joiners; a failure nobody observes aborts the
  simulation rather than passing silently.
* Dual-clock hook: when a host-time profiler is attached
  (``Simulator.hostprof``, set externally — the kernel never imports
  ``repro.obs``), every event dispatch and every process resume is
  wrapped in a host-ns frame. The profiler only reads ``perf_counter``;
  the virtual schedule is byte-identical with profiling on or off.
"""

from __future__ import annotations

import heapq
import re
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import DeadlockError, SimulationError

ProcessGen = Generator[Any, Any, Any]

#: hostprof bucket names (mirrors repro.obs.hostprof, which we must not import)
_HOSTPROF_KERNEL_BUCKET = "sim-kernel"
_HOSTPROF_ENGINE_BUCKET = "engine"

_DIGIT_RUN = re.compile(r"\d+")


class SimEvent:
    """A one-shot event that may carry a value or an exception.

    Callbacks attached via :meth:`add_callback` run when the event fires.
    Processes that ``yield`` an event are resumed with its value (or the
    exception is thrown into them).
    """

    __slots__ = ("sim", "triggered", "fired", "value", "exception", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.triggered = False  # trigger()/fail() called: fire time is scheduled
        self.fired = False  # callbacks have run
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []
        self.name = name

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self.fired:
            # Fire immediately but still via the scheduler to preserve
            # deterministic ordering relative to other pending events.
            self.sim._schedule(0.0, _CallbackEvent(self.sim, callback, self))
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Arrange for this event to fire ``delay`` seconds from now."""
        if self.triggered:
            raise SimulationError(f"event {self.name or id(self)} triggered twice")
        self.triggered = True
        self.value = value
        self.sim._schedule(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "SimEvent":
        """Arrange for this event to fire with an exception."""
        if self.triggered:
            raise SimulationError(f"event {self.name or id(self)} triggered twice")
        self.triggered = True
        self.exception = exception
        self.sim._schedule(delay, self)
        return self

    # -- kernel internals ---------------------------------------------------

    def _fire(self) -> None:
        self.fired = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<SimEvent {self.name or hex(id(self))} {state}>"


class _CallbackEvent(SimEvent):
    """Internal: delivers a late-registered callback on an already-fired event."""

    __slots__ = ("_late_callback", "_source")

    def __init__(self, sim: "Simulator", callback: Callable[[SimEvent], None], source: SimEvent):
        super().__init__(sim, name="late-callback")
        self.triggered = True
        self._late_callback = callback
        self._source = source

    def _fire(self) -> None:
        self._late_callback(self._source)


class AllOf(SimEvent):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, this fails with the first failure (by fire order).
    """

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.trigger([])
            return
        for event in self._events:
            event.add_callback(self._child_fired)

    def _child_fired(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([e.value for e in self._events])


class AnyOf(SimEvent):
    """Fires when the first child event fires; value is ``(index, value)``."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[SimEvent], None]:
        def on_fire(event: SimEvent) -> None:
            if self.triggered:
                return
            if event.exception is not None:
                self.fail(event.exception)
            else:
                self.trigger((index, event.value))

        return on_fire


class Process:
    """A running generator-coroutine.

    ``completion`` is a :class:`SimEvent` that fires with the generator's
    return value, or fails with its exception. Yielding a ``Process`` from
    another process joins it.
    """

    __slots__ = ("sim", "name", "generator", "completion", "_waited_on", "_prof_label")

    def __init__(self, sim: "Simulator", generator: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._prof_label: Optional[str] = None  # cached hostprof label
        self.generator = generator
        self.completion = SimEvent(sim, name=f"{self.name}.completion")
        self._waited_on = False
        # Kick off at the current time, after already-queued events.
        start = SimEvent(sim, name=f"{self.name}.start")
        start.add_callback(lambda _evt: self._resume(None, None))
        start.trigger()

    @property
    def alive(self) -> bool:
        return not self.completion.triggered

    # -- kernel internals ---------------------------------------------------

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        self.sim._blocked.discard(self)
        prof = self.sim.hostprof
        if prof is not None:
            label = self._prof_label
            if label is None:
                # collapse digit runs so wc.map12 / wc.map3 share one row
                label = self._prof_label = "process:" + _DIGIT_RUN.sub("*", self.name)
            prof.push(_HOSTPROF_ENGINE_BUCKET, label)
        try:
            try:
                if exception is not None:
                    yielded = self.generator.throw(exception)
                else:
                    yielded = self.generator.send(value)
            except StopIteration as stop:
                self.completion.trigger(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - must forward user errors
                self.completion.fail(exc)
                self.sim._note_failure(self, exc)
                return
            event = self._as_event(yielded)
            self.sim._blocked.add(self)
            event.add_callback(self._on_event)
        finally:
            if prof is not None:
                prof.pop()

    def _on_event(self, event: SimEvent) -> None:
        if event.exception is not None:
            self._resume(None, event.exception)
        else:
            self._resume(event.value, None)

    def _as_event(self, yielded: Any) -> SimEvent:
        if isinstance(yielded, SimEvent):
            return yielded
        if isinstance(yielded, Process):
            yielded._waited_on = True
            return yielded.completion
        if isinstance(yielded, (int, float)):
            return self.sim.timeout(float(yielded))
        as_event = getattr(yielded, "as_event", None)
        if as_event is not None:
            return as_event(self.sim)
        raise SimulationError(
            f"process {self.name!r} yielded unsupported object {yielded!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop and virtual clock.

    ``run()`` executes events until the queue drains, a deadline passes, or
    an unobserved process failure aborts the run. Time never goes backwards;
    ties are broken by scheduling order, making runs fully deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._sequence = 0
        self._blocked: set[Process] = set()
        self._failures: list[tuple[Process, BaseException]] = []
        self._processes_started = 0
        #: optional host-time profiler (duck-typed repro.obs.hostprof
        #: HostProfiler); attached externally, never imported here
        self.hostprof = None
        #: optional progress observer (duck-typed repro.obs.live
        #: LiveMonitor); ``tick(now)`` is called after each dispatched
        #: event — read-only, it must never schedule events of its own
        self.progress = None

    # -- public API ----------------------------------------------------------

    def spawn(self, generator: ProcessGen, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        self._processes_started += 1
        return Process(self, generator, name=name or f"p{self._processes_started}")

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        event = SimEvent(self, name=f"timeout({delay:g})")
        event.triggered = True
        event.value = value
        self._schedule(delay, event)
        return event

    def event(self, name: str = "") -> SimEvent:
        """A fresh untriggered event for manual coordination."""
        return SimEvent(self, name=name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or ``until`` is reached).

        Returns the final virtual time. Raises :class:`DeadlockError` if
        processes remain blocked with no pending events, and re-raises the
        first unobserved process failure.
        """
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if until is not None and time > until:
                # Put it back; the caller may resume later.
                heapq.heappush(self._heap, (time, _seq, event))
                self.now = until
                return self.now
            if time < self.now:
                raise SimulationError(f"time went backwards: {time} < {self.now}")
            self.now = time
            prof = self.hostprof
            if prof is None:
                event._fire()
            else:
                prof.push(_HOSTPROF_KERNEL_BUCKET, "dispatch")
                try:
                    event._fire()
                finally:
                    prof.pop()
                prof.tick(self.now)
            progress = self.progress
            if progress is not None:
                progress.tick(self.now)
            self._raise_unobserved_failure()
        if self._blocked:
            alive = ", ".join(sorted(p.name for p in self._blocked))
            raise DeadlockError(
                f"simulation deadlocked at t={self.now:g}: blocked processes: {alive}"
            )
        return self.now

    def step(self) -> bool:
        """Fire a single event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError(f"time went backwards: {time} < {self.now}")
        self.now = time
        prof = self.hostprof
        if prof is None:
            event._fire()
        else:
            prof.push(_HOSTPROF_KERNEL_BUCKET, "dispatch")
            try:
                event._fire()
            finally:
                prof.pop()
            prof.tick(self.now)
        progress = self.progress
        if progress is not None:
            progress.tick(self.now)
        self._raise_unobserved_failure()
        return True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -- kernel internals ----------------------------------------------------

    def _schedule(self, delay: float, event: SimEvent) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        if not process._waited_on and not process.completion._callbacks:
            self._failures.append((process, exc))

    def _raise_unobserved_failure(self) -> None:
        if self._failures:
            process, exc = self._failures[0]
            raise SimulationError(
                f"process {process.name!r} failed with unobserved exception"
            ) from exc
