"""Simulated resources: capacity pools, bandwidth pipes, serialized cells.

Two modeling styles are used:

* :class:`Resource` — an explicit capacity pool with FIFO grant order.
  Thread pools and loader-concurrency throttles are Resources; a task holds
  a slot for the duration of its compute.
* :class:`BandwidthResource` and :class:`SerializedCell` — *virtual
  timeline* devices. A transfer of ``n`` bytes on a device with bandwidth
  ``bw`` occupies the device for ``n / bw`` seconds, FIFO after whatever is
  already queued; the caller simply waits for the completion event. This
  models disks, NICs and atomic-variable serialization without spawning a
  process per operation, which keeps large runs cheap and deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.errors import SimulationError
from repro.sim.core import SimEvent, Simulator


class Resource:
    """A FIFO capacity pool (e.g. a node's worker-thread pool).

    ``acquire(n)`` returns an event that fires once ``n`` units are granted;
    the caller must later call ``release(n)``. Grants are strictly FIFO: a
    large request at the head blocks smaller ones behind it, matching a
    thread pool's admission order.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Tuple[SimEvent, int]] = deque()
        # Metrics
        self.total_acquired = 0
        self._busy_integral = 0.0
        self._last_change = 0.0
        #: optional observability hook, called as ``observer(now, in_use)``
        #: after every occupancy change (None keeps the fast path free)
        self.observer = None

    def acquire(self, n: int = 1) -> SimEvent:
        if n <= 0 or n > self.capacity:
            raise SimulationError(
                f"{self.name}: cannot acquire {n} of {self.capacity}"
            )
        event = SimEvent(self.sim, name=f"{self.name}.acquire({n})")
        self._waiters.append((event, n))
        self._dispatch()
        return event

    def release(self, n: int = 1) -> None:
        if n <= 0 or n > self.in_use:
            raise SimulationError(
                f"{self.name}: release({n}) with in_use={self.in_use}"
            )
        self._account()
        self.in_use -= n
        self._dispatch()
        if self.observer is not None:
            self.observer(self.sim.now, self.in_use)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since t=0."""
        self._account()
        if self.sim.now == 0:
            return 0.0
        return self._busy_integral / (self.capacity * self.sim.now)

    def _dispatch(self) -> None:
        while self._waiters:
            event, n = self._waiters[0]
            if n > self.available:
                return
            self._waiters.popleft()
            self._account()
            self.in_use += n
            self.total_acquired += n
            if self.observer is not None:
                self.observer(self.sim.now, self.in_use)
            event.trigger(n)

    def _account(self) -> None:
        self._busy_integral += self.in_use * (self.sim.now - self._last_change)
        self._last_change = self.sim.now


class BandwidthResource:
    """A FIFO pipe with fixed bandwidth and optional per-operation latency.

    Models a disk or a NIC. ``transfer(nbytes)`` returns an event firing when
    the transfer completes; transfers serialize in submission order. The
    aggregate behaviour (total bytes / bandwidth) matches fair sharing for
    sustained load while staying exactly deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "pipe",
    ):
        if bandwidth <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if latency < 0:
            raise SimulationError(f"{name}: latency must be non-negative")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._free_at = 0.0
        # Metrics
        self.total_bytes = 0
        self.total_ops = 0
        self.busy_time = 0.0
        #: optional observability hook, called as
        #: ``observer(start, finish, nbytes)`` when a transfer is scheduled
        #: (None keeps the fast path free)
        self.observer = None

    def transfer(self, nbytes: float) -> SimEvent:
        """Schedule a transfer; the event fires at its completion time."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size")
        start = max(self.sim.now, self._free_at)
        occupancy = nbytes / self.bandwidth
        finish = start + self.latency + occupancy
        self._free_at = finish
        self.total_bytes += int(nbytes)
        self.total_ops += 1
        self.busy_time += self.latency + occupancy
        if self.observer is not None:
            self.observer(start, finish, nbytes)
        event = SimEvent(self.sim, name=f"{self.name}.transfer({int(nbytes)})")
        return event.trigger(value=int(nbytes), delay=finish - self.sim.now)

    def eta(self, nbytes: float) -> float:
        """Completion time a transfer submitted now would have (no side effects)."""
        start = max(self.sim.now, self._free_at)
        return start + self.latency + nbytes / self.bandwidth

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a new submission."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self) -> float:
        if self.sim.now == 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)


class SerializedCell:
    """A memory cell whose updates serialize (one writer at a time).

    Models the atomic-variable contention the paper describes for
    HistogramRatings (§5.2): with five rating keys spread over five nodes,
    all 32 threads of a node hammer a single accumulator and their updates
    serialize. ``update(n)`` charges ``n`` updates of exclusive cell time,
    FIFO behind pending updates.

    Contention awareness: an update submitted while the cell is *busy*
    (another updater queued ahead) pays ``update_cost`` per update — the
    cross-socket cache-line ping-pong price; an update hitting an idle
    cell pays only ``base_cost`` (a plain uncontended LOCK'd add). Hot
    cells therefore degrade hard while a wide key space stays cheap,
    which is exactly the paper's HistogramRatings-vs-WordCount asymmetry.
    """

    def __init__(
        self,
        sim: Simulator,
        update_cost: float,
        base_cost: Optional[float] = None,
        name: str = "cell",
    ):
        if update_cost < 0:
            raise SimulationError(f"{name}: update_cost must be non-negative")
        self.sim = sim
        self.update_cost = float(update_cost)
        self.base_cost = float(base_cost) if base_cost is not None else float(update_cost)
        if self.base_cost > self.update_cost:
            raise SimulationError(f"{name}: base_cost must not exceed update_cost")
        self.name = name
        self._free_at = 0.0
        self.total_updates = 0
        self.contended_updates = 0

    def update(self, n_updates: int = 1) -> SimEvent:
        if n_updates < 0:
            raise SimulationError(f"{self.name}: negative update count")
        contended = self._free_at > self.sim.now
        per_update = self.update_cost if contended else self.base_cost
        if contended:
            self.contended_updates += n_updates
        start = max(self.sim.now, self._free_at)
        finish = start + n_updates * per_update
        self._free_at = finish
        self.total_updates += n_updates
        event = SimEvent(self.sim, name=f"{self.name}.update({n_updates})")
        return event.trigger(value=n_updates, delay=finish - self.sim.now)

    @property
    def backlog(self) -> float:
        return max(0.0, self._free_at - self.sim.now)


class StripedBandwidth:
    """Round-robin striping over several :class:`BandwidthResource` devices.

    Models a node's 5 local SATA disks: large transfers split into
    per-device chunks and complete when the slowest chunk does.
    """

    def __init__(self, devices: list[BandwidthResource], stripe_unit: float = 4 * 1024 * 1024):
        if not devices:
            raise SimulationError("StripedBandwidth requires at least one device")
        self.devices = devices
        self.stripe_unit = float(stripe_unit)
        self._next = 0

    @property
    def sim(self) -> Simulator:
        return self.devices[0].sim

    def transfer(self, nbytes: float) -> SimEvent:
        ndev = len(self.devices)
        if nbytes <= self.stripe_unit or ndev == 1:
            device = self.devices[self._next]
            self._next = (self._next + 1) % ndev
            return device.transfer(nbytes)
        per_device = nbytes / ndev
        events = [device.transfer(per_device) for device in self.devices]
        done = self.sim.all_of(events)
        total = SimEvent(self.sim, name=f"stripe.transfer({int(nbytes)})")
        done.add_callback(
            lambda evt: total.fail(evt.exception)
            if evt.exception is not None
            else total.trigger(int(nbytes))
        )
        return total

    @property
    def total_bytes(self) -> int:
        return sum(device.total_bytes for device in self.devices)

    def utilization(self) -> float:
        return sum(device.utilization() for device in self.devices) / len(self.devices)
