"""Tracing and utilization measurement for simulated runs."""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.sim.core import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: virtual time, category tag, free-form payload."""

    time: float
    category: str
    payload: dict[str, Any] = field(default_factory=dict)


class Trace:
    """An append-only event trace with simple filtering.

    Engines record scheduling decisions, spills, flow-control stalls, etc.;
    tests assert on the recorded behaviour and reports summarize it.

    With ``max_records`` set the trace becomes a ring buffer keeping only
    the newest entries; ``dropped`` counts evictions. Default behaviour
    (unbounded list) is unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        enabled: bool = True,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records}")
        self.sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        if max_records is None:
            self.records: list[TraceRecord] = []
        else:
            self.records = deque(maxlen=max_records)  # type: ignore[assignment]

    def record(self, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
        self.records.append(TraceRecord(self.sim.now, category, payload))

    def summary(self) -> dict:
        """Retention summary for reports and journal footers: how many
        records are held, how many the ring buffer evicted, and the bound
        (None = unbounded)."""
        return {
            "records": len(self.records),
            "dropped": self.dropped,
            "max_records": self.max_records,
        }

    def filter(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class UtilizationMeter:
    """Tracks how busy a multi-slot facility is over virtual time.

    ``enter()``/``leave()`` bracket busy intervals; ``utilization`` is the
    time-integral of busy slots divided by ``capacity * elapsed``.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        name: str = "meter",
        record_series: bool = False,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._busy = 0
        self._integral = 0.0
        self._last = 0.0
        #: checkpoints of (integral, busy) at each state-change time, so
        #: ``utilization(since=t)`` can integrate only past ``t``
        self._checkpoint_times: list[float] = [0.0]
        self._checkpoints: list[tuple[float, int]] = [(0.0, 0)]
        #: optional (time, busy) time series for observability reports
        self.record_series = record_series
        self.series: list[tuple[float, int]] = []

    def enter(self, n: int = 1) -> None:
        self._advance()
        self._busy += n
        self._checkpoint()
        self._sample()

    def leave(self, n: int = 1) -> None:
        self._advance()
        if n > self._busy:
            raise ValueError(f"{self.name}: leave({n}) with busy={self._busy}")
        self._busy -= n
        self._checkpoint()
        self._sample()

    def _checkpoint(self) -> None:
        now = self.sim.now
        if self._checkpoint_times[-1] == now:
            self._checkpoints[-1] = (self._integral, self._busy)
        else:
            self._checkpoint_times.append(now)
            self._checkpoints.append((self._integral, self._busy))

    def _sample(self) -> None:
        if not self.record_series:
            return
        now = self.sim.now
        if self.series and self.series[-1][0] == now:
            self.series[-1] = (now, self._busy)
        else:
            self.series.append((now, self._busy))

    def _advance(self) -> None:
        self._integral += self._busy * (self.sim.now - self._last)
        self._last = self.sim.now

    @property
    def busy(self) -> int:
        return self._busy

    def _integral_at(self, t: float) -> float:
        """Busy-slot time-integral accumulated up to virtual time ``t``."""
        if t <= 0.0:
            return 0.0
        idx = bisect_right(self._checkpoint_times, t) - 1
        integral, busy = self._checkpoints[idx]
        return integral + busy * (t - self._checkpoint_times[idx])

    def utilization(self, since: float = 0.0) -> float:
        self._advance()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        window = self._integral - self._integral_at(since)
        return window / (self.capacity * elapsed)
