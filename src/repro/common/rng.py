"""Seed derivation for reproducible, independent random streams.

Every generator/workload takes a single integer master seed; components
derive their own independent streams from (master seed, component name) so
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a 63-bit child seed from a master seed and a component path.

    >>> derive_seed(42, "webgraph") != derive_seed(42, "text")
    True
    >>> derive_seed(42, "x") == derive_seed(42, "x")
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(master_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest(), "little") & ((1 << 63) - 1)


def make_rng(master_seed: int, *names: object) -> np.random.Generator:
    """A numpy Generator seeded from ``derive_seed(master_seed, *names)``."""
    return np.random.default_rng(derive_seed(master_seed, *names))
