"""Deterministic key partitioning.

Both engines shuffle key-value pairs by mapping keys onto a fixed number of
partitions; each node of the cluster owns a contiguous slice of the
partition space. Python's built-in ``hash`` is randomized per process for
strings, so all partitioners here are built on a stable FNV-1a hash to keep
runs reproducible across processes and sessions.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def stable_hash(key: Any) -> int:
    """A process-stable 64-bit hash of a key.

    Supports the key types the benchmarks produce: ``str``, ``bytes``,
    ``int``, ``float``, ``bool``, ``None`` and (nested) tuples thereof.
    """
    if isinstance(key, bytes):
        return _fnv1a(b"b" + key)
    if isinstance(key, str):
        return _fnv1a(b"s" + key.encode("utf-8", "surrogatepass"))
    if isinstance(key, bool):
        return _fnv1a(b"B1" if key else b"B0")
    if isinstance(key, int):
        return _fnv1a(b"i" + key.to_bytes(16, "little", signed=True))
    if isinstance(key, float):
        import struct

        return _fnv1a(b"f" + struct.pack("<d", key))
    if key is None:
        return _fnv1a(b"n")
    if isinstance(key, tuple):
        h = _FNV_OFFSET
        for item in key:
            h ^= stable_hash(item)
            h = (h * _FNV_PRIME) & _MASK64
        return h
    raise TypeError(f"unhashable key type for stable_hash: {type(key).__name__}")


class Partitioner:
    """Maps keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __call__(self, key: Any) -> int:
        return self.partition(key)


class HashPartitioner(Partitioner):
    """The default partitioner: stable hash modulo partition count.

    This matches Hadoop's ``HashPartitioner`` and the paper's statement that
    "each node works on a portion of the whole key space"; an evenly
    distributed key space balances the workload, a skewed one does not —
    which is exactly the HistogramRatings pathology of §5.2.
    """

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class ModPartitioner(Partitioner):
    """Partition integer keys by value modulo the partition count.

    Used where the paper's benchmarks rely on direct key→node placement
    (e.g. routing a line-offset back to the node that stores the file).
    """

    def partition(self, key: Any) -> int:
        return int(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition orderable keys by split points (Hadoop TotalOrderPartitioner).

    ``boundaries`` must be sorted; keys <= ``boundaries[i]`` land in
    partition ``i``, keys above every boundary land in the last partition.
    """

    def __init__(self, boundaries: Sequence[Any]):
        super().__init__(len(boundaries) + 1)
        self.boundaries = list(boundaries)
        if any(self.boundaries[i] > self.boundaries[i + 1] for i in range(len(self.boundaries) - 1)):
            raise ValueError("range boundaries must be sorted")

    def partition(self, key: Any) -> int:
        import bisect

        return bisect.bisect_left(self.boundaries, key)


def partition_counts(partitioner: Partitioner, keys: Iterable[Any]) -> list[int]:
    """Histogram of how many of ``keys`` land in each partition (skew probe)."""
    counts = [0] * partitioner.num_partitions
    for key in keys:
        counts[partitioner.partition(key)] += 1
    return counts
