"""Exception hierarchy for the reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the library's failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value (cluster spec, workload, engine knob)."""


class GraphError(ReproError):
    """A malformed flowlet graph (cycle, dangling edge, bad flowlet type)."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an inconsistent state.

    Examples: a process yielded an unknown request type, the event queue
    went back in time, or the simulation deadlocked with live processes.
    """


class DeadlockError(SimulationError):
    """All live processes are blocked and no event can make progress."""


class StorageError(ReproError):
    """A storage-layer failure (missing file/block, replication impossible)."""


class MemoryBudgetExceeded(ReproError):
    """An allocation did not fit in a node's memory budget and could not spill."""


class ShuffleError(ReproError):
    """A bin was routed to a node that does not own its partition."""


class JobError(ReproError):
    """A job failed: user code raised, or the engine aborted the run."""
