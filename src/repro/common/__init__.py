"""Shared utilities used by every subsystem.

This package is dependency-free (standard library + numpy only) and holds
the small building blocks the rest of the reproduction is made of: byte
units, deterministic hashing and partitioning, logical size estimation for
records, error types, seeded RNG derivation, and running statistics.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    GraphError,
    MemoryBudgetExceeded,
    SimulationError,
    StorageError,
)
from repro.common.units import (
    KB,
    MB,
    GB,
    TB,
    format_bytes,
    format_duration,
    parse_bytes,
)
from repro.common.partitioner import (
    Partitioner,
    HashPartitioner,
    ModPartitioner,
    RangePartitioner,
    stable_hash,
)
from repro.common.sizeof import logical_sizeof, pair_size
from repro.common.rng import derive_seed, make_rng
from repro.common.stats import Histogram, RunningStats

__all__ = [
    "ReproError",
    "ConfigError",
    "GraphError",
    "MemoryBudgetExceeded",
    "SimulationError",
    "StorageError",
    "KB",
    "MB",
    "GB",
    "TB",
    "format_bytes",
    "format_duration",
    "parse_bytes",
    "Partitioner",
    "HashPartitioner",
    "ModPartitioner",
    "RangePartitioner",
    "stable_hash",
    "logical_sizeof",
    "pair_size",
    "derive_seed",
    "make_rng",
    "Histogram",
    "RunningStats",
]
