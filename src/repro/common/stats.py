"""Running statistics and histograms used by metrics and reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class RunningStats:
    """Welford's online mean/variance with min/max tracking.

    Numerically stable; used for per-resource utilization and task-duration
    metrics where we cannot afford to keep every sample.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


class Histogram:
    """Fixed-bin histogram over a closed interval.

    Matches the semantics of the HistogramMovies/HistogramRatings
    benchmarks: values outside the range clamp into the boundary bins so no
    sample is ever dropped.
    """

    def __init__(self, low: float, high: float, num_bins: int):
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        if not high > low:
            raise ValueError("high must exceed low")
        self.low = float(low)
        self.high = float(high)
        self.num_bins = num_bins
        self.counts = [0] * num_bins
        self._width = (self.high - self.low) / num_bins

    def bin_index(self, value: float) -> int:
        idx = int((value - self.low) / self._width)
        return min(max(idx, 0), self.num_bins - 1)

    def add(self, value: float, count: int = 1) -> None:
        self.counts[self.bin_index(value)] += count

    def merge(self, other: "Histogram") -> None:
        if (other.low, other.high, other.num_bins) != (self.low, self.high, self.num_bins):
            raise ValueError("cannot merge histograms with different binning")
        for i, c in enumerate(other.counts):
            self.counts[i] += c

    @property
    def total(self) -> int:
        return sum(self.counts)

    def edges(self) -> list[float]:
        return [self.low + i * self._width for i in range(self.num_bins + 1)]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already *sorted* sequence.

    ``q`` is in [0, 100]. Raises on an empty input.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative values — the skew probe for key spaces.

    0 means perfectly even, →1 means all mass on one element.
    """
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in vals):
        raise ValueError("gini requires non-negative values")
    total = sum(vals)
    if total == 0:
        return 0.0
    n = len(vals)
    weighted = sum((i + 1) * v for i, v in enumerate(vals))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
