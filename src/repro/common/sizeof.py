"""Logical size estimation for records.

The engines account memory, disk and network usage in *logical bytes*: the
number of bytes a record would occupy in a compact serialized form (roughly
what Hadoop's writables or a binary wire format would use), not Python's
in-memory object size. Using a logical measure keeps the cost model
independent of CPython's boxing overheads and makes scaled runs meaningful.
"""

from __future__ import annotations

from typing import Any

import numpy as np

# Fixed-width encodings used for the logical measure.
_INT_SIZE = 8
_FLOAT_SIZE = 8
_BOOL_SIZE = 1
_NONE_SIZE = 1
# Per-container element overhead (length prefixes / tags in a wire format).
_CONTAINER_OVERHEAD = 4


def logical_sizeof(obj: Any) -> int:
    """Estimated serialized size of ``obj`` in bytes.

    Deterministic, recursive over tuples/lists/dicts, exact for strings,
    bytes and numpy arrays.

    >>> logical_sizeof("word")
    4
    >>> logical_sizeof(("word", 1))
    16
    """
    if obj is None:
        return _NONE_SIZE
    if isinstance(obj, bool):
        return _BOOL_SIZE
    if isinstance(obj, int):
        return _INT_SIZE
    if isinstance(obj, float):
        return _FLOAT_SIZE
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(logical_sizeof(item) for item in obj)
    if isinstance(obj, dict):
        return _CONTAINER_OVERHEAD + sum(
            logical_sizeof(k) + logical_sizeof(v) for k, v in obj.items()
        )
    # Objects may advertise their own logical size (e.g. location references).
    size = getattr(obj, "logical_size", None)
    if size is not None:
        return int(size() if callable(size) else size)
    raise TypeError(f"logical_sizeof: unsupported type {type(obj).__name__}")


def pair_size(key: Any, value: Any) -> int:
    """Logical size of one key-value pair (key + value + pair framing)."""
    return logical_sizeof(key) + logical_sizeof(value) + _CONTAINER_OVERHEAD
