"""Logical size estimation for records.

The engines account memory, disk and network usage in *logical bytes*: the
number of bytes a record would occupy in a compact serialized form (roughly
what Hadoop's writables or a binary wire format would use), not Python's
in-memory object size. Using a logical measure keeps the cost model
independent of CPython's boxing overheads and makes scaled runs meaningful.

Sizing sits on every engine hot path (the dataplane's batch accounting is
one amortized ``logical_sizeof`` pass per batch), so dispatch goes through
a per-exact-type table populated lazily from the type rules below instead
of an ``isinstance`` chain per call. The table is a pure cache: a type's
handler is chosen by the same rule order once, then reused.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

# Fixed-width encodings used for the logical measure.
_INT_SIZE = 8
_FLOAT_SIZE = 8
_BOOL_SIZE = 1
_NONE_SIZE = 1
# Per-container element overhead (length prefixes / tags in a wire format).
_CONTAINER_OVERHEAD = 4


def logical_sizeof(obj: Any) -> int:
    """Estimated serialized size of ``obj`` in bytes.

    Deterministic, recursive over tuples/lists/dicts, exact for strings,
    bytes and numpy arrays.

    >>> logical_sizeof("word")
    4
    >>> logical_sizeof(("word", 1))
    16
    """
    sizer = _SIZERS.get(obj.__class__)
    if sizer is None:
        sizer = _resolve_sizer(obj.__class__)
    return sizer(obj)


def pair_size(key: Any, value: Any) -> int:
    """Logical size of one key-value pair (key + value + pair framing).

    Identical to ``logical_sizeof((key, value))`` — a pair is framed like
    any other two-element container.
    """
    sizers = _SIZERS
    ks = sizers.get(key.__class__) or _resolve_sizer(key.__class__)
    vs = sizers.get(value.__class__) or _resolve_sizer(value.__class__)
    return ks(key) + vs(value) + _CONTAINER_OVERHEAD


# -- per-type handlers ----------------------------------------------------------


def _size_fixed(size: int) -> Callable[[Any], int]:
    return lambda obj: size


def _size_len(obj: Any) -> int:
    return len(obj)


def _size_numpy(obj: Any) -> int:
    return int(obj.nbytes)


def _size_container(obj: Any) -> int:
    return _CONTAINER_OVERHEAD + sum(map(logical_sizeof, obj))


def _size_dict(obj: Any) -> int:
    return _CONTAINER_OVERHEAD + sum(
        logical_sizeof(k) + logical_sizeof(v) for k, v in obj.items()
    )


def _size_declared(obj: Any) -> int:
    # Objects may advertise their own logical size (e.g. location references).
    size = getattr(obj, "logical_size", None)
    if size is not None:
        return int(size() if callable(size) else size)
    raise TypeError(f"logical_sizeof: unsupported type {type(obj).__name__}")


_SIZERS: dict[type, Callable[[Any], int]] = {
    type(None): _size_fixed(_NONE_SIZE),
    bool: _size_fixed(_BOOL_SIZE),
    int: _size_fixed(_INT_SIZE),
    float: _size_fixed(_FLOAT_SIZE),
    str: _size_len,
    bytes: _size_len,
    bytearray: _size_len,
    memoryview: _size_len,
    np.ndarray: _size_numpy,
    tuple: _size_container,
    list: _size_container,
    set: _size_container,
    frozenset: _size_container,
    dict: _size_dict,
}

#: the original rule order, applied once per previously unseen type
_RULES: tuple[tuple[type | tuple[type, ...], Callable[[Any], int]], ...] = (
    (bool, _size_fixed(_BOOL_SIZE)),  # before int: bool subclasses int
    (int, _size_fixed(_INT_SIZE)),
    (float, _size_fixed(_FLOAT_SIZE)),
    (str, _size_len),
    ((bytes, bytearray, memoryview), _size_len),
    (np.ndarray, _size_numpy),
    (np.generic, _size_numpy),
    ((tuple, list, set, frozenset), _size_container),
    (dict, _size_dict),
)


def _resolve_sizer(cls: type) -> Callable[[Any], int]:
    """Pick (and cache) the handler for a type by the documented rules."""
    for rule_type, handler in _RULES:
        if issubclass(cls, rule_type):
            break
    else:
        # Unknown types fall through to the declared-size protocol; the
        # handler re-checks per instance, so a type whose instances only
        # sometimes declare ``logical_size`` still raises correctly.
        handler = _size_declared
    _SIZERS[cls] = handler
    return handler
