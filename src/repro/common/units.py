"""Byte units, size parsing and human-readable formatting.

All sizes inside the library are plain ``int`` bytes and all durations are
``float`` seconds of *virtual* time; these helpers exist so that workload
definitions and reports can speak in ``"300GB"`` / ``"5215.1s"`` terms.
"""

from __future__ import annotations

import re

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

_SUFFIXES: dict[str, int] = {
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "K": KB,
    "M": MB,
    "G": GB,
    "T": TB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def parse_bytes(text: str | int | float) -> int:
    """Parse ``"300GB"``, ``"168 MB"``, ``"1.5G"`` or a raw number into bytes.

    >>> parse_bytes("168MB")
    176160768
    >>> parse_bytes(4096)
    4096
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    suffix = suffix.upper() or "B"
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(value) * _SUFFIXES[suffix])


def format_bytes(n_bytes: int | float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(3 * GB)`` -> ``'3.0GB'``."""
    n = float(n_bytes)
    for suffix, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= factor:
            return f"{n / factor:.1f}{suffix}"
    return f"{int(n)}B"


def format_duration(seconds: float) -> str:
    """Render a duration like the paper's tables (seconds with ms precision).

    >>> format_duration(5215.079)
    '5215.079s'
    """
    return f"{seconds:.3f}s"
