"""Compile SQL queries into flowlet graphs.

Two shapes:

* **projection queries** (no aggregates): Loader → FilterProject Map →
  sink. Each surviving row is projected and emitted.
* **aggregate queries** (GROUP BY and/or aggregate calls): Loader →
  FilterProject Map emitting ``(group_key, per-aggregate inputs)`` →
  PartialReduce folding one accumulator tuple per group — HAMR's
  incremental aggregation doing exactly what a SQL engine's partial
  aggregation does. HAVING and the final SELECT expressions evaluate in
  the finalize step with aggregate calls rewritten to accumulator
  references.

ORDER BY / LIMIT apply driver-side on the collected result (a top-level
coordinator step, as in any distributed SQL engine).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.core import FlowletGraph, Loader, Map, PartialReduce, Reduce
from repro.core.sources import DataSource
from repro.sql.ast import (
    AggregateCall,
    AggregateRef,
    BinOp,
    Column,
    Expr,
    Neg,
    Not,
    Query,
    SQLError,
)

#: sink flowlet name every compiled graph ends in
RESULT_FLOWLET = "ResultSink"


def _rewrite(expr: Expr, mapping: dict[AggregateCall, int]) -> Expr:
    """Replace aggregate calls with accumulator references."""
    if isinstance(expr, AggregateCall):
        return AggregateRef(mapping[expr])
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.left, mapping), _rewrite(expr.right, mapping))
    if isinstance(expr, Not):
        return Not(_rewrite(expr.operand, mapping))
    if isinstance(expr, Neg):
        return Neg(_rewrite(expr.operand, mapping))
    return expr


def _validate_aggregate_query(query: Query) -> None:
    group_cols = set(query.group_by)
    for item in query.select:
        # Any column referenced outside an aggregate must be a group key.
        agg_cols: set[str] = set()
        for agg in item.expr.aggregates():
            agg_cols |= agg.columns()
        bare = item.expr.columns() - agg_cols
        if not bare <= group_cols:
            raise SQLError(
                f"column(s) {sorted(bare - group_cols)} in {item.name!r} must "
                "appear in GROUP BY or inside an aggregate"
            )


class _Accumulators:
    """Element-wise fold logic for the aggregate tuple of one group."""

    def __init__(self, aggs: list[AggregateCall]):
        self.aggs = aggs

    def input_values(self, row: dict) -> tuple:
        values = []
        for agg in self.aggs:
            if agg.arg is None:  # COUNT(*)
                values.append(1)
            else:
                values.append(agg.arg.eval(row))
        return tuple(values)

    def initial(self) -> tuple:
        out = []
        for agg in self.aggs:
            if agg.func == "COUNT":
                out.append(0)
            elif agg.func == "SUM":
                out.append(0)
            elif agg.func == "AVG":
                out.append((0, 0.0))  # (count, sum)
            else:  # MIN / MAX
                out.append(None)
        return tuple(out)

    def combine(self, acc: tuple, values: tuple) -> tuple:
        out = []
        for agg, a, v in zip(self.aggs, acc, values):
            if agg.func == "COUNT":
                out.append(a + (1 if agg.arg is None or v is not None else 0))
            elif agg.func == "SUM":
                out.append(a + (v or 0))
            elif agg.func == "AVG":
                count, total = a
                if v is not None:
                    count, total = count + 1, total + v
                out.append((count, total))
            elif agg.func == "MIN":
                out.append(v if a is None or (v is not None and v < a) else a)
            else:  # MAX
                out.append(v if a is None or (v is not None and v > a) else a)
        return tuple(out)

    def results(self, acc: tuple) -> list[Any]:
        out = []
        for agg, a in zip(self.aggs, acc):
            if agg.func == "AVG":
                count, total = a
                out.append(total / count if count else None)
            else:
                out.append(a)
        return out


def compile_query(
    query: Query,
    source: DataSource,
    join_source: Optional[DataSource] = None,
    left_columns: tuple = (),
    right_columns: tuple = (),
) -> FlowletGraph:
    """Build the flowlet graph executing ``query`` over ``source``.

    Sources must yield ``(row_id, row_dict)`` pairs. For JOIN queries pass
    the right table's source and both column tuples (for unambiguous
    unqualified access to joined columns). Results are the emissions of
    the :data:`RESULT_FLOWLET` sink: ``(sort_key, row_dict)``.
    """
    graph = FlowletGraph(f"sql:{query.table}")
    if query.join is not None:
        if join_source is None:
            raise SQLError("JOIN query compiled without the right table's source")
        upstream = _compile_join(graph, query, source, join_source, left_columns, right_columns)
    else:
        upstream = graph.add(Loader("TableScan", source))
    if query.is_aggregate:
        return _compile_aggregate(query, graph, upstream)
    return _compile_projection(query, graph, upstream)


def _compile_join(
    graph: FlowletGraph,
    query: Query,
    left_source: DataSource,
    right_source: DataSource,
    left_columns: tuple,
    right_columns: tuple,
):
    """Hash join as a co-group reduce: both scans tag and shuffle rows by
    the join key; the reduce pairs every left row with every right row of
    the key and emits the merged row."""
    join = query.join
    left_name, right_name = query.table, join.right_table
    shared = set(left_columns) & set(right_columns)

    left_scan = graph.add(Loader("TableScan", left_source))
    right_scan = graph.add(Loader("JoinScan", right_source))
    tag_left = graph.add(
        Map("TagLeft", fn=lambda ctx, _rid, row: ctx.emit(row[join.left_key], ("L", row)))
    )
    tag_right = graph.add(
        Map("TagRight", fn=lambda ctx, _rid, row: ctx.emit(row[join.right_key], ("R", row)))
    )

    def cogroup(ctx, key, tagged: list) -> None:
        lefts = [row for tag, row in tagged if tag == "L"]
        rights = [row for tag, row in tagged if tag == "R"]
        for lrow in lefts:
            for rrow in rights:
                merged = {}
                for col, value in lrow.items():
                    merged[f"{left_name}.{col}"] = value
                    if col not in shared:
                        merged[col] = value
                for col, value in rrow.items():
                    merged[f"{right_name}.{col}"] = value
                    if col not in shared:
                        merged[col] = value
                ctx.emit(key, merged)

    join_reduce = graph.add(Reduce("HashJoin", fn=cogroup))
    graph.connect(left_scan, tag_left)
    graph.connect(right_scan, tag_right)
    graph.connect(tag_left, join_reduce)
    graph.connect(tag_right, join_reduce)
    return join_reduce


def _compile_projection(query: Query, graph: FlowletGraph, upstream) -> FlowletGraph:
    names = query.output_names()
    where = query.where

    def filter_project(ctx, row_id, row: dict) -> None:
        if where is not None and not where.eval(row):
            return
        out = {name: item.expr.eval(row) for name, item in zip(names, query.select)}
        ctx.emit(row_id, out)

    sink = graph.add(Map(RESULT_FLOWLET, fn=filter_project))
    graph.connect(upstream, sink)
    return graph


def _compile_aggregate(query: Query, graph: FlowletGraph, upstream) -> FlowletGraph:
    _validate_aggregate_query(query)
    loader = upstream

    # Collect distinct aggregate calls across SELECT and HAVING.
    aggs: list[AggregateCall] = []
    mapping: dict[AggregateCall, int] = {}
    for expr in [item.expr for item in query.select] + (
        [query.having] if query.having is not None else []
    ):
        for agg in expr.aggregates():
            if agg not in mapping:
                mapping[agg] = len(aggs)
                aggs.append(agg)
    accumulators = _Accumulators(aggs)
    select_rewritten = [
        ( item.name, _rewrite(item.expr, mapping)) for item in query.select
    ]
    having_rewritten = (
        _rewrite(query.having, mapping) if query.having is not None else None
    )
    group_cols = query.group_by
    where = query.where

    def map_to_groups(ctx, _row_id, row: dict) -> None:
        if where is not None and not where.eval(row):
            return
        key = tuple(Column(col).eval(row) for col in group_cols) if group_cols else ()
        ctx.emit(key, accumulators.input_values(row))

    grouper = graph.add(Map("GroupMap", fn=map_to_groups))
    graph.connect(loader, grouper)

    def finalize(ctx, key: tuple, acc: tuple) -> None:
        results = accumulators.results(acc)
        row: dict[str, Any] = {col: value for col, value in zip(group_cols, key)}
        for index, value in enumerate(results):
            row[f"__agg{index}"] = value
        out = {name: expr.eval(row) for name, expr in select_rewritten}
        if having_rewritten is not None and not having_rewritten.eval({**row, **out}):
            return
        ctx.emit(key, out)

    aggregate = graph.add(
        PartialReduce(
            RESULT_FLOWLET,
            initial=lambda _key: accumulators.initial(),
            combine=accumulators.combine,
            finalize=finalize,
        )
    )
    graph.connect(grouper, aggregate)
    return graph


def order_and_limit(rows: list[dict], query: Query) -> list[dict]:
    """Driver-side ORDER BY / LIMIT over the collected result rows."""
    out = rows
    names = set(query.output_names())
    for item in reversed(query.order_by):
        if item.name not in names:
            raise SQLError(f"ORDER BY {item.name!r} is not an output column")
        out = sorted(
            out,
            key=lambda row: _sort_key(row[item.name]),
            reverse=item.descending,
        )
    if query.limit is not None:
        out = out[: query.limit]
    return list(out)


def _sort_key(value: Any):
    # None sorts first; mixed types sort by type name then value repr.
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)) and not (
        isinstance(value, float) and math.isnan(value)
    ):
        return (2, "", value)
    return (3, type(value).__name__, repr(value))
