"""Lexer and recursive-descent parser for the SQL dialect.

Grammar (keywords case-insensitive, identifiers case-sensitive)::

    query     := SELECT select_list FROM ident
                 [WHERE expr] [GROUP BY ident (',' ident)*] [HAVING expr]
                 [ORDER BY order_item (',' order_item)*] [LIMIT int]
    select_list := select_item (',' select_item)*
    select_item := expr [AS ident] | '*'-less (no bare star projection)
    order_item  := ident [ASC|DESC]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | cmp_expr
    cmp_expr  := add_expr (('='|'!='|'<'|'<='|'>'|'>=') add_expr)?
    add_expr  := mul_expr (('+'|'-') mul_expr)*
    mul_expr  := unary (('*'|'/'|'%') unary)*
    unary     := '-' unary | atom
    atom      := number | string | TRUE | FALSE | NULL
               | AGG '(' (expr|'*') ')' | ident | '(' expr ')'
"""

from __future__ import annotations

import re
from typing import Optional

from repro.sql.ast import (
    AGGREGATE_FUNCS,
    RESERVED_WORDS,
    AggregateCall,
    BinOp,
    Column,
    Expr,
    JoinClause,
    Literal,
    Neg,
    Not,
    OrderItem,
    Query,
    SelectItem,
    SQLError,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<qident>"(?:[^"]|"")*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|[=<>+\-*/%(),.])
    """,
    re.VERBOSE,
)

#: keywords safe to reuse as identifiers: they can never start a clause or
#: an expression, so no parse position is ambiguous
_SOFT_KEYWORDS = frozenset({"BY", "ASC", "DESC"})


class _Token:
    __slots__ = ("kind", "value", "text")

    def __init__(self, kind: str, value, text: str = ""):
        self.kind = kind  # "number" | "string" | "ident" | "kw" | "op" | "eof"
        self.value = value
        self.text = text  # original spelling (keywords keep their case here)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind}:{self.value}>"


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "number":
            tokens.append(_Token("number", float(value) if "." in value else int(value)))
        elif kind == "string":
            tokens.append(_Token("string", value[1:-1].replace("''", "'")))
        elif kind == "qident":
            name = value[1:-1].replace('""', '"')
            if not name:
                raise SQLError("empty quoted identifier")
            tokens.append(_Token("ident", name))
        elif kind == "ident":
            upper = value.upper()
            if upper in RESERVED_WORDS:
                tokens.append(_Token("kw", upper, text=value))
            else:
                tokens.append(_Token("ident", value))
        else:
            tokens.append(_Token("op", "!=" if value == "<>" else value))
    tokens.append(_Token("eof", None))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.current
        self.pos += 1
        return token

    def accept(self, kind: str, value=None) -> Optional[_Token]:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> _Token:
        token = self.accept(kind, value)
        if token is None:
            want = value if value is not None else kind
            raise SQLError(f"expected {want!r}, found {self.current.value!r}")
        return token

    def accept_ident(self) -> Optional[str]:
        """An identifier, allowing soft keywords (e.g. a column named ``by``)."""
        token = self.current
        if token.kind == "ident":
            self.advance()
            return token.value
        if token.kind == "kw" and token.value in _SOFT_KEYWORDS:
            self.advance()
            return token.text
        return None

    def expect_ident(self) -> str:
        name = self.accept_ident()
        if name is None:
            raise SQLError(f"expected identifier, found {self.current.value!r}")
        return name

    # -- grammar ----------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect("kw", "SELECT")
        select = [self.parse_select_item()]
        while self.accept("op", ","):
            select.append(self.parse_select_item())
        self.expect("kw", "FROM")
        table = self.expect_ident()
        join = None
        if self.accept("kw", "INNER"):
            self.expect("kw", "JOIN")
            join = self.parse_join(table)
        elif self.accept("kw", "JOIN"):
            join = self.parse_join(table)

        where = None
        if self.accept("kw", "WHERE"):
            where = self.parse_expr()
        group_by: list[str] = []
        if self.accept("kw", "GROUP"):
            self.expect("kw", "BY")
            group_by.append(self.parse_name())
            while self.accept("op", ","):
                group_by.append(self.parse_name())
        having = None
        if self.accept("kw", "HAVING"):
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept("kw", "ORDER"):
            self.expect("kw", "BY")
            order_by.append(self.parse_order_item())
            while self.accept("op", ","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept("kw", "LIMIT"):
            token = self.expect("number")
            if not isinstance(token.value, int) or token.value < 0:
                raise SQLError("LIMIT requires a non-negative integer")
            limit = token.value
        self.expect("eof")
        return Query(
            select=tuple(select),
            table=table,
            join=join,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def parse_join(self, left_table: str) -> "JoinClause":
        right_table = self.expect_ident()
        self.expect("kw", "ON")
        first = self.parse_qualified()
        self.expect("op", "=")
        second = self.parse_qualified()
        sides = {first[0]: first[1], second[0]: second[1]}
        if set(sides) != {left_table, right_table}:
            raise SQLError(
                f"JOIN condition must reference {left_table!r} and {right_table!r}"
            )
        return JoinClause(
            right_table=right_table,
            left_key=sides[left_table],
            right_key=sides[right_table],
        )

    def parse_qualified(self) -> tuple[str, str]:
        table = self.expect_ident()
        self.expect("op", ".")
        column = self.expect_ident()
        return table, column

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept("kw", "AS"):
            alias = self.expect_ident()
        return SelectItem(expr, alias)

    def parse_name(self) -> str:
        """A column name, optionally table-qualified (``t.col``)."""
        name = self.expect_ident()
        if self.accept("op", "."):
            name = f"{name}.{self.expect_ident()}"
        return name

    def parse_order_item(self) -> OrderItem:
        name = self.parse_name()
        descending = False
        if self.accept("kw", "DESC"):
            descending = True
        else:
            self.accept("kw", "ASC")
        return OrderItem(name, descending)

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept("kw", "OR"):
            left = BinOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept("kw", "AND"):
            left = BinOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept("kw", "NOT"):
            return Not(self.parse_not())
        return self.parse_cmp()

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        for op in ("<=", ">=", "!=", "=", "<", ">"):
            if self.accept("op", op):
                return BinOp(op, left, self.parse_add())
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while True:
            if self.accept("op", "+"):
                left = BinOp("+", left, self.parse_mul())
            elif self.accept("op", "-"):
                left = BinOp("-", left, self.parse_mul())
            else:
                return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while True:
            if self.accept("op", "*"):
                left = BinOp("*", left, self.parse_unary())
            elif self.accept("op", "/"):
                left = BinOp("/", left, self.parse_unary())
            elif self.accept("op", "%"):
                left = BinOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return Neg(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.current
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "kw" and token.value in ("TRUE", "FALSE", "NULL"):
            self.advance()
            return Literal({"TRUE": True, "FALSE": False, "NULL": None}[token.value])
        if token.kind == "kw" and token.value in AGGREGATE_FUNCS:
            func = self.advance().value
            self.expect("op", "(")
            if func == "COUNT" and self.accept("op", "*"):
                arg = None
            else:
                arg = self.parse_expr()
            self.expect("op", ")")
            return AggregateCall(func, arg)
        name = self.accept_ident()
        if name is not None:
            if self.accept("op", "."):
                return Column(f"{name}.{self.expect_ident()}")
            return Column(name)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise SQLError(f"unexpected token {token.value!r}")


def parse(text: str) -> Query:
    """Parse one SELECT statement into a :class:`Query`."""
    if not text or not text.strip():
        raise SQLError("empty query")
    return _Parser(_lex(text.strip().rstrip(";"))).parse_query()
