"""SQL on the MapReduce baseline: the same queries, the Hadoop way.

The flowlet compiler (:mod:`repro.sql.compiler`) maps a query onto
Loader → Map → PartialReduce; this module maps the *same validated
query* onto one MR job over the same cluster model, so any SELECT can
run through **both** engines and be compared — BigBench-style SQL
becomes a dual-engine workload like every Table 2 app:

* **projection queries** — a map-only job: the mapper applies WHERE and
  projects each surviving row (no shuffle, mirroring the flowlet
  Map-to-sink pipeline).
* **aggregate queries** — the mapper emits ``(group_key, per-aggregate
  input tuple)`` exactly as the flowlet ``GroupMap`` does; the reducer
  folds :class:`~repro.sql.compiler._Accumulators` ``initial``/
  ``combine`` over the grouped values and finalizes (HAVING + rewritten
  SELECT expressions) — the same fold logic object the flowlet path
  runs, so both engines compute identical result rows.

No combiner is attached: the accumulator state and the mapper's raw
value tuples have different types (AVG folds ``(count, sum)`` pairs),
and MR combiners fold raw values into accumulated output — mixing the
two would corrupt AVG. The barrier shuffle carries the raw tuples
instead, which is precisely the cost profile the paper attributes to
MapReduce versus HAMR's incremental partial aggregation.

ORDER BY / LIMIT stay driver-side (:func:`repro.sql.compiler.
order_and_limit`), shared verbatim with the flowlet session.
"""

from __future__ import annotations

from typing import Any

from repro.mapreduce import Mapper, MRJob, Reducer
from repro.sql.ast import AggregateCall, Column, Query, SQLError
from repro.sql.compiler import (
    _Accumulators,
    _rewrite,
    _validate_aggregate_query,
    order_and_limit,
)
from repro.sql.parser import parse
from repro.sql.session import QueryResult


def build_query_job(query: Query, input_file: str, output_file: str) -> MRJob:
    """One MR job executing ``query`` over DFS rows ``(row_id, dict)``."""
    if query.join is not None:
        raise SQLError("JOIN queries are not supported on the MapReduce path")
    if query.is_aggregate:
        return _aggregate_job(query, input_file, output_file)
    return _projection_job(query, input_file, output_file)


def _projection_job(query: Query, input_file: str, output_file: str) -> MRJob:
    names = query.output_names()
    where = query.where

    def filter_project(ctx, row_id, row: dict) -> None:
        if where is not None and not where.eval(row):
            return
        out = {name: item.expr.eval(row) for name, item in zip(names, query.select)}
        ctx.emit(row_id, out)

    return MRJob(
        f"sql:{query.table}",
        input_file,
        output_file,
        mapper=Mapper(fn=filter_project),
    )


def _aggregate_job(query: Query, input_file: str, output_file: str) -> MRJob:
    _validate_aggregate_query(query)
    aggs: list[AggregateCall] = []
    mapping: dict[AggregateCall, int] = {}
    for expr in [item.expr for item in query.select] + (
        [query.having] if query.having is not None else []
    ):
        for agg in expr.aggregates():
            if agg not in mapping:
                mapping[agg] = len(aggs)
                aggs.append(agg)
    accumulators = _Accumulators(aggs)
    select_rewritten = [
        (item.name, _rewrite(item.expr, mapping)) for item in query.select
    ]
    having_rewritten = (
        _rewrite(query.having, mapping) if query.having is not None else None
    )
    group_cols = query.group_by
    where = query.where

    def map_to_groups(ctx, _row_id, row: dict) -> None:
        if where is not None and not where.eval(row):
            return
        key = tuple(Column(col).eval(row) for col in group_cols) if group_cols else ()
        ctx.emit(key, accumulators.input_values(row))

    def reduce_group(ctx, key: tuple, values: list) -> None:
        acc = accumulators.initial()
        for value in values:
            acc = accumulators.combine(acc, value)
        results = accumulators.results(acc)
        row: dict[str, Any] = {col: value for col, value in zip(group_cols, key)}
        for index, value in enumerate(results):
            row[f"__agg{index}"] = value
        out = {name: expr.eval(row) for name, expr in select_rewritten}
        if having_rewritten is not None and not having_rewritten.eval({**row, **out}):
            return
        ctx.emit(key, out)

    return MRJob(
        f"sql:{query.table}",
        input_file,
        output_file,
        mapper=Mapper(fn=map_to_groups),
        reducer=Reducer(fn=reduce_group),
    )


class MRSQLSession:
    """Parses and runs queries as MR jobs on an :class:`AppEnv`'s cluster.

    Tables are ingested into the simulated DFS once at registration
    (``sql.<table>`` files, rows as ``(row_id, dict)`` records) — the
    MapReduce analogue of :class:`repro.sql.Catalog`, with the same
    declared-schema escape hatch for legitimately empty tables.
    """

    def __init__(self, env):
        self.env = env
        self._columns: dict[str, tuple[str, ...]] = {}
        self._seq = 0

    def register(self, name, rows, columns=None) -> None:
        rows = list(rows)
        if not name:
            raise SQLError("table needs a name")
        if columns is None:
            if not rows:
                raise SQLError(
                    f"table {name!r} has no rows (register at least one, "
                    "or declare columns= for an intentionally empty table)"
                )
            columns = tuple(rows[0].keys())
        else:
            columns = tuple(columns)
            if not columns:
                raise SQLError(f"table {name!r}: declared columns are empty")
        for i, row in enumerate(rows):
            if tuple(row.keys()) != columns:
                raise SQLError(f"table {name!r}: row {i} columns differ from row 0")
        self.env.ingest_dfs(self._input_file(name), list(enumerate(rows)))
        self._columns[name] = columns

    def tables(self) -> list[str]:
        return sorted(self._columns)

    def columns(self, name: str) -> tuple[str, ...]:
        if name not in self._columns:
            raise SQLError(f"unknown table {name!r}")
        return self._columns[name]

    @staticmethod
    def _input_file(name: str) -> str:
        return f"sql.{name}"

    def run(self, sql: str) -> QueryResult:
        """Execute one SELECT as an MR job; returns ordered, limited rows."""
        query = parse(sql)
        if query.table not in self._columns:
            raise SQLError(f"unknown table {query.table!r}")
        # DFS files are write-once: every query gets a fresh output path
        self._seq += 1
        job = build_query_job(
            query, self._input_file(query.table), f"sql.q{self._seq}.out"
        )
        result = self.env.hadoop.run(job)
        rows = [row for _key, row in result.outputs]
        rows = order_and_limit(rows, query)
        return QueryResult(query.output_names(), rows, result.makespan, query)
