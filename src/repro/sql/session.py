"""SQL sessions: catalogs of tables and query execution on a HAMR engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.core import CollectionSource, HamrEngine
from repro.core.sources import DataSource
from repro.sql.ast import Query, SQLError
from repro.sql.compiler import RESULT_FLOWLET, compile_query, order_and_limit
from repro.sql.parser import parse


@dataclass
class QueryResult:
    """Rows plus execution metadata."""

    names: list[str]
    rows: list[dict]
    makespan: float
    query: Query

    def column(self, name: str) -> list[Any]:
        if name not in self.names:
            raise SQLError(f"no output column {name!r}")
        return [row[name] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Catalog:
    """Named tables available to queries.

    A table is a list of column→value dicts (every row must carry the
    same columns) or any :class:`DataSource` yielding ``(row_id, dict)``
    pairs — e.g. a DFS- or LocalFS-backed source for data at rest.
    """

    def __init__(self) -> None:
        self._tables: dict[str, DataSource] = {}
        self._columns: dict[str, tuple[str, ...]] = {}

    def register(
        self,
        name: str,
        rows: Iterable[dict],
        splits_per_worker: int = 2,
        columns: Optional[Iterable[str]] = None,
    ) -> None:
        """Register a row-list table.

        Columns are inferred from the first row; an **empty** table is
        legal only with an explicit declared schema (``columns=``) —
        a fleet table like ``stragglers`` can legitimately hold zero
        rows, but a schema-less empty registration is still an error
        because queries against it could never resolve a column.
        """
        rows = list(rows)
        if not name:
            raise SQLError("table needs a name")
        if columns is None:
            if not rows:
                raise SQLError(
                    f"table {name!r} has no rows (register at least one, "
                    "or declare columns= for an intentionally empty table)"
                )
            columns = tuple(rows[0].keys())
        else:
            columns = tuple(columns)
            if not columns:
                raise SQLError(f"table {name!r}: declared columns are empty")
        for i, row in enumerate(rows):
            if tuple(row.keys()) != columns:
                raise SQLError(f"table {name!r}: row {i} columns differ from row 0")
        self._tables[name] = CollectionSource(
            list(enumerate(rows)), splits_per_worker=splits_per_worker
        )
        self._columns[name] = columns

    def register_source(self, name: str, source: DataSource, columns: tuple[str, ...]) -> None:
        self._tables[name] = source
        self._columns[name] = tuple(columns)

    def source(self, name: str) -> DataSource:
        try:
            return self._tables[name]
        except KeyError:
            raise SQLError(f"unknown table {name!r}") from None

    def columns(self, name: str) -> tuple[str, ...]:
        self.source(name)
        return self._columns[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)


class SQLSession:
    """Parses, compiles and runs queries on a HAMR engine."""

    def __init__(self, engine: HamrEngine, catalog: Optional[Catalog] = None):
        self.engine = engine
        self.catalog = catalog if catalog is not None else Catalog()

    def run(self, sql: str) -> QueryResult:
        """Execute one SELECT; returns ordered, limited rows."""
        query = parse(sql)
        graph = self._compile(query)
        job = self.engine.run(graph)
        rows = [row for _key, row in job.output(RESULT_FLOWLET)]
        rows = order_and_limit(rows, query)
        return QueryResult(query.output_names(), rows, job.makespan, query)

    def _compile(self, query: Query):
        source = self.catalog.source(query.table)
        if query.join is None:
            return compile_query(query, source)
        return compile_query(
            query,
            source,
            join_source=self.catalog.source(query.join.right_table),
            left_columns=self.catalog.columns(query.table),
            right_columns=self.catalog.columns(query.join.right_table),
        )

    def explain(self, sql: str) -> str:
        """The compiled flowlet plan, one line per flowlet."""
        query = parse(sql)
        graph = self._compile(query)
        lines = [f"plan for: {sql.strip()}"]
        for flowlet in graph.topological_order():
            downstream = ", ".join(f.name for f in graph.downstream(flowlet))
            arrow = f" -> {downstream}" if downstream else "  (sink)"
            lines.append(f"  {flowlet.kind.value:15s} {flowlet.name}{arrow}")
        if query.order_by or query.limit is not None:
            lines.append("  driver          OrderAndLimit  (coordinator-side)")
        return "\n".join(lines)
