"""A SQL front-end compiling to flowlet graphs.

The paper's §7: "In further, HAMR will provide higher level interactive
interfaces like SQL." This package implements that future-work feature: a
small but real SQL dialect — projections, expressions, WHERE, INNER
JOIN, GROUP BY with aggregates, HAVING, ORDER BY, LIMIT — parsed into an
AST and
compiled onto the flowlet engine (Loader → filter/project Map →
PartialReduce for aggregation), so queries run with all of HAMR's
machinery: fine-grain scheduling, in-memory shuffle, partial aggregation.

Example::

    from repro.sql import Catalog, SQLSession

    catalog = Catalog()
    catalog.register("movies", rows)          # list[dict]
    session = SQLSession(engine, catalog)
    result = session.run(
        "SELECT genre, COUNT(*) AS n, AVG(rating) AS avg_r "
        "FROM movies WHERE year >= 2000 "
        "GROUP BY genre HAVING n > 10 ORDER BY avg_r DESC LIMIT 5"
    )
    for row in result.rows: ...

Supported grammar (see :mod:`repro.sql.parser`)::

    SELECT expr [AS name] (, expr [AS name])*
    FROM table [[INNER] JOIN table2 ON table.col = table2.col]
    [WHERE expr]
    [GROUP BY column (, column)*]
    [HAVING expr]
    [ORDER BY name [ASC|DESC] (, name [ASC|DESC])*]
    [LIMIT n]

Aggregates: COUNT(*), COUNT(expr), SUM, AVG, MIN, MAX.
Operators: + - * / %, = != < <= > >=, AND OR NOT, parentheses.
Joins compile to a co-group reduce (hash join); columns of joined rows
are reachable qualified (``users.uid``) or, when unambiguous, bare.
"""

from repro.sql.ast import Query, SQLError
from repro.sql.parser import parse
from repro.sql.session import Catalog, QueryResult, SQLSession

__all__ = ["parse", "Query", "SQLError", "Catalog", "SQLSession", "QueryResult"]
