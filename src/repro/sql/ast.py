"""SQL AST nodes and expression evaluation.

Expressions evaluate against *row dicts* (column name → value). Aggregate
calls never evaluate directly — the compiler rewrites them into partial-
reduce accumulators; evaluating one raises :class:`SQLError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import ReproError


class SQLError(ReproError):
    """Lexing, parsing, compilation or execution error in the SQL layer."""


# -- expressions -------------------------------------------------------------------


class Expr:
    """Base expression node."""

    def eval(self, row: dict) -> Any:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names referenced by this expression."""
        return set()

    def aggregates(self) -> list["AggregateCall"]:
        """All aggregate calls contained in this expression."""
        return []


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def eval(self, row: dict) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expr):
    name: str

    def eval(self, row: dict) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise SQLError(f"unknown column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return quote_identifier(self.name)


_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "AND": lambda a, b: bool(a) and bool(b),
    "OR": lambda a, b: bool(a) or bool(b),
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, row: dict) -> Any:
        try:
            return _BINARY_OPS[self.op](self.left.eval(row), self.right.eval(row))
        except (TypeError, ZeroDivisionError) as exc:
            raise SQLError(f"cannot evaluate {self}: {exc}") from exc

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def aggregates(self) -> list["AggregateCall"]:
        return self.left.aggregates() + self.right.aggregates()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def eval(self, row: dict) -> Any:
        return not bool(self.operand.eval(row))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def aggregates(self) -> list["AggregateCall"]:
        return self.operand.aggregates()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    def eval(self, row: dict) -> Any:
        return -self.operand.eval(row)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def aggregates(self) -> list["AggregateCall"]:
        return self.operand.aggregates()

    def __str__(self) -> str:
        return f"(-{self.operand})"


AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

#: every word the lexer treats as a keyword (identifiers colliding with
#: these must be quoted when rendering SQL back out)
RESERVED_WORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "AS", "AND", "OR", "NOT", "ASC", "DESC", "TRUE", "FALSE", "NULL",
        "JOIN", "INNER", "ON",
    }
    | set(AGGREGATE_FUNCS)
)


def is_reserved(name: str) -> bool:
    return name.upper() in RESERVED_WORDS


def quote_identifier(name: str) -> str:
    """Render ``name`` so the parser reads it back as the same identifier."""
    if is_reserved(name):
        return '"' + name.replace('"', '""') + '"'
    return name


@dataclass(frozen=True)
class AggregateCall(Expr):
    """COUNT/SUM/AVG/MIN/MAX over an argument expression (or ``*``)."""

    func: str  # upper-case
    arg: Optional[Expr]  # None means COUNT(*)

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCS:
            raise SQLError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise SQLError(f"{self.func}(*) is not valid; only COUNT(*)")

    def eval(self, row: dict) -> Any:
        # The compiler substitutes accumulator results before evaluation;
        # a raw aggregate in a row context is a query error.
        raise SQLError(f"aggregate {self} evaluated outside GROUP BY compilation")

    def columns(self) -> set[str]:
        return self.arg.columns() if self.arg is not None else set()

    def aggregates(self) -> list["AggregateCall"]:
        return [self]

    def __str__(self) -> str:
        return f"{self.func}({self.arg if self.arg is not None else '*'})"


@dataclass(frozen=True)
class AggregateRef(Expr):
    """A compiled reference to the i-th accumulator of a group row."""

    index: int

    def eval(self, row: dict) -> Any:
        return row[f"__agg{self.index}"]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"agg[{self.index}]"


# -- query -------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return str(self.expr)


@dataclass(frozen=True)
class OrderItem:
    name: str
    descending: bool = False


@dataclass(frozen=True)
class JoinClause:
    """INNER JOIN of the FROM table with ``right_table`` on key equality."""

    right_table: str
    left_key: str
    right_key: str


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    table: str
    join: Optional["JoinClause"] = None
    where: Optional[Expr] = None
    group_by: tuple[str, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    @property
    def is_aggregate(self) -> bool:
        return bool(self.group_by) or any(
            item.expr.aggregates() for item in self.select
        )

    def output_names(self) -> list[str]:
        return [item.name for item in self.select]
