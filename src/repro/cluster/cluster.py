"""The assembled cluster: nodes + network + resource manager + trace."""

from __future__ import annotations

from typing import Iterator

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.spec import ClusterSpec
from repro.cluster.yarn import ResourceManager
from repro.common.partitioner import HashPartitioner, Partitioner
from repro.obs import Tracer
from repro.sim import Simulator, Trace


class Cluster:
    """A simulated cluster built from a :class:`ClusterSpec`.

    Node 0 is the master (NameNode / ResourceManager host, per §5.1); nodes
    1..N-1 are the workers both engines execute on. Partitions map onto
    workers round-robin, so "each node works on a portion of the whole key
    space" exactly as in the paper.

    ``obs=True`` enables the unified observability layer (``self.obs``):
    task/stall/spill spans, the metrics registry, blame attribution, and
    per-node busy-thread time series. Disabled (the default), the tracer
    is a pure no-op and charges nothing to wall-clock.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        sim: Simulator | None = None,
        trace: bool = True,
        obs: bool = False,
    ):
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self.trace = Trace(self.sim, enabled=trace)
        self.obs = Tracer(self.sim, enabled=obs)
        self.nodes = [
            Node(
                self.sim, node_id, spec.spec_for(node_id), spec.cost,
                trace=self.trace, obs=self.obs,
            )
            for node_id in range(spec.num_nodes)
        ]
        self.network = Network(
            self.sim, self.nodes, spec.cost, latency=spec.node.nic_latency
        )
        self.resource_manager = ResourceManager(self.sim, self.nodes)
        if obs:
            for node in self.nodes:
                node.threads.observer = self._thread_observer(node.node_id)

    def _thread_observer(self, node_id: int):
        series = self.obs.metrics.series("threads_busy", node=node_id)
        return series.append

    @property
    def master(self) -> Node:
        return self.nodes[0]

    @property
    def workers(self) -> list[Node]:
        return self.nodes[1:]

    @property
    def num_workers(self) -> int:
        return len(self.nodes) - 1

    @property
    def cost(self):
        return self.spec.cost

    def worker(self, index: int) -> Node:
        """The ``index``-th worker (0-based)."""
        return self.nodes[1 + index]

    def owner_of_partition(self, partition: int, num_partitions: int) -> Node:
        """The worker that owns a shuffle partition (round-robin layout)."""
        if not 0 <= partition < num_partitions:
            raise ValueError(f"partition {partition} out of range {num_partitions}")
        return self.workers[partition % self.num_workers]

    def default_partitioner(self, partitions_per_worker: int = 1) -> Partitioner:
        """A hash partitioner with one (or more) partitions per worker."""
        return HashPartitioner(self.num_workers * partitions_per_worker)

    def iter_workers(self) -> Iterator[Node]:
        return iter(self.workers)

    def run(self, until: float | None = None) -> float:
        """Drive the simulation (delegates to the kernel)."""
        return self.sim.run(until=until)

    # -- aggregate metrics ----------------------------------------------------

    def total_disk_bytes(self) -> int:
        return sum(node.disk.total_bytes for node in self.nodes)

    def total_network_bytes(self) -> int:
        return self.network.total_bytes

    def max_memory_high_water(self) -> float:
        return max(node.memory.high_water for node in self.nodes)

    def mean_thread_utilization(self) -> float:
        workers = self.workers
        return sum(node.threads.utilization() for node in workers) / len(workers)
