"""The assembled cluster: nodes + network + resource manager + trace."""

from __future__ import annotations

from typing import Iterator

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.spec import ClusterSpec
from repro.cluster.yarn import ResourceManager
from repro.common.partitioner import HashPartitioner, Partitioner
from repro.obs import Tracer, telemetry
from repro.sim import Simulator, Trace


class Cluster:
    """A simulated cluster built from a :class:`ClusterSpec`.

    Node 0 is the master (NameNode / ResourceManager host, per §5.1); nodes
    1..N-1 are the workers both engines execute on. Partitions map onto
    workers round-robin, so "each node works on a portion of the whole key
    space" exactly as in the paper.

    ``obs=True`` enables the unified observability layer (``self.obs``):
    task/stall/spill spans, the metrics registry, blame attribution, and
    per-node busy-thread time series. Disabled (the default), the tracer
    is a pure no-op and charges nothing to wall-clock.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        sim: Simulator | None = None,
        trace: bool = True,
        obs: bool = False,
        trace_max_records: int | None = None,
        journal=None,
    ):
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self.trace = Trace(self.sim, enabled=trace, max_records=trace_max_records)
        # The journal attaches at tracer construction: _wire_telemetry
        # below captures metric handles in closures, and those creations
        # must already be journaled.
        self.obs = Tracer(self.sim, enabled=obs, journal=journal)
        self.nodes = [
            Node(
                self.sim, node_id, spec.spec_for(node_id), spec.cost,
                trace=self.trace, obs=self.obs,
            )
            for node_id in range(spec.num_nodes)
        ]
        #: shard-aware ownership override: worker indices (in partition
        #: round-robin order) that own the shuffle key space; None keeps
        #: the all-workers round-robin layout. Engines install this when
        #: a shard-aware partitioner restricts ownership to the workers
        #: actually holding input shards.
        self.partition_owners: list[int] | None = None
        racks = self.rack_assignment()
        self.network = Network(
            self.sim, self.nodes, spec.cost, latency=spec.node.nic_latency,
            racks=racks,
        )
        self.resource_manager = ResourceManager(self.sim, self.nodes)
        # Rack-aware traffic accounting: matrices created by the tracer
        # split inter- vs intra-rack bytes when a topology is configured.
        self.obs.racks = racks
        if obs:
            self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Attach timeline observers to every node's resources.

        CPU-slot occupancy, memory used/pressure and queue depth are step
        tracks fed by occupancy hooks; disk busy-time and NIC tx/rx bytes
        are rate tracks fed by transfer hooks. Engines additionally wire
        inbox-depth observers when they build their flowlet inboxes.
        """
        timeline = self.obs.timeline
        for node in self.nodes:
            nid = node.node_id
            node.threads.observer = self._thread_observer(nid)
            timeline.set_capacity(telemetry.CPU, nid, float(node.threads.capacity))
            for device in node.disk_devices:
                device.observer = timeline.busy_observer(telemetry.DISK, nid)
                timeline.add_capacity(telemetry.DISK, nid, 1.0)
            node.nic_out.observer = timeline.bytes_observer(telemetry.NIC_TX, nid)
            node.nic_in.observer = timeline.bytes_observer(telemetry.NIC_RX, nid)
            node.memory.observer = self._memory_observer(node)
            timeline.set_capacity(telemetry.MEM_USED, nid, node.memory.budget)
            timeline.set_capacity(telemetry.MEM_PRESSURE, nid, 1.0)

    def wire_task_slots(self, resource, node_id: int, capacity: float) -> None:
        """Attach CPU telemetry to an engine-owned task-slot Resource.

        The MapReduce baseline schedules on per-job slot pools rather than
        ``node.threads``; wiring them here gives both engines the same
        ``threads_busy`` series and CPU timeline track.
        """
        if not self.obs.enabled:
            return
        resource.observer = self._thread_observer(node_id)
        self.obs.timeline.set_capacity(telemetry.CPU, node_id, capacity)

    def _thread_observer(self, node_id: int):
        series = self.obs.metrics.series("threads_busy", node=node_id)
        cpu_step = self.obs.timeline.step_observer(telemetry.CPU, node_id)

        def observe(now: float, in_use: int) -> None:
            series.append(now, in_use)
            cpu_step(now, float(in_use))

        return observe

    def _memory_observer(self, node: Node):
        nid = node.node_id
        budget = node.memory.budget
        timeline = self.obs.timeline
        gauge_high = self.obs.metrics.gauge("memory.high_water", node=nid)
        gauge_when = self.obs.metrics.gauge("memory.high_water_time", node=nid)

        def observe(now: float, used: float) -> None:
            timeline.record_step(telemetry.MEM_USED, nid, now, used)
            timeline.record_step(telemetry.MEM_PRESSURE, nid, now, used / budget)
            gauge_high.set(node.memory.high_water)
            gauge_when.set(node.memory.high_water_time)

        return observe

    @property
    def master(self) -> Node:
        return self.nodes[0]

    @property
    def workers(self) -> list[Node]:
        return self.nodes[1:]

    @property
    def num_workers(self) -> int:
        return len(self.nodes) - 1

    @property
    def cost(self):
        return self.spec.cost

    def worker(self, index: int) -> Node:
        """The ``index``-th worker (0-based)."""
        return self.nodes[1 + index]

    def owner_of_partition(self, partition: int, num_partitions: int) -> Node:
        """The worker that owns a shuffle partition.

        Round-robin over all workers by default; with shard-aware
        ownership installed (``partition_owners``), round-robin over the
        owning workers only — partitions land on nodes that already hold
        input shards, which is what makes locality-first partitioning
        cut remote exchange bytes.
        """
        if not 0 <= partition < num_partitions:
            raise ValueError(f"partition {partition} out of range {num_partitions}")
        owners = self.partition_owners
        if owners:
            return self.workers[owners[partition % len(owners)]]
        return self.workers[partition % self.num_workers]

    # -- rack topology --------------------------------------------------------

    @property
    def rack_size(self) -> int:
        return self.spec.rack_size

    def topology(self):
        """The worker-index rack :class:`~repro.dataplane.fabrics.Topology`."""
        from repro.dataplane.fabrics import Topology

        return Topology(self.num_workers, self.rack_size)

    def rack_assignment(self) -> dict[int, int] | None:
        """node-id → rack map, or None without rack structure.

        The master is not in any worker rack (rack ``-1``): it holds no
        shuffle partitions, so its (rare) control traffic never counts
        as intra-rack locality.
        """
        if not 0 < self.rack_size < self.num_workers:
            return None
        topo = self.topology()
        racks = {self.master.node_id: -1}
        for index, worker in enumerate(self.workers):
            racks[worker.node_id] = topo.rack_of(index)
        return racks

    def default_partitioner(self, partitions_per_worker: int = 1) -> Partitioner:
        """A hash partitioner with one (or more) partitions per worker."""
        return HashPartitioner(self.num_workers * partitions_per_worker)

    def iter_workers(self) -> Iterator[Node]:
        return iter(self.workers)

    def run(self, until: float | None = None) -> float:
        """Drive the simulation (delegates to the kernel)."""
        return self.sim.run(until=until)

    # -- aggregate metrics ----------------------------------------------------

    def total_disk_bytes(self) -> int:
        return sum(node.disk.total_bytes for node in self.nodes)

    def total_network_bytes(self) -> int:
        return self.network.total_bytes

    def max_memory_high_water(self) -> float:
        return max(node.memory.high_water for node in self.nodes)

    def mean_thread_utilization(self) -> float:
        workers = self.workers
        return sum(node.threads.utilization() for node in workers) / len(workers)
