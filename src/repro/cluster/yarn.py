"""A YARN-like resource negotiator.

The paper notes (§1, §3.1) that HAMR "can use YARN as the resource
negotiator to allocate and monitor compute containers for flowlet tasks",
and that YARN "schedules the tasks based on available memory on nodes".
This module models that contract: applications request memory-sized
containers on specific nodes; the manager grants them FIFO per node as
memory frees up.

The Hadoop baseline requests one container per map/reduce task (modeling
MRv2 task containers with their JVM start cost charged by the engine); the
HAMR engine requests one long-lived container per node — the paper's "one
JVM per node instead of one JVM per task" (§5.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from repro.common.errors import ConfigError
from repro.cluster.node import Node
from repro.sim import Simulator
from repro.sim.core import SimEvent


@dataclass
class Container:
    """A granted allocation of memory on one node."""

    container_id: int
    node: Node
    memory: float
    released: bool = False


class ResourceManager:
    """Grants memory containers per node, FIFO, against node capacity.

    Container memory is tracked against a scheduler-side ledger (the
    cluster's real :class:`MemoryAccount` tracks *data*; YARN tracks
    *reservations* — matching how the real system double-books).
    """

    def __init__(self, sim: Simulator, nodes: list[Node]):
        self.sim = sim
        self.nodes = {node.node_id: node for node in nodes}
        self._capacity: Dict[int, float] = {
            node.node_id: float(node.spec.memory) for node in nodes
        }
        self._reserved: Dict[int, float] = {node.node_id: 0.0 for node in nodes}
        self._pending: Dict[int, Deque[Tuple[SimEvent, float]]] = {
            node.node_id: deque() for node in nodes
        }
        self._next_id = 0
        # Metrics
        self.granted = 0
        self.released = 0

    def request(self, node: Node, memory: float) -> SimEvent:
        """Request a container; the event fires with a :class:`Container`."""
        if node.node_id not in self.nodes:
            raise ConfigError(f"unknown node {node.node_id}")
        if memory <= 0 or memory > self._capacity[node.node_id]:
            raise ConfigError(
                f"container of {memory} bytes cannot fit on node {node.node_id}"
            )
        event = SimEvent(self.sim, name=f"yarn.request(n{node.node_id})")
        self._pending[node.node_id].append((event, memory))
        self._dispatch(node.node_id)
        return event

    def release(self, container: Container) -> None:
        if container.released:
            raise ConfigError(f"container {container.container_id} released twice")
        container.released = True
        self.released += 1
        self._reserved[container.node.node_id] -= container.memory
        self._dispatch(container.node.node_id)

    def reserved(self, node_id: int) -> float:
        return self._reserved[node_id]

    def available(self, node_id: int) -> float:
        return self._capacity[node_id] - self._reserved[node_id]

    def _dispatch(self, node_id: int) -> None:
        queue = self._pending[node_id]
        while queue:
            event, memory = queue[0]
            if self._reserved[node_id] + memory > self._capacity[node_id]:
                return
            queue.popleft()
            self._reserved[node_id] += memory
            self._next_id += 1
            self.granted += 1
            event.trigger(
                Container(self._next_id, self.nodes[node_id], memory)
            )
