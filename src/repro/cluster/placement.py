"""Locality-aware split placement, shared by both engines.

Given splits with preferred (replica-holding) nodes, assign each to the
least-loaded preferred worker, falling back to round-robin — Hadoop's
"assign computation to the node which is closest to the data" (§3.3) and
the HAMR loader placement alike.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.cluster import Cluster


def assign_splits(cluster: Cluster, splits: Sequence) -> list[list]:
    """Returns one split list per worker index."""
    num_workers = cluster.num_workers
    worker_index = {w.node_id: i for i, w in enumerate(cluster.workers)}
    assignment: list[list] = [[] for _ in range(num_workers)]
    load = [0] * num_workers
    round_robin = 0
    for split in splits:
        preferred = [
            worker_index[node_id]
            for node_id in getattr(split, "preferred_nodes", [])
            if node_id in worker_index
        ]
        if preferred:
            target = min(preferred, key=lambda w: (load[w], w))
        else:
            target = round_robin % num_workers
            round_robin += 1
        load[target] += 1
        assignment[target].append(split)
    return assignment
