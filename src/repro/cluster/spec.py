"""Cluster and cost-model specifications.

:data:`PAPER_CLUSTER` encodes Table 1 of the paper: 16 nodes (one master +
15 workers), each with two Xeon E5-2620 processors at 2 GHz, 32 GB of
memory, five SATA-III local disks, and 4x FDR InfiniBand.

The :class:`CostModel` holds every software cost constant shared by both
engines. Hardware-derived values come from the table; framework overheads
(job/task startup, sort factors) are the standard Hadoop figures from the
literature. The **same** constants drive the HAMR engine and the baseline,
so the reproduced speedups are emergent from the architecture differences
(in-memory vs disk staging, asynchrony vs barriers), not tuned per engine.

The *scale model*: ``CostModel.scale = S`` makes every real record/byte
stand for ``S`` modeled records/bytes, while memory budgets stay at spec.
Running a 300 MB input with ``S = 1000`` therefore reproduces the paper's
300 GB run — including when spills and flow-control stalls kick in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware description (one row of Table 1)."""

    worker_threads: int = 32  # §5.2: "all threads (32 threads)" per node
    memory: int = 32 * GB
    num_disks: int = 5  # SATA-III local disks
    disk_bandwidth: float = 150.0 * MB  # sustained sequential, bytes/s per disk
    disk_latency: float = 0.004  # seek + controller overhead per op, seconds
    nic_bandwidth: float = 1.5 * GB  # effective FDR IB through the Java stack
    nic_latency: float = 50e-6  # one-way, seconds
    cpu_ghz: float = 2.0  # informational (E5-2620 @ 2 GHz)
    #: relative CPU speed (1.0 = nominal; 0.5 = a straggler node at half
    #: speed — used by heterogeneity/speculation experiments)
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.worker_threads <= 0:
            raise ConfigError("worker_threads must be positive")
        if self.memory <= 0:
            raise ConfigError("memory must be positive")
        if self.num_disks <= 0:
            raise ConfigError("num_disks must be positive")
        if self.speed_factor <= 0:
            raise ConfigError("speed_factor must be positive")

    @property
    def aggregate_disk_bandwidth(self) -> float:
        return self.num_disks * self.disk_bandwidth


@dataclass(frozen=True)
class CostModel:
    """Software cost constants shared by both engines (seconds / bytes).

    CPU costs model a JVM-style record pipeline: per-record dispatch plus
    per-byte touch cost; ``serde_per_byte`` covers
    serialization/deserialization on every shuffle or disk boundary.
    """

    # Per-record and per-byte processing cost of user code + framework dispatch.
    cpu_per_record: float = 0.5e-6
    cpu_per_byte: float = 0.5e-9
    # (De)serialization at shuffle/disk boundaries.
    serde_per_byte: float = 1.0e-9
    # Shared-cell atomic update: contended (cache-line ping-pong across two
    # sockets) vs uncontended (plain LOCK'd add on a warm line).
    atomic_update_cost: float = 0.15e-6
    atomic_base_cost: float = 50e-9
    # CPU factor for inserting a record into a reduce-side grouped store.
    reduce_collect_factor: float = 0.15
    # Fraction of a combined pair's accumulator-update pressure a combiner
    # relieves (Table 3: combining shrinks shuffle volume but only mildly
    # relieves the serialized accumulator path — ~15% on HistogramRatings).
    combiner_update_relief: float = 0.15
    # Hadoop framework overheads (standard literature figures).
    hadoop_job_startup: float = 10.0
    hadoop_task_startup: float = 1.0
    hadoop_sort_factor: float = 2.0  # extra CPU multiplier for sort passes
    hadoop_slots_per_node: int = 8  # YARN memory-sized task containers per node
    hadoop_sort_buffer: int = 100 * MB  # map-side sort buffer (modeled bytes)
    hadoop_reduce_memory: int = 1024 * MB  # per-reduce-task JVM heap (modeled bytes)
    hdfs_replication: int = 3
    hdfs_block_size: int = 128 * MB
    # HAMR runtime constants.
    hamr_job_startup: float = 1.0  # resident runtime; no per-job JVM army
    hamr_loader_slots: int = 8  # concurrent loader tasks per node (flow control knob)
    bin_overhead: float = 50e-6  # scheduling cost per bin
    # Bin sealing and flow-control capacities operate on *real* logical
    # bytes (they set simulation granularity); memory, disk and network
    # charge *scaled* bytes. See DESIGN.md §7.
    bin_size: int = 1 * KB
    flow_capacity: int = 256 * KB  # per-(flowlet, node) inbound bin-queue budget
    # Scale model: one real byte/record stands for `scale` modeled ones.
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.hdfs_replication < 1:
            raise ConfigError("hdfs_replication must be >= 1")

    # -- scaled cost helpers (both engines charge through these) -------------

    def scaled_bytes(self, nbytes: float) -> float:
        return nbytes * self.scale

    def scaled_records(self, nrecords: float) -> float:
        return nrecords * self.scale

    def cpu_cost(self, nrecords: float, nbytes: float, factor: float = 1.0) -> float:
        """CPU seconds to process ``nrecords`` totaling ``nbytes`` (pre-scale)."""
        return self.scale * factor * (
            nrecords * self.cpu_per_record + nbytes * self.cpu_per_byte
        )

    def serde_cost(self, nbytes: float) -> float:
        return self.scale * nbytes * self.serde_per_byte

    def with_scale(self, scale: float) -> "CostModel":
        return replace(self, scale=scale)


@dataclass(frozen=True)
class ClusterSpec:
    """A whole cluster: ``num_nodes`` total, one of which is the master.

    Matching §5.1: one node runs NameNode/ResourceManager, the other
    ``num_nodes - 1`` execute tasks; HAMR likewise uses the worker nodes
    only, for a fair comparison.
    """

    num_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    cost: CostModel = field(default_factory=CostModel)
    #: per-node-id spec overrides (heterogeneous clusters), e.g.
    #: ``{3: replace(spec.node, speed_factor=0.25)}`` for one straggler
    node_overrides: tuple = ()
    #: rack topology metadata: workers ``[k*R, (k+1)*R)`` form rack ``k``.
    #: 0 (the default) means no rack structure — rack-aware exchange
    #: fabrics degrade to direct routing and nothing else changes.
    rack_size: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigError("need at least a master and one worker")
        if self.rack_size < 0:
            raise ConfigError("rack_size must be >= 0")
        for node_id, _spec in self.node_overrides:
            if not 0 <= node_id < self.num_nodes:
                raise ConfigError(f"node override for unknown node {node_id}")

    def spec_for(self, node_id: int) -> NodeSpec:
        for override_id, spec in self.node_overrides:
            if override_id == node_id:
                return spec
        return self.node

    @property
    def num_workers(self) -> int:
        return self.num_nodes - 1

    def with_cost(self, cost: CostModel) -> "ClusterSpec":
        return replace(self, cost=cost)

    def with_scale(self, scale: float) -> "ClusterSpec":
        return replace(self, cost=self.cost.with_scale(scale))

    def with_racks(self, rack_size: int) -> "ClusterSpec":
        """The same cluster re-cabled into racks of ``rack_size`` workers."""
        return replace(self, rack_size=rack_size)


#: Table 1 of the paper, verbatim.
PAPER_CLUSTER = ClusterSpec()


def paper_cluster_spec(scale: float = 1.0) -> ClusterSpec:
    """The paper's 16-node testbed, optionally with a data scale factor."""
    return PAPER_CLUSTER.with_scale(scale) if scale != 1.0 else PAPER_CLUSTER


def small_cluster_spec(
    num_workers: int = 4,
    worker_threads: int = 4,
    memory: int = 1 * GB,
    scale: float = 1.0,
) -> ClusterSpec:
    """A small cluster for unit tests and examples (fast to simulate)."""
    node = NodeSpec(worker_threads=worker_threads, memory=memory)
    cost = CostModel(scale=scale)
    return ClusterSpec(num_nodes=num_workers + 1, node=node, cost=cost)
