"""Per-node memory accounting.

The paper's engine keeps intermediate data in memory and spills to local
disk only when a flowlet's collection exceeds the budget (§2), and memory,
"instead of cores", is what YARN schedules on (§3.1). We model memory as a
simple budget: allocations are counted in *scaled* logical bytes, callers
check ``would_fit`` and choose to spill; nothing blocks, so memory pressure
turns into extra disk traffic exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import MemoryBudgetExceeded
from repro.common.units import format_bytes


class MemoryAccount:
    """Tracks logical-byte usage against a budget for one node.

    ``allocate`` fails (returns False) when the allocation would exceed the
    budget; ``force_allocate`` raises instead — used where the modeled
    system would genuinely crash (e.g. Hadoop's reduce-side OOM on large
    KCliques graphs, §5.2).

    With a ``clock`` (a zero-argument callable returning virtual time) the
    account also records *when* the high-water mark was reached, and the
    optional ``observer(now, used)`` hook fires on every usage change —
    this is what feeds the telemetry memory tracks.
    """

    def __init__(
        self,
        budget: float,
        name: str = "memory",
        clock: Optional[Callable[[], float]] = None,
    ):
        if budget <= 0:
            raise ValueError(f"{name}: budget must be positive")
        self.budget = float(budget)
        self.name = name
        self.clock = clock
        self.used = 0.0
        self.high_water = 0.0
        #: virtual time at which ``high_water`` was (first) reached;
        #: stays 0.0 when no clock is attached
        self.high_water_time = 0.0
        self.failed_allocations = 0
        #: optional observability hook, called as ``observer(now, used)``
        #: after every usage change (requires a clock)
        self.observer: Optional[Callable[[float, float], None]] = None

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _changed(self) -> None:
        if self.used > self.high_water:
            self.high_water = self.used
            self.high_water_time = self._now()
        if self.observer is not None:
            self.observer(self._now(), self.used)

    def would_fit(self, nbytes: float) -> bool:
        return self.used + nbytes <= self.budget

    def allocate(self, nbytes: float) -> bool:
        """Reserve ``nbytes``; returns False (and counts a failure) if over budget."""
        if nbytes < 0:
            raise ValueError(f"{self.name}: negative allocation")
        if not self.would_fit(nbytes):
            self.failed_allocations += 1
            return False
        self.used += nbytes
        self._changed()
        return True

    def force_allocate(self, nbytes: float) -> None:
        """Reserve or raise :class:`MemoryBudgetExceeded` (modeled OOM)."""
        if not self.allocate(nbytes):
            raise MemoryBudgetExceeded(
                f"{self.name}: allocation of {format_bytes(nbytes)} exceeds budget "
                f"({format_bytes(self.used)} used of {format_bytes(self.budget)})"
            )

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"{self.name}: negative free")
        # Tolerance scales with magnitude: scaled byte counts are huge
        # floats and accumulate relative round-off.
        if nbytes > self.used + max(1e-6, 1e-9 * self.used):
            raise ValueError(
                f"{self.name}: freeing {format_bytes(nbytes)} with only "
                f"{format_bytes(self.used)} allocated"
            )
        self.used = max(0.0, self.used - nbytes)
        self._changed()

    @property
    def available(self) -> float:
        return max(0.0, self.budget - self.used)

    @property
    def pressure(self) -> float:
        """Fraction of the budget currently in use (0..1)."""
        return self.used / self.budget

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryAccount({self.name}: {format_bytes(self.used)}/"
            f"{format_bytes(self.budget)}, high={format_bytes(self.high_water)})"
        )
