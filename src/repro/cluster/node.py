"""A simulated cluster node.

Each node bundles the sim resources one physical machine contributes:

* a worker-thread pool (``threads``) — tasks hold one slot while computing;
* a memory account in scaled logical bytes;
* five local disks striped into one logical device (``disk``);
* NIC egress/ingress pipes used by the :class:`~repro.cluster.network.Network`;
* a per-node trace shared with the engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.memory import MemoryAccount
from repro.cluster.spec import CostModel, NodeSpec
from repro.sim import BandwidthResource, Resource, Simulator
from repro.sim.core import SimEvent
from repro.sim.resources import StripedBandwidth

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Tracer
    from repro.sim.monitor import Trace


class Node:
    """One machine of the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        spec: NodeSpec,
        cost: CostModel,
        trace: "Trace | None" = None,
        obs: "Tracer | None" = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.cost = cost
        self.trace = trace
        if obs is None:
            from repro.obs import Tracer  # standalone nodes get a no-op tracer

            obs = Tracer(sim, enabled=False)
        self.obs = obs
        self.threads = Resource(sim, spec.worker_threads, name=f"n{node_id}.threads")
        self.memory = MemoryAccount(
            spec.memory, name=f"n{node_id}.memory", clock=lambda: sim.now
        )
        self.disk_devices = [
            BandwidthResource(
                sim,
                bandwidth=spec.disk_bandwidth,
                latency=spec.disk_latency,
                name=f"n{node_id}.disk{i}",
            )
            for i in range(spec.num_disks)
        ]
        self.disk = StripedBandwidth(self.disk_devices)
        self.nic_out = BandwidthResource(
            sim, bandwidth=spec.nic_bandwidth, latency=0.0, name=f"n{node_id}.nic_out"
        )
        self.nic_in = BandwidthResource(
            sim, bandwidth=spec.nic_bandwidth, latency=0.0, name=f"n{node_id}.nic_in"
        )

    # -- cost-charged operations (all sizes are *pre-scale* logical bytes) ---

    def disk_read(self, nbytes: float) -> SimEvent:
        """Read ``nbytes`` logical bytes from the local striped disks."""
        return self.disk.transfer(self.cost.scaled_bytes(nbytes))

    def disk_write(self, nbytes: float) -> SimEvent:
        return self.disk.transfer(self.cost.scaled_bytes(nbytes))

    def compute(self, seconds: float) -> SimEvent:
        """Pure CPU time (caller must already hold a thread slot)."""
        return self.sim.timeout(seconds / self.spec.speed_factor)

    def record_compute(self, nrecords: float, nbytes: float, factor: float = 1.0) -> SimEvent:
        """CPU time for processing records, via the shared cost model."""
        return self.sim.timeout(
            self.cost.cpu_cost(nrecords, nbytes, factor) / self.spec.speed_factor
        )

    def alloc(self, nbytes: float) -> bool:
        """Account ``nbytes`` logical bytes of memory (scaled); False if over budget."""
        return self.memory.allocate(self.cost.scaled_bytes(nbytes))

    def free(self, nbytes: float) -> None:
        self.memory.free(self.cost.scaled_bytes(nbytes))

    def record_trace(self, category: str, **payload: object) -> None:
        if self.trace is not None:
            self.trace.record(category, node=self.node_id, **payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"
