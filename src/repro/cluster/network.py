"""The cluster interconnect.

A full-bisection network (InfiniBand fat-tree assumption): a transfer from
node A to node B serializes through A's egress NIC, crosses the fabric with
a fixed latency, then serializes through B's ingress NIC. Same-node
"transfers" cost only a small memcpy charge. Serialization CPU cost is
charged separately by the engines (they know the record counts).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.node import Node
from repro.cluster.spec import CostModel
from repro.sim import Simulator
from repro.sim.core import SimEvent

# Intra-node hand-off: effectively a queue push between threads.
_LOCAL_MEMCPY_BANDWIDTH = 8e9  # bytes/s


class Network:
    """Routes byte transfers between nodes, charging NIC and latency costs."""

    def __init__(
        self,
        sim: Simulator,
        nodes: list[Node],
        cost: CostModel,
        latency: float,
        racks: Dict[int, int] | None = None,
    ):
        self.sim = sim
        self.nodes = nodes
        self.cost = cost
        self.latency = latency
        #: optional node-id → rack map (rack-aware fabric experiments);
        #: None means no rack structure and the rack counters stay 0
        self.racks = racks
        # Metrics
        self.total_bytes = 0
        self.total_messages = 0
        self.pair_bytes: Dict[Tuple[int, int], int] = {}
        self.inter_rack_bytes = 0
        self.intra_rack_bytes = 0

    def send(self, src: Node, dst: Node, nbytes: float) -> SimEvent:
        """Deliver ``nbytes`` logical bytes from ``src`` to ``dst``.

        The returned event fires when the last byte lands at ``dst``.
        """
        scaled = self.cost.scaled_bytes(nbytes)
        self.total_messages += 1
        self.total_bytes += int(scaled)
        key = (src.node_id, dst.node_id)
        self.pair_bytes[key] = self.pair_bytes.get(key, 0) + int(scaled)
        if self.racks is not None and src.node_id != dst.node_id:
            if self.racks.get(src.node_id) == self.racks.get(dst.node_id):
                self.intra_rack_bytes += int(scaled)
            else:
                self.inter_rack_bytes += int(scaled)

        done = SimEvent(self.sim, name=f"net.{src.node_id}->{dst.node_id}")
        if src.node_id == dst.node_id:
            delay = scaled / _LOCAL_MEMCPY_BANDWIDTH
            return done.trigger(value=int(scaled), delay=delay)

        egress_done = src.nic_out.transfer(scaled)

        def after_egress(_evt: SimEvent) -> None:
            # Fabric latency, then the receive side serializes on dst's NIC.
            ingress_done = dst.nic_in.transfer(scaled)

            def after_ingress(evt2: SimEvent) -> None:
                if evt2.exception is not None:  # pragma: no cover - defensive
                    done.fail(evt2.exception)
                else:
                    done.trigger(int(scaled), delay=self.latency)

            ingress_done.add_callback(after_ingress)

        egress_done.add_callback(after_egress)
        return done

    def cross_traffic_fraction(self) -> float:
        """Fraction of bytes that crossed node boundaries (locality probe)."""
        if self.total_bytes == 0:
            return 0.0
        remote = sum(
            b for (s, d), b in self.pair_bytes.items() if s != d
        )
        return remote / self.total_bytes
