"""The simulated cluster substrate.

Builds the paper's testbed (Table 1: 16 nodes, dual Xeon E5-2620, 32 GB
RAM, 5 SATA-III disks, 4x FDR InfiniBand) out of :mod:`repro.sim`
primitives: each :class:`Node` owns a worker-thread pool, a memory account,
striped local disks and NIC pipes; a :class:`Network` connects them; a
YARN-like :class:`ResourceManager` hands out memory-sized containers.

Both engines (``repro.core`` — HAMR, ``repro.mapreduce`` — the Hadoop
baseline) run on exactly this substrate with exactly the same cost model,
so performance differences between them are emergent, not dialed in.
"""

from repro.cluster.spec import (
    ClusterSpec,
    CostModel,
    NodeSpec,
    PAPER_CLUSTER,
    paper_cluster_spec,
    small_cluster_spec,
)
from repro.cluster.memory import MemoryAccount
from repro.cluster.node import Node
from repro.cluster.network import Network
from repro.cluster.cluster import Cluster
from repro.cluster.yarn import Container, ResourceManager

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "CostModel",
    "PAPER_CLUSTER",
    "paper_cluster_spec",
    "small_cluster_spec",
    "MemoryAccount",
    "Node",
    "Network",
    "Cluster",
    "ResourceManager",
    "Container",
]
