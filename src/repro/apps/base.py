"""Shared benchmark plumbing: environments, result records, ingest helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.spec import ClusterSpec, small_cluster_spec
from repro.core.engine import HamrConfig, HamrEngine
from repro.mapreduce.engine import HadoopConfig, HadoopEngine
from repro.storage.dfs import DFS
from repro.storage.kvstore import KVStore
from repro.storage.localfs import LocalFS


@dataclass
class AppResult:
    """Uniform benchmark outcome across engines."""

    app: str
    engine: str  # "hamr" | "hadoop"
    makespan: float
    output: Any
    counters: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)


class AppEnv:
    """One benchmark execution environment: a fresh cluster + both engines.

    Use a fresh env per (benchmark, engine) measurement so virtual clocks
    and storage states never bleed between runs.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        hamr_config: Optional[HamrConfig] = None,
        hadoop_config: Optional[HadoopConfig] = None,
        obs: bool = False,
        journal=None,
        trace_max_records: Optional[int] = None,
        fabric: Optional[str] = None,
        partitioner: Optional[str] = None,
        rack_size: Optional[int] = None,
    ):
        self.spec = spec if spec is not None else small_cluster_spec()
        if rack_size is None and fabric == "twolevel" and self.spec.rack_size == 0:
            # A rack-aware fabric on a rackless spec would silently route
            # direct; default to four racks (the paper's 16-node testbed
            # split 4x4, scaled down for smaller specs).
            rack_size = max(1, self.spec.num_workers // 4)
        if rack_size is not None:
            self.spec = self.spec.with_racks(rack_size)
        if fabric is not None:
            hamr_config = hamr_config or HamrConfig()
            hamr_config.fabric = fabric
            hadoop_config = hadoop_config or HadoopConfig()
            hadoop_config.fabric = fabric
        if partitioner is not None:
            hamr_config = hamr_config or HamrConfig()
            hamr_config.partitioner = partitioner
            hadoop_config = hadoop_config or HadoopConfig()
            hadoop_config.partitioner = partitioner
        self.cluster = Cluster(
            self.spec, obs=obs, journal=journal,
            trace_max_records=trace_max_records,
        )
        self.dfs = DFS(self.cluster)
        self.localfs = LocalFS(self.cluster)
        self.kvstore = KVStore(self.cluster)
        self.hamr = HamrEngine(
            self.cluster,
            localfs=self.localfs,
            kvstore=self.kvstore,
            config=hamr_config,
        )
        self.hadoop = HadoopEngine(self.cluster, self.dfs, config=hadoop_config)

    @property
    def obs(self):
        """The cluster's observability tracer (no-op unless ``obs=True``)."""
        return self.cluster.obs

    # -- ingest helpers -------------------------------------------------------------

    def ingest_local(self, file_name: str, records: list) -> None:
        """Distribute records round-robin over worker-local disks (§5.1:
        HAMR's "input and output data is distributed between the local
        disks of each node")."""
        workers = self.cluster.workers
        shards: list[list] = [[] for _ in workers]
        for i, record in enumerate(records):
            shards[i % len(workers)].append(record)
        for worker, shard in zip(workers, shards):
            self.localfs.ingest(worker, file_name, shard)

    def ingest_dfs(self, file_name: str, records: list) -> None:
        """Place records in the DFS (Hadoop's input side)."""
        self.dfs.ingest(file_name, records)
