"""K-Means, single iteration (§4, Algorithm 1).

The flowlet implementation is the paper's showcase for locality awareness
(§3.3): ClusterGen writes each movie's bulk data to a *local* cluster
file and passes only ``(similarity, movie_id, LocationRef)`` downstream;
NewCentroidGen picks each cluster's new centroid from similarity info
alone and routes the 24-byte reference back to the node holding the data;
NewCentroidInfoGet reads the movie locally and broadcasts the new
centroid to every node; CentroidUpdate installs it. The Hadoop/PUMA
version shuffles the *entire* movie data set to the reducers — the 10.3x
gap in Table 2 is that difference.

The "new centroid" follows the similarity-info rule of Alg. 1: the member
most similar to its old centroid (deterministic tie-break on movie id),
so both engines and the reference produce identical centroids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.common.partitioner import ModPartitioner
from repro.core import EdgeMode, FlowletGraph, Loader, LocalFSSource, Map, Reduce
from repro.data.movies import cosine_similarity, movie_corpus, parse_movie_line
from repro.mapreduce import Mapper, MRJob, Reducer

APP = "kmeans"
INPUT = f"{APP}-input"

#: cosine similarity over sparse vectors is much heavier than tokenizing
COMPUTE_FACTOR = 8.0


@dataclass(frozen=True)
class KMeansParams:
    n_movies: int = 1_000
    k: int = 8
    seed: int = 0
    n_users: int = 1_000


def generate_input(params: KMeansParams) -> list[tuple[int, str]]:
    return movie_corpus(params.n_movies, seed=params.seed, n_users=params.n_users)


def initial_centroids(records: list[tuple[int, str]], k: int) -> list[dict[int, float]]:
    """The first k movies' vectors (the PUMA convention for iteration 0)."""
    return [parse_movie_line(line).vector() for _off, line in records[:k]]


def assign_cluster(vector: dict[int, float], centroids: list[dict[int, float]]):
    """Returns ``(best_cluster, similarity)`` with a deterministic tie-break."""
    best, best_sim = 0, -1.0
    for i, centroid in enumerate(centroids):
        sim = cosine_similarity(vector, centroid)
        if sim > best_sim:
            best, best_sim = i, sim
    return best, best_sim


# -- HAMR ---------------------------------------------------------------------------


def build_hamr_graph(env: AppEnv, params: KMeansParams, centroids) -> FlowletGraph:
    graph = FlowletGraph(APP)
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, INPUT)))

    def cluster_gen(ctx, _offset: int, line: str) -> None:
        record = parse_movie_line(line)
        best, sim = assign_cluster(record.vector(), centroids)
        ctx.counter(f"cluster_size_{best}")
        ref = ctx.write_local(f"{APP}-cluster-{best}", [line])
        ctx.emit(best, (sim, -record.movie_id, ctx.worker_index, ref))

    cluster_map = graph.add(Map("ClusterGen", fn=cluster_gen, compute_factor=COMPUTE_FACTOR))

    def new_centroid_gen(ctx, cluster: int, infos: list) -> None:
        # "Get the new centroids based on similarity info; pass the line
        # offset of the new centroid to the corresponding node" (step 4).
        sim, neg_id, worker_index, ref = max(infos)
        ctx.emit(worker_index, (cluster, ref), to="NewCentroidInfoGet")

    # Picking a max over similarity floats is far cheaper than user-code
    # record processing, hence the small factor.
    centroid_gen = graph.add(
        Reduce(
            "NewCentroidGen",
            fn=new_centroid_gen,
            compute_factor=0.2,
            aggregated_output=True,  # k references, one per cluster
        )
    )

    def centroid_info_get(ctx, _worker: int, payload) -> None:
        cluster, ref = payload
        (line,) = ctx.read_local(ref)
        record = parse_movie_line(line)
        ctx.emit(cluster, (record.movie_id, record.vector()))

    info_get = graph.add(Map("NewCentroidInfoGet", fn=centroid_info_get))

    def centroid_update(ctx, cluster: int, payload) -> None:
        movie_id, vector = payload
        ctx.kv_put(("centroid", cluster), vector)
        if ctx.worker_index == 0:  # emit the job-level answer exactly once
            ctx.emit(cluster, movie_id)

    update = graph.add(
        Map("CentroidUpdate", fn=centroid_update, aggregated_output=True)
    )

    graph.connect(loader, cluster_map, mode=EdgeMode.LOCAL)
    graph.connect(cluster_map, centroid_gen)
    graph.connect(
        centroid_gen,
        info_get,
        partitioner=ModPartitioner(env.cluster.num_workers),
    )
    graph.connect(info_get, update, mode=EdgeMode.BROADCAST)
    return graph


def build_hamr_graph_bulk(env: AppEnv, params: KMeansParams, centroids) -> FlowletGraph:
    """Ablation A6: locality awareness OFF — ship the full movie line
    through the shuffle instead of a 24-byte :class:`LocationRef`."""
    graph = FlowletGraph(f"{APP}-bulk")
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, INPUT)))

    def cluster_gen_bulk(ctx, _offset: int, line: str) -> None:
        record = parse_movie_line(line)
        best, sim = assign_cluster(record.vector(), centroids)
        ctx.emit(best, (sim, -record.movie_id, line))  # bulk data rides the shuffle

    cluster_map = graph.add(
        Map("ClusterGen", fn=cluster_gen_bulk, compute_factor=COMPUTE_FACTOR)
    )

    def new_centroid_bulk(ctx, cluster: int, infos: list) -> None:
        _sim, _neg_id, line = max(infos)
        record = parse_movie_line(line)
        ctx.emit(cluster, (record.movie_id, record.vector()))

    centroid_gen = graph.add(
        Reduce(
            "NewCentroidGen",
            fn=new_centroid_bulk,
            compute_factor=0.2,
            aggregated_output=True,
        )
    )

    def centroid_update(ctx, cluster: int, payload) -> None:
        movie_id, vector = payload
        ctx.kv_put(("centroid", cluster), vector)
        if ctx.worker_index == 0:
            ctx.emit(cluster, movie_id)

    update = graph.add(
        Map("CentroidUpdate", fn=centroid_update, aggregated_output=True)
    )
    graph.connect(loader, cluster_map, mode=EdgeMode.LOCAL)
    graph.connect(cluster_map, centroid_gen)
    graph.connect(centroid_gen, update, mode=EdgeMode.BROADCAST)
    return graph


def run_hamr(
    env: AppEnv, params: KMeansParams, records=None, use_locality: bool = True
) -> AppResult:
    if records is None:
        records = generate_input(params)
    centroids = initial_centroids(records, params.k)
    env.ingest_local(INPUT, records)
    builder = build_hamr_graph if use_locality else build_hamr_graph_bulk
    result = env.hamr.run(builder(env, params, centroids))
    return AppResult(
        APP, "hamr", result.makespan, dict(result.output("CentroidUpdate")),
        counters=result.counters, metrics=result.metrics,
    )


# -- Hadoop (PUMA single job; full movie data through the shuffle) ----------------------


def build_hadoop_job(params: KMeansParams, centroids) -> MRJob:
    def kmeans_map(ctx, _offset: int, line: str) -> None:
        record = parse_movie_line(line)
        best, _sim = assign_cluster(record.vector(), centroids)
        ctx.counter(f"cluster_size_{best}")
        ctx.emit(best, line)  # the whole movie rides the shuffle

    def kmeans_reduce(ctx, cluster: int, lines: list) -> None:
        best_key = None
        best_id = None
        for line in lines:
            record = parse_movie_line(line)
            sim = cosine_similarity(record.vector(), centroids[cluster])
            key = (sim, -record.movie_id)
            if best_key is None or key > best_key:
                best_key, best_id = key, record.movie_id
        ctx.emit(cluster, best_id)

    return MRJob(
        APP,
        INPUT,
        f"{APP}-out",
        mapper=Mapper(fn=kmeans_map, compute_factor=COMPUTE_FACTOR),
        # PUMA's reduce derives the new centroid with one pass of cheap
        # vector arithmetic over the members, not a k-way similarity scan.
        reducer=Reducer(fn=kmeans_reduce, compute_factor=2.0),
        aggregated_output=True,  # k centroids
    )


def run_hadoop(env: AppEnv, params: KMeansParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    centroids = initial_centroids(records, params.k)
    env.ingest_dfs(INPUT, records)
    result = env.hadoop.run(build_hadoop_job(params, centroids))
    return AppResult(
        APP, "hadoop", result.makespan, dict(result.outputs),
        counters=result.counters, metrics=result.metrics,
    )


# -- reference --------------------------------------------------------------------------


def reference(records: list[tuple[int, str]], k: int) -> dict[int, int]:
    """New centroid movie id per cluster after one iteration."""
    centroids = initial_centroids(records, k)
    best_by_cluster: dict[int, tuple] = {}
    for _off, line in records:
        record = parse_movie_line(line)
        cluster, sim = assign_cluster(record.vector(), centroids)
        key = (sim, -record.movie_id)
        if cluster not in best_by_cluster or key > best_by_cluster[cluster]:
            best_by_cluster[cluster] = key
    return {cluster: -key[1] for cluster, key in best_by_cluster.items()}


def reference_sizes(records: list[tuple[int, str]], k: int) -> dict[int, int]:
    centroids = initial_centroids(records, k)
    sizes: dict[int, int] = {}
    for _off, line in records:
        cluster, _ = assign_cluster(parse_movie_line(line).vector(), centroids)
        sizes[cluster] = sizes.get(cluster, 0) + 1
    return sizes
