"""The paper's eight evaluation benchmarks (§4), each implemented three ways:

1. **flowlet-style** on the HAMR engine, following the paper's Algorithms
   1-4 (locality refs, KV-store graphs, partial reduces, multi-phase DAGs);
2. **Hadoop-style** on the MapReduce baseline, following the PUMA/HiBench
   job structure (full data through shuffle, chained jobs);
3. a pure-Python **reference** used by the test suite to verify both.

Every module exposes ``run_hamr(env, params)`` and ``run_hadoop(env,
params)`` returning an :class:`~repro.apps.base.AppResult`.
"""

from repro.apps.base import AppEnv, AppResult

__all__ = ["AppEnv", "AppResult"]
