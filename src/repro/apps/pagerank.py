"""PageRank (§4, Algorithm 2).

Flowlet version — one multi-phase job per iteration, state in memory:

* iteration 1: EdgeFileLoader → HashJoinRed (reduce per src: store the
  dst list in the KV store, send ``rank/outdegree`` to each dst)
  → MergeRed (reduce per dst: damped sum, compare with the old rank,
  store) → ContMap (convergence counters);
* iterations ≥ 2: EdgeLoader reads adjacency *from memory*
  (:class:`KVStoreSource`) — no disk, no join job.

The KV-store keys ``("adj", p)`` and ``("rank", p)`` are partitioned by
the same default hash partitioner that routes reduce keys, so every
lookup in the pipeline is node-local.

Hadoop version — the classic two-jobs-per-iteration chain (plus an
initialization job): adjacency lists ride the shuffle and the DFS on
*every* job, which is exactly the §3.2 overhead HAMR removes; Table 2
reports 13.6x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    FlowletGraph,
    KVStoreSource,
    Loader,
    LocalFSSource,
    Map,
    Reduce,
)
from repro.data.webgraph import webgraph_edges
from repro.mapreduce import Mapper, MRJob, Reducer, run_chain
from repro.mapreduce.chain import chain_makespan

APP = "pagerank"
INPUT = f"{APP}-edges"
DAMPING = 0.85


@dataclass(frozen=True)
class PageRankParams:
    n_pages: int = 500
    n_edges: int = 2_500
    iterations: int = 3
    seed: int = 0
    damping: float = DAMPING


def generate_input(params: PageRankParams) -> list[tuple[int, int]]:
    return webgraph_edges(params.n_pages, params.n_edges, seed=params.seed)


# -- HAMR ----------------------------------------------------------------------------


class _EdgeLoader(Loader):
    """Iteration >= 2 loader: adjacency straight out of the KV store."""

    def load(self, ctx, records) -> None:
        for key, dsts in records:
            if not (isinstance(key, tuple) and key[0] == "adj"):
                continue
            src = key[1]
            rank = ctx.kv_get(("rank", src))
            contribution = rank / len(dsts)
            for dst in dsts:
                ctx.emit(dst, contribution)
            ctx.emit(src, 0.0)  # ensure every page gets a MergeRed visit


def _merge_and_cont(graph: FlowletGraph, upstream, params: PageRankParams) -> None:
    n = params.n_pages
    d = params.damping

    def merge_red(ctx, page: int, contributions: list) -> None:
        new_rank = (1.0 - d) / n + d * sum(contributions)
        old_rank = ctx.kv_get(("rank", page), 1.0 / n)
        ctx.kv_put(("rank", page), new_rank)
        ctx.emit(page, abs(new_rank - old_rank))

    merge = graph.add(Reduce("MergeRed", fn=merge_red))

    def cont_map(ctx, _page: int, delta: float) -> None:
        ctx.counter("delta_sum", delta)
        ctx.counter("pages_updated")

    cont = graph.add(Map("ContMap", fn=cont_map))
    graph.connect(upstream, merge)
    graph.connect(merge, cont)


def build_hamr_first_iteration(env: AppEnv, params: PageRankParams) -> FlowletGraph:
    graph = FlowletGraph(f"{APP}-iter1")
    loader = graph.add(Loader("EdgeFileLoader", LocalFSSource(env.localfs, INPUT)))
    n = params.n_pages

    def hash_join(ctx, src: int, dsts: list) -> None:
        dst_list = tuple(dsts)
        ctx.kv_put(("adj", src), dst_list)  # "save it into memory" (step 5)
        rank = 1.0 / n
        ctx.kv_put(("rank", src), rank)
        contribution = rank / len(dst_list)
        for dst in dst_list:
            ctx.emit(dst, contribution)
        ctx.emit(src, 0.0)

    join = graph.add(Reduce("HashJoinRed", fn=hash_join))
    graph.connect(loader, join)
    _merge_and_cont(graph, join, params)
    return graph


def build_hamr_next_iteration(env: AppEnv, params: PageRankParams, iteration: int) -> FlowletGraph:
    graph = FlowletGraph(f"{APP}-iter{iteration}")
    loader = graph.add(_EdgeLoader("EdgeLoader", KVStoreSource(env.kvstore)))
    _merge_and_cont(graph, loader, params)
    return graph


def run_hamr_until_converged(
    env: AppEnv,
    params: PageRankParams,
    edges=None,
    tolerance: float = 1e-4,
    max_iterations: int = 25,
) -> tuple[AppResult, int]:
    """Alg. 2's driver loop verbatim: "while not converge and less than
    max number of iterations" — the convergence signal is ContMap's
    summed rank movement. Returns ``(result, iterations_run)``."""
    if edges is None:
        edges = generate_input(params)
    env.ingest_local(INPUT, edges)
    total_start = env.cluster.sim.now
    iterations_run = 0
    for iteration in range(1, max_iterations + 1):
        if iteration == 1:
            graph = build_hamr_first_iteration(env, params)
        else:
            graph = build_hamr_next_iteration(env, params, iteration)
        result = env.hamr.run(graph)
        iterations_run = iteration
        if result.counters.get("delta_sum", float("inf")) < tolerance:
            break
    makespan = env.cluster.sim.now - total_start
    ranks = {
        key[1]: value
        for key, value in env.kvstore.all_items()
        if isinstance(key, tuple) and key[0] == "rank"
    }
    return (
        AppResult(APP, "hamr", makespan, ranks, counters={"iterations": iterations_run}),
        iterations_run,
    )


def run_hamr(env: AppEnv, params: PageRankParams, edges=None) -> AppResult:
    if edges is None:
        edges = generate_input(params)
    env.ingest_local(INPUT, edges)
    total_start = env.cluster.sim.now
    counters: dict[str, float] = {}
    metrics: dict[str, float] = {}
    for iteration in range(1, params.iterations + 1):
        if iteration == 1:
            graph = build_hamr_first_iteration(env, params)
        else:
            graph = build_hamr_next_iteration(env, params, iteration)
        result = env.hamr.run(graph)
        for k, v in result.counters.items():
            counters[f"iter{iteration}_{k}"] = v
        for k, v in result.metrics.items():
            metrics[k] = metrics.get(k, 0.0) + v
    makespan = env.cluster.sim.now - total_start
    ranks = {
        key[1]: value
        for key, value in env.kvstore.all_items()
        if isinstance(key, tuple) and key[0] == "rank"
    }
    return AppResult(APP, "hamr", makespan, ranks, counters=counters, metrics=metrics)


# -- Hadoop --------------------------------------------------------------------------------


def build_hadoop_jobs(params: PageRankParams) -> list[MRJob]:
    n = params.n_pages
    d = params.damping
    identity = Mapper(fn=lambda ctx, k, v: ctx.emit(k, v))

    def init_reduce(ctx, src: int, dsts: list) -> None:
        ctx.emit(src, ("A", tuple(dsts)))
        ctx.emit(src, ("R", 1.0 / n))

    jobs = [
        MRJob(
            f"{APP}-init",
            INPUT,
            f"{APP}-state-0",
            mapper=Mapper(fn=lambda ctx, src, dst: ctx.emit(src, dst)),
            reducer=Reducer(fn=init_reduce),
        )
    ]

    def contrib_reduce(ctx, page: int, values: list) -> None:
        adj: tuple = ()
        rank = 1.0 / n
        for tag, payload in values:
            if tag == "A":
                adj = payload
            elif tag == "R":
                rank = payload
        ctx.emit(page, ("A", adj))  # adjacency rides the shuffle every job
        ctx.emit(page, ("C", 0.0))
        if adj:
            contribution = rank / len(adj)
            for dst in adj:
                ctx.emit(dst, ("C", contribution))

    def update_reduce(ctx, page: int, values: list) -> None:
        adj: tuple = ()
        total = 0.0
        for tag, payload in values:
            if tag == "A":
                adj = payload
            else:
                total += payload
        ctx.emit(page, ("A", adj))
        ctx.emit(page, ("R", (1.0 - d) / n + d * total))

    for i in range(1, params.iterations + 1):
        jobs.append(
            MRJob(
                f"{APP}-contrib-{i}",
                f"{APP}-state-{i - 1}",
                f"{APP}-contrib-{i}",
                mapper=identity,
                reducer=Reducer(fn=contrib_reduce),
            )
        )
        jobs.append(
            MRJob(
                f"{APP}-update-{i}",
                f"{APP}-contrib-{i}",
                f"{APP}-state-{i}",
                mapper=identity,
                reducer=Reducer(fn=update_reduce),
            )
        )
    return jobs


def run_hadoop(env: AppEnv, params: PageRankParams, edges=None) -> AppResult:
    if edges is None:
        edges = generate_input(params)
    env.ingest_dfs(INPUT, edges)
    results = run_chain(env.hadoop, build_hadoop_jobs(params))
    final = env.dfs.get_file(f"{APP}-state-{params.iterations}")
    ranks = {page: payload for page, (tag, payload) in final.records() if tag == "R"}
    metrics: dict[str, float] = {}
    for r in results:
        for k, v in r.metrics.items():
            metrics[k] = metrics.get(k, 0.0) + v
    return AppResult(
        APP, "hadoop", chain_makespan(results), ranks, metrics=metrics
    )


# -- reference -----------------------------------------------------------------------------------


def reference(edges: list[tuple[int, int]], params: PageRankParams) -> dict[int, float]:
    n = params.n_pages
    d = params.damping
    adjacency: dict[int, list[int]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
    ranks = {page: 1.0 / n for page in adjacency}
    for _ in range(params.iterations):
        incoming: dict[int, float] = {page: 0.0 for page in adjacency}
        for src, dsts in adjacency.items():
            contribution = ranks[src] / len(dsts)
            for dst in dsts:
                incoming[dst] = incoming.get(dst, 0.0) + contribution
        ranks = {
            page: (1.0 - d) / n + d * total for page, total in incoming.items()
        }
    return ranks
