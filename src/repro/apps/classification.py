"""Classification (§4).

"Classifies the movies into one of k predetermined clusters. As K-Means,
it computes the cosine vector similarity of a given movie with the
centroids, and assigns the movie to the cluster whose centroid it is
closest to" — but centroids are fixed, so there is no centroid
regeneration. The flowlet version "reads/writes the data directly from/to
local disk" (§3.3): assignments land on node-local disks and only tiny
per-cluster counts shuffle. The Hadoop version ships each movie through
the shuffle and writes per-movie assignments to the DFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    EdgeMode,
    FlowletGraph,
    Loader,
    LocalFSSource,
    Map,
    PartialReduce,
)
from repro.data.movies import movie_corpus, parse_movie_line
from repro.apps.kmeans import COMPUTE_FACTOR, assign_cluster, initial_centroids
from repro.mapreduce import Mapper, MRJob, Reducer

APP = "classification"
INPUT = f"{APP}-input"


@dataclass(frozen=True)
class ClassificationParams:
    n_movies: int = 1_000
    k: int = 8
    seed: int = 0
    n_users: int = 1_000


def generate_input(params: ClassificationParams) -> list[tuple[int, str]]:
    return movie_corpus(params.n_movies, seed=params.seed, n_users=params.n_users)


# -- HAMR ---------------------------------------------------------------------------


def build_hamr_graph(env: AppEnv, params: ClassificationParams, centroids) -> FlowletGraph:
    graph = FlowletGraph(APP)
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, INPUT)))

    def classify(ctx, _offset: int, line: str) -> None:
        record = parse_movie_line(line)
        best, _sim = assign_cluster(record.vector(), centroids)
        ctx.write_local(f"{APP}-cluster-{best}", [(record.movie_id, best)])
        ctx.emit(best, 1)

    mapper = graph.add(Map("Classify", fn=classify, compute_factor=COMPUTE_FACTOR))
    count = graph.add(
        PartialReduce(
            "ClusterSizes",
            initial=lambda _k: 0,
            combine=lambda a, v: a + v,
            aggregated_output=True,  # k cluster sizes
        )
    )
    graph.connect(loader, mapper, mode=EdgeMode.LOCAL)
    graph.connect(mapper, count)
    return graph


def run_hamr(env: AppEnv, params: ClassificationParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    centroids = initial_centroids(records, params.k)
    env.ingest_local(INPUT, records)
    result = env.hamr.run(build_hamr_graph(env, params, centroids))
    return AppResult(
        APP, "hamr", result.makespan, dict(result.output("ClusterSizes")),
        counters=result.counters, metrics=result.metrics,
    )


# -- Hadoop ---------------------------------------------------------------------------


def build_hadoop_job(params: ClassificationParams, centroids) -> MRJob:
    def classify_map(ctx, _offset: int, line: str) -> None:
        record = parse_movie_line(line)
        best, _sim = assign_cluster(record.vector(), centroids)
        ctx.emit(best, line)  # full movie data through the shuffle (PUMA)

    def classify_reduce(ctx, cluster: int, lines: list) -> None:
        for line in lines:
            ctx.emit(parse_movie_line(line).movie_id, cluster)

    return MRJob(
        APP,
        INPUT,
        f"{APP}-out",
        mapper=Mapper(fn=classify_map, compute_factor=COMPUTE_FACTOR),
        reducer=Reducer(fn=classify_reduce),
    )


def run_hadoop(env: AppEnv, params: ClassificationParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    centroids = initial_centroids(records, params.k)
    env.ingest_dfs(INPUT, records)
    result = env.hadoop.run(build_hadoop_job(params, centroids))
    sizes: dict[int, int] = {}
    for _movie, cluster in result.outputs:
        sizes[cluster] = sizes.get(cluster, 0) + 1
    return AppResult(
        APP, "hadoop", result.makespan, sizes,
        counters=result.counters, metrics=result.metrics,
    )


# -- reference ------------------------------------------------------------------------


def reference(records: list[tuple[int, str]], k: int) -> dict[int, int]:
    """Cluster sizes under the fixed centroids."""
    centroids = initial_centroids(records, k)
    sizes: dict[int, int] = {}
    for _off, line in records:
        cluster, _ = assign_cluster(parse_movie_line(line).vector(), centroids)
        sizes[cluster] = sizes.get(cluster, 0) + 1
    return sizes
