"""HistogramMovies and HistogramRatings (§4).

HistogramMovies bins movies by average rating (0.5-wide bins, 1..5);
HistogramRatings counts each of the five rating values. Both are simple
scan + aggregate workloads where "Hadoop is very good" — and
HistogramRatings is the paper's pathological case for HAMR: five keys
shuffle to five nodes, all threads there hammer one accumulator each
(atomic contention), the hot inboxes fill, and flow control throttles the
loaders (§5.2). Table 3 adds a combiner on the HAMR shuffle edge, which
"helps flow control" and lifts HistogramRatings from 0.26x to 0.31x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    EdgeMode,
    FlowletGraph,
    Loader,
    LocalFSSource,
    Map,
    PartialReduce,
    sum_combiner,
)
from repro.data.movies import DEFAULT_RATING_WEIGHTS, movie_corpus, parse_movie_line
from repro.mapreduce import Mapper, MRJob, Reducer

#: movie-line parsing (split dozens of user_rating pairs) is an order of
#: magnitude heavier than plain tokenizing
PARSE_FACTOR = 24.0

MOVIES_APP = "histogram_movies"
RATINGS_APP = "histogram_ratings"


@dataclass(frozen=True)
class HistogramParams:
    n_movies: int = 2_000
    seed: int = 0
    n_users: int = 1_000
    #: Table 3: combiner on the HAMR map->count edge
    hamr_combiner: bool = False
    #: rating popularity (A5 skew ablation sweeps this)
    rating_weights: tuple = DEFAULT_RATING_WEIGHTS


def generate_input(params: HistogramParams) -> list[tuple[int, str]]:
    return movie_corpus(
        params.n_movies,
        seed=params.seed,
        n_users=params.n_users,
        rating_weights=params.rating_weights,
    )


def movie_bin(avg: float) -> float:
    """PUMA-style 0.5-wide bin for an average rating."""
    return round(avg * 2.0) / 2.0


def map_movies(ctx, _offset: int, line: str) -> None:
    record = parse_movie_line(line)
    ctx.emit(movie_bin(record.average_rating), 1)


def map_ratings(ctx, _offset: int, line: str) -> None:
    record = parse_movie_line(line)
    for rating in record.ratings:
        ctx.emit(rating, 1)


def _input_name(app: str) -> str:
    return f"{app}-input"


# -- engines (shared shape for both histogram apps) ------------------------------------


def _build_hamr(env: AppEnv, app: str, map_fn, use_combiner: bool) -> FlowletGraph:
    graph = FlowletGraph(app)
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, _input_name(app))))
    mapper = graph.add(Map("BinMap", fn=map_fn, compute_factor=PARSE_FACTOR))
    count = graph.add(
        PartialReduce(
            "Count",
            initial=lambda _k: 0,
            combine=lambda acc, v: acc + v,
            aggregated_output=True,  # bin-space-bounded counts
        )
    )
    graph.connect(loader, mapper, mode=EdgeMode.LOCAL)
    graph.connect(mapper, count, combiner=sum_combiner() if use_combiner else None)
    return graph


def _build_hadoop(app: str, map_fn) -> MRJob:
    return MRJob(
        app,
        _input_name(app),
        f"{app}-out",
        mapper=Mapper(fn=map_fn, compute_factor=PARSE_FACTOR),
        reducer=Reducer(fn=lambda ctx, key, counts: ctx.emit(key, sum(counts))),
        combiner=sum_combiner(),  # the PUMA versions ship with combiners
        aggregated_output=True,  # bin-space-bounded counts
    )


def _run(env: AppEnv, app: str, engine: str, map_fn, params: HistogramParams, records):
    if records is None:
        records = generate_input(params)
    if engine == "hamr":
        env.ingest_local(_input_name(app), records)
        result = env.hamr.run(_build_hamr(env, app, map_fn, params.hamr_combiner))
        output = dict(result.output("Count"))
        return AppResult(app, engine, result.makespan, output,
                         counters=result.counters, metrics=result.metrics)
    env.ingest_dfs(_input_name(app), records)
    result = env.hadoop.run(_build_hadoop(app, map_fn))
    return AppResult(app, engine, result.makespan, dict(result.outputs),
                     counters=result.counters, metrics=result.metrics)


def run_movies_hamr(env: AppEnv, params: HistogramParams, records=None) -> AppResult:
    return _run(env, MOVIES_APP, "hamr", map_movies, params, records)


def run_movies_hadoop(env: AppEnv, params: HistogramParams, records=None) -> AppResult:
    return _run(env, MOVIES_APP, "hadoop", map_movies, params, records)


def run_ratings_hamr(env: AppEnv, params: HistogramParams, records=None) -> AppResult:
    return _run(env, RATINGS_APP, "hamr", map_ratings, params, records)


def run_ratings_hadoop(env: AppEnv, params: HistogramParams, records=None) -> AppResult:
    return _run(env, RATINGS_APP, "hadoop", map_ratings, params, records)


# -- references ---------------------------------------------------------------------------


def reference_movies(records: list[tuple[int, str]]) -> dict[float, int]:
    counts: dict[float, int] = {}
    for _off, line in records:
        key = movie_bin(parse_movie_line(line).average_rating)
        counts[key] = counts.get(key, 0) + 1
    return counts


def reference_ratings(records: list[tuple[int, str]]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for _off, line in records:
        for rating in parse_movie_line(line).ratings:
            counts[rating] = counts.get(rating, 0) + 1
    return counts
