"""WordCount (§4).

"Counts the total occurrences of each unique word in input files. ...
instead of using reduce as Hadoop, HAMR can apply partial reduce to
increase the count as soon as the occurrence of the word." The Hadoop
version ships with a combiner (which is why "the performance gap between
HAMR and Hadoop diminishes"); the HAMR Table 2 configuration runs without
one (Table 3 evaluates combiners on the histogram apps instead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    EdgeMode,
    FlowletGraph,
    Loader,
    LocalFSSource,
    Map,
    PartialReduce,
    Reduce,
    sum_combiner,
)
from repro.data.text import book_corpus
from repro.mapreduce import Mapper, MRJob, Reducer

APP = "wordcount"

#: splitting a line into ~10 words costs several base record ops
TOKENIZE_FACTOR = 3.0
INPUT = "wordcount-input"


@dataclass(frozen=True)
class WordCountParams:
    target_bytes: int = 100_000
    seed: int = 0
    vocabulary_size: int = 10_000
    #: per-edge combiner on the HAMR tokenize->count edge (Table 3 style)
    hamr_combiner: bool = False


def generate_input(params: WordCountParams) -> list[tuple[int, str]]:
    return book_corpus(
        params.target_bytes, seed=params.seed, vocabulary_size=params.vocabulary_size
    )


def tokenize(ctx, _offset: int, line: str) -> None:
    for word in line.split():
        ctx.emit(word, 1)


# -- HAMR ---------------------------------------------------------------------------


def build_hamr_graph(
    env: AppEnv, params: WordCountParams, use_partial_reduce: bool = True
) -> FlowletGraph:
    """The flowlet WordCount; ``use_partial_reduce=False`` swaps the
    incremental counter for a full barrier Reduce (ablation A3)."""
    graph = FlowletGraph(APP)
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, INPUT)))
    tok = graph.add(Map("Tokenize", fn=tokenize, compute_factor=TOKENIZE_FACTOR))
    if use_partial_reduce:
        count = graph.add(
            PartialReduce(
                "Count",
                initial=lambda _k: 0,
                combine=lambda acc, v: acc + v,
                aggregated_output=True,  # vocabulary-bounded counts
            )
        )
    else:
        count = graph.add(
            Reduce(
                "Count",
                fn=lambda ctx, word, counts: ctx.emit(word, sum(counts)),
                aggregated_output=True,
            )
        )
    graph.connect(loader, tok, mode=EdgeMode.LOCAL)
    graph.connect(
        tok, count, combiner=sum_combiner() if params.hamr_combiner else None
    )
    return graph


def run_hamr(env: AppEnv, params: WordCountParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    env.ingest_local(INPUT, records)
    result = env.hamr.run(build_hamr_graph(env, params))
    return AppResult(
        APP, "hamr", result.makespan, dict(result.output("Count")),
        counters=result.counters, metrics=result.metrics,
    )


# -- Hadoop -------------------------------------------------------------------------


def build_hadoop_job(params: WordCountParams) -> MRJob:
    return MRJob(
        APP,
        INPUT,
        f"{APP}-out",
        mapper=Mapper(fn=tokenize, compute_factor=TOKENIZE_FACTOR),
        reducer=Reducer(fn=lambda ctx, word, counts: ctx.emit(word, sum(counts))),
        combiner=sum_combiner(),
        aggregated_output=True,  # vocabulary-bounded counts
    )


def run_hadoop(env: AppEnv, params: WordCountParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    env.ingest_dfs(INPUT, records)
    result = env.hadoop.run(build_hadoop_job(params))
    return AppResult(
        APP, "hadoop", result.makespan, dict(result.outputs),
        counters=result.counters, metrics=result.metrics,
    )


# -- reference ------------------------------------------------------------------------


def reference(records: list[tuple[int, str]]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for _offset, line in records:
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts
