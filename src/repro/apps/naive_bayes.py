"""NaiveBayes Training (§4, Algorithm 4).

Flowlet pipeline (one job, three working flowlets replacing two Hadoop
jobs): TextLoader → IndexInstancesMapper → VectorSumReducer (partial
reduce per label) → WeightSumReducer (partial reduce per feature).

Outputs: per-feature summed weights plus per-label total weights (keyed
``("label", name)``) — the sufficient statistics a Naive Bayes trainer
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.base import AppEnv, AppResult
from repro.core import (
    EdgeMode,
    FlowletGraph,
    Loader,
    LocalFSSource,
    Map,
    PartialReduce,
)
from repro.data.documents import document_corpus, parse_document_line
from repro.mapreduce import Mapper, MRJob, Reducer, run_chain
from repro.mapreduce.chain import chain_makespan

APP = "naive_bayes"
INPUT = f"{APP}-input"


@dataclass(frozen=True)
class NaiveBayesParams:
    n_documents: int = 500
    seed: int = 0
    n_labels: int = 4
    vocabulary_size: int = 5_000
    words_per_document: int = 50


def generate_input(params: NaiveBayesParams) -> list[tuple[int, str]]:
    return document_corpus(
        params.n_documents,
        seed=params.seed,
        n_labels=params.n_labels,
        vocabulary_size=params.vocabulary_size,
        words_per_document=params.words_per_document,
    )


def index_instances(ctx, _offset: int, line: str) -> None:
    """Parse a document into a ``(label, sparse-count-vector)`` pair."""
    label, words = parse_document_line(line)
    vector: dict[str, int] = {}
    for word in words:
        vector[word] = vector.get(word, 0) + 1
    ctx.emit(label, vector)


def _sum_vectors(acc: dict, vector: dict) -> dict:
    for feature, weight in vector.items():
        acc[feature] = acc.get(feature, 0) + weight
    return acc


# -- HAMR -----------------------------------------------------------------------------


def build_hamr_graph(env: AppEnv, params: NaiveBayesParams) -> FlowletGraph:
    graph = FlowletGraph(APP)
    loader = graph.add(Loader("TextLoader", LocalFSSource(env.localfs, INPUT)))
    # Splitting and hash-counting ~50 words per document.
    indexer = graph.add(Map("IndexInstancesMapper", fn=index_instances, compute_factor=5.0))

    def finalize_vector_sum(ctx, label: str, acc: dict) -> None:
        # "sum up all feature weights in the sum vector and output the sum
        # weight per label; produce (feature, weight) pairs" (Alg. 4 step 4)
        total = sum(acc.values())
        ctx.emit(("label", label), total)
        for feature, weight in acc.items():
            ctx.emit(feature, weight)

    vector_sum = graph.add(
        PartialReduce(
            "VectorSumReducer",
            initial=lambda _label: {},
            combine=_sum_vectors,
            finalize=finalize_vector_sum,
            # Folding a ~50-word document vector into the per-label
            # accumulator touches ~50 distinct cells and costs well over a
            # scalar increment.
            compute_factor=25.0,
            update_weight=50.0,
            aggregated_output=True,  # vocabulary-bounded feature weights
        )
    )
    weight_sum = graph.add(
        PartialReduce(
            "WeightSumReducer",
            initial=lambda _k: 0,
            combine=lambda acc, v: acc + v,
            aggregated_output=True,
        )
    )
    graph.connect(loader, indexer, mode=EdgeMode.LOCAL)
    graph.connect(indexer, vector_sum)
    graph.connect(vector_sum, weight_sum)
    return graph


def run_hamr(env: AppEnv, params: NaiveBayesParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    env.ingest_local(INPUT, records)
    result = env.hamr.run(build_hamr_graph(env, params))
    return AppResult(
        APP, "hamr", result.makespan, dict(result.output("WeightSumReducer")),
        counters=result.counters, metrics=result.metrics,
    )


# -- Hadoop (two chained jobs, per the Mahout structure) ----------------------------------


def build_hadoop_jobs(params: NaiveBayesParams) -> list[MRJob]:
    def reduce_vectors(ctx, label: str, vectors: list) -> None:
        acc: dict[str, int] = {}
        for vector in vectors:
            _sum_vectors(acc, vector)
        ctx.emit(("label", label), sum(acc.values()))
        for feature, weight in acc.items():
            ctx.emit(feature, weight)

    job1 = MRJob(
        f"{APP}-vector-sum",
        INPUT,
        f"{APP}-vectors",
        mapper=Mapper(fn=index_instances, compute_factor=5.0),
        reducer=Reducer(fn=reduce_vectors, compute_factor=25.0),
        aggregated_output=True,  # vocabulary-bounded feature weights
    )
    job2 = MRJob(
        f"{APP}-weight-sum",
        f"{APP}-vectors",
        f"{APP}-out",
        mapper=Mapper(fn=lambda ctx, k, v: ctx.emit(k, v)),
        reducer=Reducer(fn=lambda ctx, k, weights: ctx.emit(k, sum(weights))),
        aggregated_input=True,
        aggregated_output=True,
    )
    return [job1, job2]


def run_hadoop(env: AppEnv, params: NaiveBayesParams, records=None) -> AppResult:
    if records is None:
        records = generate_input(params)
    env.ingest_dfs(INPUT, records)
    results = run_chain(env.hadoop, build_hadoop_jobs(params))
    merged_counters: dict[str, float] = {}
    merged_metrics: dict[str, float] = {}
    for r in results:
        for k, v in r.counters.items():
            merged_counters[k] = merged_counters.get(k, 0.0) + v
        for k, v in r.metrics.items():
            merged_metrics[k] = merged_metrics.get(k, 0.0) + v
    return AppResult(
        APP, "hadoop", chain_makespan(results), dict(results[-1].outputs),
        counters=merged_counters, metrics=merged_metrics,
    )


# -- reference -------------------------------------------------------------------------------


def reference(records: list[tuple[int, str]]) -> dict[Any, int]:
    weights: dict[Any, int] = {}
    label_totals: dict[str, int] = {}
    for _off, line in records:
        label, words = parse_document_line(line)
        for word in words:
            weights[word] = weights.get(word, 0) + 1
            label_totals[label] = label_totals.get(label, 0) + 1
    for label, total in label_totals.items():
        weights[("label", label)] = total
    return weights
